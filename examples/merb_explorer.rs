//! MERB explorer: how the Minimum Efficient Row Burst table (Table I)
//! responds to DRAM timing — the paper computes it at boot from the
//! datasheet, so a faster tRP/tRCD part needs shorter hit bursts to hide a
//! row miss.
//!
//!     cargo run --release --example merb_explorer

use ldsim::gddr5::merb::single_bank_utilization;
use ldsim::gddr5::MerbTable;
use ldsim::types::clock::ClockDomain;
use ldsim::types::config::TimingParams;

fn main() {
    println!("MERB vs banks-with-pending-work, for three GDDR5 speed grades\n");
    let mut grades: Vec<(&str, TimingParams)> = Vec::new();
    grades.push(("paper (Hynix 6 Gbps)", TimingParams::default()));
    let fast = TimingParams {
        t_rp_ns: 10.0,
        t_rcd_ns: 10.0,
        t_rtp_ns: 2.0,
        ..TimingParams::default()
    };
    grades.push(("faster core (tRP=tRCD=10ns)", fast));
    let slow = TimingParams {
        t_rp_ns: 15.0,
        t_rcd_ns: 15.0,
        ..TimingParams::default()
    };
    grades.push(("slower core (tRP=tRCD=15ns)", slow));

    print!("{:28}", "banks:");
    for b in 1..=8 {
        print!("{b:5}");
    }
    println!();
    for (name, t) in &grades {
        let merb = MerbTable::from_timing(t, ClockDomain::GDDR5, 16);
        print!("{name:28}");
        for b in 1..=8 {
            print!("{:5}", merb.get(b));
        }
        println!();
    }

    println!("\nsingle-bank utilisation vs row-hits-per-activate (paper formula):");
    let t = TimingParams::default();
    for n in [1u64, 2, 4, 8, 16, 31] {
        println!(
            "  n = {n:2}: {:5.1}%",
            single_bank_utilization(&t, ClockDomain::GDDR5, n) * 100.0
        );
    }
}
