//! Quickstart: run one irregular benchmark under the baseline GMC scheduler
//! and the paper's full WG-W scheme, and compare what the paper's Fig. 5
//! promises — lower average memory stall through warp-group scheduling.
//!
//!     cargo run --release --example quickstart

use ldsim::prelude::*;

fn main() {
    // A small sparse-matrix kernel (spmv): the archetypal irregular GPGPU
    // workload — divergent gathers over a large working set.
    let gen = benchmark("spmv", Scale::Small, 42);
    let kernel = gen.generate();
    println!(
        "kernel '{}': {} warps, {} loads, {} instructions",
        kernel.name,
        kernel.num_warps(),
        kernel.total_loads(),
        kernel.total_instructions()
    );

    let cfg = SimConfig {
        instruction_limit: Some(kernel.total_instructions() * 7 / 10),
        ..SimConfig::default()
    };

    let base = Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Gmc), &kernel).run();
    let wgw = Simulator::new(cfg.with_scheduler(SchedulerKind::WgW), &kernel).run();

    println!("\n                       GMC        WG-W");
    println!(
        "IPC                 {:8.2}    {:8.2}",
        base.ipc(),
        wgw.ipc()
    );
    println!(
        "effective latency   {:8.0}    {:8.0}   (cycles, issue -> last response)",
        base.avg_effective_latency, wgw.avg_effective_latency
    );
    println!(
        "divergence gap      {:8.0}    {:8.0}   (cycles, first -> last DRAM service)",
        base.avg_dram_gap, wgw.avg_dram_gap
    );
    println!(
        "bus utilisation     {:8.1}%   {:8.1}%",
        base.bw_utilization * 100.0,
        wgw.bw_utilization * 100.0
    );
    println!(
        "\nspeedup: {:.3}x (the paper's Fig. 8 reports +10.1% at full scale)",
        wgw.ipc() / base.ipc()
    );
}
