//! Graph traversal study: BFS and SSSP — the LonestarGPU-style workloads
//! whose data-dependent gathers motivate the paper — under every scheduler
//! the paper evaluates.
//!
//!     cargo run --release --example graph_traversal

use ldsim::prelude::*;
use ldsim::system::table::Table;

fn main() {
    let kinds = [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::Gmc,
        SchedulerKind::Wafcfs,
        SchedulerKind::Sbwas { alpha_q: 2 },
        SchedulerKind::Wg,
        SchedulerKind::WgM,
        SchedulerKind::WgBw,
        SchedulerKind::WgW,
    ];
    for bench in ["bfs", "sssp"] {
        let kernel = benchmark(bench, Scale::Small, 7).generate();
        let cfg0 = SimConfig {
            instruction_limit: Some(kernel.total_instructions() * 7 / 10),
            ..SimConfig::default()
        };
        println!("\n=== {bench}: {} warps ===\n", kernel.num_warps());
        let mut t = Table::new(&[
            "scheduler",
            "IPC",
            "eff. latency",
            "divergence gap",
            "bus util",
        ]);
        for k in kinds {
            let r = Simulator::new(cfg0.clone().with_scheduler(k), &kernel).run();
            t.row(vec![
                k.name().into(),
                format!("{:.2}", r.ipc()),
                format!("{:.0}", r.avg_effective_latency),
                format!("{:.0}", r.avg_dram_gap),
                format!("{:.1}%", r.bw_utilization * 100.0),
            ]);
        }
        t.print();
    }
    println!("\nNote how the strict in-order WAFCFS loses row locality, while the");
    println!("WG family reduces the divergence gap relative to FR-FCFS/GMC.");
}
