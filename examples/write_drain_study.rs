//! Write-drain study: why WG-W exists.
//!
//! Runs the write-heavy benchmarks (nw, SS, sad — Fig. 12's high-intensity
//! group) under WG-Bw and WG-W and reports drain-stall composition and the
//! resulting IPC. WG-W pushes unit-sized warp-groups through before each
//! drain so nearly-complete warps are not stranded behind a write batch.
//!
//!     cargo run --release --example write_drain_study

use ldsim::prelude::*;
use ldsim::system::table::Table;

fn main() {
    let mut t = Table::new(&[
        "benchmark",
        "write intensity",
        "drains",
        "stalled groups",
        "unit+orphan",
        "WG-W / WG-Bw",
    ]);
    for bench in ["nw", "SS", "sad", "spmv"] {
        let kernel = benchmark(bench, Scale::Small, 3).generate();
        let cfg = SimConfig {
            instruction_limit: Some(kernel.total_instructions() * 7 / 10),
            ..SimConfig::default()
        };
        let bw = Simulator::new(cfg.clone().with_scheduler(SchedulerKind::WgBw), &kernel).run();
        let ww = Simulator::new(cfg.with_scheduler(SchedulerKind::WgW), &kernel).run();
        t.row(vec![
            bench.into(),
            format!("{:.1}%", bw.write_intensity * 100.0),
            bw.drains.to_string(),
            bw.drain_stalled_groups.to_string(),
            format!("{:.1}%", bw.drain_unit_orphan_frac() * 100.0),
            format!("{:.3}", ww.ipc() / bw.ipc()),
        ]);
    }
    println!("Write-drain behaviour (WG-Bw baseline, Fig. 12's metrics)\n");
    t.print();
    println!("\nspmv is shown as a low-write control: few drains, little for WG-W to do.");
}
