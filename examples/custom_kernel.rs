//! Building a kernel by hand with the public IR: a pathological two-warp
//! interference microbenchmark (the paper's Fig. 5 scenario) — warp A's
//! requests all hit one row while warp B scatters, and the schedulers
//! resolve the conflict differently.
//!
//!     cargo run --release --example custom_kernel

use ldsim::prelude::*;
use ldsim::types::addr::AddressMapper;
use ldsim::types::config::MemConfig;

fn main() {
    let mapper = AddressMapper::new(&MemConfig::default(), 128);

    // Warp A: a row-friendly streak — 8 lines of one DRAM row.
    let row_lines = mapper.same_row_lines(0x40_0000);
    let mut a_addrs = [0u64; 32];
    for (l, x) in a_addrs.iter_mut().enumerate() {
        *x = row_lines[(l / 4) % row_lines.len()];
    }
    // Warp B: a scatter — 8 far-apart lines (different banks/rows).
    let mut b_addrs = [0u64; 32];
    for (l, x) in b_addrs.iter_mut().enumerate() {
        *x = 0x100_0000 + ((l / 4) as u64) * 0x83_000;
    }

    let mk_warp = |addrs: [u64; 32], salt: u64| {
        // Shift each warp's footprint so warps collide at the controller
        // without coalescing into each other's lines.
        let shifted = addrs.map(|a| a + salt * 0x2_0000);
        WarpProgram::new(vec![
            Instruction::load(shifted),
            Instruction::Delay(50),
            Instruction::load(shifted.map(|a| a ^ 0x80)),
        ])
    };
    // 8 row-friendly warps and 8 scatter warps on one SM: enough pressure
    // that the transaction scheduler's choices matter.
    let mut warps = Vec::new();
    for i in 0..8 {
        warps.push(mk_warp(a_addrs, i));
        warps.push(mk_warp(b_addrs, i));
    }
    let kernel = KernelProgram {
        name: "fig5-micro".into(),
        programs: vec![warps],
    };

    println!("two-warp interference microbenchmark (Fig. 5 scenario)\n");
    for k in [SchedulerKind::Gmc, SchedulerKind::Wg, SchedulerKind::WgW] {
        let r = Simulator::new(SimConfig::default().with_scheduler(k), &kernel).run();
        println!(
            "{:6}  cycles={:5}  avg effective latency={:6.0}  divergence gap={:5.0}",
            k.name(),
            r.cycles,
            r.avg_effective_latency,
            r.avg_dram_gap
        );
    }
}
