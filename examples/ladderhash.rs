//! Prints a stable digest line per (benchmark, scheduler) cell of the
//! 7-scheduler ladder × irregular suite: trace hash, cycles, instructions
//! and the policy counters. Diffing this output across two builds is the
//! quickest way to check cross-build bit-exactness of the simulator.
//!
//! Usage: `cargo run --release --example ladderhash [tiny|small]`

use ldsim::prelude::*;

const LADDER: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
    SchedulerKind::Wafcfs,
    SchedulerKind::Sbwas { alpha_q: 2 },
];

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let scale = match arg.as_str() {
        "small" => Scale::Small,
        _ => Scale::Tiny,
    };
    for bench in ldsim::system::runner::irregular_names() {
        let kernel = benchmark(bench, scale, 11).generate();
        for &kind in LADDER {
            let cfg = SimConfig::default()
                .with_scheduler(kind)
                .with_trace()
                .with_hist();
            let mut cfg = cfg;
            cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
            let (r, trace) = Simulator::new(cfg, &kernel).run_traced();
            println!(
                "{bench} {kind:?} hash={:016x} cycles={} insns={} counters={:?} \
                 reads={}/{} gap_p99={}",
                trace.map(|t| t.stable_hash()).unwrap_or(0),
                r.cycles,
                r.instructions,
                r.policy_counters,
                r.mem_read_responses,
                r.mem_read_requests,
                r.gap_p99,
            );
        }
    }
}
