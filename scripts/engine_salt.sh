#!/usr/bin/env bash
# Print the engine-version cache salt (ENGINE_SALT) to stdout.
#
# The single source of truth is the constant in crates/system/src/sweep.rs;
# CI keys the cell-cache on it and the service-e2e job cross-checks the
# running server against it. The extraction pattern below is pinned by the
# `engine_salt_is_nonempty_and_stable_format` test in
# crates/bench/tests/repro.rs — if the constant's shape changes, that test
# and this script must move together.
set -euo pipefail
cd "$(dirname "$0")/.."
salt=$(sed -n 's/^pub const ENGINE_SALT: &str = "\([^"]*\)";$/\1/p' crates/system/src/sweep.rs)
if [ -z "$salt" ]; then
    echo "error: could not extract ENGINE_SALT from crates/system/src/sweep.rs" >&2
    exit 1
fi
echo "$salt"
