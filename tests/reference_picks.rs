//! Indexed-pick bit-exactness ladder.
//!
//! The WG-family pick paths (`select_group`, `merb_gate`,
//! `pick_unit_group`, `pick_bypass`) resolve their decisions through
//! incremental seq/row indexes (DESIGN.md §13). The original scan-based
//! implementations are kept behind `SimConfig::with_reference_picks(true)`,
//! and this suite demands the *identical* [`RunResult`] — every counter
//! (including the WG-M cap counter, which makes the scored candidate set
//! observable), histogram moment and latency statistic — and the identical
//! FNV-1a trace hash from both routes, for every scheduler in the audited
//! ladder on the full irregular suite. Indexing is a pure wall-clock
//! optimisation; any divergence here is a scheduling-correctness bug.
//!
//! Baseline (non-WG) schedulers ride along: the flag is a no-op for them,
//! which doubles as a regression check that the plumbing never leaks into
//! other policies.

use ldsim::prelude::*;
use ldsim::util::parallel_map;

/// Same ladder as the conformance and fast-forward suites.
const LADDER: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
    SchedulerKind::Wafcfs,
    SchedulerKind::Sbwas { alpha_q: 2 },
];

/// Run one benchmark × scheduler pair at `scale` with indexed and
/// reference picks, and demand bit-exact results and traces.
fn assert_bitexact(bench: &str, kind: SchedulerKind, scale: Scale, seed: u64) {
    let kernel = benchmark(bench, scale, seed).generate();
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_trace()
        .with_hist();
    let (indexed, indexed_trace) = Simulator::new(cfg.clone(), &kernel).run_traced();
    let (reference, reference_trace) =
        Simulator::new(cfg.with_reference_picks(true), &kernel).run_traced();
    assert!(indexed.finished, "{bench}/{kind:?} did not finish");
    assert_eq!(
        indexed, reference,
        "{bench}/{kind:?} at {scale:?}: indexed picks diverged from the reference scans"
    );
    assert_eq!(
        indexed_trace.as_ref().map(|t| t.stable_hash()),
        reference_trace.as_ref().map(|t| t.stable_hash()),
        "{bench}/{kind:?} at {scale:?}: trace hash diverged"
    );
}

fn ladder_pairs() -> Vec<(&'static str, SchedulerKind)> {
    let mut pairs = Vec::new();
    for bench in ldsim::system::runner::irregular_names() {
        for &kind in LADDER {
            pairs.push((bench, kind));
        }
    }
    pairs
}

#[test]
fn indexed_picks_bitexact_tiny() {
    parallel_map(ladder_pairs(), |(bench, kind)| {
        assert_bitexact(bench, kind, Scale::Tiny, 11);
    });
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Small-scale ladder is slow without optimisation; run under --release"
)]
fn indexed_picks_bitexact_small() {
    parallel_map(ladder_pairs(), |(bench, kind)| {
        assert_bitexact(bench, kind, Scale::Small, 11);
    });
}

/// The WG-S (shared-aware) future-work scheme is outside the audited ladder
/// but exercises the `shared` tie-break inside `select_group`; pin it too.
#[test]
fn indexed_picks_bitexact_wgshared_tiny() {
    parallel_map(
        ldsim::system::runner::irregular_names()
            .iter()
            .map(|b| (*b, SchedulerKind::WgShared))
            .collect::<Vec<_>>(),
        |(bench, kind)| assert_bitexact(bench, kind, Scale::Tiny, 11),
    );
}
