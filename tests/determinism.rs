//! Bit-exact reproducibility: the same (benchmark, seed, scheduler) must
//! produce an identical [`RunResult`] — every counter, every float, and
//! the stable event-trace hash — on every run. The simulator has no
//! wall-clock, thread-order, or iteration-order dependence anywhere.

use ldsim::prelude::*;
use ldsim::system::Trace;

fn traced_run(bench: &str, kind: SchedulerKind, seed: u64) -> (RunResult, Option<Trace>) {
    let kernel = benchmark(bench, Scale::Tiny, seed).generate();
    // Histograms armed: `RunResult` equality then also demands identical
    // distributions (every bucket of all six), not just identical moments.
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_audit()
        .with_trace()
        .with_hist();
    Simulator::new(cfg, &kernel).run_traced()
}

#[test]
fn identical_runs_are_bit_identical() {
    for (bench, kind, seed) in [
        ("bfs", SchedulerKind::Gmc, 3u64),
        ("spmv", SchedulerKind::Wg, 7),
        ("sssp", SchedulerKind::WgM, 11),
        ("nw", SchedulerKind::WgBw, 13),
        ("kmeans", SchedulerKind::WgW, 17),
    ] {
        let (a, ta) = traced_run(bench, kind, seed);
        let (b, tb) = traced_run(bench, kind, seed);
        // RunResult implements PartialEq over every field, including the
        // trace hash — one assert covers all statistics at once.
        assert_eq!(a, b, "{bench}/{kind:?}/{seed}: results diverged");
        assert!(a.trace_hash.is_some());
        let (ta, tb) = (ta.unwrap(), tb.unwrap());
        assert_eq!(
            ta.stable_hash(),
            tb.stable_hash(),
            "{bench}/{kind:?}/{seed}: trace hashes diverged"
        );
        assert_eq!(ta.len(), tb.len());
    }
}

#[test]
fn different_seeds_give_different_traces() {
    let (a, _) = traced_run("bfs", SchedulerKind::Gmc, 1);
    let (b, _) = traced_run("bfs", SchedulerKind::Gmc, 2);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "different workloads must not hash-collide"
    );
}

#[test]
fn trace_hash_matches_result_field() {
    let (r, t) = traced_run("spmv", SchedulerKind::WgW, 5);
    assert_eq!(r.trace_hash, Some(t.unwrap().stable_hash()));
}

#[test]
fn jsonl_export_is_stable() {
    let (_, ta) = traced_run("nw", SchedulerKind::Gmc, 9);
    let (_, tb) = traced_run("nw", SchedulerKind::Gmc, 9);
    let mut a = Vec::new();
    let mut b = Vec::new();
    ta.unwrap().write_jsonl(&mut a).unwrap();
    tb.unwrap().write_jsonl(&mut b).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "JSONL export must be byte-identical across runs");
}
