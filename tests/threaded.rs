//! Threaded-vs-serial determinism ladder for the intra-run partition pool.
//!
//! The pool (DESIGN.md §17) stripes the memory partitions over worker
//! threads between deterministic epoch barriers at crossbar hand-off. It is
//! an execution strategy, not a model change, so a threaded run must
//! produce the *identical* [`RunResult`] — every counter, histogram bucket,
//! and audit tally — and the identical FNV-1a trace hash as the serial
//! loop, for every scheduler in the audited ladder on the full irregular
//! suite. Histograms and the timing auditor stay armed: both observe
//! per-partition event order, so they would catch a reordered merge that
//! the aggregate counters might mask.
//!
//! The same property is what licenses `sim_threads`' exemption from the
//! sweep cache's `config_fingerprint` — the cache tests at the bottom pin
//! the exemption itself.

use ldsim::prelude::*;
use ldsim::system::sweep::{config_fingerprint, run_sweep, Cell, SweepConfig};
use ldsim::util::parallel_map;

/// Same ladder as the conformance/fastforward suites: every scheduler the
/// paper evaluates, plus the baselines it compares against.
const LADDER: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
    SchedulerKind::Wafcfs,
    SchedulerKind::Sbwas { alpha_q: 2 },
];

/// Thread counts under test: serial, a 2-wide pool (partitions split
/// between the caller and one worker), and a 6-wide pool (one worker per
/// partition — the widest the simulator will actually use).
const THREADS: &[usize] = &[1, 2, 6];

/// Run one benchmark × scheduler pair at `scale` across every thread count
/// and demand bit-exact results and traces against the serial run.
fn assert_threads_bitexact(bench: &str, kind: SchedulerKind, scale: Scale, seed: u64) {
    let kernel = benchmark(bench, scale, seed).generate();
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_audit()
        .with_trace()
        .with_hist();
    let (serial, serial_trace) =
        Simulator::new(cfg.clone().with_sim_threads(1), &kernel).run_traced();
    assert!(serial.finished, "{bench}/{kind:?} did not finish");
    assert_eq!(serial.audit_violations, 0, "{bench}/{kind:?}: serial audit");
    for &threads in &THREADS[1..] {
        let (threaded, threaded_trace) =
            Simulator::new(cfg.clone().with_sim_threads(threads), &kernel).run_traced();
        assert_eq!(
            threaded, serial,
            "{bench}/{kind:?} at {scale:?} with {threads} threads: RunResult diverged from serial"
        );
        assert_eq!(
            threaded_trace.as_ref().map(|t| t.stable_hash()),
            serial_trace.as_ref().map(|t| t.stable_hash()),
            "{bench}/{kind:?} at {scale:?} with {threads} threads: trace hash diverged"
        );
    }
}

fn ladder_pairs() -> Vec<(&'static str, SchedulerKind)> {
    let mut pairs = Vec::new();
    for bench in ldsim::system::runner::irregular_names() {
        for &kind in LADDER {
            pairs.push((bench, kind));
        }
    }
    pairs
}

#[test]
fn threaded_ladder_tiny() {
    parallel_map(ladder_pairs(), |(bench, kind)| {
        assert_threads_bitexact(bench, kind, Scale::Tiny, 11);
    });
}

/// Small spot-check: the contention-heavy end, where partitions are busy
/// most cycles and any merge-order bug would have the most chances to
/// fire. One benchmark per step topology (WG-W coordinates, GMC does not).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Small-scale runs are slow without optimisation; run under --release"
)]
fn threaded_spot_check_small() {
    parallel_map(
        vec![("sp", SchedulerKind::WgW), ("spmv", SchedulerKind::Gmc)],
        |(bench, kind)| {
            assert_threads_bitexact(bench, kind, Scale::Small, 11);
        },
    );
}

/// Every epoch cadence is the same simulation: the auto crossbar-lookahead
/// window (the threaded default, what the ladder above runs), a forced
/// per-cycle cadence (`epoch_max = 1`, the pre-epoch behaviour), and an
/// intermediate cap must all reproduce the serial run bit for bit — same
/// `RunResult`, same trace hash — at every pool width.
#[test]
fn epoch_cadences_are_bit_exact_tiny() {
    parallel_map(
        vec![
            ("bfs", SchedulerKind::Gmc),
            ("spmv", SchedulerKind::WgW),
            ("sssp", SchedulerKind::WgBw),
        ],
        |(bench, kind)| {
            let kernel = benchmark(bench, Scale::Tiny, 11).generate();
            let cfg = SimConfig::default()
                .with_scheduler(kind)
                .with_audit()
                .with_trace()
                .with_hist();
            let (serial, serial_trace) =
                Simulator::new(cfg.clone().with_sim_threads(1), &kernel).run_traced();
            assert!(serial.finished, "{bench}/{kind:?} did not finish");
            for &threads in &THREADS[1..] {
                for cap in [0, 1, 4] {
                    let (run, trace) = Simulator::new(
                        cfg.clone().with_sim_threads(threads).with_epoch_max(cap),
                        &kernel,
                    )
                    .run_traced();
                    assert_eq!(
                        run, serial,
                        "{bench}/{kind:?} threads={threads} epoch_max={cap}: diverged"
                    );
                    assert_eq!(
                        trace.as_ref().map(|t| t.stable_hash()),
                        serial_trace.as_ref().map(|t| t.stable_hash()),
                        "{bench}/{kind:?} threads={threads} epoch_max={cap}: trace hash"
                    );
                }
            }
        },
    );
}

/// The point of the epochs, pinned end to end on a real workload: against
/// the forced per-cycle cadence, the auto window must cut barrier count by
/// an order of magnitude for a non-coordinating scheduler (40-cycle
/// crossbar lookahead) and by at least 4x for a coordinating one (whose
/// window is clamped to the 4-cycle coordination latency, against a
/// per-cycle cost of two barriers per cycle).
#[test]
fn epoch_windows_reduce_barriers_on_real_workloads() {
    for (kind, factor) in [(SchedulerKind::Gmc, 10), (SchedulerKind::WgW, 4)] {
        let kernel = benchmark("bfs", Scale::Tiny, 11).generate();
        let cfg = SimConfig::default()
            .with_scheduler(kind)
            .with_sim_threads(2);
        let (r_epoch, epoch) = Simulator::new(cfg.clone(), &kernel).run_with_sync_stats();
        let (r_cycle, cycle) =
            Simulator::new(cfg.clone().with_epoch_max(1), &kernel).run_with_sync_stats();
        assert_eq!(r_epoch, r_cycle, "{kind:?}: cadences must agree exactly");
        assert!(epoch.windows > 0, "{kind:?}: epochs never engaged");
        assert_eq!(
            cycle.windows, 0,
            "{kind:?}: epoch_max=1 must stay per-cycle"
        );
        assert!(
            cycle.barriers >= factor * epoch.barriers,
            "{kind:?}: expected a {factor}x barrier cut, got {} vs {}",
            cycle.barriers,
            epoch.barriers
        );
    }
}

/// `sim_threads` must not enter the cell fingerprint: it changes how a
/// cell is executed, not what it computes (the ladder above is the proof),
/// so a cached cell is valid at any thread count.
#[test]
fn sim_threads_is_fingerprint_exempt() {
    let base = config_fingerprint(&SimConfig::default());
    for threads in [1, 2, 6, 64] {
        assert_eq!(
            base,
            config_fingerprint(&SimConfig::default().with_sim_threads(threads)),
            "sim_threads={threads} must not change the config fingerprint"
        );
    }
    // The exemption is deliberate, not an accident of a `..` pattern: a
    // *semantic* knob still moves the fingerprint.
    assert_ne!(
        base,
        config_fingerprint(&SimConfig::default().with_fast_forward(false))
    );
}

/// `epoch_max` earns the same exemption for the same reason: the cadence
/// tests above prove every window length computes the identical cell, so a
/// cached result is valid under any epoch cap.
#[test]
fn epoch_max_is_fingerprint_exempt() {
    let base = config_fingerprint(&SimConfig::default());
    for cap in [0, 1, 4, 40] {
        assert_eq!(
            base,
            config_fingerprint(&SimConfig::default().with_epoch_max(cap)),
            "epoch_max={cap} must not change the config fingerprint"
        );
    }
}

/// End to end through the sweep: a cell simulated serially and reloaded
/// from the warm cache at a different thread count is the same cell —
/// same key, zero re-simulation, byte-exact cache file.
#[test]
fn warm_cache_reload_ignores_thread_count() {
    let dir = std::env::temp_dir().join(format!("ldsim-threaded-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cellcache.jsonl");

    let cells = [
        Cell::new("bfs", Scale::Tiny, 11, SchedulerKind::Gmc),
        Cell::new("spmv", Scale::Tiny, 11, SchedulerKind::WgW),
    ];
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        ..SweepConfig::default()
    };

    // Cold pass, serial (the process default).
    let (cold_store, cold) = run_sweep(&cells, &cfg);
    assert_eq!(cold.simulated, 2);
    let cache_bytes = std::fs::read(&cache).unwrap();

    // Warm pass with the process-wide thread count forced to 6: every cell
    // must come from the cache (same key), the file must not change, and
    // the results must match the cold pass bit for bit.
    ldsim::util::set_sim_threads(Some(6));
    let (warm_store, warm) = run_sweep(&cells, &cfg);
    ldsim::util::set_sim_threads(None);
    assert_eq!(
        warm.from_cache, 2,
        "thread count must not change cell keys: {warm:?}"
    );
    assert_eq!(warm.simulated, 0);
    assert_eq!(
        std::fs::read(&cache).unwrap(),
        cache_bytes,
        "warm reload must leave the cache byte-identical"
    );
    for cell in &cells {
        assert_eq!(
            cold_store.get(cell),
            warm_store.get(cell),
            "{cell:?}: warm reload diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
