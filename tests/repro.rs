//! Equivalence of the global sweep orchestrator with per-figure execution:
//! one deduped pass over the whole registry must render every figure's
//! JSONL byte-identically to running that figure's cells alone — the
//! property that makes `repro` a drop-in replacement for the per-figure
//! binaries.

use ldsim_bench::figures::registry;
use ldsim_system::sweep::{run_sweep, SweepConfig};
use ldsim_workloads::Scale;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldsim-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn global_sweep_matches_per_figure_sweeps_byte_for_byte() {
    let (scale, seed) = (Scale::Tiny, 1);
    let dir = tmp("repro-equivalence");

    // One global pass over every figure's cells, shared and deduped.
    let specs = registry(scale, seed);
    let all_cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();
    let (global_store, stats) = run_sweep(&all_cells, &SweepConfig::default());
    assert!(
        stats.unique * 2 < stats.declared,
        "global dedup should collapse shared grids: {} unique of {}",
        stats.unique,
        stats.declared
    );
    let global_dir = dir.join("global");
    for spec in &specs {
        (spec.render)(&global_store, &global_dir);
    }

    // Each figure alone, the way its standalone binary runs.
    let solo_dir = dir.join("solo");
    for spec in &specs {
        let (store, _) = run_sweep(&spec.cells, &SweepConfig::default());
        (spec.render)(&store, &solo_dir);
    }

    // Every JSONL either path produced must exist in the other and match
    // byte-for-byte.
    let mut compared = 0;
    for entry in std::fs::read_dir(&global_dir).unwrap() {
        let name = entry.unwrap().file_name();
        let g = std::fs::read(global_dir.join(&name)).unwrap();
        let s = std::fs::read(solo_dir.join(&name))
            .unwrap_or_else(|e| panic!("{name:?} missing from solo run: {e}"));
        assert_eq!(
            g, s,
            "{name:?}: global-sweep bytes differ from solo-figure bytes"
        );
        compared += 1;
    }
    assert_eq!(
        compared,
        std::fs::read_dir(&solo_dir).unwrap().count(),
        "solo run produced files the global run did not"
    );
    assert!(compared >= 15, "expected every dumping figure: {compared}");
    let _ = std::fs::remove_dir_all(&dir);
}
