//! DRAM protocol conformance: the full scheduler ladder runs violation-free
//! under the independent timing auditor, and the differential harness
//! (conservation + conformance + reproducibility) passes for every paper
//! scheduler on a spread of benchmarks.

use ldsim::prelude::*;
use ldsim::system::differential_check;

/// The audited ladder: every scheduler the paper evaluates, plus the
/// baselines it compares against.
const LADDER: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
    SchedulerKind::Wafcfs,
    SchedulerKind::Sbwas { alpha_q: 2 },
];

#[test]
fn ladder_runs_violation_free_at_tiny() {
    for bench in ["bfs", "spmv", "sssp", "nw", "kmeans"] {
        for &kind in LADDER {
            let kernel = benchmark(bench, Scale::Tiny, 19).generate();
            let cfg = SimConfig::default().with_scheduler(kind).with_audit();
            let r = Simulator::new(cfg, &kernel).run();
            assert!(r.finished, "{bench}/{kind:?} did not finish");
            assert!(r.audit_commands > 0, "{bench}/{kind:?}: auditor idle");
            assert_eq!(
                r.audit_violations, 0,
                "{bench}/{kind:?}: {} protocol violation(s) in {} commands",
                r.audit_violations, r.audit_commands
            );
        }
    }
}

#[test]
fn ladder_runs_violation_free_at_small() {
    // One Small-scale pass over a shorter benchmark spread (Small runs are
    // ~20x Tiny): refresh windows, write drains, and L2 evictions all occur
    // at this scale, exercising auditor paths Tiny never reaches.
    for bench in ["bfs", "nw"] {
        for &kind in [SchedulerKind::Gmc, SchedulerKind::WgW].iter() {
            let kernel = benchmark(bench, Scale::Small, 19).generate();
            let cfg = SimConfig::default().with_scheduler(kind).with_audit();
            let r = Simulator::new(cfg, &kernel).run();
            assert!(r.finished, "{bench}/{kind:?} did not finish");
            assert_eq!(
                r.audit_violations, 0,
                "{bench}/{kind:?}: protocol violations at Small scale"
            );
        }
    }
}

#[test]
fn differential_harness_clean_across_benchmarks() {
    // Conservation + conformance + bit-exact reproducibility for every
    // paper scheduler, on four benchmarks covering both workload classes.
    for (bench, seed) in [("bfs", 2u64), ("spmv", 3), ("nw", 5), ("bp", 7)] {
        let report = differential_check(
            bench,
            Scale::Tiny,
            seed,
            ldsim::system::runner::PAPER_SCHEDULERS,
        );
        assert!(report.all_clean(), "{bench}: {:?}", report.failures());
    }
}

#[test]
fn auditor_catches_injected_illegal_commands() {
    // Prove the watchdog actually bites: drive a channel-shaped command
    // stream into a standalone auditor with deliberate violations and
    // check each is diagnosed with the right rule.
    use ldsim::gddr5::{CmdEvent, CmdKind, Rule, TimingAuditor};
    use ldsim::types::clock::ClockDomain;
    use ldsim::types::config::{MemConfig, TimingParams};

    let mem = MemConfig::default();
    let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
    let mut audit = TimingAuditor::new(&mem, t);

    // Legal ACT, then a READ one cycle before tRCD elapses.
    audit.observe(&CmdEvent {
        cycle: 0,
        kind: CmdKind::Act,
        bank: 0,
        row: 7,
    });
    audit.observe(&CmdEvent {
        cycle: t.t_rcd - 1,
        kind: CmdKind::Read,
        bank: 0,
        row: 7,
    });
    assert_eq!(audit.violation_count(), 1);
    assert_eq!(audit.violations()[0].rule, Rule::TRcd);

    // Reading a bank that was never activated (the BankOpen precondition).
    audit.observe(&CmdEvent {
        cycle: 10_000,
        kind: CmdKind::Read,
        bank: 5,
        row: 0,
    });
    assert!(audit
        .violations()
        .iter()
        .any(|v| v.rule == Rule::BankOpen && v.bank == 5));
}
