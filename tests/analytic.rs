//! Property test: the closed-form idle-latency arithmetic and the
//! simulator agree *exactly* for random legal timing configurations.
//!
//! `AnalyticLatency` computes a dependent load's idle closed-bank latency
//! from config knobs alone; the simulator derives it from its pipeline and
//! the DRAM state machines. Fuzzing the knobs and demanding exact equality
//! (with the independent `TimingAuditor` armed) catches silent
//! timing-model edits that any single golden value would miss — whichever
//! side drifts, the equality breaks.

use ldsim::types::analytic::AnalyticLatency;
use ldsim::types::{Instruction, KernelProgram, SimConfig, WarpProgram};
use ldsim::util::rng::StdRng;
use ldsim_system::Simulator;

/// One-load kernel on a single-SM machine: the purest idle access.
fn one_load_kernel() -> KernelProgram {
    KernelProgram {
        name: "analytic-probe".to_string(),
        programs: vec![vec![WarpProgram::new(vec![Instruction::load([0u64; 32])])]],
    }
}

fn random_legal_config(rng: &mut StdRng) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Bank timings, nanoseconds at the datasheet granularity. tRAS and tRC
    // are derived so the set stays self-consistent (tRC = tRAS + tRP,
    // tRAS >= tRCD + CAS-to-data) and the auditor's legality rules hold.
    let rcd = rng.gen_range(6u64..=20) as f64;
    let rp = rng.gen_range(6u64..=20) as f64;
    let cas = rng.gen_range(6u64..=20) as f64;
    cfg.mem.timing.t_rcd_ns = rcd;
    cfg.mem.timing.t_rp_ns = rp;
    cfg.mem.timing.t_cas_ns = cas;
    cfg.mem.timing.t_ras_ns = rcd + cas + rng.gen_range(0u64..=10) as f64;
    cfg.mem.timing.t_rc_ns = cfg.mem.timing.t_ras_ns + rp;
    // Pipeline knobs on the GPU side.
    cfg.gpu.xbar_latency = rng.gen_range(5u64..=60);
    cfg.gpu.l2_slice.latency = rng.gen_range(4u64..=40);
    // Data transfer size.
    cfg.mem.timing.t_burst_ck = rng.gen_range(1u64..=4);
    cfg.mem.bursts_per_access = rng.gen_range(1u64..=4);
    // Idle-exactness conditions: no refresh mid-probe, auditor armed.
    cfg.mem.refresh_enabled = false;
    cfg.audit = true;
    cfg.gpu.num_sms = 1;
    cfg
}

#[test]
fn analytic_idle_latency_matches_simulation_exactly() {
    let mut rng = StdRng::seed_from_u64(0x1d51_0a7e);
    for trial in 0..24 {
        let cfg = random_legal_config(&mut rng);
        let a = AnalyticLatency::from_config(&cfg);
        let (res, records) = Simulator::new(cfg.clone(), &one_load_kernel()).run_with_records();
        assert!(res.audit_commands > 0, "trial {trial}: auditor saw nothing");
        assert_eq!(res.audit_violations, 0, "trial {trial}: protocol violation");
        assert_eq!(records.len(), 1, "trial {trial}: expected one load record");
        assert_eq!(
            records[0].effective_latency(),
            a.dram_closed(),
            "trial {trial}: simulated idle closed-bank latency diverged from \
             the analytic formula (xbar={} l2={} tRCD={} tCAS={} burst={}x{})",
            cfg.gpu.xbar_latency,
            cfg.gpu.l2_slice.latency,
            cfg.mem.timing.t_rcd_ns,
            cfg.mem.timing.t_cas_ns,
            cfg.mem.bursts_per_access,
            cfg.mem.timing.t_burst_ck,
        );
    }
}
