//! Cross-crate integration tests: the full machine, end to end.
#![allow(clippy::field_reassign_with_default)]

use ldsim::prelude::*;
use ldsim::types::config::MemConfig;

fn run(bench: &str, kind: SchedulerKind, seed: u64) -> ldsim::system::RunResult {
    let kernel = benchmark(bench, Scale::Tiny, seed).generate();
    let cfg = SimConfig::default().with_scheduler(kind);
    Simulator::new(cfg, &kernel).run()
}

#[test]
fn every_scheduler_finishes_every_benchmark_class() {
    for bench in ["bfs", "nw", "spmv", "bp"] {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::Gmc,
            SchedulerKind::Wafcfs,
            SchedulerKind::Sbwas { alpha_q: 2 },
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
            SchedulerKind::ZeroDivergence,
            SchedulerKind::ParBs,
            SchedulerKind::AtlasLite,
            SchedulerKind::WgShared,
        ] {
            let r = run(bench, kind, 11);
            assert!(r.finished, "{bench}/{kind:?} did not finish");
            assert!(r.instructions > 0);
            assert!(r.loads > 0);
        }
    }
}

#[test]
fn identical_work_across_schedulers() {
    // Every scheduler must retire the same kernel: equal instruction and
    // load counts, only timing differs.
    let a = run("sssp", SchedulerKind::Gmc, 5);
    let b = run("sssp", SchedulerKind::WgW, 5);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.divergent_loads, b.divergent_loads);
}

#[test]
fn deterministic_repeatability() {
    let a = run("cfd", SchedulerKind::WgBw, 9);
    let b = run("cfd", SchedulerKind::WgBw, 9);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dram_reads, b.dram_reads);
    assert_eq!(a.dram_writes, b.dram_writes);
    assert_eq!(a.avg_dram_gap, b.avg_dram_gap);
}

#[test]
fn zero_divergence_dominates_baseline() {
    // The Fig. 4 ideal must never lose to the baseline on the same kernel.
    for bench in ["bfs", "spmv"] {
        let base = run(bench, SchedulerKind::Gmc, 3);
        let zd = run(bench, SchedulerKind::ZeroDivergence, 3);
        assert!(
            zd.cycles <= base.cycles + base.cycles / 50,
            "{bench}: zero-div {} vs base {}",
            zd.cycles,
            base.cycles
        );
        assert!(zd.avg_dram_gap <= base.avg_dram_gap);
    }
}

#[test]
fn conservation_reads_never_exceed_issued_lines() {
    let r = run("kmeans", SchedulerKind::Gmc, 13);
    // DRAM reads <= memory requests issued (caches only absorb).
    let issued: u64 = (r.avg_reqs_per_load * r.loads as f64) as u64 + r.loads;
    assert!(
        r.dram_reads <= issued,
        "DRAM reads {} vs issued bound {}",
        r.dram_reads,
        issued
    );
}

#[test]
fn writes_reach_dram_for_write_heavy_kernels() {
    // Needs Small scale: at Tiny the touched set fits in the L2 and dirty
    // lines are never evicted (which is itself correct behaviour).
    let kernel = benchmark("nw", Scale::Small, 17).generate();
    let r = Simulator::new(SimConfig::default(), &kernel).run();
    assert!(
        r.dram_writes > 0,
        "write-heavy kernel must generate write-backs"
    );
    // Short runs leave many dirty lines resident in the L2 (write intensity
    // approaches its steady-state Fig. 12 level only at Full scale), so the
    // check here is comparative: nw must out-write spmv.
    let spmv = Simulator::new(
        SimConfig::default(),
        &benchmark("spmv", Scale::Small, 17).generate(),
    )
    .run();
    assert!(
        r.write_intensity > spmv.write_intensity,
        "nw {} vs spmv {}",
        r.write_intensity,
        spmv.write_intensity
    );
}

#[test]
fn effective_latency_exceeds_unloaded_pipeline() {
    // Sanity: no load can complete faster than the fixed pipeline floor
    // (two crossbar traversals + L2 lookup + DRAM access).
    let cfg = SimConfig::default();
    let floor = (2 * cfg.gpu.xbar_latency + cfg.gpu.l2_slice.latency) as f64;
    let r = run("bh", SchedulerKind::Gmc, 23);
    assert!(
        r.avg_effective_latency > floor,
        "eff {} vs floor {}",
        r.avg_effective_latency,
        floor
    );
}

#[test]
fn single_channel_configuration_works() {
    let kernel = benchmark("bfs", Scale::Tiny, 29).generate();
    let mut cfg = SimConfig::default().with_scheduler(SchedulerKind::WgW);
    cfg.mem.num_channels = 1;
    let r = Simulator::new(cfg, &kernel).run();
    assert!(r.finished);
    assert!(r.avg_channels_touched <= 1.0 + 1e-9);
}

#[test]
fn small_scale_regulars_are_fast_and_coalesced() {
    for bench in ["bp", "hotspot"] {
        let r = run(bench, SchedulerKind::Gmc, 31);
        assert!(r.finished);
        assert!(
            r.divergent_frac() < 0.15,
            "{bench} divergent {}",
            r.divergent_frac()
        );
        assert!(r.avg_reqs_per_load < 1.6, "{bench}");
    }
}

#[test]
fn instruction_budget_stops_early() {
    let kernel = benchmark("spmv", Scale::Tiny, 37).generate();
    let total = kernel.total_instructions();
    let mut cfg = SimConfig::default();
    cfg.instruction_limit = Some(total / 2);
    let r = Simulator::new(cfg, &kernel).run();
    assert!(r.finished);
    assert!(r.instructions >= total / 2);
    assert!(r.instructions < total);
}

#[test]
fn coordination_network_only_used_by_wgm_family() {
    // WG (single-controller) and WG-M (coordinated) on a multi-channel
    // kernel: both finish; the coordinated one must apply caps.
    let kernel = benchmark("sssp", Scale::Tiny, 41).generate();
    let cfg = SimConfig::default();
    let wg = Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Wg), &kernel).run();
    let wgm = Simulator::new(cfg.with_scheduler(SchedulerKind::WgM), &kernel).run();
    assert_eq!(wg.policy_counters[3], 0, "WG must not coordinate");
    assert!(wgm.policy_counters[3] > 0, "WG-M must coordinate");
}

#[test]
fn bank_permutation_spreads_traffic() {
    let mapper = ldsim::types::addr::AddressMapper::new(&MemConfig::default(), 128);
    // Row-strided walk: the permutation hash must use many banks.
    let banks: std::collections::HashSet<u8> =
        (0..256u64).map(|i| mapper.decode(i << 18).bank.0).collect();
    assert!(banks.len() >= 12, "bank hash too weak: {}", banks.len());
}
