//! Tier-1 promotion of the `calibration` binary's paper-range assertions
//! (DESIGN.md §8.4): the irregular suite's aggregate memory behaviour
//! under the GMC baseline must stay inside the bands the paper reports,
//! or `cargo test` fails — not just the standalone bin.
//!
//! Bands match the `calibration` figure spec exactly; `tests/repro.rs`
//! already proves that spec's render passes at this scale/seed, so these
//! direct assertions can never be stricter than what `repro` enforces.

use ldsim::system::runner::irregular_names;
use ldsim::system::sweep::{run_sweep, Cell, SweepConfig};
use ldsim::types::stats::mean;
use ldsim::types::SchedulerKind;
use ldsim::workloads::Scale;

fn within(name: &str, got: f64, lo: f64, hi: f64) {
    assert!(
        got >= lo && got <= hi,
        "{name}: {got:.3} outside the paper band [{lo}, {hi}]"
    );
}

#[test]
fn irregular_suite_matches_paper_characteristics() {
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .map(|&b| Cell::new(b, Scale::Tiny, 1, SchedulerKind::Gmc))
        .collect();
    let (store, _) = run_sweep(&cells, &SweepConfig::default());

    let (mut df, mut rpl, mut ch, mut sr, mut bk) = (vec![], vec![], vec![], vec![], vec![]);
    for c in &cells {
        let r = store.get(c);
        df.push(r.divergent_frac());
        rpl.push(r.avg_reqs_per_load);
        ch.push(r.avg_channels_touched);
        sr.push(r.same_row_frac);
        bk.push(r.avg_banks_touched);
    }
    // Fig. 2: 56% divergent loads, 5.9 requests per load on average.
    within("divergent load fraction", mean(&df), 0.40, 0.72);
    within("requests per load", mean(&rpl), 3.0, 8.0);
    // Fig. 3: ~2.5 controllers, ~30% same-row, a few (ch,bank) pairs.
    within("controllers per warp", mean(&ch), 1.8, 3.3);
    within("same-row fraction", mean(&sr), 0.15, 0.45);
    within("(ch,bank) pairs per warp", mean(&bk), 2.0, 7.0);
}
