//! Golden regression tests: Small-scale metrics for representative
//! benchmarks must stay inside tolerance bands. These catch accidental
//! behavioural drift in any layer (generator, caches, controller, DRAM)
//! that the unit tests are too local to see.
//!
//! Bands are deliberately generous (±25-40% around values recorded at
//! calibration time) — they flag structural regressions, not noise.

use ldsim::prelude::*;

/// Golden runs execute with the protocol auditor armed: behavioural drift
/// AND protocol-legality drift both fail here.
fn run(bench: &str, kind: SchedulerKind) -> ldsim::system::RunResult {
    let kernel = benchmark(bench, Scale::Small, 1).generate();
    let cfg = SimConfig {
        instruction_limit: Some(kernel.total_instructions() * 7 / 10),
        ..SimConfig::default()
    }
    .with_scheduler(kind)
    .with_audit();
    let r = Simulator::new(cfg, &kernel).run();
    assert!(
        r.audit_commands > 0,
        "{bench}/{kind:?}: auditor saw nothing"
    );
    assert_eq!(
        r.audit_violations, 0,
        "{bench}/{kind:?}: DRAM protocol violations"
    );
    r
}

fn within(name: &str, got: f64, lo: f64, hi: f64) {
    assert!(
        got >= lo && got <= hi,
        "{name}: {got:.3} outside golden band [{lo:.3}, {hi:.3}]"
    );
}

#[test]
fn golden_spmv_gmc() {
    let r = run("spmv", SchedulerKind::Gmc);
    assert!(r.finished);
    within("divergent_frac", r.divergent_frac(), 0.5, 0.85);
    within("reqs_per_load", r.avg_reqs_per_load, 4.0, 8.0);
    within("channels", r.avg_channels_touched, 2.5, 4.2);
    within("bus_util", r.bw_utilization, 0.2, 0.75);
    within("row_hit_rate", r.row_hit_rate, 0.08, 0.45);
    within("eff_latency", r.avg_effective_latency, 250.0, 2500.0);
}

#[test]
fn golden_nw_write_path() {
    // Run nw to completion (not the 70% budget): write-backs only reach
    // DRAM once the L2 starts evicting dirty lines, late in the run.
    let kernel = benchmark("nw", Scale::Small, 1).generate();
    let cfg = SimConfig::default()
        .with_scheduler(SchedulerKind::WgW)
        .with_audit();
    let r = Simulator::new(cfg, &kernel).run();
    assert!(r.finished);
    assert_eq!(r.audit_violations, 0, "nw/WgW: DRAM protocol violations");
    within("write_intensity", r.write_intensity, 0.005, 0.5);
    assert!(r.dram_writes > 0);
    within("divergent_frac", r.divergent_frac(), 0.3, 0.65);
}

#[test]
fn golden_regular_bp() {
    let r = run("bp", SchedulerKind::Gmc);
    assert!(r.finished);
    within("divergent_frac", r.divergent_frac(), 0.0, 0.12);
    within("reqs_per_load", r.avg_reqs_per_load, 1.0, 1.5);
    within("row_hit_rate", r.row_hit_rate, 0.02, 0.8);
}

#[test]
fn golden_scheduler_orderings() {
    // Structural orderings that must never regress, whatever the tuning:
    for bench in ["bfs", "sssp"] {
        let gmc = run(bench, SchedulerKind::Gmc);
        let wafcfs = run(bench, SchedulerKind::Wafcfs);
        let zd = run(bench, SchedulerKind::ZeroDivergence);
        assert!(
            wafcfs.ipc() < gmc.ipc() * 1.02,
            "{bench}: WAFCFS must not beat GMC meaningfully"
        );
        assert!(
            zd.ipc() > gmc.ipc() * 0.99,
            "{bench}: the zero-divergence ideal must not lose to GMC"
        );
        assert!(
            zd.avg_dram_gap < gmc.avg_dram_gap * 0.8,
            "{bench}: zero-div must slash the divergence gap"
        );
        assert!(
            wafcfs.row_hit_rate <= gmc.row_hit_rate + 0.02,
            "{bench}: WAFCFS cannot create row locality"
        );
    }
}

#[test]
fn golden_power_scale() {
    // Six GDDR5 channels at moderate utilisation: total DRAM power must be
    // in the tens of watts, not milliwatts or kilowatts.
    let r = run("kmeans", SchedulerKind::Gmc);
    within("dram_power_w", r.dram_power_w, 5.0, 60.0);
}
