//! Property-style tests: seeded randomised loops over the core invariants
//! (the offline environment has no proptest, so cases are driven by the
//! workspace PRNG — failures print the seed/case needed to reproduce).
#![allow(clippy::field_reassign_with_default)]

use ldsim::gddr5::Channel;
use ldsim::types::addr::AddressMapper;
use ldsim::types::clock::ClockDomain;
use ldsim::types::config::{MemConfig, PagePolicy, SchedulerKind, SimConfig, TimingParams};
use ldsim::types::ids::BankId;
use ldsim::util::StdRng;

fn rand_f64(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Decoded fields always stay inside the configured geometry.
#[test]
fn decode_stays_in_bounds() {
    let m = AddressMapper::new(&MemConfig::default(), 128);
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for case in 0..512 {
        let addr = rng.gen_range(0u64..(1 << 40));
        let d = m.decode(addr);
        assert!((d.channel.0 as usize) < 6, "case {case}, addr {addr:#x}");
        assert!((d.bank.0 as usize) < 16, "case {case}, addr {addr:#x}");
        assert!(d.bank_group < 4, "case {case}, addr {addr:#x}");
        assert!(d.col < 16, "case {case}, addr {addr:#x}");
        assert!(d.row < 8192, "case {case}, addr {addr:#x}");
    }
}

/// Addresses within one 256B block always decode identically except for
/// the line bit of the column.
#[test]
fn block_locality() {
    let m = AddressMapper::new(&MemConfig::default(), 128);
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for case in 0..512 {
        let base = rng.gen_range(0u64..(1 << 32));
        let a = m.decode(base & !0xFF);
        let b = m.decode((base & !0xFF) | 0x80);
        assert_eq!(a.channel, b.channel, "case {case}, base {base:#x}");
        assert_eq!(a.bank, b.bank, "case {case}, base {base:#x}");
        assert_eq!(a.row, b.row, "case {case}, base {base:#x}");
        assert_eq!(a.col ^ 1, b.col, "case {case}, base {base:#x}");
    }
}

/// Every line returned by same_row_lines really shares (channel, bank,
/// row) with the probe address.
#[test]
fn same_row_lines_sound() {
    let m = AddressMapper::new(&MemConfig::default(), 128);
    let mut rng = StdRng::seed_from_u64(0x5A3E);
    for case in 0..256 {
        let addr = rng.gen_range(0u64..(1 << 34));
        let d = m.decode(addr);
        for a in m.same_row_lines(addr) {
            let e = m.decode(a);
            assert!(e.same_row(&d), "case {case}, addr {addr:#x}");
        }
    }
}

/// The DRAM channel never deadlocks and never violates legality when a
/// greedy driver issues random-but-legal traffic: every request stream
/// eventually completes, data-bus busy time matches the column count, and
/// the independent protocol auditor sees every command and zero
/// violations.
#[test]
fn channel_serves_random_traffic_audit_clean() {
    let mem = MemConfig::default();
    let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..128 {
        let mut ch = Channel::new(&mem, t);
        ch.enable_audit();
        let n_ops = rng.gen_range(1usize..60);
        let mut served = 0u64;
        let mut now = 0u64;
        for _ in 0..n_ops {
            let bank = BankId(rng.gen_range(0u8..16));
            let row = rng.gen_range(0u32..32);
            let is_write = rng.gen_bool(0.5);
            // Close-if-needed, open, access — each step waits for legality.
            if ch.bank(bank).open_row() != Some(row) {
                if ch.bank(bank).is_open() {
                    while !ch.can_pre(bank, now) {
                        now += 1;
                    }
                    ch.issue_pre(bank, now);
                    now += 1;
                }
                while !ch.can_act(bank, now) {
                    now += 1;
                }
                ch.issue_act(bank, row, now);
                now += 1;
            }
            if is_write {
                while !ch.can_write(bank, now) {
                    now += 1;
                }
                ch.issue_write(bank, now);
            } else {
                while !ch.can_read(bank, now) {
                    now += 1;
                }
                ch.issue_read(bank, now);
            }
            now += 1;
            served += 1;
            // Liveness bound: no single access can take longer than a few
            // tRC windows under a single-stream driver.
            assert!(
                now < 1_000 + served * (t.t_rc + t.t_faw),
                "case {case}: stalled at {now}"
            );
        }
        assert_eq!(ch.stats.reads + ch.stats.writes, served, "case {case}");
        assert_eq!(
            ch.stats.data_bus_busy,
            served * t.t_burst * mem.bursts_per_access,
            "case {case}"
        );
        assert!(ch.audit_observed() >= served, "case {case}");
        assert_eq!(
            ch.audit_violation_count(),
            0,
            "case {case}: {:?}",
            ch.audit_violations().unwrap()
        );
    }
}

/// MERB tables are monotone non-increasing in bank count for any
/// plausible timing, and never exceed the 5-bit counter limit.
#[test]
fn merb_monotone() {
    let mut rng = StdRng::seed_from_u64(0x3E2B);
    for case in 0..128 {
        let mut tp = TimingParams::default();
        tp.t_rp_ns = rand_f64(&mut rng, 8.0, 20.0);
        tp.t_rcd_ns = rand_f64(&mut rng, 8.0, 20.0);
        tp.t_rtp_ns = rand_f64(&mut rng, 1.0, 4.0);
        tp.t_faw_ns = rand_f64(&mut rng, 15.0, 40.0);
        tp.t_rrd_ns = rand_f64(&mut rng, 3.0, 10.0);
        let m = ldsim::gddr5::MerbTable::from_timing(&tp, ClockDomain::GDDR5, 16);
        for b in 1..16 {
            assert!(m.get(b) >= m.get(b + 1), "case {case}, banks {b}");
            assert!(m.get(b) <= 31, "case {case}, banks {b}");
        }
    }
}

/// Conservative-epoch lookahead stays sound under randomized timings.
///
/// The multi-cycle epoch free-run (DESIGN.md §18) trusts every component's
/// `next_event(now)` to never exceed its actual next state change — that is
/// what licenses skipping locally-idle stretches inside a window. Sample
/// random legal timing configs, with the refresh interval shrunk far below
/// its datasheet value so refresh edges land *inside* epoch windows, and
/// demand that a threaded epoch run stays bit-exact (every counter, every
/// histogram bucket, the FNV trace hash) with the serial per-cycle loop,
/// protocol auditor armed. An optimistic `next_event` anywhere — bank FSM,
/// refresh scheduler, controller queues, L2 latency pipe — diverges the
/// two runs or trips a debug assertion.
#[test]
fn epoch_lookahead_sound_under_random_timings() {
    use ldsim::system::Simulator;
    use ldsim::workloads::{benchmark, Scale};

    let mut rng = StdRng::seed_from_u64(0xE90C);
    let cases = if cfg!(debug_assertions) { 3 } else { 8 };
    for case in 0..cases {
        let mut tp = TimingParams::default();
        // Independent draws, with the row-cycle chain kept legal by
        // construction: tRAS covers open-to-restore, tRC = tRAS + tRP.
        tp.t_rcd_ns = rand_f64(&mut rng, 8.0, 18.0);
        tp.t_rp_ns = rand_f64(&mut rng, 8.0, 18.0);
        tp.t_cas_ns = rand_f64(&mut rng, 8.0, 18.0);
        tp.t_rtp_ns = rand_f64(&mut rng, 1.0, 4.0);
        tp.t_wr_ns = rand_f64(&mut rng, 8.0, 16.0);
        tp.t_wtr_ns = rand_f64(&mut rng, 2.0, 8.0);
        tp.t_rrd_ns = rand_f64(&mut rng, 3.0, 9.0);
        tp.t_faw_ns = rand_f64(&mut rng, 15.0, 40.0);
        tp.t_ras_ns = tp.t_rcd_ns + tp.t_rtp_ns + rand_f64(&mut rng, 4.0, 12.0);
        tp.t_rc_ns = tp.t_ras_ns + tp.t_rp_ns;
        // Refresh every few hundred ns instead of 1.9 µs: dozens of
        // refresh edges per run, many of them mid-window.
        tp.t_refi_ns = rand_f64(&mut rng, 200.0, 900.0);
        tp.t_rfc_ns = rand_f64(&mut rng, 60.0, 140.0);

        let (bench, kind) = if case % 2 == 0 {
            ("bfs", SchedulerKind::Gmc)
        } else {
            ("spmv", SchedulerKind::WgW)
        };
        let mut cfg = SimConfig::default()
            .with_scheduler(kind)
            .with_audit()
            .with_trace()
            .with_hist();
        cfg.mem.timing = tp;
        let kernel = benchmark(bench, Scale::Tiny, 90 + case as u64).generate();

        let (serial, serial_trace) =
            Simulator::new(cfg.clone().with_sim_threads(1), &kernel).run_traced();
        assert!(serial.finished, "case {case}: serial hit the cycle limit");
        assert_eq!(serial.audit_violations, 0, "case {case}: serial audit");

        let (epoch, epoch_trace) =
            Simulator::new(cfg.clone().with_sim_threads(2), &kernel).run_traced();
        assert_eq!(epoch, serial, "case {case} ({bench}/{kind:?}): diverged");
        assert_eq!(
            epoch_trace.as_ref().map(|t| t.stable_hash()),
            serial_trace.as_ref().map(|t| t.stable_hash()),
            "case {case} ({bench}/{kind:?}): trace hash diverged"
        );

        // The comparison is only evidence if epochs actually ran.
        let (_, stats) =
            Simulator::new(cfg.clone().with_sim_threads(2), &kernel).run_with_sync_stats();
        assert!(
            stats.windows > 0,
            "case {case}: no epoch windows opened — the property was not exercised"
        );
    }
}

/// Full-system command pressure never trips the auditor: every paper
/// scheduler, under both page policies, runs random small irregular
/// kernels violation-free.
#[test]
fn schedulers_and_page_policies_audit_clean() {
    use ldsim::system::Simulator;
    use ldsim::workloads::{benchmark, Scale};

    for (i, &kind) in ldsim::system::runner::PAPER_SCHEDULERS.iter().enumerate() {
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            let bench = if i % 2 == 0 { "bfs" } else { "spmv" };
            let kernel = benchmark(bench, Scale::Tiny, 40 + i as u64).generate();
            let mut cfg = SimConfig::default().with_scheduler(kind).with_audit();
            cfg.mem.page_policy = policy;
            let r = Simulator::new(cfg, &kernel).run();
            assert!(r.finished, "{kind:?}/{policy:?} hit the cycle limit");
            assert!(r.audit_commands > 0, "{kind:?}/{policy:?}: auditor idle");
            assert_eq!(
                r.audit_violations, 0,
                "{kind:?}/{policy:?}: protocol violations"
            );
            assert!(
                r.conserves_requests(),
                "{kind:?}/{policy:?}: {} requests vs {} responses",
                r.mem_read_requests,
                r.mem_read_responses
            );
        }
    }
}

mod scheduler_props {
    use ldsim::prelude::*;
    use ldsim::types::ids::LaneMask;
    use ldsim::types::kernel::{Instruction, KernelProgram, WarpProgram};
    use ldsim::util::StdRng;

    /// Build a random-but-valid kernel from a compact seed description.
    fn kernel_from(spec: &[(u8, u8)]) -> KernelProgram {
        let mut programs = vec![Vec::new(), Vec::new()];
        for (i, (pattern, n_mem)) in spec.iter().enumerate() {
            let mut insns = Vec::new();
            for j in 0..(*n_mem % 6 + 1) {
                insns.push(Instruction::Delay(20 + (*pattern as u32) * 7));
                let mut addrs = [0u64; 32];
                for (l, a) in addrs.iter_mut().enumerate() {
                    let cluster = l / (4 + (*pattern as usize % 4));
                    *a = ((i * 131 + j as usize * 17 + cluster * 29) as u64 % 4096) * 4096;
                }
                if pattern % 5 == 0 {
                    insns.push(Instruction::Store {
                        addrs: Box::new(addrs),
                        mask: LaneMask::ALL,
                    });
                } else {
                    insns.push(Instruction::Load {
                        addrs: Box::new(addrs),
                        mask: LaneMask::ALL,
                    });
                }
            }
            programs[i % 2].push(WarpProgram::new(insns));
        }
        KernelProgram {
            name: "prop".into(),
            programs,
        }
    }

    /// No scheduler loses or duplicates work: same retired instruction
    /// count for every policy on any kernel, and every run terminates.
    #[test]
    fn no_scheduler_loses_work() {
        let mut rng = StdRng::seed_from_u64(0x70D0);
        for case in 0..12 {
            let n = rng.gen_range(2usize..10);
            let spec: Vec<(u8, u8)> = (0..n)
                .map(|_| (rng.gen_range(0u8..8), rng.gen_range(0u8..8)))
                .collect();
            let kernel = kernel_from(&spec);
            let total = kernel.total_instructions();
            let mut counts = Vec::new();
            for k in [
                SchedulerKind::Fcfs,
                SchedulerKind::Gmc,
                SchedulerKind::Wafcfs,
                SchedulerKind::Wg,
                SchedulerKind::WgW,
                SchedulerKind::ZeroDivergence,
            ] {
                let mut cfg = SimConfig::default().with_scheduler(k);
                cfg.max_cycles = 3_000_000;
                let r = Simulator::new(cfg, &kernel).run();
                assert!(r.finished, "case {case}: {k:?} hit the cycle limit");
                assert_eq!(r.instructions, total, "case {case}: {k:?}");
                counts.push(r.loads);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "case {case}: load counts diverged: {counts:?}"
            );
        }
    }
}
