//! Property-based tests (proptest) over the core invariants.
#![allow(clippy::field_reassign_with_default)]

use ldsim::gddr5::Channel;
use ldsim::types::addr::AddressMapper;
use ldsim::types::clock::ClockDomain;
use ldsim::types::config::{MemConfig, TimingParams};
use ldsim::types::ids::BankId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decoded fields always stay inside the configured geometry.
    #[test]
    fn decode_stays_in_bounds(addr in 0u64..(1 << 40)) {
        let m = AddressMapper::new(&MemConfig::default(), 128);
        let d = m.decode(addr);
        prop_assert!((d.channel.0 as usize) < 6);
        prop_assert!((d.bank.0 as usize) < 16);
        prop_assert!(d.bank_group < 4);
        prop_assert!(d.col < 16);
        prop_assert!(d.row < 8192);
    }

    /// Addresses within one 256B block always decode identically except for
    /// the line bit of the column.
    #[test]
    fn block_locality(base in 0u64..(1 << 32)) {
        let m = AddressMapper::new(&MemConfig::default(), 128);
        let a = m.decode(base & !0xFF);
        let b = m.decode((base & !0xFF) | 0x80);
        prop_assert_eq!(a.channel, b.channel);
        prop_assert_eq!(a.bank, b.bank);
        prop_assert_eq!(a.row, b.row);
        prop_assert_eq!(a.col ^ 1, b.col);
    }

    /// Every line returned by same_row_lines really shares (channel, bank,
    /// row) with the probe address.
    #[test]
    fn same_row_lines_sound(addr in 0u64..(1 << 34)) {
        let m = AddressMapper::new(&MemConfig::default(), 128);
        let d = m.decode(addr);
        for a in m.same_row_lines(addr) {
            let e = m.decode(a);
            prop_assert!(e.same_row(&d));
        }
    }

    /// The DRAM channel never deadlocks and never violates legality when a
    /// greedy driver issues random-but-legal traffic: every request stream
    /// eventually completes and data-bus busy time matches the column count.
    #[test]
    fn channel_serves_random_traffic(
        ops in proptest::collection::vec((0u8..16, 0u32..32, prop::bool::ANY), 1..60)
    ) {
        let mem = MemConfig::default();
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        let mut ch = Channel::new(&mem, t);
        let mut served = 0u64;
        let mut now = 0u64;
        for (bank, row, is_write) in ops.iter().copied() {
            let bank = BankId(bank);
            // Close-if-needed, open, access — each step waits for legality.
            if ch.bank(bank).open_row() != Some(row) {
                if ch.bank(bank).is_open() {
                    while !ch.can_pre(bank, now) { now += 1; }
                    ch.issue_pre(bank, now);
                    now += 1;
                }
                while !ch.can_act(bank, now) { now += 1; }
                ch.issue_act(bank, row, now);
                now += 1;
            }
            if is_write {
                while !ch.can_write(bank, now) { now += 1; }
                ch.issue_write(bank, now);
            } else {
                while !ch.can_read(bank, now) { now += 1; }
                ch.issue_read(bank, now);
            }
            now += 1;
            served += 1;
            // Liveness bound: no single access can take longer than a few
            // tRC windows under a single-stream driver.
            prop_assert!(now < 1_000 + served * (t.t_rc + t.t_faw), "stalled at {now}");
        }
        prop_assert_eq!(ch.stats.reads + ch.stats.writes, served);
        prop_assert_eq!(
            ch.stats.data_bus_busy,
            served * t.t_burst * mem.bursts_per_access
        );
    }

    /// MERB tables are monotone non-increasing in bank count for any
    /// plausible timing, and never exceed the 5-bit counter limit.
    #[test]
    fn merb_monotone(
        rp in 8.0f64..20.0,
        rcd in 8.0f64..20.0,
        rtp in 1.0f64..4.0,
        faw in 15.0f64..40.0,
        rrd in 3.0f64..10.0,
    ) {
        let mut tp = TimingParams::default();
        tp.t_rp_ns = rp;
        tp.t_rcd_ns = rcd;
        tp.t_rtp_ns = rtp;
        tp.t_faw_ns = faw;
        tp.t_rrd_ns = rrd;
        let m = ldsim::gddr5::MerbTable::from_timing(&tp, ClockDomain::GDDR5, 16);
        for b in 1..16 {
            prop_assert!(m.get(b) >= m.get(b + 1));
            prop_assert!(m.get(b) <= 31);
        }
    }
}

mod scheduler_props {
    use super::*;
    use ldsim::prelude::*;
    use ldsim::types::ids::LaneMask;
    use ldsim::types::kernel::{Instruction, KernelProgram, WarpProgram};

    /// Build a random-but-valid kernel from a compact seed description.
    fn kernel_from(spec: &[(u8, u8)]) -> KernelProgram {
        let mut programs = vec![Vec::new(), Vec::new()];
        for (i, (pattern, n_mem)) in spec.iter().enumerate() {
            let mut insns = Vec::new();
            for j in 0..(*n_mem % 6 + 1) {
                insns.push(Instruction::Delay(20 + (*pattern as u32) * 7));
                let mut addrs = [0u64; 32];
                for (l, a) in addrs.iter_mut().enumerate() {
                    let cluster = l / (4 + (*pattern as usize % 4));
                    *a = ((i * 131 + j as usize * 17 + cluster * 29) as u64 % 4096) * 4096;
                }
                if pattern % 5 == 0 {
                    insns.push(Instruction::Store {
                        addrs: Box::new(addrs),
                        mask: LaneMask::ALL,
                    });
                } else {
                    insns.push(Instruction::Load {
                        addrs: Box::new(addrs),
                        mask: LaneMask::ALL,
                    });
                }
            }
            programs[i % 2].push(WarpProgram::new(insns));
        }
        KernelProgram {
            name: "prop".into(),
            programs,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// No scheduler loses or duplicates work: same retired instruction
        /// count for every policy on any kernel, and every run terminates.
        #[test]
        fn no_scheduler_loses_work(spec in proptest::collection::vec((0u8..8, 0u8..8), 2..10)) {
            let kernel = kernel_from(&spec);
            let total = kernel.total_instructions();
            let mut counts = Vec::new();
            for k in [
                SchedulerKind::Fcfs,
                SchedulerKind::Gmc,
                SchedulerKind::Wafcfs,
                SchedulerKind::Wg,
                SchedulerKind::WgW,
                SchedulerKind::ZeroDivergence,
            ] {
                let mut cfg = SimConfig::default().with_scheduler(k);
                cfg.max_cycles = 3_000_000;
                let r = Simulator::new(cfg, &kernel).run();
                prop_assert!(r.finished, "{k:?} hit the cycle limit");
                prop_assert_eq!(r.instructions, total);
                counts.push(r.loads);
            }
            prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
