//! Event-horizon fast-forward bit-exactness ladder.
//!
//! The skipping main loop (the default) must produce the *identical*
//! [`RunResult`] — every counter, histogram moment and latency statistic —
//! and the identical FNV-1a trace hash as the cycle-by-cycle reference
//! loop, for every scheduler in the audited ladder on the full irregular
//! suite. Fast-forwarding is a pure wall-clock optimisation; any divergence
//! here is a simulation-correctness bug, not a performance regression.

use ldsim::prelude::*;
use ldsim::util::parallel_map;

/// Same ladder as the conformance suite: every scheduler the paper
/// evaluates, plus the baselines it compares against.
const LADDER: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
    SchedulerKind::Wafcfs,
    SchedulerKind::Sbwas { alpha_q: 2 },
];

/// Run one benchmark × scheduler pair at `scale` with fast-forward on and
/// off, and demand bit-exact results and traces. Histograms stay armed, so
/// every recorded distribution — including the sampled read-queue depth,
/// which the skip loop replays via bulk adds — must also match bucket for
/// bucket (`RunResult` equality covers `hists`).
fn assert_bitexact(bench: &str, kind: SchedulerKind, scale: Scale, seed: u64) {
    let kernel = benchmark(bench, scale, seed).generate();
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_trace()
        .with_hist();
    let (fast, fast_trace) = Simulator::new(cfg.clone(), &kernel).run_traced();
    let (slow, slow_trace) = Simulator::new(cfg.with_fast_forward(false), &kernel).run_traced();
    assert!(fast.finished, "{bench}/{kind:?} did not finish");
    assert_eq!(
        fast, slow,
        "{bench}/{kind:?} at {scale:?}: fast-forward RunResult diverged from the reference loop"
    );
    assert_eq!(
        fast_trace.as_ref().map(|t| t.stable_hash()),
        slow_trace.as_ref().map(|t| t.stable_hash()),
        "{bench}/{kind:?} at {scale:?}: trace hash diverged"
    );
}

fn ladder_pairs() -> Vec<(&'static str, SchedulerKind)> {
    let mut pairs = Vec::new();
    for bench in ldsim::system::runner::irregular_names() {
        for &kind in LADDER {
            pairs.push((bench, kind));
        }
    }
    pairs
}

#[test]
fn bitexact_ladder_tiny() {
    parallel_map(ladder_pairs(), |(bench, kind)| {
        assert_bitexact(bench, kind, Scale::Tiny, 11);
    });
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "Small-scale ladder is slow without optimisation; run under --release"
)]
fn bitexact_ladder_small() {
    parallel_map(ladder_pairs(), |(bench, kind)| {
        assert_bitexact(bench, kind, Scale::Small, 11);
    });
}
