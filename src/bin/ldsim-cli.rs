//! `ldsim-cli` — run any benchmark under any scheduler from the command
//! line and inspect the result (optionally exporting a per-load trace).
//!
//! ```console
//! $ ldsim-cli --bench spmv --scheduler wg-w --scale small
//! $ ldsim-cli --bench bfs --scheduler gmc --trace /tmp/bfs.csv
//! $ ldsim-cli --list
//! ```

use ldsim::prelude::*;
use ldsim::system::table::Table;
use ldsim::workloads::{IRREGULAR, REGULAR};
use std::io::Write;

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "fcfs" => SchedulerKind::Fcfs,
        "fr-fcfs" | "frfcfs" => SchedulerKind::FrFcfs,
        "gmc" => SchedulerKind::Gmc,
        "wafcfs" => SchedulerKind::Wafcfs,
        "sbwas" => SchedulerKind::Sbwas { alpha_q: 2 },
        "sbwas-25" => SchedulerKind::Sbwas { alpha_q: 1 },
        "sbwas-75" => SchedulerKind::Sbwas { alpha_q: 3 },
        "wg" => SchedulerKind::Wg,
        "wg-m" | "wgm" => SchedulerKind::WgM,
        "wg-bw" | "wgbw" => SchedulerKind::WgBw,
        "wg-w" | "wgw" => SchedulerKind::WgW,
        "zero-div" | "zerodiv" => SchedulerKind::ZeroDivergence,
        "par-bs" | "parbs" => SchedulerKind::ParBs,
        "atlas" => SchedulerKind::AtlasLite,
        "wg-s" | "wgs" => SchedulerKind::WgShared,
        _ => return None,
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: ldsim-cli [--list] --bench <name> [--scheduler <name>] \
         [--scale tiny|small|full] [--seed N] [--trace <csv-path>]"
    );
    eprintln!("schedulers: fcfs fr-fcfs gmc wafcfs sbwas[-25|-75] wg wg-m wg-bw wg-w wg-s zero-div par-bs atlas");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = None;
    let mut sched = SchedulerKind::WgW;
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut trace: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("irregular (Table III):");
                for p in IRREGULAR {
                    println!("  {:14} {}", p.name, p.suite);
                }
                println!("regular (Section VI-A):");
                for p in REGULAR {
                    println!("  {:14} {}", p.name, p.suite);
                }
                return;
            }
            "--bench" => {
                i += 1;
                bench = args.get(i).cloned();
            }
            "--scheduler" => {
                i += 1;
                sched = args
                    .get(i)
                    .and_then(|s| parse_scheduler(s))
                    .unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(|s| s.as_str()) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace = args.get(i).cloned();
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(bench) = bench else { usage() };

    let kernel = benchmark(&bench, scale, seed).generate();
    let mut cfg = SimConfig::default().with_scheduler(sched);
    cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
    let (r, records) = Simulator::new(cfg, &kernel).run_with_records();

    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["benchmark".into(), r.benchmark.clone()]);
    t.row(vec!["scheduler".into(), r.scheduler.clone()]);
    t.row(vec!["cycles".into(), r.cycles.to_string()]);
    t.row(vec!["instructions".into(), r.instructions.to_string()]);
    t.row(vec!["IPC".into(), format!("{:.3}", r.ipc())]);
    t.row(vec!["loads".into(), r.loads.to_string()]);
    t.row(vec![
        "divergent loads".into(),
        format!("{:.1}%", r.divergent_frac() * 100.0),
    ]);
    t.row(vec![
        "requests / load".into(),
        format!("{:.2}", r.avg_reqs_per_load),
    ]);
    t.row(vec![
        "effective latency (cyc)".into(),
        format!("{:.0}", r.avg_effective_latency),
    ]);
    t.row(vec![
        "divergence gap (cyc)".into(),
        format!("{:.0}", r.avg_dram_gap),
    ]);
    t.row(vec![
        "controllers / warp".into(),
        format!("{:.2}", r.avg_channels_touched),
    ]);
    t.row(vec![
        "bus utilisation".into(),
        format!("{:.1}%", r.bw_utilization * 100.0),
    ]);
    t.row(vec![
        "row-hit rate".into(),
        format!("{:.1}%", r.row_hit_rate * 100.0),
    ]);
    t.row(vec![
        "write intensity".into(),
        format!("{:.1}%", r.write_intensity * 100.0),
    ]);
    t.row(vec![
        "DRAM power (W)".into(),
        format!("{:.1}", r.dram_power_w),
    ]);
    t.row(vec![
        "L1 / L2 hit rate".into(),
        format!(
            "{:.1}% / {:.1}%",
            r.l1_hit_rate * 100.0,
            r.l2_hit_rate * 100.0
        ),
    ]);
    t.print();

    if let Some(path) = trace {
        let mut f = std::fs::File::create(&path).expect("create trace file");
        writeln!(
            f,
            "sm,warp,lanes,coalesced,mem_reqs,dram_responses,issue,complete,first_dram,last_dram,channels,banks,same_row"
        )
        .unwrap();
        for rec in &records {
            writeln!(
                f,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                rec.warp.sm.0,
                rec.warp.warp.0,
                rec.active_lanes,
                rec.coalesced,
                rec.mem_reqs,
                rec.dram_responses,
                rec.issue,
                rec.complete,
                rec.first_dram,
                rec.last_dram,
                rec.channels_touched,
                rec.banks_touched,
                rec.same_row_reqs
            )
            .unwrap();
        }
        println!("\nwrote {} load records to {path}", records.len());
    }
}
