//! `ldsim-cli` — run any benchmark under any scheduler from the command
//! line and inspect the result (optionally exporting a per-load trace).
//!
//! ```console
//! $ ldsim-cli --bench spmv --scheduler wg-w --scale small
//! $ ldsim-cli --bench bfs --scheduler gmc --trace /tmp/bfs.csv
//! $ ldsim-cli --list
//! ```

use ldsim::prelude::*;
use ldsim::system::table::Table;
use ldsim::workloads::{IRREGULAR, REGULAR};
use std::io::Write;

fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "fcfs" => SchedulerKind::Fcfs,
        "fr-fcfs" | "frfcfs" => SchedulerKind::FrFcfs,
        "gmc" => SchedulerKind::Gmc,
        "wafcfs" => SchedulerKind::Wafcfs,
        "sbwas" => SchedulerKind::Sbwas { alpha_q: 2 },
        "sbwas-25" => SchedulerKind::Sbwas { alpha_q: 1 },
        "sbwas-75" => SchedulerKind::Sbwas { alpha_q: 3 },
        "wg" => SchedulerKind::Wg,
        "wg-m" | "wgm" => SchedulerKind::WgM,
        "wg-bw" | "wgbw" => SchedulerKind::WgBw,
        "wg-w" | "wgw" => SchedulerKind::WgW,
        "zero-div" | "zerodiv" => SchedulerKind::ZeroDivergence,
        "par-bs" | "parbs" => SchedulerKind::ParBs,
        "atlas" => SchedulerKind::AtlasLite,
        "wg-s" | "wgs" => SchedulerKind::WgShared,
        _ => return None,
    })
}

/// Named one-line error + usage + nonzero exit: a typo'd flag must say
/// which flag went wrong, not just dump the usage text.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ldsim-cli [--list] --bench <name> [--scheduler <name>] \
         [--scale tiny|small|full] [--seed N] [--threads N] [--trace <csv-path>]"
    );
    eprintln!("schedulers: fcfs fr-fcfs gmc wafcfs sbwas[-25|-75] wg wg-m wg-bw wg-w wg-s zero-div par-bs atlas");
    std::process::exit(2)
}

/// The value following flag `args[i]`, or a named failure.
fn value<'a>(args: &'a [String], i: usize, flag: &str) -> &'a str {
    match args.get(i + 1) {
        Some(v) => v.as_str(),
        None => fail(&format!("{flag} needs a value but none followed")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = None;
    let mut sched = SchedulerKind::WgW;
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut trace: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                println!("irregular (Table III):");
                for p in IRREGULAR {
                    println!("  {:14} {}", p.name, p.suite);
                }
                println!("regular (Section VI-A):");
                for p in REGULAR {
                    println!("  {:14} {}", p.name, p.suite);
                }
                return;
            }
            "--bench" => {
                bench = Some(value(&args, i, "--bench").to_string());
                i += 1;
            }
            "--scheduler" => {
                let v = value(&args, i, "--scheduler");
                sched = parse_scheduler(v)
                    .unwrap_or_else(|| fail(&format!("--scheduler: unknown scheduler '{v}'")));
                i += 1;
            }
            "--scale" => {
                scale = match value(&args, i, "--scale") {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => fail(&format!("--scale needs tiny|small|full, got '{other}'")),
                };
                i += 1;
            }
            "--seed" => {
                let v = value(&args, i, "--seed");
                seed = v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed needs a number, got '{v}'")));
                i += 1;
            }
            "--threads" => {
                let v = value(&args, i, "--threads");
                match v.trim().parse::<usize>() {
                    Ok(n) if n > 0 => ldsim::util::set_sim_threads(Some(n)),
                    _ => fail(&format!("--threads needs a positive integer, got '{v}'")),
                }
                i += 1;
            }
            "--trace" => {
                trace = Some(value(&args, i, "--trace").to_string());
                i += 1;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    let Some(bench) = bench else {
        fail("--bench is required (use --list to see the benchmark names)")
    };

    let kernel = benchmark(&bench, scale, seed).generate();
    let mut cfg = SimConfig::default().with_scheduler(sched);
    cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
    let (r, records) = Simulator::new(cfg, &kernel).run_with_records();

    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["benchmark".into(), r.benchmark.clone()]);
    t.row(vec!["scheduler".into(), r.scheduler.clone()]);
    t.row(vec!["cycles".into(), r.cycles.to_string()]);
    t.row(vec!["instructions".into(), r.instructions.to_string()]);
    t.row(vec!["IPC".into(), format!("{:.3}", r.ipc())]);
    t.row(vec!["loads".into(), r.loads.to_string()]);
    t.row(vec![
        "divergent loads".into(),
        format!("{:.1}%", r.divergent_frac() * 100.0),
    ]);
    t.row(vec![
        "requests / load".into(),
        format!("{:.2}", r.avg_reqs_per_load),
    ]);
    t.row(vec![
        "effective latency (cyc)".into(),
        format!("{:.0}", r.avg_effective_latency),
    ]);
    t.row(vec![
        "divergence gap (cyc)".into(),
        format!("{:.0}", r.avg_dram_gap),
    ]);
    t.row(vec![
        "controllers / warp".into(),
        format!("{:.2}", r.avg_channels_touched),
    ]);
    t.row(vec![
        "bus utilisation".into(),
        format!("{:.1}%", r.bw_utilization * 100.0),
    ]);
    t.row(vec![
        "row-hit rate".into(),
        format!("{:.1}%", r.row_hit_rate * 100.0),
    ]);
    t.row(vec![
        "write intensity".into(),
        format!("{:.1}%", r.write_intensity * 100.0),
    ]);
    t.row(vec![
        "DRAM power (W)".into(),
        format!("{:.1}", r.dram_power_w),
    ]);
    t.row(vec![
        "L1 / L2 hit rate".into(),
        format!(
            "{:.1}% / {:.1}%",
            r.l1_hit_rate * 100.0,
            r.l2_hit_rate * 100.0
        ),
    ]);
    t.print();

    if let Some(path) = trace {
        let mut f = std::fs::File::create(&path).expect("create trace file");
        writeln!(
            f,
            "sm,warp,lanes,coalesced,mem_reqs,dram_responses,issue,complete,first_dram,last_dram,channels,banks,same_row"
        )
        .unwrap();
        for rec in &records {
            writeln!(
                f,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                rec.warp.sm.0,
                rec.warp.warp.0,
                rec.active_lanes,
                rec.coalesced,
                rec.mem_reqs,
                rec.dram_responses,
                rec.issue,
                rec.complete,
                rec.first_dram,
                rec.last_dram,
                rec.channels_touched,
                rec.banks_touched,
                rec.same_row_reqs
            )
            .unwrap();
        }
        println!("\nwrote {} load records to {path}", records.len());
    }
}
