//! # ldsim — warp-aware DRAM scheduling for irregular GPGPU applications
//!
//! A full-system reproduction of *Chatterjee, O'Connor, Loh, Jayasena,
//! Balasubramonian — "Managing DRAM Latency Divergence in Irregular GPGPU
//! Applications", SC 2014*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — configuration (Table II defaults), addresses, requests,
//!   the kernel IR and statistics primitives,
//! * [`gddr5`] — the cycle-level GDDR5 device model (timing legality,
//!   bank groups, data bus, MERB table, power model),
//! * [`memctrl`] — the memory controller framework and the baseline
//!   schedulers (GMC, FCFS, FR-FCFS, WAFCFS, SBWAS, ideal models),
//! * [`warpsched`] — the paper's contribution: WG / WG-M / WG-Bw / WG-W,
//! * [`gpu`] — the SIMT core model, coalescer, caches and interconnect,
//! * [`workloads`] — synthetic benchmark generators calibrated to the
//!   paper's workload characteristics,
//! * [`system`] — the full-system simulator and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use ldsim::prelude::*;
//!
//! // A small irregular kernel on a scaled-down machine, GMC vs WG-W.
//! let scale = ldsim::workloads::Scale::Tiny;
//! let kernel = ldsim::workloads::benchmark("bfs", scale, 7).generate();
//! let mut cfg = SimConfig::default();
//! cfg.gpu.num_sms = kernel.programs.len();
//!
//! let base = Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Gmc), &kernel).run();
//! let wgw = Simulator::new(cfg.with_scheduler(SchedulerKind::WgW), &kernel).run();
//! assert!(base.finished && wgw.finished);
//! ```

pub use ldsim_gddr5 as gddr5;
pub use ldsim_gpu as gpu;
pub use ldsim_memctrl as memctrl;
pub use ldsim_system as system;
pub use ldsim_types as types;
pub use ldsim_util as util;
pub use ldsim_warpsched as warpsched;
pub use ldsim_workloads as workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use ldsim_system::{RunResult, Simulator};
    pub use ldsim_types::{
        GpuConfig, Instruction, KernelProgram, MemConfig, SchedulerKind, SimConfig, WarpProgram,
    };
    pub use ldsim_workloads::{benchmark, Scale};
}
