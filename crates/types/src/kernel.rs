//! The kernel instruction IR executed by the SIMT core model.
//!
//! The simulator is trace-driven: instead of functionally executing
//! PTX/SASS, each warp runs a small program of [`Instruction`]s produced by
//! `ldsim-workloads`. This keeps exactly the behaviour the paper studies —
//! per-warp lockstep blocking on divergent loads, inter-warp interleaving in
//! the memory system — while dropping functional ISA simulation (see
//! DESIGN.md substitution #1).

use crate::ids::LaneMask;

/// One warp-level instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// `n` back-to-back single-cycle ALU instruction groups. The warp is
    /// busy for `n` cycles and retires `n` instructions, occupying the SM's
    /// shared issue port throughout.
    Compute(u32),
    /// Warp-private latency: the warp is busy `n` cycles (scoreboard
    /// dependencies, SFU/texture latency, serialised control flow) and
    /// retires `n` instruction-equivalents, but holds the issue port for
    /// only one cycle — other warps keep issuing meanwhile.
    Delay(u32),
    /// A vector (gather) load: one byte address per lane. The warp blocks
    /// until every coalesced request is serviced.
    Load {
        addrs: Box<[u64; 32]>,
        mask: LaneMask,
    },
    /// A vector (scatter) store: fire-and-forget to the L2 (GPU stores are
    /// not on the critical path; Section II-C), but still generates the DRAM
    /// write traffic that the write-drain machinery manages.
    Store {
        addrs: Box<[u64; 32]>,
        mask: LaneMask,
    },
}

impl Instruction {
    /// Convenience constructor for a fully-active load.
    pub fn load(addrs: [u64; 32]) -> Self {
        Instruction::Load {
            addrs: Box::new(addrs),
            mask: LaneMask::ALL,
        }
    }

    /// Convenience constructor for a fully-active store.
    pub fn store(addrs: [u64; 32]) -> Self {
        Instruction::Store {
            addrs: Box::new(addrs),
            mask: LaneMask::ALL,
        }
    }

    /// Number of instructions this entry retires (for IPC accounting).
    pub fn retired_count(&self) -> u64 {
        match self {
            Instruction::Compute(n) | Instruction::Delay(n) => *n as u64,
            _ => 1,
        }
    }

    pub fn is_mem(&self) -> bool {
        !matches!(self, Instruction::Compute(_))
    }
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarpProgram {
    pub insns: Vec<Instruction>,
}

impl WarpProgram {
    pub fn new(insns: Vec<Instruction>) -> Self {
        Self { insns }
    }

    pub fn num_loads(&self) -> usize {
        self.insns
            .iter()
            .filter(|i| matches!(i, Instruction::Load { .. }))
            .count()
    }

    pub fn num_stores(&self) -> usize {
        self.insns
            .iter()
            .filter(|i| matches!(i, Instruction::Store { .. }))
            .count()
    }

    pub fn total_instructions(&self) -> u64 {
        self.insns.iter().map(|i| i.retired_count()).sum()
    }
}

/// A whole kernel: one program per (SM, warp slot). `programs[sm][warp]`.
#[derive(Debug, Clone, Default)]
pub struct KernelProgram {
    pub name: String,
    pub programs: Vec<Vec<WarpProgram>>,
}

impl KernelProgram {
    pub fn num_warps(&self) -> usize {
        self.programs.iter().map(|sm| sm.len()).sum()
    }

    pub fn total_instructions(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|sm| sm.iter())
            .map(|w| w.total_instructions())
            .sum()
    }

    pub fn total_loads(&self) -> usize {
        self.programs
            .iter()
            .flat_map(|sm| sm.iter())
            .map(|w| w.num_loads())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retired_counts() {
        assert_eq!(Instruction::Compute(7).retired_count(), 7);
        assert_eq!(Instruction::load([0; 32]).retired_count(), 1);
        assert!(Instruction::load([0; 32]).is_mem());
        assert!(!Instruction::Compute(1).is_mem());
    }

    #[test]
    fn program_counts() {
        let p = WarpProgram::new(vec![
            Instruction::Compute(10),
            Instruction::load([0; 32]),
            Instruction::store([0; 32]),
            Instruction::load([128; 32]),
        ]);
        assert_eq!(p.num_loads(), 2);
        assert_eq!(p.num_stores(), 1);
        assert_eq!(p.total_instructions(), 13);
    }

    #[test]
    fn kernel_aggregation() {
        let w = WarpProgram::new(vec![Instruction::Compute(5), Instruction::load([0; 32])]);
        let k = KernelProgram {
            name: "t".into(),
            programs: vec![vec![w.clone(), w.clone()], vec![w]],
        };
        assert_eq!(k.num_warps(), 3);
        assert_eq!(k.total_instructions(), 18);
        assert_eq!(k.total_loads(), 3);
    }
}
