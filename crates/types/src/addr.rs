//! GPU physical address mapping (Section II-C of the paper).
//!
//! The mapping implements all three properties the paper describes:
//!
//! 1. consecutive cache lines map to the same row of the same bank (within a
//!    256 B block) to promote row-buffer locality;
//! 2. blocks of consecutive cache lines are interleaved across channels at
//!    256 B granularity, and across banks as the per-channel stream advances;
//! 3. two anti-camping hashes:
//!    * the channel is `{addr[47:11] : (addr[10:8] XOR addr[13:11])} % 6`
//!      (verbatim from the paper),
//!    * the bank index is XOR-ed with low-order row bits (the
//!      permutation-based interleaving of Zhang et al. \[53\]).
//!
//! Decomposition pipeline for a byte address (shown for the GDDR5 Table II
//! geometry; every shift below is derived from the device config, so the
//! same pipeline serves the GDDR3/GDDR6/HBM presets):
//!
//! ```text
//! b = addr >> 8                      256 B block index
//! channel = {b[44:3] : (b[2:0] XOR b[5:3])} % C     (paper's XOR hash)
//! l = b / C                          per-channel local block index
//! col  = { l[2:0], addr[7] }         16 x 128 B lines per 2 KB row
//! bank = (l[6:3] XOR l[13:10]) & 15  permutation-based bank hash
//! row  = l[19:7]                     8192 rows per bank
//! ```
//!
//! Generalised, with `R = row_bytes/256` blocks per row and `B` banks:
//! `col = { l mod R , sub-block line }`, `bank = (l >> log2 R) XOR
//! (l >> (log2 R + log2 B + log2 R)) mod B`, `row = (l >> (log2 R +
//! log2 B)) mod 2^13`. The 256 B channel-interleave block and the 13 kept
//! row bits are fixed across presets; everything else is config.
//!
//! The geometry round-trips through a small spec DSL
//! ([`AddressMapper::spec`] / [`AddressMapper::from_spec`]), e.g. the
//! default machine is `line=128:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13`.
//!
//! Because the channel index is a hash-plus-modulo, the map is not
//! injective per channel (distinct blocks can alias onto the same
//! (channel, bank, row, col)); a timing model only needs the forward map to
//! be consistent and well distributed, which the tests below check.

use crate::config::MemConfig;
use crate::ids::{BankId, ChannelId};

/// Channel-interleave granularity (fixed across presets, per the paper).
const BLOCK_SHIFT: u32 = 8;
/// Number of row-address bits kept (8192 rows per bank on Table II).
const ROW_BITS: u32 = 13;

/// A fully decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    pub channel: ChannelId,
    pub bank: BankId,
    /// Bank group index within the channel.
    pub bank_group: u8,
    pub row: u32,
    /// Column address in cache-line units within the row.
    pub col: u16,
}

/// Decodes byte addresses into (channel, bank, row, column) using the
/// paper's hashing scheme, parameterised by the device geometry in
/// [`MemConfig`].
///
/// ```
/// use ldsim_types::addr::AddressMapper;
/// use ldsim_types::config::MemConfig;
///
/// let m = AddressMapper::new(&MemConfig::default(), 128);
/// let a = m.decode(0x1000_0000);
/// let b = m.decode(0x1000_0080); // next line, same 256 B block
/// assert_eq!(a.channel, b.channel);
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row, b.row);      // consecutive lines share a DRAM row
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    num_channels: u64,
    num_banks: u64,
    banks_per_group: u64,
    /// log2(line size)
    line_shift: u32,
    /// log2(lines per 256 B interleave block)
    sub_bits: u32,
    /// log2(256 B blocks per DRAM row)
    bank_shift: u32,
    /// log2(banks per channel)
    bank_bits: u32,
    /// number of row bits kept
    row_mask: u32,
}

impl AddressMapper {
    pub fn new(mem: &MemConfig, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two());
        assert!(
            line_bytes <= (1 << BLOCK_SHIFT),
            "line must fit in the 256 B channel-interleave block"
        );
        assert!(mem.banks_per_channel.is_power_of_two());
        let blocks_per_row = mem.row_bytes >> BLOCK_SHIFT;
        assert!(
            blocks_per_row >= 1 && blocks_per_row.is_power_of_two(),
            "row_bytes must be a power-of-two multiple of 256"
        );
        let line_shift = line_bytes.trailing_zeros();
        Self {
            num_channels: mem.num_channels as u64,
            num_banks: mem.banks_per_channel as u64,
            banks_per_group: mem.banks_per_group as u64,
            line_shift,
            sub_bits: BLOCK_SHIFT - line_shift,
            bank_shift: blocks_per_row.trailing_zeros(),
            bank_bits: mem.banks_per_channel.trailing_zeros(),
            row_mask: (1 << ROW_BITS) - 1,
        }
    }

    /// The 128 B line address (byte address >> 7).
    #[inline]
    pub fn line_addr(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// The paper's channel hash over the 256 B block index.
    #[inline]
    fn channel_of_block(&self, b: u64) -> u64 {
        let ch_low = (b & 0x7) ^ ((b >> 3) & 0x7);
        let ch_high = b >> 3;
        ((ch_high << 3) | ch_low) % self.num_channels
    }

    /// Decode a byte address.
    #[inline]
    pub fn decode(&self, byte_addr: u64) -> DecodedAddr {
        let b = byte_addr >> BLOCK_SHIFT;
        let channel = self.channel_of_block(b);
        let l = b / self.num_channels;
        let sub = (byte_addr >> self.line_shift) & ((1 << self.sub_bits) - 1);
        let col = (((l & ((1 << self.bank_shift) - 1)) as u16) << self.sub_bits) | sub as u16;
        let row_shift = self.bank_shift + self.bank_bits;
        let bank = (((l >> self.bank_shift) ^ (l >> (row_shift + self.bank_shift)))
            & (self.num_banks - 1)) as u8;
        let row = ((l >> row_shift) as u32) & self.row_mask;
        DecodedAddr {
            channel: ChannelId(channel as u8),
            bank: BankId(bank),
            bank_group: (bank as u64 / self.banks_per_group) as u8,
            row,
            col,
        }
    }

    /// Enumerate byte addresses of lines in the same (channel, bank, row) as
    /// `byte_addr` — the other columns of its DRAM row. Used by the workload
    /// generators to synthesise intra-warp row locality. The channel hash is
    /// not invertible in closed form, so this searches the candidate blocks
    /// (block-columns x C channel residues) and keeps those that land on
    /// the original channel.
    pub fn same_row_lines(&self, byte_addr: u64) -> Vec<u64> {
        let d = self.decode(byte_addr);
        let b = byte_addr >> BLOCK_SHIFT;
        let l = b / self.num_channels;
        let blocks_per_row = 1u64 << self.bank_shift;
        let lines_per_block = 1u64 << self.sub_bits;
        let l_base = l & !(blocks_per_row - 1);
        let mut out = Vec::with_capacity((blocks_per_row * lines_per_block) as usize);
        for v in 0..blocks_per_row {
            let l2 = l_base | v;
            for r in 0..self.num_channels {
                let b2 = l2 * self.num_channels + r;
                if self.channel_of_block(b2) == d.channel.0 as u64 {
                    for sub in 0..lines_per_block {
                        out.push((b2 << BLOCK_SHIFT) | (sub << self.line_shift));
                    }
                    break; // one block per block-column suffices
                }
            }
        }
        out
    }

    pub fn num_channels(&self) -> usize {
        self.num_channels as usize
    }

    pub fn num_banks(&self) -> usize {
        self.num_banks as usize
    }

    /// Render the geometry as the canonical spec string, e.g. the Table II
    /// machine is `line=128:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13`.
    /// `parse(render(m)) == m` exactly ([`AddressMapper::from_spec`]).
    pub fn spec(&self) -> String {
        format!(
            "line={}:blk={}:nch={}:nbk={}:grp={}:rowblks={}:rowbits={}",
            1u64 << self.line_shift,
            1u64 << BLOCK_SHIFT,
            self.num_channels,
            self.num_banks,
            self.banks_per_group,
            1u64 << self.bank_shift,
            (self.row_mask + 1).trailing_zeros(),
        )
    }

    /// Parse a spec string produced by [`AddressMapper::spec`]. All seven
    /// keys must be present exactly once; `blk` must be 256 (the paper's
    /// channel-interleave block is fixed) and the power-of-two keys are
    /// validated.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        const KEYS: [&str; 7] = ["line", "blk", "nch", "nbk", "grp", "rowblks", "rowbits"];
        let mut vals = [None::<u64>; 7];
        for part in spec.split(':') {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("addr spec: '{part}' is not key=value"))?;
            let idx = KEYS
                .iter()
                .position(|k| *k == key)
                .ok_or_else(|| format!("addr spec: unknown key '{key}'"))?;
            if vals[idx].is_some() {
                return Err(format!("addr spec: duplicate key '{key}'"));
            }
            let v: u64 = val
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("addr spec: {key}={val} is not a positive integer"))?;
            vals[idx] = Some(v);
        }
        let get = |i: usize| vals[i].ok_or_else(|| format!("addr spec: missing key '{}'", KEYS[i]));
        let (line, blk, nch, nbk, grp, rowblks, rowbits) = (
            get(0)?,
            get(1)?,
            get(2)?,
            get(3)?,
            get(4)?,
            get(5)?,
            get(6)?,
        );
        if blk != 1 << BLOCK_SHIFT {
            return Err(format!("addr spec: blk={blk} must be {}", 1 << BLOCK_SHIFT));
        }
        for (k, v) in [("line", line), ("nbk", nbk), ("rowblks", rowblks)] {
            if !v.is_power_of_two() {
                return Err(format!("addr spec: {k}={v} is not a power of two"));
            }
        }
        if line > blk {
            return Err(format!("addr spec: line={line} exceeds blk={blk}"));
        }
        if rowbits == 0 || rowbits > 31 {
            return Err(format!("addr spec: rowbits={rowbits} out of range"));
        }
        let line_shift = line.trailing_zeros();
        Ok(Self {
            num_channels: nch,
            num_banks: nbk,
            banks_per_group: grp,
            line_shift,
            sub_bits: BLOCK_SHIFT - line_shift,
            bank_shift: rowblks.trailing_zeros(),
            bank_bits: nbk.trailing_zeros(),
            row_mask: ((1u64 << rowbits) - 1) as u32,
        })
    }
}

impl DecodedAddr {
    /// Same (channel, bank, row)? Two such requests are row-buffer hits with
    /// respect to each other.
    #[inline]
    pub fn same_row(&self, other: &DecodedAddr) -> bool {
        self.channel == other.channel && self.bank == other.bank && self.row == other.row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemConfig, Preset};

    fn mapper() -> AddressMapper {
        AddressMapper::new(&MemConfig::default(), 128)
    }

    #[test]
    fn consecutive_lines_share_row_and_bank_within_block() {
        let m = mapper();
        let a = m.decode(0x1000_0000);
        let b = m.decode(0x1000_0080);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_ne!(a.col, b.col);
    }

    #[test]
    fn consecutive_blocks_rotate_channels() {
        let m = mapper();
        let chans: std::collections::HashSet<u8> = (0..8u64)
            .map(|i| m.decode(0x2000_0000 + i * 256).channel.0)
            .collect();
        assert!(chans.len() >= 4, "blocks should spread channels: {chans:?}");
    }

    #[test]
    fn decode_stays_in_range() {
        let m = mapper();
        for i in 0..10_000u64 {
            let d = m.decode(i * 131); // odd stride
            assert!((d.channel.0 as usize) < 6);
            assert!((d.bank.0 as usize) < 16);
            assert!((d.bank_group as usize) < 4);
            assert!(d.col < 16);
        }
    }

    #[test]
    fn generalised_decode_matches_legacy_gdd5_formulas() {
        // The shifts are now derived from the config; this pins them to the
        // hand-written Table II constants the cell cache was keyed on.
        let m = mapper();
        let mut x = 0xDEAD_BEEF_1234u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x & 0x7FFF_FFFF;
            let d = m.decode(addr);
            let b = addr >> 8;
            let l = b / 6;
            let col = ((((l & 0x7) as u16) << 1) | (((addr >> 7) & 0x1) as u16)) & 0xF;
            let bank = (((l >> 3) ^ (l >> 10)) & 15) as u8;
            let row = ((l >> 7) as u32) & 0x1FFF;
            assert_eq!(d.col, col, "col diverged for {addr:#x}");
            assert_eq!(d.bank.0, bank, "bank diverged for {addr:#x}");
            assert_eq!(d.row, row, "row diverged for {addr:#x}");
        }
    }

    #[test]
    fn channel_xor_spreads_2kb_strides() {
        // A 2KB stride keeps addr[10:8] constant; without the XOR with
        // addr[13:11] every access would camp on one channel.
        let m = mapper();
        let chans: std::collections::HashSet<u8> =
            (0..64u64).map(|i| m.decode(i * 2048).channel.0).collect();
        assert!(chans.len() >= 4, "2KB stride camped: {chans:?}");
    }

    #[test]
    fn bank_hash_spreads_row_strides() {
        // Strides of one row (2KB x 6 channels x ... ): walking rows with a
        // fixed pre-hash bank index must still spread banks via the XOR.
        let m = mapper();
        // l advances by 128 per step (row bit 0), keeping l[6:3] = 0.
        let banks: std::collections::HashSet<u8> = (0..64u64)
            .map(|i| m.decode(i * 128 * 6 * 256).bank.0)
            .collect();
        assert!(banks.len() >= 8, "row stride camped on banks: {banks:?}");
    }

    #[test]
    fn bank_group_partitioning() {
        let m = mapper();
        let d = m.decode(0x40_0000);
        assert_eq!(d.bank_group, d.bank.0 / 4);
    }

    #[test]
    fn distribution_roughly_uniform() {
        let m = mapper();
        let mut ch_counts = [0usize; 6];
        let mut bank_counts = [0usize; 16];
        let n = 60_000u64;
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let d = m.decode(x & 0x3FFF_FFFF);
            ch_counts[d.channel.0 as usize] += 1;
            bank_counts[d.bank.0 as usize] += 1;
        }
        let fair_ch = n as usize / 6;
        for (c, &cnt) in ch_counts.iter().enumerate() {
            assert!(
                cnt > fair_ch / 2 && cnt < fair_ch * 2,
                "channel {c} unbalanced: {cnt} vs fair {fair_ch}"
            );
        }
        let fair_b = n as usize / 16;
        for (b, &cnt) in bank_counts.iter().enumerate() {
            assert!(
                cnt > fair_b / 2 && cnt < fair_b * 2,
                "bank {b} unbalanced: {cnt} vs fair {fair_b}"
            );
        }
    }

    #[test]
    fn same_row_lines_really_share_the_row() {
        let m = mapper();
        let mut x = 0x1234_5678_9ABCu64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x & 0x3FFF_FF80;
            let d = m.decode(addr);
            let lines = m.same_row_lines(addr);
            assert!(lines.len() >= 4, "too few same-row lines for {addr:#x}");
            let mut cols = std::collections::HashSet::new();
            for a in lines {
                let d2 = m.decode(a);
                assert_eq!(d2.channel, d.channel);
                assert_eq!(d2.bank, d.bank);
                assert_eq!(d2.row, d.row);
                cols.insert(d2.col);
            }
            assert!(cols.len() >= 4, "columns should vary");
        }
    }

    #[test]
    fn same_row_predicate() {
        let m = mapper();
        let a = m.decode(0x40_0000);
        let b = m.decode(0x40_0080);
        assert!(a.same_row(&b));
    }

    #[test]
    fn spec_round_trips_for_every_preset() {
        for p in Preset::ALL {
            let (mem, _) = p.mem_and_clock();
            let m = AddressMapper::new(&mem, 128);
            let spec = m.spec();
            let m2 =
                AddressMapper::from_spec(&spec).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert_eq!(m, m2, "{} spec round trip: {spec}", p.name());
            assert_eq!(m2.spec(), spec, "{} render not canonical", p.name());
        }
    }

    #[test]
    fn default_spec_is_the_documented_string() {
        assert_eq!(
            mapper().spec(),
            "line=128:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13"
        );
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "line=128",                                                          // missing keys
            "line=128:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13:x=1",      // unknown
            "line=128:line=128:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13", // dup
            "line=96:blk=256:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13",           // not pow2
            "line=128:blk=512:nch=6:nbk=16:grp=4:rowblks=8:rowbits=13",          // blk fixed
            "line=128:blk=256:nch=0:nbk=16:grp=4:rowblks=8:rowbits=13",          // zero
        ] {
            assert!(AddressMapper::from_spec(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn preset_mappers_decode_in_range_and_spread() {
        for p in Preset::ALL {
            let (mem, _) = p.mem_and_clock();
            let m = AddressMapper::new(&mem, 128);
            let cols_per_row = (mem.row_bytes / 128) as u16;
            let groups = mem.banks_per_channel / mem.banks_per_group;
            let mut chans = std::collections::HashSet::new();
            let mut banks = std::collections::HashSet::new();
            let mut x = 0x5DEE_CE66_ED51u64;
            for _ in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let d = m.decode(x & 0x3FFF_FFFF);
                assert!((d.channel.0 as usize) < mem.num_channels, "{}", p.name());
                assert!((d.bank.0 as usize) < mem.banks_per_channel, "{}", p.name());
                assert!((d.bank_group as usize) < groups, "{}", p.name());
                assert!(d.col < cols_per_row, "{}", p.name());
                chans.insert(d.channel.0);
                banks.insert(d.bank.0);
            }
            assert_eq!(
                chans.len(),
                mem.num_channels,
                "{} channels unused",
                p.name()
            );
            assert_eq!(
                banks.len(),
                mem.banks_per_channel,
                "{} banks unused",
                p.name()
            );
        }
    }

    #[test]
    fn preset_same_row_lines_share_the_row() {
        for p in Preset::ALL {
            let (mem, _) = p.mem_and_clock();
            let m = AddressMapper::new(&mem, 128);
            let addr = 0x40_0000u64;
            let d = m.decode(addr);
            let lines = m.same_row_lines(addr);
            assert!(lines.len() >= 4, "{}: too few lines", p.name());
            for a in lines {
                assert!(
                    m.decode(a).same_row(&d),
                    "{}: {a:#x} left the row",
                    p.name()
                );
            }
        }
    }
}
