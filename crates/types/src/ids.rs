//! Strongly-typed identifiers.
//!
//! The simulator is index-based throughout (see the Rust Performance Book's
//! advice on small hot types): every identifier is a thin newtype over a
//! small integer so that hot structures such as [`crate::req::MemRequest`]
//! stay compact and `Copy`.

/// Identifier of a streaming multiprocessor (SM / compute unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmId(pub u16);

/// Identifier of a warp *within* one SM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WarpId(pub u16);

/// Globally unique warp identifier: the (SM, warp-slot) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalWarpId {
    pub sm: SmId,
    pub warp: WarpId,
}

impl GlobalWarpId {
    pub fn new(sm: u16, warp: u16) -> Self {
        Self {
            sm: SmId(sm),
            warp: WarpId(warp),
        }
    }

    /// Flatten to a dense index given the number of warps per SM.
    #[inline]
    pub fn flat(&self, warps_per_sm: usize) -> usize {
        self.sm.0 as usize * warps_per_sm + self.warp.0 as usize
    }
}

/// Identifier of a memory channel (memory partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u8);

/// Identifier of a DRAM bank within one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub u8);

/// Unique id for every memory request created during a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// A *warp-group* identifies one dynamic load (or store) instruction of one
/// warp: all DRAM requests spawned by that instruction belong to the group.
///
/// This is the unit the paper's warp-aware schedulers batch and score
/// (Section IV-A). `load_serial` disambiguates successive loads of the same
/// warp so that two loads in flight never alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WarpGroupId {
    pub warp: GlobalWarpId,
    pub load_serial: u32,
}

impl WarpGroupId {
    pub fn new(warp: GlobalWarpId, load_serial: u32) -> Self {
        Self { warp, load_serial }
    }
}

/// Active-lane mask for a 32-lane warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneMask(pub u32);

impl LaneMask {
    pub const ALL: LaneMask = LaneMask(u32::MAX);
    pub const NONE: LaneMask = LaneMask(0);

    #[inline]
    pub fn is_active(&self, lane: usize) -> bool {
        debug_assert!(lane < 32);
        self.0 & (1 << lane) != 0
    }

    #[inline]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    #[inline]
    pub fn set(&mut self, lane: usize) {
        debug_assert!(lane < 32);
        self.0 |= 1 << lane;
    }

    /// Iterate over the indices of active lanes.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..32usize).filter(move |l| bits & (1 << l) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_basic() {
        let mut m = LaneMask::NONE;
        assert_eq!(m.count(), 0);
        m.set(0);
        m.set(31);
        assert_eq!(m.count(), 2);
        assert!(m.is_active(0));
        assert!(m.is_active(31));
        assert!(!m.is_active(15));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 31]);
    }

    #[test]
    fn lane_mask_all() {
        assert_eq!(LaneMask::ALL.count(), 32);
        assert_eq!(LaneMask::ALL.iter().count(), 32);
    }

    #[test]
    fn global_warp_flat_index() {
        let w = GlobalWarpId::new(3, 5);
        assert_eq!(w.flat(48), 3 * 48 + 5);
    }

    #[test]
    fn warp_group_ordering_disambiguates_loads() {
        let w = GlobalWarpId::new(0, 0);
        let a = WarpGroupId::new(w, 0);
        let b = WarpGroupId::new(w, 1);
        assert_ne!(a, b);
        assert!(a < b);
    }
}
