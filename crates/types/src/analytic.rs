//! Closed-form latency expectations derived from [`SimConfig`] timings.
//!
//! The microbenchmark validation suite (`crates/bench`'s `validate` bin and
//! the `mb_*` workloads) checks the simulator's *modeled* latencies against
//! arithmetic performed here, directly on the configuration knobs. An idle
//! dependent load must cost exactly the sum of the pipeline stages it
//! crosses — if it doesn't, either a stage silently changed or a timing
//! parameter stopped feeding the path it is supposed to pin.
//!
//! ## The idle dependent-load pipeline (one request, empty machine)
//!
//! ```text
//! SM issue ──request crossbar (xbar_latency)──▶ partition
//!   +1  alignment: the crossbar delivers after the partition's tick,
//!       so the L2 probe happens on the next cycle
//!   L2 lookup miss (l2_latency delay line toward the controller)
//!   +1  alignment: the delay line releases after the controller's tick,
//!       so admission/first command happens on the next cycle
//!   DRAM: [tRP if a conflicting row is open] [tRCD if the bank is closed]
//!         tCAS + bursts_per_access x tBURST (data transfer)
//! partition ──response crossbar (xbar_latency)──▶ SM completes the load
//! ```
//!
//! Each regime constant below names the timing parameter it *pins*: a check
//! against [`AnalyticLatency::dram_closed`] fails exactly when `tRCD` (or
//! anything upstream of it) drifts, and so on down the ladder.

use crate::clock::Cycle;
use crate::config::{SimConfig, TimingCycles};

/// Closed-form latency expectations for one [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticLatency {
    /// One-way crossbar latency (`GpuConfig::xbar_latency`).
    pub xbar: Cycle,
    /// L2 slice lookup latency (`CacheConfig::latency` of the L2).
    pub l2: Cycle,
    /// DRAM timing constraints in command clocks.
    pub t: TimingCycles,
    /// Data-bus cycles per 128 B access: `bursts_per_access x tBURST`.
    pub data_burst: Cycle,
}

impl AnalyticLatency {
    /// Derive the expectations from a configuration. Uses only public
    /// config knobs — no simulator state — so a check against these values
    /// genuinely cross-validates two independent derivations.
    pub fn from_config(cfg: &SimConfig) -> Self {
        let t = cfg.mem.timing.in_cycles(cfg.clock);
        Self {
            xbar: cfg.gpu.xbar_latency,
            l2: cfg.gpu.l2_slice.latency,
            t,
            data_burst: cfg.mem.bursts_per_access * t.t_burst,
        }
    }

    /// Fixed pipeline cost every DRAM-bound load pays regardless of row
    /// state: both crossbar crossings, the L2 lookup, and the two one-cycle
    /// stage-alignment delays (crossbar delivery lands after the
    /// partition's tick; the L2 delay line releases after the controller's
    /// tick). Pins `xbar_latency` and the L2 `latency` jointly.
    pub fn pipeline_overhead(&self) -> Cycle {
        2 * self.xbar + self.l2 + 2
    }

    /// An L2 *hit*: both crossbar crossings plus the single alignment cycle
    /// before the probe (hits respond in the probing cycle, so neither the
    /// L2 delay line nor the second alignment applies). Pins
    /// `xbar_latency`: d(l2_hit)/d(xbar) = 2 and nothing else moves it.
    pub fn l2_hit(&self) -> Cycle {
        2 * self.xbar + 1
    }

    /// Idle DRAM read with the target row already open: column access plus
    /// data transfer. Relative to [`Self::dram_closed`], pins `tCAS` (the
    /// only bank-timing term left).
    pub fn dram_row_hit(&self) -> Cycle {
        self.pipeline_overhead() + self.t.t_cas + self.data_burst
    }

    /// Idle DRAM read to a *closed* bank (the first-touch case): activate,
    /// then column access and data. Relative to [`Self::dram_row_hit`],
    /// pins `tRCD`.
    pub fn dram_closed(&self) -> Cycle {
        self.pipeline_overhead() + self.t.t_rcd + self.t.t_cas + self.data_burst
    }

    /// Idle DRAM read that conflicts with an open row: precharge, activate,
    /// column access, data. Relative to [`Self::dram_closed`], pins `tRP`.
    pub fn dram_row_miss(&self) -> Cycle {
        self.pipeline_overhead() + self.t.t_rp + self.t.t_rcd + self.t.t_cas + self.data_burst
    }

    /// Minimum spacing between consecutive activates to the *same* bank —
    /// the serialisation quantum of a bank conflict. A `k`-row conflict
    /// burst spreads its DRAM completions over `(k-1) x tRC`. Pins `tRC`.
    pub fn bank_conflict_spacing(&self) -> Cycle {
        self.t.t_rc
    }

    /// The expected first-to-last DRAM completion gap of one load whose
    /// `k` requests hit `k` different rows of one bank, on an idle machine.
    pub fn conflict_gap(&self, k: u64) -> Cycle {
        k.saturating_sub(1) * self.bank_conflict_spacing()
    }

    /// The ladder for a backend preset (GPU side at defaults). The same
    /// closed forms serve every preset because the expressions only read
    /// config knobs — the per-preset golden bands in `golden/` pin the
    /// simulator against exactly these values.
    pub fn for_preset(p: crate::config::Preset) -> Self {
        Self::from_config(&SimConfig::default().with_preset(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_ladder_matches_table2_arithmetic() {
        // Table II at the GDDR5 command clock: tRCD=tRP=tCAS=18, tRC=60,
        // xbar=40, L2 lookup=24, 2 bursts x 2 tCK of data.
        let a = AnalyticLatency::from_config(&SimConfig::default());
        assert_eq!(a.pipeline_overhead(), 2 * 40 + 24 + 2);
        assert_eq!(a.l2_hit(), 81);
        assert_eq!(a.dram_row_hit(), 106 + 18 + 4);
        assert_eq!(a.dram_closed(), 106 + 18 + 18 + 4);
        assert_eq!(a.dram_row_miss(), 106 + 18 + 18 + 18 + 4);
        assert_eq!(a.bank_conflict_spacing(), 60);
        assert_eq!(a.conflict_gap(8), 7 * 60);
        assert_eq!(a.conflict_gap(0), 0);
    }

    #[test]
    fn ladder_is_strictly_ordered_for_any_positive_timing() {
        let a = AnalyticLatency::from_config(&SimConfig::default());
        assert!(a.l2_hit() < a.dram_row_hit());
        assert!(a.dram_row_hit() < a.dram_closed());
        assert!(a.dram_closed() < a.dram_row_miss());
    }

    #[test]
    fn knobs_move_only_their_own_regime() {
        let base = AnalyticLatency::from_config(&SimConfig::default());
        let mut cfg = SimConfig::default();
        cfg.mem.timing.t_rp_ns += 4.0;
        let a = AnalyticLatency::from_config(&cfg);
        // tRP feeds the row-miss regime only.
        assert_eq!(a.dram_row_hit(), base.dram_row_hit());
        assert_eq!(a.dram_closed(), base.dram_closed());
        assert!(a.dram_row_miss() > base.dram_row_miss());

        let mut cfg = SimConfig::default();
        cfg.gpu.xbar_latency += 5;
        let a = AnalyticLatency::from_config(&cfg);
        // The crossbar feeds every regime, twice.
        assert_eq!(a.l2_hit(), base.l2_hit() + 10);
        assert_eq!(a.dram_closed(), base.dram_closed() + 10);
    }

    #[test]
    fn gddr5_preset_ladder_equals_default_ladder() {
        use crate::config::Preset;
        assert_eq!(
            AnalyticLatency::for_preset(Preset::Gddr5),
            AnalyticLatency::from_config(&SimConfig::default())
        );
    }

    #[test]
    fn preset_ladders_match_hand_computed_cycles() {
        use crate::config::Preset;
        // pipeline_overhead = 2*40 + 24 + 2 = 106 on every preset (the GPU
        // side is not part of the backend description). Bank timings below
        // are ceil(ns / tCK); data_burst = bursts_per_access * tBURST.
        let g3 = AnalyticLatency::for_preset(Preset::Gddr3);
        // tCK=1.25: CL=10, RCD=12, RP=10, RC=35; 4 bursts x 2 tCK.
        assert_eq!(g3.dram_row_hit(), 106 + 10 + 8);
        assert_eq!(g3.dram_closed(), 106 + 12 + 10 + 8);
        assert_eq!(g3.dram_row_miss(), 106 + 10 + 12 + 10 + 8);
        assert_eq!(g3.bank_conflict_spacing(), 35);

        let g6 = AnalyticLatency::for_preset(Preset::Gddr6);
        // tCK=0.5: CL=28, RCD=28, RP=28, RC=90; 4 bursts x 2 tCK.
        assert_eq!(g6.dram_row_hit(), 106 + 28 + 8);
        assert_eq!(g6.dram_closed(), 106 + 28 + 28 + 8);
        assert_eq!(g6.dram_row_miss(), 106 + 28 + 28 + 28 + 8);
        assert_eq!(g6.bank_conflict_spacing(), 90);

        let hbm = AnalyticLatency::for_preset(Preset::Hbm);
        // tCK=1: CL=14, RCD=14, RP=14, RC=45; 4 bursts x 2 tCK.
        assert_eq!(hbm.dram_row_hit(), 106 + 14 + 8);
        assert_eq!(hbm.dram_closed(), 106 + 14 + 14 + 8);
        assert_eq!(hbm.dram_row_miss(), 106 + 14 + 14 + 14 + 8);
        assert_eq!(hbm.bank_conflict_spacing(), 45);
    }

    #[test]
    fn every_preset_keeps_trc_equal_ras_plus_rp_in_cycles() {
        // The conflict-gap golden checks assume the serialisation quantum is
        // exactly tRC and that tRC never under-runs tRAS+tRP after rounding.
        use crate::config::Preset;
        for p in Preset::ALL {
            let a = AnalyticLatency::for_preset(p);
            assert_eq!(
                a.t.t_rc,
                a.t.t_ras + a.t.t_rp,
                "{}: tRC != tRAS+tRP in cycles",
                p.name()
            );
        }
    }
}
