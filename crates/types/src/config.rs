//! System configuration.
//!
//! Defaults reproduce Table II of the paper: a GTX-480-class GPU with 30
//! compute units, 6 GDDR5 channels, Hynix H5GQ1H24AFR-style timing.

use crate::clock::{ClockDomain, Cycle};

/// GDDR5 timing parameters, stored in nanoseconds as the datasheet (and
/// Table II) specify them. Cycle counts are derived via [`TimingParams::in_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    pub t_rc_ns: f64,
    pub t_rcd_ns: f64,
    pub t_rp_ns: f64,
    pub t_cas_ns: f64,
    pub t_ras_ns: f64,
    pub t_rrd_ns: f64,
    pub t_wtr_ns: f64,
    pub t_faw_ns: f64,
    pub t_rtp_ns: f64,
    /// Write latency in whole command clocks (Table II: 4 tCK).
    pub t_wl_ck: Cycle,
    /// Data burst occupancy in command clocks (Table II: 2 tCK).
    pub t_burst_ck: Cycle,
    /// Rank-to-rank switch (Table II: 1 tCK; we model a single rank so this
    /// only matters for read->write bus turnaround modelling).
    pub t_rtrs_ck: Cycle,
    /// Column-to-column, same bank group (Table II: 3 tCK).
    pub t_ccdl_ck: Cycle,
    /// Column-to-column, different bank group (Table II: 2 tCK).
    pub t_ccds_ck: Cycle,
    /// Write recovery before precharge (GDDR5 datasheet; not in Table II —
    /// 12 ns is the Hynix H5GQ1H24AFR value).
    pub t_wr_ns: f64,
    /// Average refresh interval (GDDR5 datasheet: 1.9 us for 1 Gb parts).
    pub t_refi_ns: f64,
    /// All-bank refresh cycle time (datasheet: ~110 ns at this density).
    pub t_rfc_ns: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            t_rc_ns: 40.0,
            t_rcd_ns: 12.0,
            t_rp_ns: 12.0,
            t_cas_ns: 12.0,
            t_ras_ns: 28.0,
            t_rrd_ns: 5.5,
            t_wtr_ns: 5.0,
            t_faw_ns: 23.0,
            t_rtp_ns: 2.0,
            t_wl_ck: 4,
            t_burst_ck: 2,
            t_rtrs_ck: 1,
            t_ccdl_ck: 3,
            t_ccds_ck: 2,
            t_wr_ns: 12.0,
            t_refi_ns: 1900.0,
            t_rfc_ns: 110.0,
        }
    }
}

/// All GDDR5 timing constraints pre-converted to command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingCycles {
    pub t_rc: Cycle,
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_cas: Cycle,
    pub t_ras: Cycle,
    pub t_rrd: Cycle,
    pub t_wtr: Cycle,
    pub t_faw: Cycle,
    pub t_rtp: Cycle,
    pub t_wl: Cycle,
    pub t_burst: Cycle,
    pub t_rtrs: Cycle,
    pub t_ccdl: Cycle,
    pub t_ccds: Cycle,
    pub t_wr: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
}

impl TimingParams {
    /// Convert to whole cycles in the given clock domain (rounding
    /// constraints *up*, since they are minimum delays).
    pub fn in_cycles(&self, clk: ClockDomain) -> TimingCycles {
        TimingCycles {
            t_rc: clk.ns_to_cycles(self.t_rc_ns),
            t_rcd: clk.ns_to_cycles(self.t_rcd_ns),
            t_rp: clk.ns_to_cycles(self.t_rp_ns),
            t_cas: clk.ns_to_cycles(self.t_cas_ns),
            t_ras: clk.ns_to_cycles(self.t_ras_ns),
            t_rrd: clk.ns_to_cycles(self.t_rrd_ns),
            t_wtr: clk.ns_to_cycles(self.t_wtr_ns),
            t_faw: clk.ns_to_cycles(self.t_faw_ns),
            t_rtp: clk.ns_to_cycles(self.t_rtp_ns),
            t_wl: self.t_wl_ck,
            t_burst: self.t_burst_ck,
            t_rtrs: self.t_rtrs_ck,
            t_ccdl: self.t_ccdl_ck,
            t_ccds: self.t_ccds_ck,
            t_wr: clk.ns_to_cycles(self.t_wr_ns),
            t_refi: clk.ns_to_cycles(self.t_refi_ns),
            t_rfc: clk.ns_to_cycles(self.t_rfc_ns),
        }
    }

    /// Nanoseconds of one data burst (tBURST expressed in time): used by the
    /// MERB derivation, which the paper performs in nanoseconds.
    pub fn t_burst_ns(&self, clk: ClockDomain) -> f64 {
        self.t_burst_ck as f64 * clk.tck_ns
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub size_bytes: usize,
    pub line_bytes: usize,
    pub ways: usize,
    /// Number of MSHR entries (outstanding distinct miss lines).
    pub mshr_entries: usize,
    /// Hit / lookup latency in cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// GPU-core-side configuration (Table II, "GPU System Configuration").
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of compute units (SMs). Table II: 30.
    pub num_sms: usize,
    /// SIMD width. Table II: 32.
    pub warp_size: usize,
    /// Maximum resident warps per SM (1024 threads / 32 lanes = 32).
    pub max_warps_per_sm: usize,
    pub l1: CacheConfig,
    pub l2_slice: CacheConfig,
    /// One-way crossbar pipeline latency, cycles.
    pub xbar_latency: Cycle,
    /// Per-SM injection queue capacity (requests).
    pub xbar_queue: usize,
    /// Bypass the L2 slices: reads never probe or fill the cache (MSHR
    /// merging still applies), stores go straight to the DRAM write queue.
    /// Models `ld.global.cg`-style cache-bypassed access for the
    /// calibration microbenchmarks; off for every paper figure.
    pub l2_bypass: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 30,
            warp_size: 32,
            max_warps_per_sm: 32,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 128,
                ways: 8,
                mshr_entries: 32,
                latency: 1,
            },
            l2_slice: CacheConfig {
                size_bytes: 128 * 1024,
                line_bytes: 128,
                ways: 16,
                mshr_entries: 96,
                latency: 24,
            },
            xbar_latency: 40,
            xbar_queue: 8,
            l2_bypass: false,
        }
    }
}

/// Memory-system configuration (Table II, DRAM side).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of independent GDDR5 channels / memory partitions. Table II: 6.
    pub num_channels: usize,
    /// Banks per channel (2 x32 chips in tandem = one rank of 16 banks).
    pub banks_per_channel: usize,
    /// Banks per bank group (Table II: 4).
    pub banks_per_group: usize,
    /// Row buffer size in bytes per bank (2 KB => 16 x 128 B lines).
    pub row_bytes: usize,
    /// Read queue capacity per controller. Table II: 64.
    pub read_queue: usize,
    /// Write queue capacity per controller. Table II: 64.
    pub write_queue: usize,
    /// Write drain high watermark. Table II: 32.
    pub write_hi: usize,
    /// Write drain low watermark. Table II: 16.
    pub write_lo: usize,
    /// GDDR5 timing.
    pub timing: TimingParams,
    /// Latency of one hop on the inter-controller coordination network used
    /// by WG-M (Section IV-C): serialisation of a 32-bit message over 16-bit
    /// links (2 cycles) plus propagation.
    pub coord_latency: Cycle,
    /// GMC baseline: maximum row-hit streak before yielding (Section II-C).
    pub gmc_max_streak: usize,
    /// GMC baseline: age threshold (cycles) above which a row-miss is
    /// force-prioritised to prevent starvation.
    pub gmc_age_threshold: Cycle,
    /// WG-W: how close (entries) to the high watermark the write queue must
    /// be before unit warp-groups are prioritised (Section IV-E: 8).
    pub wgw_margin: usize,
    /// Data-bus bursts per 128 B cache-line access: a 64-bit GDDR5 channel
    /// moves 64 B per BL8 burst (tBURST = 2 tCK), so a line is 2 bursts —
    /// matching the paper's utilisation formula, which counts multiple
    /// bursts per activate even for a single line.
    pub bursts_per_access: u64,
    /// Row-buffer management policy. The paper's GMC (and all its
    /// schedulers) assume open-page; closed-page (auto-precharge after
    /// every column access) is provided for the ablation harness.
    pub page_policy: PagePolicy,
    /// Model periodic all-bank refresh (tREFI/tRFC). On by default; the
    /// ablation harness can disable it to quantify its ~4-6% cost.
    pub refresh_enabled: bool,
    /// Route WG-family scheduler picks through the original scan-based
    /// implementations instead of the incremental indexes (DESIGN.md §13).
    /// Bit-exact with the indexed paths by contract — this flag exists so
    /// differential tests and `perfreport` can prove it. Off by default.
    pub reference_picks: bool,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            num_channels: 6,
            banks_per_channel: 16,
            banks_per_group: 4,
            row_bytes: 2048,
            read_queue: 64,
            write_queue: 64,
            write_hi: 32,
            write_lo: 16,
            timing: TimingParams::default(),
            coord_latency: 4,
            gmc_max_streak: 16,
            gmc_age_threshold: 12_000,
            wgw_margin: 8,
            bursts_per_access: 2,
            page_policy: PagePolicy::Open,
            refresh_enabled: true,
            reference_picks: false,
        }
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (the paper's configuration);
    /// the transaction scheduler closes them on conflicts.
    Open,
    /// Precharge immediately after every column access (auto-precharge):
    /// no row hits, no row conflicts — the classic trade.
    Closed,
}

/// The scheduling policy run by every memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Strict first-come-first-serve over individual requests.
    Fcfs,
    /// First-ready FCFS (row hits first, then age) [Rixner+ ISCA'00].
    FrFcfs,
    /// Throughput-optimised GPU memory controller baseline (Section II-C).
    Gmc,
    /// Warp-aware FCFS over warp-groups [Yuan+ MICRO'08] (Section VI-C.2).
    Wafcfs,
    /// Single-bank warp-aware scheduling with a potential function
    /// [Lakshminarayana+ CAL'11] (Section VI-C.1). `alpha_q` is the profiled
    /// alpha in quarters: 1 => 0.25, 2 => 0.5, 3 => 0.75.
    Sbwas { alpha_q: u8 },
    /// Warp-group scheduling, single controller (Section IV-B).
    Wg,
    /// WG + multi-controller coordination (Section IV-C).
    WgM,
    /// WG-M + MERB bandwidth-aware row-miss insertion (Section IV-D).
    WgBw,
    /// WG-Bw + warp-aware write draining (Section IV-E).
    WgW,
    /// Ideal model for Fig. 4: after a warp-group's first DRAM request is
    /// serviced, its remaining requests bypass bank timing and only pay bus
    /// bandwidth.
    ZeroDivergence,
    /// Parallelism-aware batch scheduling \[Mutlu & Moscibroda, ISCA'08\]
    /// — the CPU-space batching scheme the paper contrasts with
    /// warp-groups in Section VI-C.3: batches are formed *per bank across
    /// warps* for fairness, ranked by the MAX rule, rather than per warp
    /// for latency-divergence.
    ParBs,
    /// ATLAS-style least-attained-service scheduling \[Kim+ HPCA'10\],
    /// the other CPU-space multi-controller scheme of Section VI-C.3:
    /// warps that received the least DRAM service in the previous epoch are
    /// prioritised in the next. Epoch granularity (the paper's objection:
    /// far coarser than per-warp-group coordination) is `atlas_epoch`.
    AtlasLite,
    /// The paper's *future work* (Section VIII): WG-W extended to also
    /// prioritise warp-groups whose lines are shared by multiple warps
    /// (detected at the L2 MSHRs) — finishing them unblocks several warps
    /// at once.
    WgShared,
}

impl SchedulerKind {
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::Gmc => "GMC",
            SchedulerKind::Wafcfs => "WAFCFS",
            SchedulerKind::Sbwas { .. } => "SBWAS",
            SchedulerKind::Wg => "WG",
            SchedulerKind::WgM => "WG-M",
            SchedulerKind::WgBw => "WG-Bw",
            SchedulerKind::WgW => "WG-W",
            SchedulerKind::ZeroDivergence => "ZeroDiv",
            SchedulerKind::ParBs => "PAR-BS",
            SchedulerKind::AtlasLite => "ATLAS",
            SchedulerKind::WgShared => "WG-S",
        }
    }

    /// Does this policy use the warp-group coordination network?
    pub fn coordinates(&self) -> bool {
        matches!(
            self,
            SchedulerKind::WgM | SchedulerKind::WgBw | SchedulerKind::WgW | SchedulerKind::WgShared
        )
    }
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub gpu: GpuConfig,
    pub mem: MemConfig,
    pub scheduler: SchedulerKind,
    /// Model a perfect coalescer (one request per load) — the other ideal
    /// model of Fig. 4.
    pub perfect_coalescing: bool,
    /// Hard cycle limit as a safety net; a run that hits it reports partial
    /// statistics and `finished = false`.
    pub max_cycles: Cycle,
    /// Stop once this many warp-instructions have retired GPU-wide (the
    /// paper's methodology: "1 billion instructions or to completion,
    /// whichever is earlier"). `None` runs to completion. A fractional
    /// budget (the runner uses ~70% of the kernel) keeps the measurement
    /// throughput-oriented instead of tail-warp-dominated.
    pub instruction_limit: Option<u64>,
    /// Clock domain (GDDR5 command clock).
    pub clock: ClockDomain,
    /// Attach the independent [`TimingAuditor`] to every channel: each
    /// issued DRAM command is re-validated against the JEDEC timing rules
    /// by a second, independently written state machine — catching
    /// scheduler bugs in release builds where `debug_assert!` is compiled
    /// out. Off by default (zero cost when disabled).
    pub audit: bool,
    /// Record a structured event trace (per-channel command log, warp-group
    /// lifecycle, latency-divergence samples) with a stable FNV-1a hash,
    /// exportable as JSONL. Off by default (zero cost when disabled).
    pub trace: bool,
    /// Fast-forward the main loop over cycles where no component can make
    /// progress (event-horizon skipping). Bit-exact with the cycle-by-cycle
    /// loop; on by default. Disable to force the reference loop.
    pub fast_forward: bool,
    /// Arm the in-simulator latency histograms (per-bank queue depth at
    /// enqueue, row-hit streak length, MERB occupancy, sampled read-queue
    /// depth). Recording is observation-only — armed runs are bit-exact
    /// with unarmed ones — but costs a few counter increments per DRAM
    /// command, so it is off by default.
    pub hist: bool,
    /// Worker threads for the intra-run partition pool (the memory
    /// partitions step concurrently between deterministic epoch barriers).
    /// `0` resolves from the process-wide setting (`--threads N` /
    /// `LDSIM_SIM_THREADS`, default serial); `1` forces serial; `n > 1`
    /// forces an `n`-wide pool, capped at the partition count. Threaded
    /// runs are bit-exact with serial ones, so this knob is execution
    /// strategy, not semantics — it is deliberately excluded from the
    /// sweep cache's `config_fingerprint`.
    pub sim_threads: usize,
    /// Upper bound on the multi-cycle conservative epoch window: how many
    /// cycles the threaded partition pool may free-run between barriers
    /// (DESIGN.md §18). `0` means auto — the full crossbar-latency
    /// lookahead; `1` forces the per-cycle barrier cadence (the PR-8
    /// behaviour, useful for A/B measurement); any other value caps the
    /// window, which is always additionally clamped to the safe lookahead
    /// bounds. Epoch runs are bit-exact with serial ones, so like
    /// `sim_threads` this is execution strategy, not semantics, and is
    /// excluded from `config_fingerprint`.
    pub epoch_max: Cycle,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            mem: MemConfig::default(),
            scheduler: SchedulerKind::Gmc,
            perfect_coalescing: false,
            max_cycles: 200_000_000,
            instruction_limit: None,
            clock: ClockDomain::GDDR5,
            audit: false,
            trace: false,
            fast_forward: true,
            hist: false,
            sim_threads: 0,
            epoch_max: 0,
        }
    }
}

impl SimConfig {
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Enable the protocol-conformance auditor.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enable structured event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable or disable idle-cycle fast-forwarding (on by default).
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Route WG-family picks through the reference scan paths
    /// (differential testing; see [`MemConfig::reference_picks`]).
    pub fn with_reference_picks(mut self, on: bool) -> Self {
        self.mem.reference_picks = on;
        self
    }

    /// Arm the in-simulator distribution histograms.
    pub fn with_hist(mut self) -> Self {
        self.hist = true;
        self
    }

    /// Set the intra-run partition thread count (see
    /// [`SimConfig::sim_threads`]). `0` defers to the process-wide setting.
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// Cap the multi-cycle epoch window (see [`SimConfig::epoch_max`]).
    /// `0` = auto (full lookahead), `1` = per-cycle barriers.
    pub fn with_epoch_max(mut self, cap: Cycle) -> Self {
        self.epoch_max = cap;
        self
    }

    /// Lines per DRAM row (row_bytes / line_bytes).
    pub fn lines_per_row(&self) -> usize {
        self.mem.row_bytes / self.gpu.l2_slice.line_bytes
    }

    /// Install a DRAM backend preset (see [`Preset::apply`] for exactly
    /// which knobs a preset owns). `with_preset(Preset::Gddr5)` is the
    /// identity on a default config.
    pub fn with_preset(mut self, p: Preset) -> Self {
        p.apply(&mut self);
        self
    }
}

// ---------------------------------------------------------------------------
// Config-driven hardware front end: the timing/topology string grammar and
// the backend presets built on it.

/// Canonical key order of the timing/topology string. Topology first, then
/// the clock, then nanosecond-valued timings, then command-clock-valued
/// timings — the same order [`render_timing_string`] emits and DESIGN.md §16
/// documents.
const TIMING_KEYS: [&str; 23] = [
    "nch", "nbk", "nbkgrp", "row", "bpa", "CK", "RC", "RCD", "RP", "CL", "RAS", "RRD", "WTR",
    "FAW", "RTP", "WR", "REFI", "RFC", "WL", "BL", "RTRS", "CCDL", "CCDS",
];

/// Render a DRAM device description as the canonical gpgpusim-style
/// `key=value:key=value` string. Nanosecond-valued keys carry ns (as the
/// datasheets specify them), `WL`/`BL`/`RTRS`/`CCDL`/`CCDS` carry whole
/// command clocks, and `CK` is the clock period in ns. Rust's shortest
/// round-trip `{}` float formatting makes `parse(render(x)) == x` exact.
pub fn render_timing_string(mem: &MemConfig, clock: ClockDomain) -> String {
    let t = &mem.timing;
    let pairs: Vec<(&str, String)> = vec![
        ("nch", mem.num_channels.to_string()),
        ("nbk", mem.banks_per_channel.to_string()),
        ("nbkgrp", mem.banks_per_group.to_string()),
        ("row", mem.row_bytes.to_string()),
        ("bpa", mem.bursts_per_access.to_string()),
        ("CK", clock.tck_ns.to_string()),
        ("RC", t.t_rc_ns.to_string()),
        ("RCD", t.t_rcd_ns.to_string()),
        ("RP", t.t_rp_ns.to_string()),
        ("CL", t.t_cas_ns.to_string()),
        ("RAS", t.t_ras_ns.to_string()),
        ("RRD", t.t_rrd_ns.to_string()),
        ("WTR", t.t_wtr_ns.to_string()),
        ("FAW", t.t_faw_ns.to_string()),
        ("RTP", t.t_rtp_ns.to_string()),
        ("WR", t.t_wr_ns.to_string()),
        ("REFI", t.t_refi_ns.to_string()),
        ("RFC", t.t_rfc_ns.to_string()),
        ("WL", t.t_wl_ck.to_string()),
        ("BL", t.t_burst_ck.to_string()),
        ("RTRS", t.t_rtrs_ck.to_string()),
        ("CCDL", t.t_ccdl_ck.to_string()),
        ("CCDS", t.t_ccds_ck.to_string()),
    ];
    debug_assert!(pairs.iter().map(|(k, _)| *k).eq(TIMING_KEYS));
    pairs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(":")
}

/// Parse a gpgpusim-style timing/topology string (the format
/// [`render_timing_string`] emits; keys may appear in any order). Keys not
/// present keep the Table II GDDR5 defaults, so a string only needs to name
/// what differs. Returns the device-level description: the [`MemConfig`]
/// with its queue/scheduler knobs at defaults, plus the command-clock
/// domain. Rejects unknown keys, duplicate keys, malformed values, and
/// geometries the address mapper cannot serve (non-power-of-two banks or
/// row blocks).
pub fn parse_timing_string(s: &str) -> Result<(MemConfig, ClockDomain), String> {
    let mut mem = MemConfig::default();
    let mut clock = ClockDomain::GDDR5;
    let mut seen: Vec<&str> = Vec::new();
    for part in s.split(':') {
        let (key, val) = part
            .split_once('=')
            .ok_or_else(|| format!("timing string: '{part}' is not key=value"))?;
        let key = TIMING_KEYS
            .iter()
            .copied()
            .find(|k| *k == key)
            .ok_or_else(|| format!("timing string: unknown key '{key}'"))?;
        if seen.contains(&key) {
            return Err(format!("timing string: duplicate key '{key}'"));
        }
        seen.push(key);
        let ns = || -> Result<f64, String> {
            val.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("timing string: {key}={val} is not a non-negative number"))
        };
        let int = || -> Result<u64, String> {
            val.parse::<u64>()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("timing string: {key}={val} is not a positive integer"))
        };
        let t = &mut mem.timing;
        match key {
            "nch" => mem.num_channels = int()? as usize,
            "nbk" => mem.banks_per_channel = int()? as usize,
            "nbkgrp" => mem.banks_per_group = int()? as usize,
            "row" => mem.row_bytes = int()? as usize,
            "bpa" => mem.bursts_per_access = int()?,
            "CK" => {
                let v = ns()?;
                if v <= 0.0 {
                    return Err("timing string: CK must be positive".into());
                }
                clock = ClockDomain { tck_ns: v };
            }
            "RC" => t.t_rc_ns = ns()?,
            "RCD" => t.t_rcd_ns = ns()?,
            "RP" => t.t_rp_ns = ns()?,
            "CL" => t.t_cas_ns = ns()?,
            "RAS" => t.t_ras_ns = ns()?,
            "RRD" => t.t_rrd_ns = ns()?,
            "WTR" => t.t_wtr_ns = ns()?,
            "FAW" => t.t_faw_ns = ns()?,
            "RTP" => t.t_rtp_ns = ns()?,
            "WR" => t.t_wr_ns = ns()?,
            "REFI" => t.t_refi_ns = ns()?,
            "RFC" => t.t_rfc_ns = ns()?,
            "WL" => t.t_wl_ck = int()?,
            "BL" => t.t_burst_ck = int()?,
            "RTRS" => t.t_rtrs_ck = int()?,
            "CCDL" => t.t_ccdl_ck = int()?,
            "CCDS" => t.t_ccds_ck = int()?,
            _ => unreachable!("key validated against TIMING_KEYS"),
        }
    }
    if !mem.banks_per_channel.is_power_of_two() {
        return Err(format!(
            "timing string: nbk={} is not a power of two",
            mem.banks_per_channel
        ));
    }
    if mem.banks_per_channel % mem.banks_per_group != 0 {
        return Err(format!(
            "timing string: nbkgrp={} does not divide nbk={}",
            mem.banks_per_group, mem.banks_per_channel
        ));
    }
    if mem.row_bytes % 256 != 0 || !(mem.row_bytes / 256).is_power_of_two() {
        return Err(format!(
            "timing string: row={} must be a power-of-two multiple of the 256 B \
             channel-interleave block",
            mem.row_bytes
        ));
    }
    Ok((mem, clock))
}

/// A DRAM backend preset: one complete machine description, selectable as
/// an ordinary sweep dimension (`CfgTweak::Backend` in `ldsim-system`).
///
/// Each preset is *defined by* its committed timing/topology string — the
/// string is the source of truth, [`Preset::mem_and_clock`] just parses it.
/// Every preset keeps `tRC = tRAS + tRP` exactly (also in rounded cycles),
/// so the bank-conflict serialisation quantum the validate suite pins is
/// `tRC` on every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The paper's Table II machine: Hynix H5GQ1H24AFR-style GDDR5 on 6
    /// channels of 16 banks (4 per bank group). Parsing this preset yields
    /// exactly [`MemConfig::default`] + [`ClockDomain::GDDR5`], so selecting
    /// it is the identity — and dedupes against untweaked sweep cells.
    Gddr5,
    /// QuadroFX5600-era GDDR3 (Samsung K4J52324QH-HC12 at 800 MHz, tCK =
    /// 1.25 ns): 8 banks, no bank groups (flat tCCD), narrower 32 B bursts
    /// (4 per 128 B line). Cycle-valued timings match the classic
    /// gpgpusim.config: RCD=12, RAS=25, RP=10, RC=35, CL=10, RRD=8, WL=7.
    Gddr3,
    /// A GDDR6-class machine: 12 pseudo-channel-style channels at a 2 GHz
    /// command clock (tCK = 0.5 ns), 32 B bursts, deeper bank groups
    /// (tCCDL = 4 tCK).
    Gddr6,
    /// An HBM-class stack: 16 pseudo-channels at a 1 GHz command clock,
    /// small 1 KB rows, short tRRD/tFAW (per-pseudo-channel activity is
    /// cheap), 32 B bursts.
    Hbm,
}

impl Preset {
    pub const ALL: [Preset; 4] = [Preset::Gddr5, Preset::Gddr3, Preset::Gddr6, Preset::Hbm];

    pub fn name(&self) -> &'static str {
        match self {
            Preset::Gddr5 => "gddr5",
            Preset::Gddr3 => "gddr3",
            Preset::Gddr6 => "gddr6",
            Preset::Hbm => "hbm",
        }
    }

    /// Case-insensitive lookup by [`Preset::name`].
    pub fn from_name(name: &str) -> Option<Preset> {
        Preset::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// The committed canonical timing/topology string. These are the
    /// strings the round-trip lint pins: `render(parse(s)) == s` exactly.
    pub fn timing_string(&self) -> &'static str {
        match self {
            Preset::Gddr5 => {
                "nch=6:nbk=16:nbkgrp=4:row=2048:bpa=2:CK=0.667:RC=40:RCD=12:RP=12:CL=12:\
                 RAS=28:RRD=5.5:WTR=5:FAW=23:RTP=2:WR=12:REFI=1900:RFC=110:WL=4:BL=2:\
                 RTRS=1:CCDL=3:CCDS=2"
            }
            Preset::Gddr3 => {
                "nch=6:nbk=8:nbkgrp=8:row=2048:bpa=4:CK=1.25:RC=43.75:RCD=15:RP=12.5:CL=12.5:\
                 RAS=31.25:RRD=10:WTR=7.5:FAW=30:RTP=2.5:WR=13.75:REFI=1900:RFC=110:WL=7:BL=2:\
                 RTRS=1:CCDL=2:CCDS=2"
            }
            Preset::Gddr6 => {
                "nch=12:nbk=16:nbkgrp=4:row=2048:bpa=4:CK=0.5:RC=45:RCD=14:RP=14:CL=14:\
                 RAS=31:RRD=5.5:WTR=5:FAW=22:RTP=2.5:WR=15:REFI=1900:RFC=110:WL=6:BL=2:\
                 RTRS=1:CCDL=4:CCDS=2"
            }
            Preset::Hbm => {
                "nch=16:nbk=16:nbkgrp=4:row=1024:bpa=4:CK=1:RC=45:RCD=14:RP=14:CL=14:\
                 RAS=31:RRD=4:WTR=7:FAW=16:RTP=3:WR=15:REFI=3900:RFC=160:WL=3:BL=2:\
                 RTRS=1:CCDL=3:CCDS=2"
            }
        }
    }

    /// Parse this preset's device description.
    ///
    /// # Panics
    /// Never for the committed presets — the round-trip tests keep the
    /// strings parsable.
    pub fn mem_and_clock(&self) -> (MemConfig, ClockDomain) {
        parse_timing_string(self.timing_string())
            .unwrap_or_else(|e| panic!("preset {} has an invalid timing string: {e}", self.name()))
    }

    /// Install this backend into `cfg`: the DRAM *device* description
    /// (topology, timing, burst width) and the command clock. Controller
    /// policy knobs (queue depths, watermarks, GMC/WG parameters, page
    /// policy, refresh switch) are deliberately untouched — they describe
    /// the scheduler under test, not the memory device.
    pub fn apply(&self, cfg: &mut SimConfig) {
        let (mem, clock) = self.mem_and_clock();
        cfg.mem.num_channels = mem.num_channels;
        cfg.mem.banks_per_channel = mem.banks_per_channel;
        cfg.mem.banks_per_group = mem.banks_per_group;
        cfg.mem.row_bytes = mem.row_bytes;
        cfg.mem.bursts_per_access = mem.bursts_per_access;
        cfg.mem.timing = mem.timing;
        cfg.clock = clock;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_timing_in_cycles() {
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        assert_eq!(t.t_rc, 60);
        assert_eq!(t.t_rcd, 18);
        assert_eq!(t.t_rp, 18);
        assert_eq!(t.t_cas, 18);
        assert_eq!(t.t_ras, 42);
        assert_eq!(t.t_rrd, 9);
        assert_eq!(t.t_wtr, 8);
        assert_eq!(t.t_faw, 35);
        assert_eq!(t.t_rtp, 3);
        assert_eq!(t.t_wl, 4);
        assert_eq!(t.t_burst, 2);
        assert_eq!(t.t_ccdl, 3);
        assert_eq!(t.t_ccds, 2);
    }

    #[test]
    fn default_config_matches_table2() {
        let c = SimConfig::default();
        assert_eq!(c.gpu.num_sms, 30);
        assert_eq!(c.gpu.warp_size, 32);
        assert_eq!(c.mem.num_channels, 6);
        assert_eq!(c.mem.banks_per_channel, 16);
        assert_eq!(c.mem.banks_per_group, 4);
        assert_eq!(c.mem.read_queue, 64);
        assert_eq!(c.mem.write_queue, 64);
        assert_eq!(c.mem.write_hi, 32);
        assert_eq!(c.mem.write_lo, 16);
        assert_eq!(c.gpu.l1.size_bytes, 32 * 1024);
        assert_eq!(c.gpu.l1.ways, 8);
        assert_eq!(c.gpu.l2_slice.size_bytes, 128 * 1024);
        assert_eq!(c.gpu.l2_slice.ways, 16);
        assert_eq!(c.gpu.l1.line_bytes, 128);
    }

    #[test]
    fn cache_sets() {
        let c = GpuConfig::default();
        assert_eq!(c.l1.sets(), 32 * 1024 / (128 * 8));
        assert_eq!(c.l2_slice.sets(), 128 * 1024 / (128 * 16));
    }

    #[test]
    fn scheduler_names_and_coordination() {
        assert_eq!(SchedulerKind::WgW.name(), "WG-W");
        assert!(SchedulerKind::WgM.coordinates());
        assert!(SchedulerKind::WgBw.coordinates());
        assert!(!SchedulerKind::Wg.coordinates());
        assert!(!SchedulerKind::Gmc.coordinates());
    }

    #[test]
    fn lines_per_row() {
        let c = SimConfig::default();
        assert_eq!(c.lines_per_row(), 16);
    }

    #[test]
    fn preset_strings_round_trip() {
        // The round-trip lint: parse -> render -> parse must be the
        // identity, and every committed preset string must already BE its
        // own canonical render (so `timing_string()` is copy-pasteable).
        for p in Preset::ALL {
            let s = p.timing_string();
            let (mem, clock) = parse_timing_string(s)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", p.name()));
            let rendered = render_timing_string(&mem, clock);
            assert_eq!(
                rendered,
                s,
                "{}: committed string is not canonical",
                p.name()
            );
            let (mem2, clock2) = parse_timing_string(&rendered).unwrap();
            assert_eq!(mem, mem2, "{}: parse(render(x)) != x", p.name());
            assert_eq!(clock, clock2, "{}: clock did not round-trip", p.name());
        }
    }

    #[test]
    fn gddr5_preset_is_exactly_the_default_machine() {
        // The Table II machine *is* the gddr5 preset: selecting it must be
        // the identity, so Backend(Gddr5) sweep cells dedupe against
        // untweaked cells in the cell cache.
        let (mem, clock) = Preset::Gddr5.mem_and_clock();
        assert_eq!(mem, MemConfig::default());
        assert_eq!(clock, ClockDomain::GDDR5);
        let cfg = SimConfig::default().with_preset(Preset::Gddr5);
        assert_eq!(cfg, SimConfig::default());
    }

    #[test]
    fn render_of_default_is_the_gddr5_string() {
        assert_eq!(
            render_timing_string(&MemConfig::default(), ClockDomain::GDDR5),
            Preset::Gddr5.timing_string()
        );
    }

    #[test]
    fn preset_cycle_conversions_match_datasheets() {
        // gddr3: the classic QuadroFX5600 gpgpusim.config in cycles at
        // tCK=1.25ns: RCD=12 RAS=25 RP=10 RC=35 CL=10 RRD=8 WTR=6 WR=11.
        let (mem, clock) = Preset::Gddr3.mem_and_clock();
        let t = mem.timing.in_cycles(clock);
        assert_eq!(
            (t.t_rcd, t.t_ras, t.t_rp, t.t_rc, t.t_cas, t.t_rrd, t.t_wtr, t.t_wr),
            (12, 25, 10, 35, 10, 8, 6, 11)
        );
        assert_eq!(mem.banks_per_channel, 8);
        assert_eq!(mem.banks_per_group, 8, "gddr3 has no bank groups");
        assert_eq!(mem.bursts_per_access, 4, "32 B bursts: 4 per 128 B line");

        // gddr6: 2 GHz command clock, deeper bank groups.
        let (mem, clock) = Preset::Gddr6.mem_and_clock();
        let t = mem.timing.in_cycles(clock);
        assert_eq!((t.t_rcd, t.t_rp, t.t_cas, t.t_rc), (28, 28, 28, 90));
        assert_eq!(t.t_ccdl, 4);
        assert_eq!(mem.num_channels, 12);

        // hbm: small rows, short activity window.
        let (mem, clock) = Preset::Hbm.mem_and_clock();
        let t = mem.timing.in_cycles(clock);
        assert_eq!((t.t_rcd, t.t_rp, t.t_cas, t.t_rc), (14, 14, 14, 45));
        assert_eq!((t.t_rrd, t.t_faw), (4, 16));
        assert_eq!(mem.row_bytes, 1024);
        assert_eq!(mem.num_channels, 16);
    }

    #[test]
    fn preset_apply_preserves_controller_policy_knobs() {
        // A preset describes the *device*; scheduler/queue policy under test
        // must survive switching backends.
        let mut cfg = SimConfig::default().with_scheduler(SchedulerKind::WgW);
        cfg.mem.read_queue = 17;
        cfg.mem.write_hi = 99;
        cfg.mem.gmc_max_streak = 3;
        cfg.mem.page_policy = PagePolicy::Closed;
        cfg.mem.refresh_enabled = false;
        let cfg = cfg.with_preset(Preset::Hbm);
        assert_eq!(cfg.mem.read_queue, 17);
        assert_eq!(cfg.mem.write_hi, 99);
        assert_eq!(cfg.mem.gmc_max_streak, 3);
        assert_eq!(cfg.mem.page_policy, PagePolicy::Closed);
        assert!(!cfg.mem.refresh_enabled);
        assert_eq!(cfg.scheduler, SchedulerKind::WgW);
        assert_eq!(cfg.mem.num_channels, 16, "device side did switch");
    }

    #[test]
    fn preset_names_round_trip() {
        for p in Preset::ALL {
            assert_eq!(Preset::from_name(p.name()), Some(p));
            assert_eq!(Preset::from_name(&p.name().to_uppercase()), Some(p));
        }
        assert_eq!(Preset::from_name("ddr4"), None);
    }

    #[test]
    fn timing_string_rejects_malformed_input() {
        for bad in [
            "nbk",             // not key=value
            "speed=9000",      // unknown key
            "nbk=8:nbk=8",     // duplicate key
            "nbk=-8",          // not a positive integer
            "RCD=fast",        // not a number
            "CK=0",            // zero clock period
            "nbk=12",          // not a power of two
            "nbk=16:nbkgrp=3", // groups must divide banks
            "row=384",         // not a power-of-two multiple of 256
        ] {
            assert!(parse_timing_string(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn timing_string_partial_override_keeps_defaults() {
        // A string only needs to name what differs from Table II.
        let (mem, clock) = parse_timing_string("nbk=8:RRD=8").unwrap();
        assert_eq!(mem.banks_per_channel, 8);
        assert_eq!(mem.timing.t_rrd_ns, 8.0);
        assert_eq!(mem.num_channels, MemConfig::default().num_channels);
        assert_eq!(mem.timing.t_rcd_ns, MemConfig::default().timing.t_rcd_ns);
        assert_eq!(clock, ClockDomain::GDDR5);
    }
}
