//! System configuration.
//!
//! Defaults reproduce Table II of the paper: a GTX-480-class GPU with 30
//! compute units, 6 GDDR5 channels, Hynix H5GQ1H24AFR-style timing.

use crate::clock::{ClockDomain, Cycle};

/// GDDR5 timing parameters, stored in nanoseconds as the datasheet (and
/// Table II) specify them. Cycle counts are derived via [`TimingParams::in_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    pub t_rc_ns: f64,
    pub t_rcd_ns: f64,
    pub t_rp_ns: f64,
    pub t_cas_ns: f64,
    pub t_ras_ns: f64,
    pub t_rrd_ns: f64,
    pub t_wtr_ns: f64,
    pub t_faw_ns: f64,
    pub t_rtp_ns: f64,
    /// Write latency in whole command clocks (Table II: 4 tCK).
    pub t_wl_ck: Cycle,
    /// Data burst occupancy in command clocks (Table II: 2 tCK).
    pub t_burst_ck: Cycle,
    /// Rank-to-rank switch (Table II: 1 tCK; we model a single rank so this
    /// only matters for read->write bus turnaround modelling).
    pub t_rtrs_ck: Cycle,
    /// Column-to-column, same bank group (Table II: 3 tCK).
    pub t_ccdl_ck: Cycle,
    /// Column-to-column, different bank group (Table II: 2 tCK).
    pub t_ccds_ck: Cycle,
    /// Write recovery before precharge (GDDR5 datasheet; not in Table II —
    /// 12 ns is the Hynix H5GQ1H24AFR value).
    pub t_wr_ns: f64,
    /// Average refresh interval (GDDR5 datasheet: 1.9 us for 1 Gb parts).
    pub t_refi_ns: f64,
    /// All-bank refresh cycle time (datasheet: ~110 ns at this density).
    pub t_rfc_ns: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        Self {
            t_rc_ns: 40.0,
            t_rcd_ns: 12.0,
            t_rp_ns: 12.0,
            t_cas_ns: 12.0,
            t_ras_ns: 28.0,
            t_rrd_ns: 5.5,
            t_wtr_ns: 5.0,
            t_faw_ns: 23.0,
            t_rtp_ns: 2.0,
            t_wl_ck: 4,
            t_burst_ck: 2,
            t_rtrs_ck: 1,
            t_ccdl_ck: 3,
            t_ccds_ck: 2,
            t_wr_ns: 12.0,
            t_refi_ns: 1900.0,
            t_rfc_ns: 110.0,
        }
    }
}

/// All GDDR5 timing constraints pre-converted to command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingCycles {
    pub t_rc: Cycle,
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_cas: Cycle,
    pub t_ras: Cycle,
    pub t_rrd: Cycle,
    pub t_wtr: Cycle,
    pub t_faw: Cycle,
    pub t_rtp: Cycle,
    pub t_wl: Cycle,
    pub t_burst: Cycle,
    pub t_rtrs: Cycle,
    pub t_ccdl: Cycle,
    pub t_ccds: Cycle,
    pub t_wr: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
}

impl TimingParams {
    /// Convert to whole cycles in the given clock domain (rounding
    /// constraints *up*, since they are minimum delays).
    pub fn in_cycles(&self, clk: ClockDomain) -> TimingCycles {
        TimingCycles {
            t_rc: clk.ns_to_cycles(self.t_rc_ns),
            t_rcd: clk.ns_to_cycles(self.t_rcd_ns),
            t_rp: clk.ns_to_cycles(self.t_rp_ns),
            t_cas: clk.ns_to_cycles(self.t_cas_ns),
            t_ras: clk.ns_to_cycles(self.t_ras_ns),
            t_rrd: clk.ns_to_cycles(self.t_rrd_ns),
            t_wtr: clk.ns_to_cycles(self.t_wtr_ns),
            t_faw: clk.ns_to_cycles(self.t_faw_ns),
            t_rtp: clk.ns_to_cycles(self.t_rtp_ns),
            t_wl: self.t_wl_ck,
            t_burst: self.t_burst_ck,
            t_rtrs: self.t_rtrs_ck,
            t_ccdl: self.t_ccdl_ck,
            t_ccds: self.t_ccds_ck,
            t_wr: clk.ns_to_cycles(self.t_wr_ns),
            t_refi: clk.ns_to_cycles(self.t_refi_ns),
            t_rfc: clk.ns_to_cycles(self.t_rfc_ns),
        }
    }

    /// Nanoseconds of one data burst (tBURST expressed in time): used by the
    /// MERB derivation, which the paper performs in nanoseconds.
    pub fn t_burst_ns(&self, clk: ClockDomain) -> f64 {
        self.t_burst_ck as f64 * clk.tck_ns
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub size_bytes: usize,
    pub line_bytes: usize,
    pub ways: usize,
    /// Number of MSHR entries (outstanding distinct miss lines).
    pub mshr_entries: usize,
    /// Hit / lookup latency in cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// GPU-core-side configuration (Table II, "GPU System Configuration").
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of compute units (SMs). Table II: 30.
    pub num_sms: usize,
    /// SIMD width. Table II: 32.
    pub warp_size: usize,
    /// Maximum resident warps per SM (1024 threads / 32 lanes = 32).
    pub max_warps_per_sm: usize,
    pub l1: CacheConfig,
    pub l2_slice: CacheConfig,
    /// One-way crossbar pipeline latency, cycles.
    pub xbar_latency: Cycle,
    /// Per-SM injection queue capacity (requests).
    pub xbar_queue: usize,
    /// Bypass the L2 slices: reads never probe or fill the cache (MSHR
    /// merging still applies), stores go straight to the DRAM write queue.
    /// Models `ld.global.cg`-style cache-bypassed access for the
    /// calibration microbenchmarks; off for every paper figure.
    pub l2_bypass: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 30,
            warp_size: 32,
            max_warps_per_sm: 32,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 128,
                ways: 8,
                mshr_entries: 32,
                latency: 1,
            },
            l2_slice: CacheConfig {
                size_bytes: 128 * 1024,
                line_bytes: 128,
                ways: 16,
                mshr_entries: 96,
                latency: 24,
            },
            xbar_latency: 40,
            xbar_queue: 8,
            l2_bypass: false,
        }
    }
}

/// Memory-system configuration (Table II, DRAM side).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Number of independent GDDR5 channels / memory partitions. Table II: 6.
    pub num_channels: usize,
    /// Banks per channel (2 x32 chips in tandem = one rank of 16 banks).
    pub banks_per_channel: usize,
    /// Banks per bank group (Table II: 4).
    pub banks_per_group: usize,
    /// Row buffer size in bytes per bank (2 KB => 16 x 128 B lines).
    pub row_bytes: usize,
    /// Read queue capacity per controller. Table II: 64.
    pub read_queue: usize,
    /// Write queue capacity per controller. Table II: 64.
    pub write_queue: usize,
    /// Write drain high watermark. Table II: 32.
    pub write_hi: usize,
    /// Write drain low watermark. Table II: 16.
    pub write_lo: usize,
    /// GDDR5 timing.
    pub timing: TimingParams,
    /// Latency of one hop on the inter-controller coordination network used
    /// by WG-M (Section IV-C): serialisation of a 32-bit message over 16-bit
    /// links (2 cycles) plus propagation.
    pub coord_latency: Cycle,
    /// GMC baseline: maximum row-hit streak before yielding (Section II-C).
    pub gmc_max_streak: usize,
    /// GMC baseline: age threshold (cycles) above which a row-miss is
    /// force-prioritised to prevent starvation.
    pub gmc_age_threshold: Cycle,
    /// WG-W: how close (entries) to the high watermark the write queue must
    /// be before unit warp-groups are prioritised (Section IV-E: 8).
    pub wgw_margin: usize,
    /// Data-bus bursts per 128 B cache-line access: a 64-bit GDDR5 channel
    /// moves 64 B per BL8 burst (tBURST = 2 tCK), so a line is 2 bursts —
    /// matching the paper's utilisation formula, which counts multiple
    /// bursts per activate even for a single line.
    pub bursts_per_access: u64,
    /// Row-buffer management policy. The paper's GMC (and all its
    /// schedulers) assume open-page; closed-page (auto-precharge after
    /// every column access) is provided for the ablation harness.
    pub page_policy: PagePolicy,
    /// Model periodic all-bank refresh (tREFI/tRFC). On by default; the
    /// ablation harness can disable it to quantify its ~4-6% cost.
    pub refresh_enabled: bool,
    /// Route WG-family scheduler picks through the original scan-based
    /// implementations instead of the incremental indexes (DESIGN.md §13).
    /// Bit-exact with the indexed paths by contract — this flag exists so
    /// differential tests and `perfreport` can prove it. Off by default.
    pub reference_picks: bool,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            num_channels: 6,
            banks_per_channel: 16,
            banks_per_group: 4,
            row_bytes: 2048,
            read_queue: 64,
            write_queue: 64,
            write_hi: 32,
            write_lo: 16,
            timing: TimingParams::default(),
            coord_latency: 4,
            gmc_max_streak: 16,
            gmc_age_threshold: 12_000,
            wgw_margin: 8,
            bursts_per_access: 2,
            page_policy: PagePolicy::Open,
            refresh_enabled: true,
            reference_picks: false,
        }
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Leave rows open after column accesses (the paper's configuration);
    /// the transaction scheduler closes them on conflicts.
    Open,
    /// Precharge immediately after every column access (auto-precharge):
    /// no row hits, no row conflicts — the classic trade.
    Closed,
}

/// The scheduling policy run by every memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Strict first-come-first-serve over individual requests.
    Fcfs,
    /// First-ready FCFS (row hits first, then age) [Rixner+ ISCA'00].
    FrFcfs,
    /// Throughput-optimised GPU memory controller baseline (Section II-C).
    Gmc,
    /// Warp-aware FCFS over warp-groups [Yuan+ MICRO'08] (Section VI-C.2).
    Wafcfs,
    /// Single-bank warp-aware scheduling with a potential function
    /// [Lakshminarayana+ CAL'11] (Section VI-C.1). `alpha_q` is the profiled
    /// alpha in quarters: 1 => 0.25, 2 => 0.5, 3 => 0.75.
    Sbwas { alpha_q: u8 },
    /// Warp-group scheduling, single controller (Section IV-B).
    Wg,
    /// WG + multi-controller coordination (Section IV-C).
    WgM,
    /// WG-M + MERB bandwidth-aware row-miss insertion (Section IV-D).
    WgBw,
    /// WG-Bw + warp-aware write draining (Section IV-E).
    WgW,
    /// Ideal model for Fig. 4: after a warp-group's first DRAM request is
    /// serviced, its remaining requests bypass bank timing and only pay bus
    /// bandwidth.
    ZeroDivergence,
    /// Parallelism-aware batch scheduling \[Mutlu & Moscibroda, ISCA'08\]
    /// — the CPU-space batching scheme the paper contrasts with
    /// warp-groups in Section VI-C.3: batches are formed *per bank across
    /// warps* for fairness, ranked by the MAX rule, rather than per warp
    /// for latency-divergence.
    ParBs,
    /// ATLAS-style least-attained-service scheduling \[Kim+ HPCA'10\],
    /// the other CPU-space multi-controller scheme of Section VI-C.3:
    /// warps that received the least DRAM service in the previous epoch are
    /// prioritised in the next. Epoch granularity (the paper's objection:
    /// far coarser than per-warp-group coordination) is `atlas_epoch`.
    AtlasLite,
    /// The paper's *future work* (Section VIII): WG-W extended to also
    /// prioritise warp-groups whose lines are shared by multiple warps
    /// (detected at the L2 MSHRs) — finishing them unblocks several warps
    /// at once.
    WgShared,
}

impl SchedulerKind {
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::Gmc => "GMC",
            SchedulerKind::Wafcfs => "WAFCFS",
            SchedulerKind::Sbwas { .. } => "SBWAS",
            SchedulerKind::Wg => "WG",
            SchedulerKind::WgM => "WG-M",
            SchedulerKind::WgBw => "WG-Bw",
            SchedulerKind::WgW => "WG-W",
            SchedulerKind::ZeroDivergence => "ZeroDiv",
            SchedulerKind::ParBs => "PAR-BS",
            SchedulerKind::AtlasLite => "ATLAS",
            SchedulerKind::WgShared => "WG-S",
        }
    }

    /// Does this policy use the warp-group coordination network?
    pub fn coordinates(&self) -> bool {
        matches!(
            self,
            SchedulerKind::WgM | SchedulerKind::WgBw | SchedulerKind::WgW | SchedulerKind::WgShared
        )
    }
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub gpu: GpuConfig,
    pub mem: MemConfig,
    pub scheduler: SchedulerKind,
    /// Model a perfect coalescer (one request per load) — the other ideal
    /// model of Fig. 4.
    pub perfect_coalescing: bool,
    /// Hard cycle limit as a safety net; a run that hits it reports partial
    /// statistics and `finished = false`.
    pub max_cycles: Cycle,
    /// Stop once this many warp-instructions have retired GPU-wide (the
    /// paper's methodology: "1 billion instructions or to completion,
    /// whichever is earlier"). `None` runs to completion. A fractional
    /// budget (the runner uses ~70% of the kernel) keeps the measurement
    /// throughput-oriented instead of tail-warp-dominated.
    pub instruction_limit: Option<u64>,
    /// Clock domain (GDDR5 command clock).
    pub clock: ClockDomain,
    /// Attach the independent [`TimingAuditor`] to every channel: each
    /// issued DRAM command is re-validated against the JEDEC timing rules
    /// by a second, independently written state machine — catching
    /// scheduler bugs in release builds where `debug_assert!` is compiled
    /// out. Off by default (zero cost when disabled).
    pub audit: bool,
    /// Record a structured event trace (per-channel command log, warp-group
    /// lifecycle, latency-divergence samples) with a stable FNV-1a hash,
    /// exportable as JSONL. Off by default (zero cost when disabled).
    pub trace: bool,
    /// Fast-forward the main loop over cycles where no component can make
    /// progress (event-horizon skipping). Bit-exact with the cycle-by-cycle
    /// loop; on by default. Disable to force the reference loop.
    pub fast_forward: bool,
    /// Arm the in-simulator latency histograms (per-bank queue depth at
    /// enqueue, row-hit streak length, MERB occupancy, sampled read-queue
    /// depth). Recording is observation-only — armed runs are bit-exact
    /// with unarmed ones — but costs a few counter increments per DRAM
    /// command, so it is off by default.
    pub hist: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            mem: MemConfig::default(),
            scheduler: SchedulerKind::Gmc,
            perfect_coalescing: false,
            max_cycles: 200_000_000,
            instruction_limit: None,
            clock: ClockDomain::GDDR5,
            audit: false,
            trace: false,
            fast_forward: true,
            hist: false,
        }
    }
}

impl SimConfig {
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Enable the protocol-conformance auditor.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Enable structured event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable or disable idle-cycle fast-forwarding (on by default).
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Route WG-family picks through the reference scan paths
    /// (differential testing; see [`MemConfig::reference_picks`]).
    pub fn with_reference_picks(mut self, on: bool) -> Self {
        self.mem.reference_picks = on;
        self
    }

    /// Arm the in-simulator distribution histograms.
    pub fn with_hist(mut self) -> Self {
        self.hist = true;
        self
    }

    /// Lines per DRAM row (row_bytes / line_bytes).
    pub fn lines_per_row(&self) -> usize {
        self.mem.row_bytes / self.gpu.l2_slice.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_timing_in_cycles() {
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        assert_eq!(t.t_rc, 60);
        assert_eq!(t.t_rcd, 18);
        assert_eq!(t.t_rp, 18);
        assert_eq!(t.t_cas, 18);
        assert_eq!(t.t_ras, 42);
        assert_eq!(t.t_rrd, 9);
        assert_eq!(t.t_wtr, 8);
        assert_eq!(t.t_faw, 35);
        assert_eq!(t.t_rtp, 3);
        assert_eq!(t.t_wl, 4);
        assert_eq!(t.t_burst, 2);
        assert_eq!(t.t_ccdl, 3);
        assert_eq!(t.t_ccds, 2);
    }

    #[test]
    fn default_config_matches_table2() {
        let c = SimConfig::default();
        assert_eq!(c.gpu.num_sms, 30);
        assert_eq!(c.gpu.warp_size, 32);
        assert_eq!(c.mem.num_channels, 6);
        assert_eq!(c.mem.banks_per_channel, 16);
        assert_eq!(c.mem.banks_per_group, 4);
        assert_eq!(c.mem.read_queue, 64);
        assert_eq!(c.mem.write_queue, 64);
        assert_eq!(c.mem.write_hi, 32);
        assert_eq!(c.mem.write_lo, 16);
        assert_eq!(c.gpu.l1.size_bytes, 32 * 1024);
        assert_eq!(c.gpu.l1.ways, 8);
        assert_eq!(c.gpu.l2_slice.size_bytes, 128 * 1024);
        assert_eq!(c.gpu.l2_slice.ways, 16);
        assert_eq!(c.gpu.l1.line_bytes, 128);
    }

    #[test]
    fn cache_sets() {
        let c = GpuConfig::default();
        assert_eq!(c.l1.sets(), 32 * 1024 / (128 * 8));
        assert_eq!(c.l2_slice.sets(), 128 * 1024 / (128 * 16));
    }

    #[test]
    fn scheduler_names_and_coordination() {
        assert_eq!(SchedulerKind::WgW.name(), "WG-W");
        assert!(SchedulerKind::WgM.coordinates());
        assert!(SchedulerKind::WgBw.coordinates());
        assert!(!SchedulerKind::Wg.coordinates());
        assert!(!SchedulerKind::Gmc.coordinates());
    }

    #[test]
    fn lines_per_row() {
        let c = SimConfig::default();
        assert_eq!(c.lines_per_row(), 16);
    }
}
