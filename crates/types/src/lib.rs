//! Shared types for the `ldsim` warp-aware DRAM scheduling simulator.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`ids`] — strongly-typed identifiers for SMs, warps, channels, banks
//!   and warp-groups,
//! * [`clock`] — the simulation clock (GDDR5 command-clock domain),
//! * [`config`] — the full system configuration, whose defaults reproduce
//!   Table II of the paper (GTX-480-class GPU, Hynix GDDR5),
//! * [`addr`] — the GPU address mapping with the XOR channel hash and the
//!   permutation-based bank hash described in Section II-C,
//! * [`req`] — memory request/response records flowing between the SMs and
//!   the memory partitions,
//! * [`kernel`] — the tiny instruction IR executed by the SIMT core model,
//! * [`stats`] — counters, histograms and running means used by every
//!   component's statistics.

pub mod addr;
pub mod analytic;
pub mod clock;
pub mod config;
pub mod ids;
pub mod kernel;
pub mod req;
pub mod stats;

pub use addr::{AddressMapper, DecodedAddr};
pub use analytic::AnalyticLatency;
pub use clock::Cycle;
pub use config::{CacheConfig, GpuConfig, MemConfig, SchedulerKind, SimConfig, TimingParams};
pub use ids::{BankId, ChannelId, GlobalWarpId, LaneMask, RequestId, SmId, WarpGroupId, WarpId};
pub use kernel::{Instruction, KernelProgram, WarpProgram};
pub use req::{MemRequest, MemResponse, ReqKind};
