//! Memory requests and responses.
//!
//! A [`MemRequest`] is one 128 B cache-line transaction travelling from an SM
//! (or an L2 write-back) to a memory partition. Requests produced by the same
//! dynamic load instruction of one warp share a [`WarpGroupId`], and the last
//! request of the group to leave the SM carries `last_of_group = true` — this
//! is the tag the WG transaction scheduler uses to know a warp-group has
//! fully arrived (Section IV-B.2).

use crate::addr::DecodedAddr;
use crate::clock::Cycle;
use crate::ids::{RequestId, WarpGroupId};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    Read,
    Write,
}

/// One cache-line-sized memory transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRequest {
    pub id: RequestId,
    pub kind: ReqKind,
    /// 128 B line address (byte address >> 7).
    pub line_addr: u64,
    /// Decoded channel/bank/row/column.
    pub decoded: DecodedAddr,
    /// Warp-group (dynamic load) this request belongs to. Write-backs from
    /// the L2 carry the group of the instruction that *triggered* the
    /// eviction but are not counted toward warp completion.
    pub wg: WarpGroupId,
    /// True on the final request of the warp-group sent to *this* channel;
    /// the WG scheduler waits for it before the group becomes schedulable.
    pub last_of_group: bool,
    /// Number of requests in this warp-group destined for this channel
    /// (carried redundantly on each member so a controller can size the
    /// group on first sight).
    pub group_size_on_channel: u16,
    /// Cycle the warp issued the load on its SM (for end-to-end latency).
    pub issue_cycle: Cycle,
    /// Cycle the request arrived at the memory controller (stamped there).
    pub arrival_cycle: Cycle,
}

/// Completion notice returned by the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemResponse {
    pub id: RequestId,
    pub wg: WarpGroupId,
    pub line_addr: u64,
    pub kind: ReqKind,
    /// Cycle at which the data left the DRAM bus (reads) or was accepted
    /// (writes).
    pub done_cycle: Cycle,
}

impl MemRequest {
    /// True if `other` targets the same DRAM row of the same bank of the
    /// same channel.
    #[inline]
    pub fn row_buddy(&self, other: &MemRequest) -> bool {
        self.decoded.same_row(&other.decoded)
    }

    pub fn is_read(&self) -> bool {
        self.kind == ReqKind::Read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddressMapper;
    use crate::config::MemConfig;
    use crate::ids::GlobalWarpId;

    fn mk(addr: u64, kind: ReqKind) -> MemRequest {
        let m = AddressMapper::new(&MemConfig::default(), 128);
        MemRequest {
            id: RequestId(0),
            kind,
            line_addr: m.line_addr(addr),
            decoded: m.decode(addr),
            wg: WarpGroupId::new(GlobalWarpId::new(0, 0), 0),
            last_of_group: false,
            group_size_on_channel: 1,
            issue_cycle: 0,
            arrival_cycle: 0,
        }
    }

    #[test]
    fn row_buddy_same_block() {
        let a = mk(0x8000, ReqKind::Read);
        let b = mk(0x8080, ReqKind::Read);
        assert!(a.row_buddy(&b));
        assert!(a.is_read());
        assert!(!mk(0, ReqKind::Write).is_read());
    }
}
