//! Statistics primitives shared by every component.

/// A running mean that never stores samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    pub count: u64,
    pub sum: f64,
}

impl RunningMean {
    #[inline]
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A fixed-bucket histogram with a final overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub bucket_width: u64,
    pub buckets: Vec<u64>,
    pub total: u64,
    pub max_seen: u64,
}

impl Histogram {
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0 && num_buckets > 0);
        Self {
            bucket_width,
            buckets: vec![0; num_buckets],
            total: 0,
            max_seen: 0,
        }
    }

    #[inline]
    pub fn add(&mut self, sample: u64) {
        let idx = ((sample / self.bucket_width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
        self.max_seen = self.max_seen.max(sample);
    }

    /// Value at or below which `q` (0..=1) of samples fall, approximated at
    /// bucket granularity.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        self.max_seen
    }
}

/// Geometric mean of positive ratios — the aggregation the paper uses for
/// IPC speedups across benchmarks.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(
                x > 0.0 && x.is_finite(),
                "geomean requires positive finite inputs, got {x}"
            );
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.add(2.0);
        m.add(4.0);
        assert_eq!(m.mean(), 3.0);
        let mut other = RunningMean::default();
        other.add(6.0);
        m.merge(&other);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4);
        for s in [0, 5, 9, 10, 25, 39, 1000] {
            h.add(s);
        }
        assert_eq!(h.buckets, vec![3, 1, 1, 2]);
        assert_eq!(h.total, 7);
        assert_eq!(h.max_seen, 1000);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for s in 0..100u64 {
            h.add(s);
        }
        assert_eq!(h.quantile(0.5), 50);
        assert!(h.quantile(0.99) >= 98);
        assert_eq!(Histogram::new(1, 4).quantile(0.5), 0);
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geomean_rejects_infinite() {
        // A zero-IPC baseline turns a speedup ratio into +inf; the old
        // assert (x > 0.0) let it through and poisoned the mean with NaN.
        geomean(&[1.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geomean_rejects_nan() {
        geomean(&[f64::NAN]);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
