//! Statistics primitives shared by every component.

/// A running mean that never stores samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    pub count: u64,
    pub sum: f64,
}

impl RunningMean {
    #[inline]
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A log-bucketed histogram for latency-style distributions (HDR-style).
///
/// Bucket scheme, parameterised by `sub_bits` (call it *k*) and `max_exp`:
///
/// * values below `2^k` get one bucket each (exact);
/// * each octave `[2^m, 2^(m+1))` with `m >= k` is split into `2^(k-1)`
///   equal sub-buckets, bounding the relative bucket width by `2^-(k-1)`
///   (6.25% for the default `k = 5`);
/// * values at or above `2^max_exp` share one final overflow bucket.
///
/// The memory cost is fixed at construction — `(max_exp - k + 2) *
/// 2^(k-1) + 1` counters, 465 for the default scheme — so recording is a
/// single index computation plus a counter increment and never allocates:
/// safe to arm inside the simulator without perturbing it.
///
/// `quantile` has *exact documented semantics* (see its doc comment) —
/// callers can rely on `quantile(0.0) == min()`, `quantile(1.0) == max()`,
/// and every returned value being within one bucket of the true sample
/// quantile.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sub-bucket resolution: 2^sub_bits one-value buckets below
    /// 2^sub_bits, then 2^(sub_bits-1) buckets per octave.
    sub_bits: u32,
    /// Values at or above 2^max_exp land in the final overflow bucket.
    max_exp: u32,
    buckets: Vec<u64>,
    total: u64,
    sum: u128,
    min_seen: u64,
    max_seen: u64,
}

impl Histogram {
    /// A log2 histogram with `sub_bits` resolution covering `[0, 2^max_exp)`
    /// plus an overflow bucket.
    pub fn log2(sub_bits: u32, max_exp: u32) -> Self {
        assert!(
            (1..=16).contains(&sub_bits) && max_exp > sub_bits && max_exp < 64,
            "need 1 <= sub_bits ({sub_bits}) < max_exp ({max_exp}) < 64"
        );
        let half = 1usize << (sub_bits - 1);
        // Highest finite index is (max_exp - sub_bits + 2) * half - 1 (see
        // `index`); one more bucket for overflow.
        let len = (max_exp - sub_bits + 2) as usize * half + 1;
        Self {
            sub_bits,
            max_exp,
            buckets: vec![0; len],
            total: 0,
            sum: 0,
            min_seen: 0,
            max_seen: 0,
        }
    }

    /// The canonical latency scheme: exact below 32, at most 6.25% relative
    /// bucket width up to 2^32 cycles (far beyond any simulated run), then
    /// overflow. Also used for the small-valued distributions (queue depths,
    /// streaks, occupancies), which its linear region captures exactly.
    pub fn latency() -> Self {
        Self::log2(5, 32)
    }

    /// Bucket index of `v`.
    #[inline]
    fn index(&self, v: u64) -> usize {
        let k = self.sub_bits;
        if v < (1u64 << k) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        if msb >= self.max_exp {
            return self.buckets.len() - 1;
        }
        let exp = msb - k + 1;
        (exp as usize) * (1usize << (k - 1)) + (v >> exp) as usize
    }

    /// Inclusive `(lo, hi)` value bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (u64, u64) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let k = self.sub_bits;
        let half = 1usize << (k - 1);
        if i == self.buckets.len() - 1 {
            return (1u64 << self.max_exp, u64::MAX);
        }
        if i < 2 * half {
            return (i as u64, i as u64);
        }
        let exp = (i / half - 1) as u32;
        let lo = ((i % half + half) as u64) << exp;
        (lo, lo + (1u64 << exp) - 1)
    }

    #[inline]
    pub fn add(&mut self, sample: u64) {
        self.add_n(sample, 1);
    }

    /// Record `sample` `n` times at once — the bulk form used when the
    /// fast-forwarded main loop replays skipped sampling cadences in closed
    /// form, keeping armed histograms bit-exact with the reference loop.
    pub fn add_n(&mut self, sample: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.index(sample);
        self.buckets[i] += n;
        if self.total == 0 {
            self.min_seen = sample;
            self.max_seen = sample;
        } else {
            self.min_seen = self.min_seen.min(sample);
            self.max_seen = self.max_seen.max(sample);
        }
        self.total += n;
        self.sum += sample as u128 * n as u128;
    }

    /// Fold `other` into `self`. Both must use the same bucket scheme.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.sub_bits == other.sub_bits && self.max_exp == other.max_exp,
            "merging incompatible histogram schemes"
        );
        if other.total == 0 {
            return;
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        if self.total == 0 {
            self.min_seen = other.min_seen;
            self.max_seen = other.max_seen;
        } else {
            self.min_seen = self.min_seen.min(other.min_seen);
            self.max_seen = self.max_seen.max(other.max_seen);
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min_seen
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Exact arithmetic mean of the recorded samples (not bucket midpoints;
    /// the sum is carried alongside the counters). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at or below which a fraction `q` of samples fall.
    ///
    /// Exact semantics:
    /// * an empty histogram returns 0 for every `q`;
    /// * `q <= 0` returns [`Self::min`];
    /// * otherwise the target rank is `ceil(q * total)` clamped to
    ///   `[1, total]`; buckets are walked in value order until the
    ///   cumulative count reaches the rank, and that bucket's inclusive
    ///   upper bound is returned, clamped into `[min(), max()]`.
    ///
    /// Consequences: `quantile(1.0) == max()` exactly; every return value
    /// is `>=` the true rank-`target` sample and overshoots it by at most
    /// one bucket width (`<= 2^-(sub_bits-1)` relative, zero below
    /// `2^sub_bits`).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!q.is_nan(), "quantile of NaN");
        if self.total == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min_seen;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (_, hi) = self.bucket_bounds(i);
                return hi.clamp(self.min_seen, self.max_seen);
            }
        }
        self.max_seen
    }

    /// The occupied buckets as `(lo, hi, count)` triples in value order —
    /// the JSONL dump format of the `--hist` exports.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = self.bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

/// Geometric mean of positive ratios — the aggregation the paper uses for
/// IPC speedups across benchmarks.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(
                x > 0.0 && x.is_finite(),
                "geomean requires positive finite inputs, got {x}"
            );
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.add(2.0);
        m.add(4.0);
        assert_eq!(m.mean(), 3.0);
        let mut other = RunningMean::default();
        other.add(6.0);
        m.merge(&other);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.count, 3);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::latency();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn histogram_single_value_is_exact_at_every_quantile() {
        // One distinct sample occupies one bucket; the clamp into
        // [min, max] makes every quantile return it exactly, even when
        // the bucket is wide (1_000_000 sits in a 2^15-wide bucket).
        for v in [0u64, 1, 31, 32, 47, 1_000_000] {
            let mut h = Histogram::latency();
            h.add_n(v, 7);
            for q in [0.0, 0.001, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
            assert_eq!(h.mean(), v as f64);
            assert_eq!((h.min(), h.max(), h.total()), (v, v, 7));
        }
    }

    #[test]
    fn histogram_overflow_bucket_clamps_to_max_seen() {
        let mut h = Histogram::log2(5, 8); // overflow at 256
        h.add(5);
        h.add(1000);
        h.add(40_000);
        // Rank 2 and 3 both land in the overflow bucket, whose inclusive
        // upper bound (u64::MAX) must clamp to the largest real sample.
        assert_eq!(h.quantile(0.5), 40_000);
        assert_eq!(h.quantile(1.0), 40_000);
        assert_eq!(h.quantile(0.0), 5);
        let (lo, hi, cnt) = h.nonzero_buckets().last().unwrap();
        assert_eq!((lo, hi, cnt), (256, u64::MAX, 2));
    }

    #[test]
    fn histogram_q0_and_q1_are_min_and_max() {
        let mut h = Histogram::latency();
        for v in [3u64, 90, 17, 500_000, 17] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(-1.0), 3);
        assert_eq!(h.quantile(1.0), 500_000);
        assert_eq!(h.quantile(2.0), 500_000);
    }

    #[test]
    fn histogram_linear_region_is_exact() {
        // Below 2^sub_bits every value has its own bucket, so quantiles
        // are exact order statistics (upper variant).
        let mut h = Histogram::latency();
        for v in 0..32u64 {
            h.add(v);
        }
        assert_eq!(h.quantile(0.5), 15); // rank ceil(0.5*32)=16 -> value 15
        assert_eq!(h.quantile(0.25), 7);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.mean(), 15.5);
    }

    #[test]
    fn histogram_bounds_are_contiguous_and_roundtrip() {
        let h = Histogram::log2(5, 12);
        let mut expected_lo = 0u64;
        let n = {
            // finite buckets only; the overflow bucket is checked after.
            let mut i = 0;
            while h.bucket_bounds(i).1 != u64::MAX {
                i += 1;
            }
            i
        };
        for i in 0..n {
            let (lo, hi) = h.bucket_bounds(i);
            assert_eq!(lo, expected_lo, "gap before bucket {i}");
            assert!(hi >= lo);
            // Every value inside the bucket indexes back to it.
            for v in [lo, (lo + hi) / 2, hi] {
                assert_eq!(h.index(v), i, "v={v}");
            }
            expected_lo = hi + 1;
        }
        assert_eq!(expected_lo, 1 << 12, "finite range must end at 2^max_exp");
        assert_eq!(h.bucket_bounds(n), (1 << 12, u64::MAX));
        assert_eq!(h.index(1 << 12), n);
        assert_eq!(h.index(u64::MAX), n);
    }

    #[test]
    fn histogram_merge_matches_combined_adds() {
        let mut a = Histogram::latency();
        let mut b = Histogram::latency();
        let mut both = Histogram::latency();
        for (i, v) in [0u64, 5, 33, 900, 70_000, 12].iter().enumerate() {
            if i % 2 == 0 {
                a.add(*v)
            } else {
                b.add(*v)
            }
            both.add(*v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is a no-op either way.
        a.merge(&Histogram::latency());
        assert_eq!(a, both);
        let mut empty = Histogram::latency();
        empty.merge(&both);
        assert_eq!(empty, both);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn histogram_merge_rejects_mismatched_schemes() {
        let mut a = Histogram::log2(5, 32);
        a.merge(&Histogram::log2(4, 32));
    }

    #[test]
    fn histogram_merge_of_disjoint_ranges_preserves_extremes_and_quantiles() {
        // Two histograms whose sample ranges do not overlap: the merge's
        // min/max must span both, and quantiles must jump across the gap
        // rather than interpolate into it.
        let mut lo = Histogram::latency();
        let mut hi = Histogram::latency();
        for v in [10u64, 12, 14, 16, 18, 20] {
            lo.add(v);
        }
        for v in [5000u64, 5200, 5400, 6000] {
            hi.add(v);
        }
        let (lo_alone, hi_alone) = (lo.clone(), hi.clone());
        lo.merge(&hi);
        assert_eq!(lo.total(), 10);
        assert_eq!(lo.min(), 10);
        assert_eq!(lo.max(), 6000);
        assert!(
            (lo.mean() - (90.0 + 21_600.0) / 10.0).abs() < 1e-9,
            "merged mean must be the exact combined mean"
        );
        // Ranks inside the low range resolve there; ranks past it land in
        // the high range — nothing is ever reported from the empty gap.
        assert!(lo.quantile(0.3) <= lo_alone.max());
        assert!(lo.quantile(0.9) >= hi_alone.min());
        let p50 = lo.quantile(0.5);
        assert!(
            p50 <= lo_alone.max() || p50 >= hi_alone.min(),
            "quantile {p50} interpolated into the empty gap"
        );
        assert_eq!(lo.quantile(1.0), 6000);
        assert_eq!(lo.quantile(0.0), 10);
    }

    #[test]
    fn histogram_empty_merge_identities() {
        let mut a = Histogram::latency();
        a.merge(&Histogram::latency());
        assert!(a.is_empty());
        assert_eq!(a.quantile(0.5), 0, "empty-into-empty stays empty");
        // Empty absorbing a populated histogram must adopt its extremes
        // (not keep the 0-initialised min).
        let mut src = Histogram::latency();
        src.add(700);
        src.add(900);
        a.merge(&src);
        assert_eq!((a.min(), a.max(), a.total()), (700, 900, 2));
        assert_eq!(a.quantile(0.0), 700);
    }

    #[test]
    fn histogram_single_bucket_quantiles_clamp_to_observed_range() {
        // Distinct values that all land in one log bucket (width 32 at this
        // magnitude): every quantile is answered from that bucket, clamped
        // to the really-observed [min, max] — never the raw bucket bound.
        let mut h = Histogram::latency();
        for v in [1000u64, 1001, 1002] {
            h.add(v);
        }
        let (blo, bhi) = {
            // All three samples share a bucket.
            let occupied: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
            assert_eq!(occupied.len(), 1, "samples must share one bucket");
            (occupied[0].0, occupied[0].1)
        };
        assert!(blo <= 1000 && bhi >= 1002);
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile(q);
            assert!(
                (1000..=1002).contains(&v),
                "quantile({q}) = {v} escaped the observed range"
            );
        }
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(1.0), 1002);
    }

    /// Property test (seeded LCG — no external crates): for random sample
    /// sets, `quantile(q)` must lie between the exact upper order statistic
    /// and that statistic scaled by one bucket width (6.25% for sub_bits=5).
    #[test]
    fn histogram_quantile_tracks_exact_order_statistics() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..50 {
            let n = 1 + (next() % 400) as usize;
            let mut samples: Vec<u64> = (0..n)
                .map(|_| match next() % 3 {
                    0 => next() % 32,         // linear region
                    1 => next() % 4096,       // low octaves
                    _ => next() % 10_000_000, // deep octaves
                })
                .collect();
            let mut h = Histogram::latency();
            for &s in &samples {
                h.add(s);
            }
            samples.sort_unstable();
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = samples[rank - 1];
                let got = h.quantile(q);
                assert!(
                    got >= exact,
                    "trial {trial} q={q}: quantile {got} below exact {exact}"
                );
                let bound = exact + exact / 16 + 1;
                assert!(
                    got <= bound,
                    "trial {trial} q={q}: quantile {got} exceeds bound {bound} (exact {exact})"
                );
            }
        }
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geomean_rejects_infinite() {
        // A zero-IPC baseline turns a speedup ratio into +inf; the old
        // assert (x > 0.0) let it through and poisoned the mean with NaN.
        geomean(&[1.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geomean_rejects_nan() {
        geomean(&[f64::NAN]);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
