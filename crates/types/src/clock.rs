//! Simulation clock.
//!
//! The whole simulator runs in a single clock domain: the GDDR5 *command
//! clock* (tCK = 0.667 ns, 1.5 GHz). The GTX-480 core clock the paper models
//! (1.4 GHz) is within 7% of this, and — as DESIGN.md argues — unifying the
//! domains does not change any scheduler ordering, only absolute IPC scale.

/// A point in simulated time, measured in GDDR5 command-clock cycles.
pub type Cycle = u64;

/// Converts between nanoseconds and command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    /// Clock period in nanoseconds (GDDR5: 0.667).
    pub tck_ns: f64,
}

impl ClockDomain {
    pub const GDDR5: ClockDomain = ClockDomain { tck_ns: 0.667 };

    /// Round a nanosecond delay *up* to a whole number of cycles: DRAM timing
    /// constraints are minimums, so rounding down would violate the datasheet.
    #[inline]
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        (ns / self.tck_ns).ceil() as Cycle
    }

    #[inline]
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.tck_ns
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        Self::GDDR5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_up() {
        let c = ClockDomain::GDDR5;
        // tRCD = 12ns / 0.667ns = 17.99 -> 18 cycles.
        assert_eq!(c.ns_to_cycles(12.0), 18);
        // tRRD = 5.5ns / 0.667 = 8.24 -> 9 cycles.
        assert_eq!(c.ns_to_cycles(5.5), 9);
        // exact multiples stay exact
        assert_eq!(c.ns_to_cycles(0.667), 1);
    }

    #[test]
    fn roundtrip_is_monotone() {
        let c = ClockDomain::GDDR5;
        for ns in [0.5, 1.0, 2.0, 12.0, 23.0, 28.0, 40.0] {
            let cy = c.ns_to_cycles(ns);
            assert!(c.cycles_to_ns(cy) >= ns - 1e-9, "ns={ns} cy={cy}");
        }
    }
}
