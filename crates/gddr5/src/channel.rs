//! One GDDR5 channel: 16 banks in 4 bank groups sharing a command bus and a
//! 64-bit data bus.
//!
//! Channel-global constraints enforced here, on top of the per-bank windows
//! of [`crate::bank::Bank`]:
//!
//! * **tRRD** — minimum spacing between ACTs to *any* two banks;
//! * **tFAW** — at most four ACTs in any rolling tFAW window;
//! * **tCCDL / tCCDS** — column-command spacing, longer within a bank group
//!   than across groups (the GDDR5 bank-group architecture of Section II-B);
//! * **data-bus occupancy** — each column command owns the bus for tBURST
//!   cycles, offset by tCAS (reads) or tWL (writes);
//! * **tWTR** — write-data-to-read-command turnaround;
//! * **read→write turnaround** — a write burst may not chase a read burst
//!   closer than tRTRS on the bus.

use crate::audit::{CmdEvent, CmdKind, TimingAuditor, Violation};
use crate::bank::Bank;
use ldsim_types::clock::Cycle;
use ldsim_types::config::{MemConfig, TimingCycles};
use ldsim_types::ids::BankId;
use ldsim_types::stats::Histogram;

/// A DRAM command, as placed in per-bank command queues by the transaction
/// scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    Act {
        bank: BankId,
        row: u32,
    },
    Pre {
        bank: BankId,
    },
    /// Column read; `req` is an opaque tag the controller uses to route the
    /// completion back to the originating request.
    Read {
        bank: BankId,
        req: u64,
    },
    Write {
        bank: BankId,
        req: u64,
    },
}

impl Command {
    pub fn bank(&self) -> BankId {
        match *self {
            Command::Act { bank, .. }
            | Command::Pre { bank }
            | Command::Read { bank, .. }
            | Command::Write { bank, .. } => bank,
        }
    }
}

/// Counters the channel maintains; the source of Fig. 11 (bandwidth
/// utilisation) and the Section VI-B power inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    pub acts: u64,
    pub pres: u64,
    pub reads: u64,
    pub writes: u64,
    /// Cycles the data bus carried data.
    pub data_bus_busy: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
    /// Column accesses that required a PRE+ACT first (counted at ACT; the
    /// remaining column accesses are row hits).
    pub row_misses: u64,
    /// Bus-only reads issued by the zero-divergence ideal model; excluded
    /// from the row-hit-rate statistic but included in bus utilisation.
    pub fast_reads: u64,
}

impl ChannelStats {
    /// Row-buffer hit rate: every ACT corresponds to exactly one column
    /// access that missed; everything else streamed from an open row.
    pub fn row_hit_rate(&self) -> f64 {
        let col = self.reads + self.writes;
        if col == 0 {
            0.0
        } else {
            1.0 - (self.acts.min(col) as f64 / col as f64)
        }
    }

    /// Column accesses that hit the open row.
    pub fn row_hits(&self) -> u64 {
        (self.reads + self.writes).saturating_sub(self.acts)
    }

    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.data_bus_busy as f64 / elapsed as f64
        }
    }
}

/// One GDDR5 channel device.
#[derive(Debug, Clone)]
pub struct Channel {
    pub banks: Vec<Bank>,
    t: TimingCycles,
    banks_per_group: usize,
    /// Data bursts per column access (2 for 128 B lines on a 64-bit bus).
    bursts: u64,
    /// Cycle of the most recent ACT to any bank (tRRD).
    last_act: Option<Cycle>,
    /// Rolling window of the last four ACT cycles (tFAW).
    act_window: [Cycle; 4],
    act_window_len: usize,
    /// Earliest cycle the data bus is free again.
    bus_free: Cycle,
    /// End cycle of the most recent *read* data burst (read→write turnaround).
    last_read_data_end: Cycle,
    /// End cycle of the most recent *write* data burst (tWTR).
    last_write_data_end: Cycle,
    /// (cycle, bank group) of the most recent column command (tCCDL/tCCDS).
    last_col: Option<(Cycle, u8)>,
    /// Next cycle an all-bank refresh falls due (tREFI cadence).
    next_refresh: Cycle,
    pub stats: ChannelStats,
    /// Independent protocol conformance checker (None = zero cost).
    auditor: Option<Box<TimingAuditor>>,
    /// Structured command log for the event tracer (None = zero cost).
    cmd_log: Option<Vec<CmdEvent>>,
    /// Row-hit streak length distribution, one sample per row closure
    /// (None = zero cost). Observation-only: never read back by the
    /// scheduler, so arming it cannot perturb timing.
    streak_hist: Option<Box<Histogram>>,
}

impl Channel {
    pub fn new(mem: &MemConfig, t: TimingCycles) -> Self {
        Self {
            banks: vec![Bank::default(); mem.banks_per_channel],
            t,
            banks_per_group: mem.banks_per_group,
            bursts: mem.bursts_per_access.max(1),
            last_act: None,
            act_window: [0; 4],
            act_window_len: 0,
            bus_free: 0,
            last_read_data_end: 0,
            last_write_data_end: 0,
            last_col: None,
            next_refresh: t.t_refi,
            stats: ChannelStats::default(),
            auditor: None,
            cmd_log: None,
            streak_hist: None,
        }
    }

    /// Attach the independent [`TimingAuditor`]: every subsequently issued
    /// command is re-validated by a second state machine (release builds
    /// included — the channel's own checks are `debug_assert!`s).
    pub fn enable_audit(&mut self) {
        self.auditor = Some(Box::new(TimingAuditor::from_parts(
            self.banks.len(),
            self.banks_per_group,
            self.bursts,
            self.t,
        )));
    }

    /// Start recording every issued command into a structured log.
    pub fn enable_cmd_log(&mut self) {
        self.cmd_log = Some(Vec::new());
    }

    /// Start recording the row-hit streak length (bursts served per
    /// activate) of every row the channel closes.
    pub fn enable_streak_hist(&mut self) {
        self.streak_hist = Some(Box::new(Histogram::latency()));
    }

    /// The recorded row-hit streak distribution (None if recording is off).
    /// Call [`Self::flush_streak_hist`] first to include still-open rows.
    pub fn streak_hist(&self) -> Option<&Histogram> {
        self.streak_hist.as_deref()
    }

    /// Record the streaks of rows still open at end of run, which never saw
    /// the closing PRE that normally samples them. Idempotent per open row
    /// only if called once — call exactly once, at collection.
    pub fn flush_streak_hist(&mut self) {
        let Some(h) = self.streak_hist.as_deref_mut() else {
            return;
        };
        for b in &self.banks {
            if b.is_open() {
                h.add(b.hits_since_act as u64);
            }
        }
    }

    /// Violations the auditor has flagged so far (None if auditing is off).
    pub fn audit_violations(&self) -> Option<&[Violation]> {
        self.auditor.as_deref().map(|a| a.violations())
    }

    /// Total violation count (0 if auditing is off).
    pub fn audit_violation_count(&self) -> u64 {
        self.auditor.as_deref().map_or(0, |a| a.violation_count())
    }

    /// Commands the auditor has observed (0 if auditing is off).
    pub fn audit_observed(&self) -> u64 {
        self.auditor.as_deref().map_or(0, |a| a.observed())
    }

    /// Take the recorded command log (empty if logging is off). Logging
    /// continues; only the accumulated events are moved out.
    pub fn take_cmd_log(&mut self) -> Vec<CmdEvent> {
        self.cmd_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Feed one command to the auditor and/or log. The `Option` dance keeps
    /// the disabled path to two branch-on-None tests.
    #[inline]
    fn observe(&mut self, kind: CmdKind, bank: u8, row: u32, cycle: Cycle) {
        if self.auditor.is_none() && self.cmd_log.is_none() {
            return;
        }
        let ev = CmdEvent {
            cycle,
            kind,
            bank,
            row,
        };
        if let Some(a) = self.auditor.as_deref_mut() {
            a.observe(&ev);
        }
        if let Some(log) = self.cmd_log.as_mut() {
            log.push(ev);
        }
    }

    #[inline]
    pub fn timing(&self) -> &TimingCycles {
        &self.t
    }

    #[inline]
    pub fn bank(&self, b: BankId) -> &Bank {
        &self.banks[b.0 as usize]
    }

    #[inline]
    fn group_of(&self, b: BankId) -> u8 {
        (b.0 as usize / self.banks_per_group) as u8
    }

    /// Minimum spacing from the previous column command to one issued now
    /// targeting `bank` (tCCDL within the same bank group, tCCDS across).
    #[inline]
    fn col_ready(&self, bank: BankId) -> Cycle {
        match self.last_col {
            None => 0,
            Some((cyc, grp)) => {
                let gap = if grp == self.group_of(bank) {
                    self.t.t_ccdl
                } else {
                    self.t.t_ccds
                };
                cyc + gap
            }
        }
    }

    /// Is an ACT to `bank` for any row legal at `now`?
    pub fn can_act(&self, bank: BankId, now: Cycle) -> bool {
        let b = self.bank(bank);
        if b.is_open() || now < b.act_ready {
            return false;
        }
        if let Some(last) = self.last_act {
            if now < last + self.t.t_rrd {
                return false;
            }
        }
        // tFAW: the 4th-most-recent ACT must be at least tFAW ago.
        if self.act_window_len == 4 && now < self.act_window[0] + self.t.t_faw {
            return false;
        }
        true
    }

    /// Is a PRE to `bank` legal at `now`?
    pub fn can_pre(&self, bank: BankId, now: Cycle) -> bool {
        let b = self.bank(bank);
        b.is_open() && now >= b.pre_ready
    }

    /// Is a column READ on `bank`'s open row legal at `now`?
    pub fn can_read(&self, bank: BankId, now: Cycle) -> bool {
        let b = self.bank(bank);
        if !b.is_open() || now < b.rd_ready {
            return false;
        }
        if now < self.col_ready(bank) {
            return false;
        }
        // tWTR: read command must wait after the last write data burst ends.
        if now < self.last_write_data_end + self.t.t_wtr {
            return false;
        }
        // Data bus must be free when this read's burst starts.
        now + self.t.t_cas >= self.bus_free
    }

    /// Is a column WRITE on `bank`'s open row legal at `now`?
    pub fn can_write(&self, bank: BankId, now: Cycle) -> bool {
        let b = self.bank(bank);
        if !b.is_open() || now < b.wr_ready {
            return false;
        }
        if now < self.col_ready(bank) {
            return false;
        }
        // Read→write: the write burst must trail the last read burst by the
        // rank-to-rank/turnaround gap.
        if now + self.t.t_wl < self.last_read_data_end + self.t.t_rtrs {
            return false;
        }
        now + self.t.t_wl >= self.bus_free
    }

    /// Check legality of any command.
    pub fn can_issue(&self, cmd: &Command, now: Cycle) -> bool {
        match *cmd {
            Command::Act { bank, .. } => self.can_act(bank, now),
            Command::Pre { bank } => self.can_pre(bank, now),
            Command::Read { bank, .. } => self.can_read(bank, now),
            Command::Write { bank, .. } => self.can_write(bank, now),
        }
    }

    /// Issue an ACT. Caller must have checked [`Self::can_act`].
    pub fn issue_act(&mut self, bank: BankId, row: u32, now: Cycle) {
        debug_assert!(self.can_act(bank, now));
        self.observe(CmdKind::Act, bank.0, row, now);
        self.banks[bank.0 as usize].do_act(now, row, &self.t);
        self.last_act = Some(now);
        if self.act_window_len == 4 {
            self.act_window.copy_within(1..4, 0);
            self.act_window[3] = now;
        } else {
            self.act_window[self.act_window_len] = now;
            self.act_window_len += 1;
        }
        self.stats.acts += 1;
        self.stats.row_misses += 1;
    }

    /// Issue a PRE. Caller must have checked [`Self::can_pre`].
    pub fn issue_pre(&mut self, bank: BankId, now: Cycle) {
        debug_assert!(self.can_pre(bank, now));
        self.observe(CmdKind::Pre, bank.0, 0, now);
        if let Some(h) = self.streak_hist.as_deref_mut() {
            // A PRE closes the row, ending its hit streak: sample the
            // bursts-per-activate counter before do_pre freezes it.
            h.add(self.banks[bank.0 as usize].hits_since_act as u64);
        }
        self.banks[bank.0 as usize].do_pre(now, &self.t);
        self.stats.pres += 1;
    }

    /// Issue a column READ; returns the cycle the data burst completes (the
    /// request's DRAM completion time). Caller must have checked
    /// [`Self::can_read`].
    pub fn issue_read(&mut self, bank: BankId, now: Cycle) -> Cycle {
        debug_assert!(self.can_read(bank, now));
        self.observe(CmdKind::Read, bank.0, 0, now);
        self.banks[bank.0 as usize].do_read(now, &self.t, self.bursts as u8);
        let data_start = now + self.t.t_cas;
        let data_end = data_start + self.t.t_burst * self.bursts;
        self.bus_free = data_end;
        self.last_read_data_end = data_end;
        self.last_col = Some((now, self.group_of(bank)));
        self.stats.reads += 1;
        self.stats.data_bus_busy += self.t.t_burst * self.bursts;
        data_end
    }

    /// Issue a column WRITE; returns the cycle the data burst completes.
    /// Caller must have checked [`Self::can_write`].
    pub fn issue_write(&mut self, bank: BankId, now: Cycle) -> Cycle {
        debug_assert!(self.can_write(bank, now));
        self.observe(CmdKind::Write, bank.0, 0, now);
        self.banks[bank.0 as usize].do_write(now, &self.t, self.bursts as u8);
        let data_start = now + self.t.t_wl;
        let data_end = data_start + self.t.t_burst * self.bursts;
        self.bus_free = data_end;
        self.last_write_data_end = data_end;
        self.last_col = Some((now, self.group_of(bank)));
        self.stats.writes += 1;
        self.stats.data_bus_busy += self.t.t_burst * self.bursts;
        data_end
    }

    /// Issue any command; returns the data completion cycle for column
    /// commands.
    pub fn issue(&mut self, cmd: &Command, now: Cycle) -> Option<Cycle> {
        match *cmd {
            Command::Act { bank, row } => {
                self.issue_act(bank, row, now);
                None
            }
            Command::Pre { bank } => {
                self.issue_pre(bank, now);
                None
            }
            Command::Read { bank, .. } => Some(self.issue_read(bank, now)),
            Command::Write { bank, .. } => Some(self.issue_write(bank, now)),
        }
    }

    /// Earliest cycle `cmd` becomes legal, assuming no other command is
    /// issued in between ([`Cycle::MAX`] when the bank is in the wrong
    /// row-buffer state, e.g. ACT to an open bank). This is the exact
    /// inverse of [`Self::can_issue`]: for any returned `r < Cycle::MAX`,
    /// `can_issue(cmd, t)` is false for `t < r` and true at `t == r`.
    pub fn ready_cycle(&self, cmd: &Command) -> Cycle {
        match *cmd {
            Command::Act { bank, .. } => {
                let Some(mut r) = self.bank(bank).act_ready_at() else {
                    return Cycle::MAX;
                };
                if let Some(last) = self.last_act {
                    r = r.max(last + self.t.t_rrd);
                }
                if self.act_window_len == 4 {
                    r = r.max(self.act_window[0] + self.t.t_faw);
                }
                r
            }
            Command::Pre { bank } => self.bank(bank).pre_ready_at().unwrap_or(Cycle::MAX),
            Command::Read { bank, .. } => {
                let Some(r) = self.bank(bank).rd_ready_at() else {
                    return Cycle::MAX;
                };
                r.max(self.col_ready(bank))
                    .max(self.last_write_data_end + self.t.t_wtr)
                    .max(self.bus_free.saturating_sub(self.t.t_cas))
            }
            Command::Write { bank, .. } => {
                let Some(r) = self.bank(bank).wr_ready_at() else {
                    return Cycle::MAX;
                };
                r.max(self.col_ready(bank))
                    .max((self.last_read_data_end + self.t.t_rtrs).saturating_sub(self.t.t_wl))
                    .max(self.bus_free.saturating_sub(self.t.t_wl))
            }
        }
    }

    /// Earliest cycle [`Self::try_fast_read`] would succeed.
    #[inline]
    pub fn fast_read_ready(&self) -> Cycle {
        self.bus_free.saturating_sub(self.t.t_cas)
    }

    /// Next cycle an all-bank refresh falls due.
    #[inline]
    pub fn next_refresh(&self) -> Cycle {
        self.next_refresh
    }

    /// Is an all-bank refresh due (tREFI elapsed since the last one)?
    pub fn refresh_due(&self, now: Cycle) -> bool {
        now >= self.next_refresh
    }

    /// Can REFab issue now? Requires every bank precharged and past its
    /// activate-ready point (tRP from the closing precharges).
    pub fn can_refresh(&self, now: Cycle) -> bool {
        self.banks
            .iter()
            .all(|b| !b.is_open() && now >= b.act_ready)
    }

    /// Issue an all-bank refresh: every bank is unavailable for tRFC.
    pub fn issue_refresh(&mut self, now: Cycle) {
        debug_assert!(self.can_refresh(now));
        self.observe(CmdKind::RefAb, 0, 0, now);
        for b in &mut self.banks {
            b.act_ready = b.act_ready.max(now + self.t.t_rfc);
        }
        self.next_refresh = now + self.t.t_refi;
        self.stats.refreshes += 1;
    }

    /// Number of banks with an open row.
    pub fn open_banks(&self) -> usize {
        self.banks.iter().filter(|b| b.is_open()).count()
    }

    /// Zero-divergence ideal model (Fig. 4): a "bus-only" read that bypasses
    /// all bank timing but still occupies the data bus for tBURST cycles —
    /// the paper's model "abstracts away the bank conflicts for all but one
    /// request for each warp, but still faithfully models DRAM bus bandwidth
    /// and contention". Returns the data-end cycle if the bus slot is free.
    pub fn try_fast_read(&mut self, now: Cycle) -> Option<Cycle> {
        if now + self.t.t_cas < self.bus_free {
            return None;
        }
        self.observe(CmdKind::FastRead, 0, 0, now);
        let data_start = now + self.t.t_cas;
        let data_end = data_start + self.t.t_burst * self.bursts;
        self.bus_free = data_end;
        self.last_read_data_end = data_end;
        self.stats.fast_reads += 1;
        self.stats.data_bus_busy += self.t.t_burst * self.bursts;
        Some(data_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;

    /// Single-burst channel: isolates the command-protocol constraints from
    /// data-bus occupancy in the spacing tests below.
    fn ch() -> Channel {
        let mem = MemConfig {
            bursts_per_access: 1,
            ..MemConfig::default()
        };
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        Channel::new(&mem, t)
    }

    /// Default (two-burst) channel, as the full system runs it.
    fn ch2() -> Channel {
        let mem = MemConfig::default();
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        Channel::new(&mem, t)
    }

    #[test]
    fn trrd_spaces_activates() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        assert!(!c.can_act(BankId(1), t.t_rrd - 1));
        assert!(c.can_act(BankId(1), t.t_rrd));
    }

    #[test]
    fn tfaw_limits_four_acts() {
        // With the default GDDR5 numbers, cycle rounding makes 4*tRRD (36)
        // slightly exceed tFAW (35), so widen tFAW to make the four-activate
        // window clearly binding and check the rolling-window logic.
        let mem = MemConfig::default();
        let tp = TimingParams {
            t_faw_ns: 60.0, // 90 cycles
            ..TimingParams::default()
        };
        let t = tp.in_cycles(ClockDomain::GDDR5);
        let mut c = Channel::new(&mem, t);
        let mut now = 0;
        for b in 0..4u8 {
            while !c.can_act(BankId(b), now) {
                now += 1;
            }
            c.issue_act(BankId(b), 1, now);
        }
        // 4 ACTs issued at 0, tRRD, 2tRRD, 3tRRD; the 5th must wait for the
        // first ACT + tFAW even though tRRD has long elapsed.
        let now5 = now + t.t_rrd;
        assert!(now5 < t.t_faw, "test assumes tFAW binds");
        assert!(!c.can_act(BankId(4), now5));
        assert!(c.can_act(BankId(4), t.t_faw));
        // After the fifth ACT the window slides: the sixth is limited by the
        // ACT at tRRD (index 1), not the one at 0.
        c.issue_act(BankId(4), 1, t.t_faw);
        assert!(!c.can_act(BankId(5), t.t_rrd + t.t_faw - 1));
        assert!(c.can_act(BankId(5), t.t_rrd + t.t_faw));
    }

    #[test]
    fn read_needs_trcd_after_act() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(2), 9, 10);
        assert!(!c.can_read(BankId(2), 10 + t.t_rcd - 1));
        assert!(c.can_read(BankId(2), 10 + t.t_rcd));
        let done = c.issue_read(BankId(2), 10 + t.t_rcd);
        assert_eq!(done, 10 + t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn bank_group_column_spacing() {
        let mut c = ch();
        let t = *c.timing();
        // Open rows in bank 0 (group 0) and banks 1 (group 0) and 4 (group 1).
        let mut now = 0;
        for b in [0u8, 1, 4] {
            while !c.can_act(BankId(b), now) {
                now += 1;
            }
            c.issue_act(BankId(b), 1, now);
        }
        let mut rd = now + t.t_rcd;
        while !c.can_read(BankId(0), rd) {
            rd += 1;
        }
        c.issue_read(BankId(0), rd);
        // Same group (bank 1): must wait tCCDL; different group (bank 4):
        // tCCDS suffices.
        assert!(!c.can_read(BankId(1), rd + t.t_ccds));
        assert!(c.can_read(BankId(4), rd + t.t_ccds));
        assert!(c.can_read(BankId(1), rd + t.t_ccdl));
    }

    #[test]
    fn wtr_turnaround_blocks_read_after_write() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        let wr = t.t_rcd;
        let wr_end = c.issue_write(BankId(0), wr);
        assert_eq!(wr_end, wr + t.t_wl + t.t_burst);
        // A read command must wait until write-data-end + tWTR.
        assert!(!c.can_read(BankId(0), wr_end + t.t_wtr - 1));
        assert!(c.can_read(BankId(0), wr_end + t.t_wtr));
    }

    #[test]
    fn data_bus_serialises_bursts() {
        let mut c = ch();
        let t = *c.timing();
        let mut now = 0;
        for b in [0u8, 4] {
            while !c.can_act(BankId(b), now) {
                now += 1;
            }
            c.issue_act(BankId(b), 1, now);
        }
        let rd1 = now + t.t_rcd;
        let end1 = c.issue_read(BankId(0), rd1);
        // A second read whose burst would start before end1 is illegal...
        let too_soon = end1 - t.t_cas - 1;
        if too_soon > rd1 + t.t_ccds {
            assert!(!c.can_read(BankId(4), too_soon));
        }
        // ...but one aligning exactly with end1 is fine.
        let ok_at = end1 - t.t_cas;
        assert!(c.can_read(BankId(4), ok_at.max(rd1 + t.t_ccds)));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        c.issue_read(BankId(0), t.t_rcd);
        c.issue_read(BankId(0), t.t_rcd + t.t_ccdl);
        assert_eq!(c.stats.acts, 1);
        assert_eq!(c.stats.reads, 2);
        assert_eq!(c.stats.row_misses, 1);
        assert_eq!(c.stats.row_hits(), 1);
        assert_eq!(c.stats.data_bus_busy, 2 * t.t_burst);
        assert!((c.stats.row_hit_rate() - 0.5).abs() < 1e-9);
        assert!(c.stats.utilization(100) > 0.0);
    }

    #[test]
    fn pre_then_act_same_bank_honours_trp_and_trc() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        let pre_at = c.bank(BankId(0)).pre_ready;
        assert!(c.can_pre(BankId(0), pre_at));
        c.issue_pre(BankId(0), pre_at);
        let earliest = (pre_at + t.t_rp).max(t.t_rc);
        assert!(!c.can_act(BankId(0), earliest - 1));
        assert!(c.can_act(BankId(0), earliest));
    }

    #[test]
    fn two_burst_access_occupies_four_cycles() {
        // The default configuration moves a 128 B line as two BL8 bursts:
        // the data burst lasts 2 x tBURST and back-to-back column commands
        // are bus-limited beyond tCCDS.
        let mut c = ch2();
        let t = *c.timing();
        let mut now = 0;
        for b in [0u8, 4] {
            while !c.can_act(BankId(b), now) {
                now += 1;
            }
            c.issue_act(BankId(b), 1, now);
        }
        let rd = now + t.t_rcd;
        let done = c.issue_read(BankId(0), rd);
        assert_eq!(done, rd + t.t_cas + 2 * t.t_burst);
        // tCCDS alone is not enough: the bus is still carrying burst #2.
        assert!(!c.can_read(BankId(4), rd + t.t_ccds));
        assert!(c.can_read(BankId(4), rd + 2 * t.t_burst));
        // MERB counter advanced by two bursts.
        assert_eq!(c.bank(BankId(0)).hits_since_act, 2);
    }

    #[test]
    fn trc_binds_same_bank_reactivation() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        // Precharge as early as legal, then the next ACT must still wait
        // for tRC from the first ACT (tRAS + tRP == tRC for these timings).
        let pre = c.bank(BankId(0)).pre_ready;
        c.issue_pre(BankId(0), pre);
        let earliest = t.t_rc.max(pre + t.t_rp);
        assert!(!c.can_act(BankId(0), earliest - 1));
        assert!(c.can_act(BankId(0), earliest));
    }

    #[test]
    fn write_recovery_blocks_precharge() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(2), 4, 0);
        let wr_at = c.bank(BankId(2)).wr_ready;
        c.issue_write(BankId(2), wr_at);
        let pre_ok = (t.t_ras).max(wr_at + t.t_wl + t.t_burst + t.t_wr);
        assert!(!c.can_pre(BankId(2), pre_ok - 1));
        assert!(c.can_pre(BankId(2), pre_ok));
    }

    #[test]
    fn fast_read_shares_the_bus_with_normal_reads() {
        let mut c = ch2();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        let rd = t.t_rcd;
        let end = c.issue_read(BankId(0), rd);
        // A fast read cannot start a burst before the normal one finishes.
        assert!(c.try_fast_read(end - t.t_cas - 1).is_none());
        let done = c.try_fast_read(end - t.t_cas).unwrap();
        assert_eq!(done, end + 2 * t.t_burst);
        assert_eq!(c.stats.fast_reads, 1);
        // Bus accounting covers both.
        assert_eq!(c.stats.data_bus_busy, 4 * t.t_burst);
    }

    #[test]
    fn utilization_is_busy_over_elapsed() {
        let mut c = ch();
        let t = *c.timing();
        c.issue_act(BankId(0), 1, 0);
        c.issue_read(BankId(0), t.t_rcd);
        let util = c.stats.utilization(100);
        assert!((util - t.t_burst as f64 / 100.0).abs() < 1e-12);
        assert_eq!(c.stats.utilization(0), 0.0);
    }

    #[test]
    fn command_dispatch_via_can_issue_and_issue() {
        let mut c = ch();
        let t = *c.timing();
        let act = Command::Act {
            bank: BankId(3),
            row: 9,
        };
        assert!(c.can_issue(&act, 0));
        assert_eq!(c.issue(&act, 0), None);
        let rd = Command::Read {
            bank: BankId(3),
            req: 42,
        };
        assert!(!c.can_issue(&rd, 1));
        assert!(c.can_issue(&rd, t.t_rcd));
        let done = c.issue(&rd, t.t_rcd);
        assert_eq!(done, Some(t.t_rcd + t.t_cas + t.t_burst));
        assert_eq!(rd.bank(), BankId(3));
    }

    #[test]
    fn refresh_cadence_and_blackout() {
        let mut c = ch();
        let t = *c.timing();
        assert!(!c.refresh_due(t.t_refi - 1));
        assert!(c.refresh_due(t.t_refi));
        // Open a bank: refresh is illegal until it is closed.
        c.issue_act(BankId(0), 1, 0);
        assert!(!c.can_refresh(t.t_refi));
        let pre = c.bank(BankId(0)).pre_ready;
        c.issue_pre(BankId(0), pre);
        let ready = pre + t.t_rp;
        assert!(c.can_refresh(ready.max(t.t_refi)));
        let at = ready.max(t.t_refi);
        c.issue_refresh(at);
        assert_eq!(c.stats.refreshes, 1);
        // All banks are dark for tRFC.
        assert!(!c.can_act(BankId(5), at + t.t_rfc - 1));
        assert!(c.can_act(BankId(5), at + t.t_rfc));
        assert!(!c.refresh_due(at + t.t_refi - 1));
    }

    #[test]
    fn open_banks_count() {
        let mut c = ch();
        assert_eq!(c.open_banks(), 0);
        c.issue_act(BankId(3), 5, 0);
        assert_eq!(c.open_banks(), 1);
    }

    #[test]
    fn auditor_sees_every_issued_command_and_stays_clean() {
        let mut c = ch2();
        c.enable_audit();
        c.enable_cmd_log();
        let t = *c.timing();
        // A legal mixed sequence driven through the channel's own gates.
        let mut now = 0;
        while !c.can_act(BankId(0), now) {
            now += 1;
        }
        c.issue_act(BankId(0), 7, now);
        let mut rd = now + t.t_rcd;
        while !c.can_read(BankId(0), rd) {
            rd += 1;
        }
        c.issue_read(BankId(0), rd);
        let mut wr = rd + 1;
        while !c.can_write(BankId(0), wr) {
            wr += 1;
        }
        c.issue_write(BankId(0), wr);
        let mut pre = wr + 1;
        while !c.can_pre(BankId(0), pre) {
            pre += 1;
        }
        c.issue_pre(BankId(0), pre);
        let mut refr = pre + 1;
        while !c.can_refresh(refr) {
            refr += 1;
        }
        c.issue_refresh(refr);
        assert_eq!(c.audit_observed(), 5);
        assert_eq!(c.audit_violation_count(), 0);
        assert_eq!(c.audit_violations().unwrap().len(), 0);
        let log = c.take_cmd_log();
        assert_eq!(log.len(), 5);
        assert_eq!(log[0].kind, crate::audit::CmdKind::Act);
        assert_eq!(log[0].row, 7);
        assert_eq!(log[4].kind, crate::audit::CmdKind::RefAb);
        // Log is drained, not disabled.
        assert!(c.take_cmd_log().is_empty());
    }

    #[test]
    fn ready_cycle_is_exact_inverse_of_can_issue() {
        // Drive a mixed legal sequence; after every step, ready_cycle must
        // be the first cycle can_issue turns true for every command shape.
        let mut c = ch2();
        let check = |c: &Channel, now: Cycle| {
            for b in [0u8, 1, 4, 9] {
                let bank = BankId(b);
                for cmd in [
                    Command::Act { bank, row: 3 },
                    Command::Pre { bank },
                    Command::Read { bank, req: 1 },
                    Command::Write { bank, req: 2 },
                ] {
                    let r = c.ready_cycle(&cmd);
                    if r == Cycle::MAX {
                        // Wrong bank state: never legal until another
                        // command changes it.
                        assert!(!c.can_issue(&cmd, now + 10_000), "{cmd:?}");
                        continue;
                    }
                    if r > 0 {
                        assert!(!c.can_issue(&cmd, r - 1), "{cmd:?} early at {r}");
                    }
                    assert!(c.can_issue(&cmd, r), "{cmd:?} not legal at {r}");
                }
            }
        };
        check(&c, 0);
        let mut now = 0;
        for b in [0u8, 1, 4] {
            now = now.max(c.ready_cycle(&Command::Act {
                bank: BankId(b),
                row: 1,
            }));
            c.issue_act(BankId(b), 1, now);
            check(&c, now);
        }
        now = now.max(c.ready_cycle(&Command::Read {
            bank: BankId(0),
            req: 1,
        }));
        c.issue_read(BankId(0), now);
        check(&c, now);
        now = now.max(c.ready_cycle(&Command::Write {
            bank: BankId(4),
            req: 2,
        }));
        c.issue_write(BankId(4), now);
        check(&c, now);
        now = now.max(c.ready_cycle(&Command::Pre { bank: BankId(1) }));
        c.issue_pre(BankId(1), now);
        check(&c, now);
        // Fast-read horizon agrees with try_fast_read.
        let fr = c.fast_read_ready();
        if fr > 0 {
            assert!(c.clone().try_fast_read(fr - 1).is_none());
        }
        assert!(c.clone().try_fast_read(fr).is_some());
    }

    #[test]
    fn audit_disabled_reports_nothing() {
        let mut c = ch();
        c.issue_act(BankId(0), 1, 0);
        assert_eq!(c.audit_observed(), 0);
        assert_eq!(c.audit_violation_count(), 0);
        assert!(c.audit_violations().is_none());
        assert!(c.take_cmd_log().is_empty());
    }
}
