//! GDDR5 power model (Section VI-B).
//!
//! A Micron-power-calculator-style model: DRAM power is decomposed into
//! background power (precharged vs. active standby), activate/precharge
//! power (per ACT-PRE pair, amortised over tRC), read/write burst power and
//! I/O driver power. Current (IDD) and voltage values are representative of
//! a 1 Gb Hynix-class GDDR5 part; most of the power of a GDDR5 chip is spent
//! in the high-speed I/O drivers, which is why the paper finds that a 16%
//! row-hit-rate drop costs only ~1.8% DRAM power.
//!
//! The model consumes [`crate::channel::ChannelStats`] snapshots, so it can
//! be evaluated for any scheduler run after the fact.

use crate::channel::ChannelStats;
use ldsim_types::clock::{ClockDomain, Cycle};

/// Electrical parameters for one GDDR5 device pair (one channel = 2 x32
/// chips operated in tandem; the values below are per-channel, i.e. both
/// chips combined).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Background current, all banks precharged (mA, both chips).
    pub idd2n: f64,
    /// Background current, at least one bank active (mA).
    pub idd3n: f64,
    /// Current during ACT/PRE cycling with tRC spacing (mA).
    pub idd0: f64,
    /// Read burst current above active standby (mA).
    pub idd4r: f64,
    /// Write burst current above active standby (mA).
    pub idd4w: f64,
    /// I/O + termination power per data-bus-busy cycle (W). GDDR5 POD-style
    /// drivers dominate chip power; this single knob captures DQ + DBI +
    /// clocking power while the bus toggles.
    pub io_power_w: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        // Representative of a 6 Gbps 1Gb GDDR5 pair at VDD=1.5 V.
        Self {
            vdd: 1.5,
            idd2n: 2.0 * 40.0,
            idd3n: 2.0 * 55.0,
            idd0: 2.0 * 90.0,
            idd4r: 2.0 * 230.0,
            idd4w: 2.0 * 240.0,
            io_power_w: 6.0,
        }
    }
}

/// A power/energy breakdown for one channel over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    pub background_w: f64,
    pub act_pre_w: f64,
    pub read_w: f64,
    pub write_w: f64,
    pub io_w: f64,
}

impl PowerBreakdown {
    pub fn total_w(&self) -> f64 {
        self.background_w + self.act_pre_w + self.read_w + self.write_w + self.io_w
    }

    /// Energy in joules over `elapsed` cycles.
    pub fn energy_j(&self, elapsed: Cycle, clk: ClockDomain) -> f64 {
        self.total_w() * (elapsed as f64 * clk.tck_ns * 1e-9)
    }
}

/// Evaluates the power model over channel statistics.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    pub params: PowerParams,
    pub clk: ClockDomain,
    /// tRC in cycles (ACT energy amortisation window).
    pub t_rc: Cycle,
    /// tBURST in cycles.
    pub t_burst: Cycle,
}

impl PowerModel {
    /// Average power of one channel over `elapsed` cycles of activity
    /// described by `stats`. `active_fraction` is the fraction of cycles at
    /// least one bank had an open row (tracked by the caller; pass 1.0 for a
    /// conservative busy-system estimate).
    pub fn evaluate(
        &self,
        stats: &ChannelStats,
        elapsed: Cycle,
        active_fraction: f64,
    ) -> PowerBreakdown {
        if elapsed == 0 {
            return PowerBreakdown::default();
        }
        let p = &self.params;
        let ma_to_w = |ma: f64| ma * 1e-3 * p.vdd;
        let frac = active_fraction.clamp(0.0, 1.0);
        let background_w = ma_to_w(p.idd3n) * frac + ma_to_w(p.idd2n) * (1.0 - frac);

        // Each ACT/PRE pair draws (IDD0 - IDD3N) over a tRC window.
        // Each ACT draws (IDD0 - IDD3N) over a tRC window; windows in
        // different banks overlap freely, so this term is not clamped.
        let act_windows = (stats.acts as f64 * self.t_rc as f64) / elapsed as f64;
        let act_pre_w = ma_to_w(p.idd0 - p.idd3n) * act_windows;

        let rd_cycles = stats.reads as f64 * self.t_burst as f64 / elapsed as f64;
        let wr_cycles = stats.writes as f64 * self.t_burst as f64 / elapsed as f64;
        let read_w = ma_to_w(p.idd4r - p.idd3n) * rd_cycles;
        let write_w = ma_to_w(p.idd4w - p.idd3n) * wr_cycles;

        let io_w = p.io_power_w * (stats.data_bus_busy as f64 / elapsed as f64);

        PowerBreakdown {
            background_w,
            act_pre_w,
            read_w,
            write_w,
            io_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel {
            params: PowerParams::default(),
            clk: ClockDomain::GDDR5,
            t_rc: 60,
            t_burst: 2,
        }
    }

    fn busy_stats(acts: u64, reads: u64, writes: u64) -> ChannelStats {
        ChannelStats {
            acts,
            pres: acts,
            reads,
            writes,
            data_bus_busy: (reads + writes) * 2,
            row_misses: acts,
            fast_reads: 0,
            refreshes: 0,
        }
    }

    #[test]
    fn idle_channel_draws_background_only() {
        let m = model();
        let b = m.evaluate(&ChannelStats::default(), 10_000, 0.0);
        assert!(b.act_pre_w == 0.0 && b.read_w == 0.0 && b.io_w == 0.0);
        assert!((b.background_w - 0.08 * 1.5).abs() < 1e-9); // IDD2N only
    }

    #[test]
    fn io_dominates_at_high_utilization() {
        // The paper's observation: I/O drivers dominate GDDR5 power, so more
        // row misses barely move total power.
        let m = model();
        let saturated = busy_stats(100, 40_000, 10_000);
        let b = m.evaluate(&saturated, 100_000, 1.0);
        assert!(
            b.io_w > b.act_pre_w + b.background_w,
            "io {} vs core {}",
            b.io_w,
            b.act_pre_w + b.background_w
        );
    }

    #[test]
    fn lower_hit_rate_costs_only_a_little() {
        // 16% lower row-buffer hit rate => ~2% power increase (Section VI-B).
        let m = model();
        let elapsed = 1_000_000;
        let col = 100_000u64;
        // Baseline: 60% hit rate => 40k ACTs. WG-W: ~50% => 50k ACTs.
        let base = m.evaluate(&busy_stats(40_000, col, 0), elapsed, 1.0);
        let wgw = m.evaluate(&busy_stats(50_000, col, 0), elapsed, 1.0);
        let ratio = wgw.total_w() / base.total_w();
        assert!(
            ratio > 1.0 && ratio < 1.05,
            "power ratio {ratio} out of the paper's ballpark"
        );
    }

    #[test]
    fn energy_scales_with_time() {
        let m = model();
        let s = busy_stats(10, 100, 0);
        let b = m.evaluate(&s, 1000, 1.0);
        let e1 = b.energy_j(1000, ClockDomain::GDDR5);
        let e2 = b.energy_j(2000, ClockDomain::GDDR5);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }

    #[test]
    fn zero_elapsed_is_safe() {
        let m = model();
        let b = m.evaluate(&busy_stats(1, 1, 1), 0, 1.0);
        assert_eq!(b.total_w(), 0.0);
    }
}
