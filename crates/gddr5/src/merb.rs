//! Minimum Efficient Row Burst (MERB) — Section IV-D, Table I.
//!
//! MERB(b) is the number of row-hit data bursts that must be scheduled to
//! other banks to hide the overhead of one row-miss (PRE + ACT + first RD)
//! in a given bank, as a function of `b`, the number of banks with pending
//! work:
//!
//! ```text
//!            ⎧ max( ⌈(tRTP + tRP + tRCD) / ((b-1)·tBURST)⌉,
//!            ⎪      ⌈max(tRRD, tFAW/4) / tBURST⌉ )          b > 1
//! MERB(b) =  ⎨
//!            ⎩ 31  (5-bit counter limit)                     b = 1
//! ```
//!
//! With the paper's GDDR5 timings this yields exactly Table I:
//! `{1→31, 2→20, 3→10, 4→7, 5→5, 6..16→5}`. The table is computed once at
//! boot from the timing parameters (the paper suggests a boot ROM) and is
//! indexed by the live bank-occupancy count by the WG-Bw scheduler.

use ldsim_types::clock::ClockDomain;
use ldsim_types::config::TimingParams;

/// The per-bank-count MERB table.
///
/// ```
/// use ldsim_gddr5::MerbTable;
/// use ldsim_types::clock::ClockDomain;
/// use ldsim_types::config::TimingParams;
///
/// let merb = MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16);
/// // Table I of the paper, exactly:
/// assert_eq!(merb.get(1), 31);
/// assert_eq!(merb.get(2), 20);
/// assert_eq!(merb.get(3), 10);
/// assert_eq!(merb.get(4), 7);
/// assert_eq!(merb.get(16), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerbTable {
    /// `values[b-1]` = MERB when `b` banks have pending work.
    values: Vec<u8>,
}

/// Saturation limit of the 5-bit per-bank row-hit counter.
pub const MERB_MAX: u8 = 31;

impl MerbTable {
    /// Derive the table for `num_banks` banks from GDDR5 timing parameters.
    /// The computation is done in nanoseconds, as in the paper.
    pub fn from_timing(t: &TimingParams, clk: ClockDomain, num_banks: usize) -> Self {
        let t_burst = t.t_burst_ck as f64 * clk.tck_ns;
        let miss_overhead = t.t_rtp_ns + t.t_rp_ns + t.t_rcd_ns;
        let act_spacing = t.t_rrd_ns.max(t.t_faw_ns / 4.0);
        let act_term = (act_spacing / t_burst).ceil() as u64;

        let mut values = Vec::with_capacity(num_banks);
        for b in 1..=num_banks {
            let v = if b == 1 {
                MERB_MAX as u64
            } else {
                let hide_term = (miss_overhead / ((b as f64 - 1.0) * t_burst)).ceil() as u64;
                hide_term.max(act_term)
            };
            values.push(v.min(MERB_MAX as u64) as u8);
        }
        Self { values }
    }

    /// MERB value when `banks_with_work` banks have pending requests.
    /// Clamps out-of-range inputs (0 behaves like 1, large counts like the
    /// last entry).
    #[inline]
    pub fn get(&self, banks_with_work: usize) -> u8 {
        let idx = banks_with_work.max(1).min(self.values.len()) - 1;
        self.values[idx]
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.values
    }
}

/// Single-bank bandwidth utilisation for `n` row-hit reads per activate
/// (the closed-form of Section IV-D): with GDDR5 values this is
/// `1.33·n / (1.33·n + 25.33)`.
pub fn single_bank_utilization(t: &TimingParams, clk: ClockDomain, n: u64) -> f64 {
    let t_burst = t.t_burst_ck as f64 * clk.tck_ns;
    let tck = clk.tck_ns;
    let num = t_burst * n as f64;
    num / (t.t_rcd_ns + num + (t.t_rtp_ns - t_burst + tck) + t.t_rp_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MerbTable {
        MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16)
    }

    /// The headline check: our derivation reproduces Table I exactly.
    #[test]
    fn reproduces_table_1() {
        let t = table();
        assert_eq!(t.get(1), 31);
        assert_eq!(t.get(2), 20);
        assert_eq!(t.get(3), 10);
        assert_eq!(t.get(4), 7);
        assert_eq!(t.get(5), 5);
        for b in 6..=16 {
            assert_eq!(t.get(b), 5, "banks={b}");
        }
    }

    #[test]
    fn monotone_nonincreasing() {
        let t = table();
        for b in 1..16 {
            assert!(t.get(b) >= t.get(b + 1), "MERB must not grow with banks");
        }
    }

    #[test]
    fn clamping() {
        let t = table();
        assert_eq!(t.get(0), t.get(1));
        assert_eq!(t.get(100), t.get(16));
        assert_eq!(t.as_slice().len(), 16);
    }

    #[test]
    fn single_bank_utilization_matches_paper() {
        // Paper: utilization = 1.33n / (1.33n + 25.33); at the MERB cap of
        // n=31 this "delivers up to 62% utilization".
        let u31 = single_bank_utilization(&TimingParams::default(), ClockDomain::GDDR5, 31);
        assert!((u31 - 0.62).abs() < 0.01, "u(31) = {u31}");
        let u2 = single_bank_utilization(&TimingParams::default(), ClockDomain::GDDR5, 2);
        assert!((u2 - (2.668 / (2.668 + 25.33))).abs() < 0.01);
    }

    #[test]
    fn never_exceeds_counter_limit() {
        let t = table();
        assert!(t.as_slice().iter().all(|&v| v <= MERB_MAX));
    }
}
