//! Always-on DRAM protocol conformance auditor.
//!
//! [`TimingAuditor`] is an *independent observer*: it receives every DRAM
//! command the channel issues (ACT / PRE / RD / WR / REFab, plus the
//! zero-divergence model's bus-only fast reads) together with the issue
//! cycle, and re-validates every GDDR5 timing constraint from its own state
//! machine. Unlike the `debug_assert!`s inside [`crate::channel::Channel`]
//! and [`crate::bank::Bank`] — which vanish in the release builds that
//! produce EXPERIMENTS.md — the auditor works in every build profile, so a
//! scheduler bug that issues an illegal command can never silently inflate
//! the reported IPC.
//!
//! The auditor is deliberately written *differently* from the channel: the
//! channel pre-computes per-bank ready times when a command is applied; the
//! auditor keeps raw last-command timestamps and derives each legality
//! window on the fly from [`TimingCycles`]. A bookkeeping bug in one is
//! therefore very unlikely to be mirrored in the other.
//!
//! Checked rules:
//!
//! | rule        | constraint                                                      |
//! |-------------|-----------------------------------------------------------------|
//! | `BankOpen` / `BankClosed` | ACT only to a closed bank; PRE/RD/WR only to an open one |
//! | `TRc`       | ACT→ACT, same bank                                              |
//! | `TRp`       | PRE→ACT, same bank                                              |
//! | `TRas`      | ACT→PRE, same bank                                              |
//! | `TRtp`      | RD→PRE, same bank                                               |
//! | `TWr`       | write-data-end→PRE, same bank (write recovery)                  |
//! | `TRcd`      | ACT→RD/WR, same bank                                            |
//! | `TRrd`      | ACT→ACT, any two banks                                          |
//! | `TFaw`      | at most 4 ACTs per rolling tFAW window                          |
//! | `TCcdL`/`TCcdS` | column→column spacing, same / different bank group          |
//! | `TWtr`      | write-data-end→RD command (turnaround)                          |
//! | `TRtw`      | read-data-end + tRTRS → write burst start (bus turnaround)      |
//! | `BusOverlap`| a data burst may not begin before the previous one ends         |
//! | `TRfc`      | no command during the all-bank refresh blackout                 |
//! | `RefBankOpen` / `RefTRp` | REFab needs every bank precharged and settled      |

use ldsim_types::clock::Cycle;
use ldsim_types::config::{MemConfig, TimingCycles};

/// The kind of an observed DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    Act,
    Pre,
    Read,
    Write,
    /// All-bank refresh.
    RefAb,
    /// Zero-divergence ideal bus-only read (bypasses bank timing by design;
    /// only bus occupancy is audited).
    FastRead,
}

impl CmdKind {
    pub fn name(&self) -> &'static str {
        match self {
            CmdKind::Act => "ACT",
            CmdKind::Pre => "PRE",
            CmdKind::Read => "RD",
            CmdKind::Write => "WR",
            CmdKind::RefAb => "REF",
            CmdKind::FastRead => "FRD",
        }
    }
}

/// One observed command, as the channel reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdEvent {
    pub cycle: Cycle,
    pub kind: CmdKind,
    /// Bank index (unused for REFab / FastRead).
    pub bank: u8,
    /// Row (ACT only; 0 otherwise).
    pub row: u32,
}

/// A timing rule the auditor can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    BankOpen,
    BankClosed,
    TRc,
    TRp,
    TRas,
    TRtp,
    TWr,
    TRcd,
    TRrd,
    TFaw,
    TCcdL,
    TCcdS,
    TWtr,
    TRtw,
    BusOverlap,
    TRfc,
    RefBankOpen,
    RefTRp,
}

impl Rule {
    pub fn name(&self) -> &'static str {
        match self {
            Rule::BankOpen => "bank-open",
            Rule::BankClosed => "bank-closed",
            Rule::TRc => "tRC",
            Rule::TRp => "tRP",
            Rule::TRas => "tRAS",
            Rule::TRtp => "tRTP",
            Rule::TWr => "tWR",
            Rule::TRcd => "tRCD",
            Rule::TRrd => "tRRD",
            Rule::TFaw => "tFAW",
            Rule::TCcdL => "tCCDL",
            Rule::TCcdS => "tCCDS",
            Rule::TWtr => "tWTR",
            Rule::TRtw => "tRTW",
            Rule::BusOverlap => "bus-overlap",
            Rule::TRfc => "tRFC",
            Rule::RefBankOpen => "ref-bank-open",
            Rule::RefTRp => "ref-tRP",
        }
    }
}

/// One recorded protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub cmd: CmdKind,
    pub bank: u8,
    pub cycle: Cycle,
    /// Earliest cycle at which the command would have been legal under the
    /// violated rule (best-effort; 0 for state violations like BankOpen).
    pub earliest_legal: Cycle,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} @ cycle {} on bank {} violates {} (earliest legal: {})",
            self.cmd.name(),
            self.cycle,
            self.bank,
            self.rule.name(),
            self.earliest_legal
        )
    }
}

/// Per-bank shadow state: raw timestamps, not derived ready-times.
#[derive(Debug, Clone, Copy, Default)]
struct BankShadow {
    open_row: Option<u32>,
    /// Cycle of the last ACT (None before the first).
    last_act: Option<Cycle>,
    last_pre: Option<Cycle>,
    last_rd: Option<Cycle>,
    /// End cycle of the last write's data burst on this bank.
    last_wr_data_end: Option<Cycle>,
}

/// How many violations are kept verbatim (all are *counted*).
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// The independent protocol conformance checker.
#[derive(Debug, Clone)]
pub struct TimingAuditor {
    t: TimingCycles,
    banks_per_group: usize,
    /// Data bursts per column access.
    bursts: Cycle,
    banks: Vec<BankShadow>,
    /// Cycles of recent ACTs to any bank (for tRRD / tFAW), newest last.
    acts: Vec<Cycle>,
    /// Most recent column command: (cycle, bank group).
    last_col: Option<(Cycle, u8)>,
    /// End of the most recent data burst on the shared bus.
    bus_end: Cycle,
    /// End of the most recent *read* data burst (read→write turnaround).
    read_data_end: Cycle,
    /// End of the most recent *write* data burst (tWTR).
    write_data_end: Cycle,
    /// End of the current refresh blackout (0 when none).
    ref_end: Cycle,
    observed: u64,
    violation_count: u64,
    violations: Vec<Violation>,
}

impl TimingAuditor {
    pub fn new(mem: &MemConfig, t: TimingCycles) -> Self {
        Self::from_parts(
            mem.banks_per_channel,
            mem.banks_per_group,
            mem.bursts_per_access,
            t,
        )
    }

    /// Construct from raw geometry (lets the channel attach an auditor
    /// without holding on to the full [`MemConfig`]).
    pub fn from_parts(
        banks_per_channel: usize,
        banks_per_group: usize,
        bursts_per_access: u64,
        t: TimingCycles,
    ) -> Self {
        Self {
            t,
            banks_per_group,
            bursts: bursts_per_access.max(1),
            banks: vec![BankShadow::default(); banks_per_channel],
            acts: Vec::with_capacity(8),
            last_col: None,
            bus_end: 0,
            read_data_end: 0,
            write_data_end: 0,
            ref_end: 0,
            observed: 0,
            violation_count: 0,
            violations: Vec::new(),
        }
    }

    /// Total commands observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total violations detected (including ones not stored verbatim).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// The first [`MAX_STORED_VIOLATIONS`] violations, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    fn flag(&mut self, rule: Rule, ev: &CmdEvent, earliest_legal: Cycle) {
        self.violation_count += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation {
                rule,
                cmd: ev.kind,
                bank: ev.bank,
                cycle: ev.cycle,
                earliest_legal,
            });
        }
    }

    /// Check that a timestamped lower bound holds: `now >= base + gap`.
    fn require_gap(&mut self, rule: Rule, ev: &CmdEvent, base: Option<Cycle>, gap: Cycle) {
        if let Some(b) = base {
            let earliest = b + gap;
            if ev.cycle < earliest {
                self.flag(rule, ev, earliest);
            }
        }
    }

    #[inline]
    fn group_of(&self, bank: u8) -> u8 {
        (bank as usize / self.banks_per_group) as u8
    }

    fn check_column_spacing(&mut self, ev: &CmdEvent) {
        if let Some((cyc, grp)) = self.last_col {
            let (gap, rule) = if grp == self.group_of(ev.bank) {
                (self.t.t_ccdl, Rule::TCcdL)
            } else {
                (self.t.t_ccds, Rule::TCcdS)
            };
            if ev.cycle < cyc + gap {
                self.flag(rule, ev, cyc + gap);
            }
        }
    }

    /// Data-bus occupancy: a burst starting at `start` must not begin
    /// before the previous burst ends.
    fn check_bus(&mut self, ev: &CmdEvent, start: Cycle) {
        if start < self.bus_end {
            // Earliest legal command cycle keeps the same command→data offset.
            let cmd_offset = start - ev.cycle;
            self.flag(Rule::BusOverlap, ev, self.bus_end - cmd_offset);
        }
    }

    fn check_refresh_blackout(&mut self, ev: &CmdEvent) {
        if ev.cycle < self.ref_end {
            self.flag(Rule::TRfc, ev, self.ref_end);
        }
    }

    /// Observe one issued command and validate it against every rule.
    pub fn observe(&mut self, ev: &CmdEvent) {
        self.observed += 1;
        match ev.kind {
            CmdKind::Act => self.observe_act(ev),
            CmdKind::Pre => self.observe_pre(ev),
            CmdKind::Read => self.observe_read(ev),
            CmdKind::Write => self.observe_write(ev),
            CmdKind::RefAb => self.observe_refresh(ev),
            CmdKind::FastRead => self.observe_fast_read(ev),
        }
    }

    fn observe_act(&mut self, ev: &CmdEvent) {
        self.check_refresh_blackout(ev);
        let b = ev.bank as usize;
        if self.banks[b].open_row.is_some() {
            self.flag(Rule::BankClosed, ev, 0);
        }
        let (last_act, last_pre) = (self.banks[b].last_act, self.banks[b].last_pre);
        self.require_gap(Rule::TRc, ev, last_act, self.t.t_rc);
        self.require_gap(Rule::TRp, ev, last_pre, self.t.t_rp);
        // tRRD against the most recent ACT to any bank.
        let newest = self.acts.last().copied();
        self.require_gap(Rule::TRrd, ev, newest, self.t.t_rrd);
        // tFAW: the 4th-most-recent ACT must be at least tFAW back.
        if self.acts.len() >= 4 {
            let fourth = self.acts[self.acts.len() - 4];
            if ev.cycle < fourth + self.t.t_faw {
                self.flag(Rule::TFaw, ev, fourth + self.t.t_faw);
            }
        }
        // Apply.
        self.banks[b].open_row = Some(ev.row);
        self.banks[b].last_act = Some(ev.cycle);
        self.banks[b].last_rd = None;
        self.banks[b].last_wr_data_end = None;
        self.acts.push(ev.cycle);
        if self.acts.len() > 4 {
            self.acts.remove(0);
        }
    }

    fn observe_pre(&mut self, ev: &CmdEvent) {
        self.check_refresh_blackout(ev);
        let b = ev.bank as usize;
        if self.banks[b].open_row.is_none() {
            self.flag(Rule::BankOpen, ev, 0);
        }
        let (last_act, last_rd, last_wr_end) = (
            self.banks[b].last_act,
            self.banks[b].last_rd,
            self.banks[b].last_wr_data_end,
        );
        self.require_gap(Rule::TRas, ev, last_act, self.t.t_ras);
        self.require_gap(Rule::TRtp, ev, last_rd, self.t.t_rtp);
        // Write recovery counts from the end of the write data burst.
        self.require_gap(Rule::TWr, ev, last_wr_end, self.t.t_wr);
        self.banks[b].open_row = None;
        self.banks[b].last_pre = Some(ev.cycle);
    }

    fn observe_read(&mut self, ev: &CmdEvent) {
        self.check_refresh_blackout(ev);
        let b = ev.bank as usize;
        if self.banks[b].open_row.is_none() {
            self.flag(Rule::BankOpen, ev, 0);
        }
        let last_act = self.banks[b].last_act;
        self.require_gap(Rule::TRcd, ev, last_act, self.t.t_rcd);
        self.check_column_spacing(ev);
        // tWTR: read command after the last write data burst ends.
        if self.write_data_end > 0 && ev.cycle < self.write_data_end + self.t.t_wtr {
            self.flag(Rule::TWtr, ev, self.write_data_end + self.t.t_wtr);
        }
        let start = ev.cycle + self.t.t_cas;
        self.check_bus(ev, start);
        // Apply.
        let end = start + self.t.t_burst * self.bursts;
        self.bus_end = self.bus_end.max(end);
        self.read_data_end = self.read_data_end.max(end);
        self.last_col = Some((ev.cycle, self.group_of(ev.bank)));
        self.banks[b].last_rd = Some(ev.cycle);
    }

    fn observe_write(&mut self, ev: &CmdEvent) {
        self.check_refresh_blackout(ev);
        let b = ev.bank as usize;
        if self.banks[b].open_row.is_none() {
            self.flag(Rule::BankOpen, ev, 0);
        }
        let last_act = self.banks[b].last_act;
        self.require_gap(Rule::TRcd, ev, last_act, self.t.t_rcd);
        self.check_column_spacing(ev);
        let start = ev.cycle + self.t.t_wl;
        // Read→write turnaround: the write burst must trail the last read
        // burst by tRTRS.
        if self.read_data_end > 0 && start < self.read_data_end + self.t.t_rtrs {
            let cmd_offset = self.t.t_wl;
            self.flag(
                Rule::TRtw,
                ev,
                (self.read_data_end + self.t.t_rtrs).saturating_sub(cmd_offset),
            );
        }
        self.check_bus(ev, start);
        // Apply.
        let end = start + self.t.t_burst * self.bursts;
        self.bus_end = self.bus_end.max(end);
        self.write_data_end = self.write_data_end.max(end);
        self.last_col = Some((ev.cycle, self.group_of(ev.bank)));
        self.banks[b].last_wr_data_end = Some(end);
    }

    fn observe_refresh(&mut self, ev: &CmdEvent) {
        self.check_refresh_blackout(ev);
        for b in 0..self.banks.len() {
            if self.banks[b].open_row.is_some() {
                let e = CmdEvent {
                    bank: b as u8,
                    ..*ev
                };
                self.flag(Rule::RefBankOpen, &e, 0);
            } else if let Some(pre) = self.banks[b].last_pre {
                if ev.cycle < pre + self.t.t_rp {
                    let e = CmdEvent {
                        bank: b as u8,
                        ..*ev
                    };
                    self.flag(Rule::RefTRp, &e, pre + self.t.t_rp);
                }
            }
        }
        self.ref_end = ev.cycle + self.t.t_rfc;
    }

    /// Fast reads bypass bank timing *by design* (Fig. 4's ideal model
    /// still pays bus bandwidth), so only bus occupancy is audited.
    fn observe_fast_read(&mut self, ev: &CmdEvent) {
        let start = ev.cycle + self.t.t_cas;
        self.check_bus(ev, start);
        let end = start + self.t.t_burst * self.bursts;
        self.bus_end = self.bus_end.max(end);
        self.read_data_end = self.read_data_end.max(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;

    fn auditor() -> (TimingAuditor, TimingCycles) {
        let mem = MemConfig {
            bursts_per_access: 1,
            ..MemConfig::default()
        };
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        (TimingAuditor::new(&mem, t), t)
    }

    fn ev(kind: CmdKind, bank: u8, row: u32, cycle: Cycle) -> CmdEvent {
        CmdEvent {
            cycle,
            kind,
            bank,
            row,
        }
    }

    #[test]
    fn legal_open_read_close_sequence_is_clean() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 5, 0));
        a.observe(&ev(CmdKind::Read, 0, 0, t.t_rcd));
        a.observe(&ev(CmdKind::Read, 0, 0, t.t_rcd + t.t_ccdl));
        a.observe(&ev(CmdKind::Pre, 0, 0, t.t_ras + t.t_rtp + 100));
        a.observe(&ev(CmdKind::Act, 0, 6, t.t_rc + t.t_rp + t.t_ras + 200));
        assert!(a.is_clean(), "{:?}", a.violations());
        assert_eq!(a.observed(), 5);
    }

    #[test]
    fn premature_read_fires_trcd() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 5, 0));
        a.observe(&ev(CmdKind::Read, 0, 0, t.t_rcd - 1));
        assert_eq!(a.violation_count(), 1);
        let v = a.violations()[0];
        assert_eq!(v.rule, Rule::TRcd);
        assert_eq!(v.earliest_legal, t.t_rcd);
    }

    #[test]
    fn act_to_open_bank_fires() {
        let (mut a, _t) = auditor();
        a.observe(&ev(CmdKind::Act, 3, 5, 0));
        a.observe(&ev(CmdKind::Act, 3, 6, 10_000));
        assert!(a
            .violations()
            .iter()
            .any(|v| v.rule == Rule::BankClosed && v.bank == 3));
    }

    #[test]
    fn trrd_and_tfaw_fire() {
        // With Table II numbers 4*tRRD (36) already exceeds tFAW (35), so —
        // like the channel's own tFAW test — widen tFAW to make the
        // four-activate window clearly binding.
        let mem = MemConfig {
            bursts_per_access: 1,
            ..MemConfig::default()
        };
        let tp = TimingParams {
            t_faw_ns: 60.0, // 90 cycles
            ..TimingParams::default()
        };
        let t = tp.in_cycles(ClockDomain::GDDR5);
        let mut a = TimingAuditor::new(&mem, t);
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Act, 1, 1, t.t_rrd - 1)); // tRRD violation
        assert!(a.violations().iter().any(|v| v.rule == Rule::TRrd));
        let n = a.violation_count();
        // Space the next two legally, then the 5th ACT inside the tFAW
        // window of the first.
        a.observe(&ev(CmdKind::Act, 2, 1, 2 * t.t_rrd));
        a.observe(&ev(CmdKind::Act, 3, 1, 3 * t.t_rrd));
        assert!(4 * t.t_rrd < t.t_faw, "test assumes tFAW binds");
        a.observe(&ev(CmdKind::Act, 4, 1, 4 * t.t_rrd));
        assert!(a.violations().iter().any(|v| v.rule == Rule::TFaw));
        assert!(a.violation_count() > n);
    }

    #[test]
    fn premature_precharge_fires_tras() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Pre, 0, 0, t.t_ras - 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::TRas));
    }

    #[test]
    fn write_recovery_fires_twr() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        // Write late enough that write recovery (not tRAS) is the binding
        // constraint on the precharge.
        let wr = t.t_ras;
        a.observe(&ev(CmdKind::Write, 0, 0, wr));
        let data_end = wr + t.t_wl + t.t_burst;
        a.observe(&ev(CmdKind::Pre, 0, 0, data_end + t.t_wr - 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::TWr));
    }

    #[test]
    fn wtr_turnaround_fires() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Act, 4, 1, t.t_rrd.max(t.t_rcd)));
        let wr = t.t_rcd + t.t_rrd;
        a.observe(&ev(CmdKind::Write, 0, 0, wr));
        let wr_end = wr + t.t_wl + t.t_burst;
        a.observe(&ev(CmdKind::Read, 4, 0, wr_end + t.t_wtr - 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::TWtr));
    }

    #[test]
    fn bank_group_spacing_fires_ccdl_not_ccds() {
        // Cross-group reads at tCCDS spacing: legal.
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Act, 4, 1, t.t_rrd));
        let rd = t.t_rrd + t.t_rcd;
        a.observe(&ev(CmdKind::Read, 0, 0, rd));
        a.observe(&ev(CmdKind::Read, 4, 0, rd + t.t_ccds.max(t.t_burst)));
        assert!(a.is_clean(), "{:?}", a.violations());
        // Same-group reads at only tCCDS spacing: tCCDL (3 > 2) fires.
        let (mut b, t) = auditor();
        b.observe(&ev(CmdKind::Act, 0, 1, 0));
        b.observe(&ev(CmdKind::Act, 1, 1, t.t_rrd));
        let rd = t.t_rrd + t.t_rcd;
        b.observe(&ev(CmdKind::Read, 0, 0, rd));
        b.observe(&ev(CmdKind::Read, 1, 0, rd + t.t_ccds));
        assert!(
            b.violations().iter().any(|v| v.rule == Rule::TCcdL),
            "{:?}",
            b.violations()
        );
    }

    #[test]
    fn bus_overlap_fires() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Act, 4, 1, t.t_rrd));
        let rd = t.t_rrd + t.t_rcd;
        a.observe(&ev(CmdKind::Read, 0, 0, rd));
        // Second read on another group, past tCCDS but with a burst that
        // starts before the first one ends (single-burst channel: burst is
        // tBURST=2 cycles; tCCDS=2 is exactly bus-legal, so go 1 earlier
        // by... issuing at rd+1 < rd+tCCDS would also trip tCCDS. Use a
        // fast read instead, which has no column spacing.)
        a.observe(&ev(CmdKind::FastRead, 0, 0, rd + 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::BusOverlap));
    }

    #[test]
    fn refresh_blackout_fires_trfc() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::RefAb, 0, 0, 100));
        assert!(a.is_clean());
        a.observe(&ev(CmdKind::Act, 0, 1, 100 + t.t_rfc - 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::TRfc));
        let (mut b, t) = auditor();
        b.observe(&ev(CmdKind::RefAb, 0, 0, 100));
        b.observe(&ev(CmdKind::Act, 0, 1, 100 + t.t_rfc));
        assert!(b.is_clean());
    }

    #[test]
    fn refresh_with_open_bank_fires() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 2, 1, 0));
        a.observe(&ev(CmdKind::RefAb, 0, 0, t.t_ras + 50));
        assert!(a.violations().iter().any(|v| v.rule == Rule::RefBankOpen));
    }

    #[test]
    fn refresh_too_soon_after_pre_fires() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 1, 0));
        a.observe(&ev(CmdKind::Pre, 0, 0, t.t_ras));
        a.observe(&ev(CmdKind::RefAb, 0, 0, t.t_ras + t.t_rp - 1));
        assert!(a.violations().iter().any(|v| v.rule == Rule::RefTRp));
    }

    #[test]
    fn violation_storage_caps_but_count_continues() {
        let (mut a, _t) = auditor();
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 40) {
            // Endless PREs to a closed bank: every one is a violation.
            a.observe(&ev(CmdKind::Pre, 0, 0, i * 1000));
        }
        assert_eq!(a.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(a.violation_count(), MAX_STORED_VIOLATIONS as u64 + 40);
    }

    #[test]
    fn violation_display_is_informative() {
        let (mut a, t) = auditor();
        a.observe(&ev(CmdKind::Act, 0, 5, 0));
        a.observe(&ev(CmdKind::Read, 0, 0, 1));
        let s = a.violations()[0].to_string();
        assert!(s.contains("RD"), "{s}");
        assert!(s.contains("tRCD"), "{s}");
        assert!(s.contains(&format!("{}", t.t_rcd)), "{s}");
    }
}
