//! Cycle-level GDDR5 device model.
//!
//! Models one GDDR5 channel as the paper configures it (Table II): two x32
//! chips operated in tandem as a single rank of 16 banks organised into 4
//! bank groups, a 64-bit data bus at 6 Gb/s/pin, and the full command timing
//! protocol (ACT / PRE / RD / WR with tRC, tRCD, tRP, tCAS, tRAS, tRRD,
//! tFAW, tWTR, tRTP, tCCDL/tCCDS, tRTRS, tWR, tBURST).
//!
//! The controller (in `ldsim-memctrl`) asks [`Channel::can_act`] /
//! [`Channel::can_read`] / … every cycle and issues at most one command per
//! cycle on the shared command bus; the device enforces every datasheet
//! constraint and tracks data-bus occupancy, which is also the source of the
//! bandwidth-utilisation statistic of Fig. 11.
//!
//! The crate also hosts:
//! * [`merb`] — the Minimum Efficient Row Burst table of Section IV-D
//!   (Table I), derived from the timing parameters at construction time;
//! * [`power`] — a Micron-power-calculator-style GDDR5 power model used for
//!   the Section VI-B energy analysis.

pub mod audit;
pub mod bank;
pub mod channel;
pub mod merb;
pub mod power;

pub use audit::{CmdEvent, CmdKind, Rule, TimingAuditor, Violation};
pub use bank::{Bank, BankState};
pub use channel::{Channel, ChannelStats, Command};
pub use merb::MerbTable;
pub use power::{PowerModel, PowerParams};
