//! Per-bank DRAM state machine.
//!
//! A bank is either precharged (idle) or has one row open in its row buffer.
//! The bank tracks the earliest cycle at which each command class becomes
//! legal *from this bank's perspective*; channel-global constraints (tRRD,
//! tFAW, bus occupancy, column-to-column spacing, turnarounds) are enforced
//! by [`crate::channel::Channel`].

use ldsim_types::clock::Cycle;
use ldsim_types::config::TimingCycles;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// Precharged; no row open.
    Idle,
    /// A row is open (possibly still within tRCD of its activation).
    Active { row: u32 },
}

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    pub state: BankState,
    /// Earliest cycle an ACT may be issued (after tRP from precharge and
    /// tRC from the previous ACT).
    pub act_ready: Cycle,
    /// Earliest cycle a column read may be issued (tRCD after ACT).
    pub rd_ready: Cycle,
    /// Earliest cycle a column write may be issued (tRCD after ACT).
    pub wr_ready: Cycle,
    /// Earliest cycle a PRE may be issued (tRAS after ACT, tRTP after the
    /// last read, tWL+tBURST+tWR after the last write).
    pub pre_ready: Cycle,
    /// Cycle of the most recent ACT (for tRC bookkeeping).
    pub last_act: Cycle,
    /// Row-hits serviced since the current row was opened — the 5-bit
    /// per-bank counter of the MERB scheme (Section IV-D). Saturates at 31.
    pub hits_since_act: u8,
}

impl Default for Bank {
    fn default() -> Self {
        Self {
            state: BankState::Idle,
            act_ready: 0,
            rd_ready: 0,
            wr_ready: 0,
            pre_ready: 0,
            last_act: 0,
            hits_since_act: 0,
        }
    }
}

impl Bank {
    /// The currently open row, if any.
    #[inline]
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Idle => None,
            BankState::Active { row } => Some(row),
        }
    }

    #[inline]
    pub fn is_open(&self) -> bool {
        matches!(self.state, BankState::Active { .. })
    }

    /// Earliest cycle an ACT could be legal from this bank's perspective
    /// (None while a row is open — a PRE must land first).
    #[inline]
    pub fn act_ready_at(&self) -> Option<Cycle> {
        if self.is_open() {
            None
        } else {
            Some(self.act_ready)
        }
    }

    /// Earliest cycle a PRE could be legal (None while precharged).
    #[inline]
    pub fn pre_ready_at(&self) -> Option<Cycle> {
        if self.is_open() {
            Some(self.pre_ready)
        } else {
            None
        }
    }

    /// Earliest cycle a column READ could be legal from this bank's
    /// perspective (None while precharged).
    #[inline]
    pub fn rd_ready_at(&self) -> Option<Cycle> {
        if self.is_open() {
            Some(self.rd_ready)
        } else {
            None
        }
    }

    /// Earliest cycle a column WRITE could be legal from this bank's
    /// perspective (None while precharged).
    #[inline]
    pub fn wr_ready_at(&self) -> Option<Cycle> {
        if self.is_open() {
            Some(self.wr_ready)
        } else {
            None
        }
    }

    /// Apply an ACT at `now` for `row`.
    pub fn do_act(&mut self, now: Cycle, row: u32, t: &TimingCycles) {
        debug_assert!(!self.is_open(), "ACT to open bank");
        debug_assert!(now >= self.act_ready, "ACT violates act_ready");
        self.state = BankState::Active { row };
        self.rd_ready = now + t.t_rcd;
        self.wr_ready = now + t.t_rcd;
        self.pre_ready = now + t.t_ras;
        self.act_ready = now + t.t_rc;
        self.last_act = now;
        self.hits_since_act = 0;
    }

    /// Apply a PRE at `now`.
    pub fn do_pre(&mut self, now: Cycle, t: &TimingCycles) {
        debug_assert!(self.is_open(), "PRE to closed bank");
        debug_assert!(now >= self.pre_ready, "PRE violates pre_ready");
        self.state = BankState::Idle;
        self.act_ready = self.act_ready.max(now + t.t_rp);
    }

    /// Apply a column READ at `now`, transferring `bursts` data bursts.
    /// The MERB row-hit counter counts bursts (Section IV-D).
    pub fn do_read(&mut self, now: Cycle, t: &TimingCycles, bursts: u8) {
        debug_assert!(self.is_open(), "RD to closed bank");
        debug_assert!(now >= self.rd_ready, "RD violates rd_ready (tRCD)");
        // Precharge must wait tRTP after the read command.
        self.pre_ready = self.pre_ready.max(now + t.t_rtp);
        self.hits_since_act = self.hits_since_act.saturating_add(bursts).min(31);
    }

    /// Apply a column WRITE at `now`, transferring `bursts` data bursts.
    pub fn do_write(&mut self, now: Cycle, t: &TimingCycles, bursts: u8) {
        debug_assert!(self.is_open(), "WR to closed bank");
        debug_assert!(now >= self.wr_ready, "WR violates wr_ready (tRCD)");
        // Precharge must wait for write recovery after the data lands.
        self.pre_ready = self
            .pre_ready
            .max(now + t.t_wl + t.t_burst * bursts as Cycle + t.t_wr);
        self.hits_since_act = self.hits_since_act.saturating_add(bursts).min(31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;

    fn t() -> TimingCycles {
        TimingParams::default().in_cycles(ClockDomain::GDDR5)
    }

    #[test]
    fn act_opens_row_and_sets_windows() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(100, 7, &t);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.rd_ready, 100 + t.t_rcd);
        assert_eq!(b.pre_ready, 100 + t.t_ras);
        assert_eq!(b.act_ready, 100 + t.t_rc);
        assert_eq!(b.hits_since_act, 0);
    }

    #[test]
    fn pre_closes_and_blocks_act_for_trp() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(0, 1, &t);
        let pre_at = b.pre_ready;
        b.do_pre(pre_at, &t);
        assert!(!b.is_open());
        // act_ready is the *later* of tRC-from-ACT and tRP-from-PRE.
        assert_eq!(b.act_ready, t.t_rc.max(pre_at + t.t_rp));
    }

    #[test]
    fn read_extends_pre_ready_by_trtp() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(0, 1, &t);
        let rd_at = t.t_ras - 1; // late read
        b.do_read(rd_at, &t, 1);
        assert_eq!(b.pre_ready, t.t_ras.max(rd_at + t.t_rtp));
        assert_eq!(b.hits_since_act, 1);
    }

    #[test]
    fn write_extends_pre_ready_by_write_recovery() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(0, 1, &t);
        let wr_at = b.wr_ready;
        b.do_write(wr_at, &t, 1);
        assert_eq!(
            b.pre_ready,
            t.t_ras.max(wr_at + t.t_wl + t.t_burst + t.t_wr)
        );
    }

    #[test]
    fn hit_counter_saturates_at_31() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(0, 1, &t);
        for i in 0..40 {
            b.do_read(t.t_rcd + i as Cycle * t.t_ccdl, &t, 1);
        }
        assert_eq!(b.hits_since_act, 31);
        // Re-activation resets the counter.
        b.do_pre(b.pre_ready, &t);
        b.do_act(b.act_ready, 2, &t);
        assert_eq!(b.hits_since_act, 0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // the guard is a debug_assert
    fn act_to_open_bank_panics_in_debug() {
        let t = t();
        let mut b = Bank::default();
        b.do_act(0, 1, &t);
        b.do_act(1000, 2, &t);
    }
}
