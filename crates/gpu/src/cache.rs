//! Set-associative LRU caches and miss-status holding registers.
//!
//! Timing-only (tags, no data). One [`Cache`] type serves both the per-SM
//! L1 (32 KB, 8-way) and the per-partition L2 slice (128 KB, 16-way) of
//! Table II. The [`Mshr`] merges concurrent misses to the same line; the
//! waiter type is generic so the L1 can track (warp, load) pairs and the
//! L2 can track original request identities.

use ldsim_types::config::CacheConfig;
use ldsim_util::FnvHashMap;

#[derive(Debug, Clone, Copy, Default)]
struct TagEntry {
    line: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_evictions: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A tag-only set-associative LRU cache, addressed by line number.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    tags: Vec<TagEntry>,
    tick: u64,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets,
            ways: cfg.ways,
            tags: vec![TagEntry::default(); sets * cfg.ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Probe for `line`; on hit, refresh LRU and optionally mark dirty.
    pub fn probe(&mut self, line: u64, mark_dirty: bool) -> bool {
        self.tick += 1;
        let s = self.set_of(line);
        let base = s * self.ways;
        for e in &mut self.tags[base..base + self.ways] {
            if e.valid && e.line == line {
                e.lru = self.tick;
                e.dirty |= mark_dirty;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Account a probe the caller has already classified as a miss (via
    /// [`Self::contains`], with no intervening mutation): advances the LRU
    /// clock and the miss counter exactly as the miss path of
    /// [`Self::probe`] would — including the clock tick, which future
    /// hits/fills embed in their recency stamps — without re-scanning the
    /// set.
    #[inline]
    pub fn probe_known_miss(&mut self, line: u64) {
        debug_assert!(!self.contains(line), "probe_known_miss on a resident line");
        let _ = line;
        self.tick += 1;
        self.stats.misses += 1;
    }

    /// Probe without updating LRU or stats (lookup-only).
    pub fn contains(&self, line: u64) -> bool {
        let s = self.set_of(line);
        let base = s * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .any(|e| e.valid && e.line == line)
    }

    /// Insert `line`, evicting the LRU way if the set is full. Returns the
    /// evicted line and its dirty bit, if any.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        self.tick += 1;
        let s = self.set_of(line);
        let base = s * self.ways;
        // Already present (e.g. two in-flight fills to one line): refresh.
        for e in &mut self.tags[base..base + self.ways] {
            if e.valid && e.line == line {
                e.lru = self.tick;
                e.dirty |= dirty;
                return None;
            }
        }
        // Prefer a free way; otherwise evict the LRU way.
        let mut victim = base;
        let mut best = u64::MAX;
        for (i, e) in self.tags[base..base + self.ways].iter().enumerate() {
            if !e.valid {
                victim = base + i;
                break;
            }
            if e.lru < best {
                best = e.lru;
                victim = base + i;
            }
        }
        let old = self.tags[victim];
        self.tags[victim] = TagEntry {
            line,
            valid: true,
            dirty,
            lru: self.tick,
        };
        if old.valid {
            self.stats.evictions += 1;
            if old.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some((old.line, old.dirty))
        } else {
            None
        }
    }

    /// Drop `line` if present (store-invalidate in the L1).
    pub fn invalidate(&mut self, line: u64) {
        let s = self.set_of(line);
        let base = s * self.ways;
        for e in &mut self.tags[base..base + self.ways] {
            if e.valid && e.line == line {
                e.valid = false;
                return;
            }
        }
    }
}

/// Outcome of registering a miss with the MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated: the caller must send the request downstream.
    Allocated,
    /// Merged into an in-flight entry: no downstream request.
    Merged,
    /// MSHR full: the access must be retried later.
    Full,
}

/// Waiters on one in-flight line. The single-waiter case — the vast
/// majority, since merges are the exception — stays inline, so registering
/// a miss allocates nothing; a `Vec` appears only once a second waiter
/// merges in.
#[derive(Debug, Clone)]
enum Waiters<W> {
    One(W),
    Many(Vec<W>),
}

impl<W> Waiters<W> {
    fn as_slice(&self) -> &[W] {
        match self {
            Waiters::One(w) => std::slice::from_ref(w),
            Waiters::Many(v) => v,
        }
    }
}

/// Draining iterator over a filled line's waiters (see [`Mshr::fill`]).
pub struct FillIter<W>(FillInner<W>);

enum FillInner<W> {
    Empty,
    One(Option<W>),
    Many(std::vec::IntoIter<W>),
}

impl<W> Iterator for FillIter<W> {
    type Item = W;

    fn next(&mut self) -> Option<W> {
        match &mut self.0 {
            FillInner::Empty => None,
            FillInner::One(w) => w.take(),
            FillInner::Many(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.0 {
            FillInner::Empty => 0,
            FillInner::One(w) => usize::from(w.is_some()),
            FillInner::Many(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl<W> ExactSizeIterator for FillIter<W> {}

/// Miss-status holding registers: one entry per in-flight missed line, each
/// holding the waiters to notify on fill.
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    capacity: usize,
    /// Keyed lookups only — never iterated, so the cheap deterministic
    /// hasher cannot influence simulation results.
    entries: FnvHashMap<u64, Waiters<W>>,
    pub merges: u64,
}

impl<W> Mshr<W> {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: FnvHashMap::with_capacity_and_hasher(capacity, Default::default()),
            merges: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Would registering a miss on `line` need a new entry, and is there
    /// room? (Query without mutation, for all-or-nothing load issue.)
    pub fn can_accept(&self, line: u64) -> bool {
        self.entries.contains_key(&line) || self.entries.len() < self.capacity
    }

    pub fn in_flight(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Register a miss on `line` with `waiter`.
    pub fn register(&mut self, line: u64, waiter: W) -> MshrOutcome {
        let full = self.entries.len() >= self.capacity;
        match self.entries.entry(line) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                match e.get_mut() {
                    Waiters::Many(v) => v.push(waiter),
                    slot => {
                        let Waiters::One(first) =
                            std::mem::replace(slot, Waiters::Many(Vec::with_capacity(2)))
                        else {
                            unreachable!()
                        };
                        let Waiters::Many(v) = slot else {
                            unreachable!()
                        };
                        v.push(first);
                        v.push(waiter);
                    }
                }
                self.merges += 1;
                MshrOutcome::Merged
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if full {
                    return MshrOutcome::Full;
                }
                v.insert(Waiters::One(waiter));
                MshrOutcome::Allocated
            }
        }
    }

    /// The line's data arrived: pop and drain every waiter. Allocation-free
    /// for the common single-waiter entry.
    pub fn fill(&mut self, line: u64) -> FillIter<W> {
        FillIter(match self.entries.remove(&line) {
            None => FillInner::Empty,
            Some(Waiters::One(w)) => FillInner::One(Some(w)),
            Some(Waiters::Many(v)) => FillInner::Many(v.into_iter()),
        })
    }

    /// Current waiters on an in-flight line (empty slice if none).
    pub fn waiters(&self, line: u64) -> &[W] {
        self.entries.get(&line).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::config::CacheConfig;

    fn small() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 4 * 128 * 2, // 2 sets x 4 ways
            line_bytes: 128,
            ways: 4,
            mshr_entries: 4,
            latency: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.probe(10, false));
        c.fill(10, false);
        assert!(c.probe(10, false));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Fill one set (lines = 2k for set 0): 4 ways.
        for i in 0..4u64 {
            c.fill(i * 2, false);
        }
        // Touch lines 0,2,4 so 6 is LRU.
        c.probe(0, false);
        c.probe(2, false);
        c.probe(4, false);
        let evicted = c.fill(8, false).unwrap();
        assert_eq!(evicted, (6, false));
        assert!(!c.contains(6));
        assert!(c.contains(8));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        for i in 0..4u64 {
            c.fill(i * 2, i == 0);
        }
        // Evict them all by filling 4 new lines in the same set.
        let mut dirty_seen = 0;
        for i in 4..8u64 {
            if let Some((_, d)) = c.fill(i * 2, false) {
                if d {
                    dirty_seen += 1;
                }
            }
        }
        assert_eq!(dirty_seen, 1);
        assert_eq!(c.stats.dirty_evictions, 1);
    }

    #[test]
    fn probe_mark_dirty_persists() {
        let mut c = small();
        c.fill(10, false);
        assert!(c.probe(10, true));
        // Evict it and observe the dirty bit.
        for i in 0..4u64 {
            c.fill(10 + (i + 1) * 2, false);
        }
        assert_eq!(c.stats.dirty_evictions, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(10, true);
        c.invalidate(10);
        assert!(!c.contains(10));
        // Invalidation is not an eviction.
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn mshr_merge_and_fill() {
        let mut m: Mshr<u32> = Mshr::new(2);
        assert_eq!(m.register(5, 1), MshrOutcome::Allocated);
        assert_eq!(m.register(5, 2), MshrOutcome::Merged);
        assert_eq!(m.register(6, 3), MshrOutcome::Allocated);
        assert_eq!(m.register(7, 4), MshrOutcome::Full);
        assert!(m.can_accept(5), "existing line always accepts");
        assert!(!m.can_accept(7));
        assert_eq!(m.waiters(5), &[1, 2]);
        assert_eq!(m.fill(5).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(m.fill(5).count(), 0);
        assert_eq!(m.merges, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.waiters(6), &[3]);
        assert_eq!(m.fill(6).collect::<Vec<_>>(), vec![3]);
    }
}
