//! The memory coalescer (Section III-A).
//!
//! Combines the per-lane byte addresses of one warp load/store into the
//! minimal set of distinct 128 B cache-line requests. For spatially local
//! (regular) access patterns a fully active warp collapses to 1–2 requests;
//! for irregular gathers it fans out to up to 32 — the paper measures 5.9
//! requests per divergent load on average (Fig. 2).

use ldsim_types::ids::LaneMask;

/// Coalesce lane byte-addresses into unique line addresses (`addr >> line_shift`),
/// preserving first-touch order. Returns the line addresses.
///
/// `scratch` avoids re-allocation on the hot path; it is cleared first.
pub fn coalesce_into(
    addrs: &[u64; 32],
    mask: LaneMask,
    line_shift: u32,
    scratch: &mut Vec<u64>,
) -> usize {
    scratch.clear();
    // Linear scan beats hashing here: the list is <= 32 entries and
    // usually far shorter (see the perf-book guidance on small hot
    // collections). A 64-bit fingerprint of the lines seen so far skips
    // even that scan when a line's low bits are fresh — scattered gathers
    // (all-distinct lines, the common irregular case) then dedup in O(n)
    // instead of O(n²), and first-occurrence order is untouched.
    let mut seen = 0u64;
    for lane in mask.iter() {
        let line = addrs[lane] >> line_shift;
        let bit = 1u64 << (line & 63);
        if seen & bit != 0 && scratch.contains(&line) {
            continue;
        }
        seen |= bit;
        scratch.push(line);
    }
    scratch.len()
}

/// Convenience wrapper returning a fresh vector.
///
/// ```
/// use ldsim_gpu::coalescer::coalesce;
/// use ldsim_types::ids::LaneMask;
///
/// // A unit-stride warp load collapses to one 128 B line...
/// let mut unit = [0u64; 32];
/// for (lane, a) in unit.iter_mut().enumerate() { *a = 0x1000 + 4 * lane as u64; }
/// assert_eq!(coalesce(&unit, LaneMask::ALL, 7).len(), 1);
///
/// // ...while a fully divergent gather fans out to 32 requests.
/// let mut gather = [0u64; 32];
/// for (lane, a) in gather.iter_mut().enumerate() { *a = 4096 * lane as u64; }
/// assert_eq!(coalesce(&gather, LaneMask::ALL, 7).len(), 32);
/// ```
pub fn coalesce(addrs: &[u64; 32], mask: LaneMask, line_shift: u32) -> Vec<u64> {
    let mut v = Vec::with_capacity(8);
    coalesce_into(addrs, mask, line_shift, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_one_line() {
        // 32 lanes x 4B = 128B: exactly one line.
        let mut addrs = [0u64; 32];
        for (l, a) in addrs.iter_mut().enumerate() {
            *a = 0x1000 + 4 * l as u64;
        }
        assert_eq!(coalesce(&addrs, LaneMask::ALL, 7), vec![0x1000 >> 7]);
    }

    #[test]
    fn eight_byte_stride_coalesces_to_two_lines() {
        let mut addrs = [0u64; 32];
        for (l, a) in addrs.iter_mut().enumerate() {
            *a = 0x2000 + 8 * l as u64;
        }
        assert_eq!(coalesce(&addrs, LaneMask::ALL, 7).len(), 2);
    }

    #[test]
    fn fully_divergent_gather_fans_out_to_32() {
        let mut addrs = [0u64; 32];
        for (l, a) in addrs.iter_mut().enumerate() {
            *a = (l as u64) * 4096;
        }
        assert_eq!(coalesce(&addrs, LaneMask::ALL, 7).len(), 32);
    }

    #[test]
    fn inactive_lanes_are_ignored() {
        let mut addrs = [0u64; 32];
        for (l, a) in addrs.iter_mut().enumerate() {
            *a = (l as u64) * 4096;
        }
        let mut mask = LaneMask::NONE;
        mask.set(0);
        mask.set(5);
        assert_eq!(coalesce(&addrs, mask, 7).len(), 2);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = [0xABCD00u64; 32];
        assert_eq!(coalesce(&addrs, LaneMask::ALL, 7).len(), 1);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let mut addrs = [0u64; 32];
        addrs[0] = 3 << 7;
        addrs[1] = 1 << 7;
        addrs[2] = 3 << 7;
        addrs[3] = 2 << 7;
        let mut mask = LaneMask::NONE;
        for l in 0..4 {
            mask.set(l);
        }
        assert_eq!(coalesce(&addrs, mask, 7), vec![3, 1, 2]);
    }

    #[test]
    fn scratch_reuse_clears() {
        let mut scratch = vec![99, 98];
        let addrs = [0u64; 32];
        let n = coalesce_into(&addrs, LaneMask::ALL, 7, &mut scratch);
        assert_eq!(n, 1);
        assert_eq!(scratch, vec![0]);
    }
}
