//! The crossbar interconnect between SMs and memory partitions.
//!
//! Two instances are used: requests (30 SM sources → 6 partition
//! destinations) and responses (6 → 30). Each source has a bounded FIFO;
//! each destination accepts at most one payload per cycle, arbitrated
//! round-robin among the sources whose *head* targets it — so per-source
//! order is preserved end to end, which Section IV-B.2 requires of the
//! SM→GMC path ("the interconnect ... does not re-order requests from a
//! single SM"). Accepted payloads arrive after a fixed pipeline latency.

use ldsim_types::clock::Cycle;
use std::collections::VecDeque;

/// A generic fixed-latency crossbar.
#[derive(Debug)]
pub struct Crossbar<T> {
    latency: Cycle,
    num_dsts: usize,
    src_q: Vec<VecDeque<(usize, T)>>,
    src_cap: usize,
    /// In-flight payloads, ordered by arrival cycle (monotone by
    /// construction).
    flight: VecDeque<(Cycle, usize, T)>,
    rr: usize,
    pub accepted: u64,
    /// Per-tick scratch (grant/blocked flags per destination, rejected
    /// deliveries to requeue) — reused across cycles, this is a per-cycle
    /// hot path.
    granted: Vec<bool>,
    blocked: Vec<bool>,
    kept: Vec<(Cycle, usize, T)>,
}

impl<T> Crossbar<T> {
    pub fn new(num_srcs: usize, num_dsts: usize, latency: Cycle, src_cap: usize) -> Self {
        Self {
            latency,
            num_dsts,
            src_q: (0..num_srcs).map(|_| VecDeque::new()).collect(),
            src_cap,
            flight: VecDeque::new(),
            rr: 0,
            accepted: 0,
            granted: vec![false; num_dsts],
            blocked: vec![false; num_dsts],
            kept: Vec::new(),
        }
    }

    /// Free slots in `src`'s injection FIFO.
    pub fn free_space(&self, src: usize) -> usize {
        self.src_cap - self.src_q[src].len()
    }

    /// Inject a payload for `dst`; returns false (and drops nothing) if the
    /// source FIFO is full — callers check [`Self::free_space`] first.
    pub fn inject(&mut self, src: usize, dst: usize, payload: T) -> bool {
        debug_assert!(dst < self.num_dsts);
        if self.src_q[src].len() >= self.src_cap {
            return false;
        }
        self.src_q[src].push_back((dst, payload));
        true
    }

    /// One cycle: accept up to one head per destination (round-robin over
    /// sources), then deliver arrivals due at `now`. `can_accept(dst)` is
    /// consulted before each delivery; a full destination leaves its
    /// payloads in flight for next cycle (per-destination order preserved —
    /// once a destination rejects, nothing more is delivered to it this
    /// cycle).
    pub fn tick(
        &mut self,
        now: Cycle,
        mut can_accept: impl FnMut(usize) -> bool,
        mut deliver: impl FnMut(usize, T),
    ) {
        let ns = self.src_q.len();
        // One grant per destination per cycle.
        self.granted.fill(false);
        let start = self.rr;
        for off in 0..ns {
            let s = (start + off) % ns;
            let Some(&(dst, _)) = self.src_q[s].front() else {
                continue;
            };
            if self.granted[dst] {
                continue;
            }
            self.granted[dst] = true;
            let (dst, t) = self.src_q[s].pop_front().unwrap();
            self.flight.push_back((now + self.latency, dst, t));
            self.accepted += 1;
        }
        self.rr = (self.rr + 1) % ns;
        // Deliver due payloads; rejected destinations retry next cycle.
        debug_assert!(self.kept.is_empty());
        self.blocked.fill(false);
        while let Some(&(arrive, _, _)) = self.flight.front() {
            if arrive > now {
                break;
            }
            let (a, dst, t) = self.flight.pop_front().unwrap();
            if !self.blocked[dst] && can_accept(dst) {
                deliver(dst, t);
            } else {
                self.blocked[dst] = true;
                self.kept.push((a, dst, t));
            }
        }
        for r in self.kept.drain(..).rev() {
            self.flight.push_front(r);
        }
    }

    /// Anything queued or flying?
    pub fn busy(&self) -> bool {
        !self.flight.is_empty() || self.src_q.iter().any(|q| !q.is_empty())
    }

    /// Earliest cycle [`Self::tick`] could move a payload: `now` while any
    /// source FIFO holds a head to grant (or a blocked delivery is
    /// retrying), else the first in-flight arrival. `None` when empty.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.src_q.iter().any(|q| !q.is_empty()) {
            return Some(now);
        }
        self.flight.front().map(|&(arrive, _, _)| arrive.max(now))
    }

    /// Account for `delta` skipped idle ticks: the round-robin pointer
    /// advances every cycle whether or not anything is granted, so skipping
    /// must replay that rotation for bit-exact arbitration afterwards.
    pub fn skip(&mut self, delta: Cycle) {
        let ns = self.src_q.len();
        self.rr = (self.rr + (delta % ns as Cycle) as usize) % ns;
    }

    /// Pop every in-flight payload due strictly before `end`, in flight
    /// (grant) order, handing `(arrival_cycle, dst, payload)` to `f`.
    ///
    /// This is the epoch scheduler's pre-distribution hook (DESIGN.md §18):
    /// deliveries due inside a conservative window were all granted before
    /// the window opened, so their contents are known at the barrier — only
    /// their exact delivery cycle (under destination back-pressure) is not,
    /// and that is destination-local, so each destination replays its own.
    pub fn drain_arrivals_before(&mut self, end: Cycle, mut f: impl FnMut(Cycle, usize, T)) {
        while let Some(&(arrive, _, _)) = self.flight.front() {
            if arrive >= end {
                break;
            }
            let (arrive, dst, t) = self.flight.pop_front().unwrap();
            f(arrive, dst, t);
        }
    }

    /// Put a drained payload back at the head of the flight queue (the
    /// inverse of [`Self::drain_arrivals_before`], for arrivals a window
    /// closed on while the destination was still full). Callers re-insert
    /// in reverse grant order so the queue's grant order — and its
    /// monotone-arrival invariant — is restored.
    pub fn requeue_front(&mut self, arrive: Cycle, dst: usize, payload: T) {
        debug_assert!(
            self.flight.front().is_none_or(|&(a, _, _)| arrive <= a),
            "requeue_front would break the flight queue's arrival order"
        );
        self.flight.push_front((arrive, dst, payload));
    }

    /// The earliest in-flight arrival cycle, ignoring queued (ungranted)
    /// heads — `None` when nothing is flying. Unlike [`Self::next_event`]
    /// this is *not* clamped to any `now`: the epoch scheduler compares it
    /// against a window edge, not against the current cycle.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.flight.front().map(|&(arrive, _, _)| arrive)
    }

    /// Fill `out[dst]` with the earliest in-flight arrival cycle per
    /// destination (`None` = nothing flying toward it). Queued heads are
    /// deliberately excluded: anything granted at or after the current
    /// cycle arrives a full pipeline latency later, which the epoch
    /// scheduler's window bound already accounts for (DESIGN.md §18).
    pub fn min_arrival_per_dst(&self, out: &mut Vec<Option<Cycle>>) {
        out.clear();
        out.resize(self.num_dsts, None);
        let mut unseen = self.num_dsts;
        for &(arrive, dst, _) in &self.flight {
            if out[dst].is_none() {
                out[dst] = Some(arrive);
                unseen -= 1;
                if unseen == 0 {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_order_is_preserved() {
        let mut xb: Crossbar<u32> = Crossbar::new(2, 2, 4, 8);
        for i in 0..4 {
            assert!(xb.inject(0, (i % 2) as usize, i));
        }
        let mut got = Vec::new();
        for now in 0..20 {
            xb.tick(now, |_| true, |_, t| got.push(t));
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_grant_per_destination_per_cycle() {
        let mut xb: Crossbar<u32> = Crossbar::new(4, 1, 0, 8);
        for s in 0..4 {
            xb.inject(s, 0, s as u32);
        }
        let mut per_cycle = Vec::new();
        for now in 0..4 {
            let mut n = 0;
            xb.tick(now, |_| true, |_, _| n += 1);
            per_cycle.push(n);
        }
        assert_eq!(per_cycle, vec![1, 1, 1, 1]);
    }

    #[test]
    fn latency_is_applied() {
        let mut xb: Crossbar<u32> = Crossbar::new(1, 1, 5, 8);
        xb.inject(0, 0, 42);
        let mut arrived_at = None;
        for now in 0..10 {
            xb.tick(now, |_| true, |_, _| arrived_at = Some(now));
        }
        assert_eq!(arrived_at, Some(5));
    }

    #[test]
    fn bounded_injection() {
        let mut xb: Crossbar<u32> = Crossbar::new(1, 1, 1, 2);
        assert!(xb.inject(0, 0, 1));
        assert!(xb.inject(0, 0, 2));
        assert_eq!(xb.free_space(0), 0);
        assert!(!xb.inject(0, 0, 3));
    }

    #[test]
    fn round_robin_is_fair_across_sources() {
        let mut xb: Crossbar<u32> = Crossbar::new(3, 1, 0, 16);
        for s in 0..3 {
            for i in 0..5 {
                xb.inject(s, 0, (s * 10 + i) as u32);
            }
        }
        let mut first_six = Vec::new();
        for now in 0..6 {
            xb.tick(now, |_| true, |_, t| first_six.push(t / 10));
        }
        // Every source served twice in six cycles.
        for s in 0..3 {
            assert_eq!(first_six.iter().filter(|&&x| x == s).count(), 2);
        }
    }

    #[test]
    fn backpressure_retries_in_order() {
        let mut xb: Crossbar<u32> = Crossbar::new(1, 1, 0, 8);
        for i in 0..3 {
            xb.inject(0, 0, i);
        }
        let mut got = Vec::new();
        // Destination refuses for 3 cycles, then opens.
        for now in 0..8 {
            let open = now >= 3;
            xb.tick(now, |_| open, |_, t| got.push(t));
        }
        assert_eq!(got, vec![0, 1, 2], "order must survive rejection");
    }

    #[test]
    fn skip_matches_explicit_idle_ticks() {
        // Skipping N idle cycles must leave the arbiter in the same state as
        // ticking N times with nothing queued: the next contended grant goes
        // to the same source.
        for idle in [0u64, 1, 2, 3, 7, 513] {
            let mut a: Crossbar<u32> = Crossbar::new(3, 1, 0, 8);
            let mut b: Crossbar<u32> = Crossbar::new(3, 1, 0, 8);
            for now in 0..idle {
                a.tick(now, |_| true, |_, _| {});
            }
            b.skip(idle);
            assert_eq!(a.next_event(idle), None);
            assert_eq!(b.next_event(idle), None);
            for s in 0..3 {
                a.inject(s, 0, s as u32);
                b.inject(s, 0, s as u32);
            }
            assert_eq!(a.next_event(idle), Some(idle));
            let (mut ga, mut gb) = (Vec::new(), Vec::new());
            for now in idle..idle + 3 {
                a.tick(now, |_| true, |_, t| ga.push(t));
                b.tick(now, |_| true, |_, t| gb.push(t));
            }
            assert_eq!(ga, gb, "idle={idle}");
        }
    }

    #[test]
    fn next_event_reports_first_arrival() {
        let mut xb: Crossbar<u32> = Crossbar::new(1, 1, 5, 8);
        xb.inject(0, 0, 42);
        assert_eq!(xb.next_event(0), Some(0), "queued head is immediate");
        xb.tick(0, |_| true, |_, _| {});
        assert_eq!(xb.next_event(1), Some(5), "in-flight arrival at 5");
        assert_eq!(xb.next_event(7), Some(7), "past-due clamps to now");
    }

    #[test]
    fn head_of_line_blocking_preserves_order() {
        // Head targets dst 0 (busy via another source), later entry targets
        // dst 1 but must wait behind the head.
        let mut xb: Crossbar<u32> = Crossbar::new(2, 2, 0, 8);
        xb.inject(1, 0, 100); // source 1 competes for dst 0
        xb.inject(0, 0, 1);
        xb.inject(0, 1, 2);
        let mut got = Vec::new();
        for now in 0..6 {
            xb.tick(now, |_| true, |_, t| got.push(t));
        }
        let p1 = got.iter().position(|&t| t == 1).unwrap();
        let p2 = got.iter().position(|&t| t == 2).unwrap();
        assert!(p1 < p2, "source 0 order violated: {got:?}");
        assert!(!xb.busy());
    }
}
