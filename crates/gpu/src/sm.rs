//! The streaming multiprocessor (SM) model.
//!
//! Each SM executes the kernel IR for its resident warps with a
//! greedy-then-oldest scheduler, one warp-instruction per cycle:
//!
//! * `Compute(n)` makes the warp busy for `n` cycles (retiring `n`
//!   instructions);
//! * `Load` coalesces the 32 lane addresses, probes the L1 (with MSHR
//!   merging), sends the surviving misses to the memory partitions as one
//!   **warp-group**, and blocks the warp until every lane is satisfied —
//!   the SIMT lockstep rule at the heart of the paper;
//! * `Store` coalesces and fires writes at the L2 without blocking.
//!
//! Every completed load leaves a [`LoadRecord`] behind; these records are
//! the raw data for Figs. 2, 3, 9 and 10.

use crate::cache::{Cache, Mshr, MshrOutcome};
use crate::coalescer::coalesce_into;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::Cycle;
use ldsim_types::config::GpuConfig;
use ldsim_types::ids::{GlobalWarpId, LaneMask, RequestId, SmId, WarpGroupId};
use ldsim_types::kernel::{Instruction, WarpProgram};
use ldsim_types::req::{MemRequest, ReqKind};

/// A response delivered to the SM for one 128 B line.
#[derive(Debug, Clone, Copy)]
pub struct SmResponse {
    pub line_addr: u64,
    /// Was this line ultimately serviced by DRAM (vs. an L2 hit)?
    pub from_dram: bool,
    /// DRAM data-end cycle (meaningful when `from_dram`).
    pub dram_cycle: Cycle,
}

/// Statistics for one completed dynamic load.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadRecord {
    pub warp: GlobalWarpId,
    pub active_lanes: u32,
    /// Requests after coalescing (Fig. 2's numerator).
    pub coalesced: u32,
    /// Requests that left the SM toward memory (post-L1).
    pub mem_reqs: u32,
    /// Line fills that came from DRAM.
    pub dram_responses: u32,
    pub issue: Cycle,
    pub complete: Cycle,
    /// First / last DRAM data-end cycle among the load's lines (0 if none).
    pub first_dram: Cycle,
    pub last_dram: Cycle,
    /// Distinct channels / (channel, bank) pairs touched by `mem_reqs`.
    pub channels_touched: u32,
    pub banks_touched: u32,
    /// Members of the group sharing a DRAM row with another member.
    pub same_row_reqs: u32,
}

impl LoadRecord {
    /// Effective memory latency (Fig. 9): issue to last response.
    pub fn effective_latency(&self) -> Cycle {
        self.complete.saturating_sub(self.issue)
    }

    /// DRAM latency divergence (Figs. 3, 10): first to last DRAM service.
    pub fn dram_gap(&self) -> Cycle {
        self.last_dram.saturating_sub(self.first_dram)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WState {
    Ready,
    Busy(Cycle),
    WaitMem,
    Done,
}

#[derive(Debug)]
struct WarpCtx {
    pc: usize,
    state: WState,
    load_serial: u32,
    outstanding: u32,
    cur: LoadRecord,
    retired: u64,
    /// `fill_epoch` at which this warp's load last failed the MSHR
    /// capacity check (`u64::MAX` = no memoized failure), plus how far
    /// over capacity it was (`deficit = len + new_entries - cap`, >= 1).
    /// Between fills `mshr.len() + new_entries` can only grow for a
    /// blocked warp — stores only invalidate L1 lines (more misses), and
    /// another warp's register that turns one of our "new" lines into a
    /// merge adds at least as much to `len` as it removes from
    /// `new_entries` — and each fill lowers the sum by exactly one (it
    /// frees one MSHR entry; the filled line was in flight, so it was
    /// never one of our "new" lines, and any eviction it causes only adds
    /// misses). So the check is guaranteed to fail again until `deficit`
    /// fills have landed, and the coalesce + classify rescan is skipped
    /// until then.
    mshr_block_epoch: u64,
    mshr_block_deficit: u64,
}

/// One streaming multiprocessor.
pub struct Sm {
    pub id: SmId,
    programs: Vec<WarpProgram>,
    warps: Vec<WarpCtx>,
    l1: Cache,
    l1_mshr: Mshr<u16>,
    l1_mshr_cap: usize,
    mapper: AddressMapper,
    line_shift: u32,
    last_issued: usize,
    /// Min-heap of `(until, warp)` for every `Busy` warp — exactly one
    /// entry per Busy warp, popped at its wake tick, so the per-cycle wake
    /// pass costs O(expired) instead of O(warps) and `next_event`'s
    /// earliest-expiry query is the heap peek (DESIGN.md §13).
    busy_heap: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, u32)>>,
    /// Bitset of `Ready` warps (bit = warp index), kept in lockstep with
    /// `WState` at every transition: the issue stage walks set bits in
    /// ascending order — the same oldest-first order as the old full scan —
    /// and the idle check is `ready_count == 0` instead of an all-warps
    /// scan. Wake order and scan order have no cross-warp effects, so both
    /// replacements are bit-exact.
    ready_words: Vec<u64>,
    ready_count: usize,
    /// The SM's single issue port: busy until this cycle. A `Compute(n)`
    /// occupies it for n cycles (warp-interleaved issue is aggregated), so
    /// SM throughput is port-limited unless every warp is blocked on memory
    /// — which is when memory latency becomes visible in IPC, exactly the
    /// regime the paper studies.
    port_free: Cycle,
    next_req: u64,
    scratch_lines: Vec<u64>,
    /// Reusable per-load buffers (miss lines, (channel,bank,row) keys,
    /// outgoing requests): load issue is the SM hot path, and per-load
    /// `Vec` churn showed up directly in the allocator profile.
    scratch_misses: Vec<u64>,
    scratch_keys: Vec<(u8, u8, u32)>,
    scratch_reqs: Vec<MemRequest>,
    /// Requests of an issued load/store still waiting for crossbar space;
    /// drained in order, at most `xbar_free` per cycle. Lets a wide gather
    /// issue atomically without requiring a huge injection budget.
    stage_q: std::collections::VecDeque<MemRequest>,
    /// Completed load records (Figs. 2/3/9/10 raw data).
    pub records: Vec<LoadRecord>,
    /// Warp-instructions retired (IPC numerator).
    pub retired: u64,
    /// Cycles where a load could not issue for lack of MSHR/injection space.
    pub resource_stalls: u64,
    /// Bumped on every line fill — the only event that can shrink
    /// `mshr.len() + new_entries` for a blocked warp (see
    /// [`WarpCtx::mshr_block_epoch`]).
    fill_epoch: u64,
    /// Cycles the issue port was occupied by compute.
    pub port_busy_cycles: u64,
    /// Cycles the port was free but no warp was ready (all blocked on
    /// memory or done) — the SM-idle statistic the paper's motivation cites.
    pub mem_idle_cycles: u64,
    done_warps: usize,
    /// Per-warp largest single-instruction weight (`Compute(k)`/`Delay(k)`
    /// weigh `k`, memory ops 1) — static input to [`Self::budget_lookahead`].
    warp_max_weight: Vec<u64>,
}

impl Sm {
    pub fn new(
        id: SmId,
        cfg: &GpuConfig,
        mapper: AddressMapper,
        programs: Vec<WarpProgram>,
    ) -> Self {
        assert!(programs.len() <= cfg.max_warps_per_sm.max(programs.len()));
        let warps = programs
            .iter()
            .map(|_| WarpCtx {
                pc: 0,
                state: WState::Ready,
                load_serial: 0,
                outstanding: 0,
                cur: LoadRecord::default(),
                retired: 0,
                mshr_block_epoch: u64::MAX,
                mshr_block_deficit: 0,
            })
            .collect::<Vec<_>>();
        let done_warps = programs.iter().filter(|p| p.insns.is_empty()).count();
        let warp_max_weight = programs
            .iter()
            .map(|p| {
                p.insns
                    .iter()
                    .map(|insn| match insn {
                        Instruction::Compute(k) | Instruction::Delay(k) => *k as u64,
                        Instruction::Load { .. } | Instruction::Store { .. } => 1,
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut s = Self {
            id,
            warps,
            l1: Cache::new(&cfg.l1),
            l1_mshr: Mshr::new(cfg.l1.mshr_entries),
            l1_mshr_cap: cfg.l1.mshr_entries,
            mapper,
            line_shift: cfg.l1.line_bytes.trailing_zeros(),
            last_issued: 0,
            busy_heap: std::collections::BinaryHeap::new(),
            ready_words: vec![0; programs.len().div_ceil(64)],
            ready_count: 0,
            port_free: 0,
            next_req: 0,
            scratch_lines: Vec::with_capacity(32),
            scratch_misses: Vec::with_capacity(32),
            scratch_keys: Vec::with_capacity(32),
            scratch_reqs: Vec::with_capacity(32),
            stage_q: std::collections::VecDeque::new(),
            records: Vec::new(),
            retired: 0,
            resource_stalls: 0,
            fill_epoch: 0,
            port_busy_cycles: 0,
            mem_idle_cycles: 0,
            done_warps,
            warp_max_weight,
            programs,
        };
        // Empty programs are Done from the start; everyone else is Ready.
        for i in 0..s.programs.len() {
            if s.programs[i].insns.is_empty() {
                s.warps[i].state = WState::Done;
            } else {
                s.mark_ready(i);
            }
        }
        s
    }

    #[inline]
    fn mark_ready(&mut self, wi: usize) {
        debug_assert_eq!(self.ready_words[wi >> 6] >> (wi & 63) & 1, 0);
        self.ready_words[wi >> 6] |= 1u64 << (wi & 63);
        self.ready_count += 1;
    }

    #[inline]
    fn clear_ready(&mut self, wi: usize) {
        debug_assert_eq!(self.ready_words[wi >> 6] >> (wi & 63) & 1, 1);
        self.ready_words[wi >> 6] &= !(1u64 << (wi & 63));
        self.ready_count -= 1;
    }

    #[inline]
    fn is_ready(&self, wi: usize) -> bool {
        self.ready_words[wi >> 6] >> (wi & 63) & 1 != 0
    }

    /// Wake a warp leaving `Busy`/`WaitMem`: `Done` if its program is
    /// exhausted, `Ready` otherwise.
    #[inline]
    fn wake(&mut self, wi: usize) {
        if self.warps[wi].pc >= self.programs[wi].insns.len() {
            self.warps[wi].state = WState::Done;
            self.done_warps += 1;
        } else {
            self.warps[wi].state = WState::Ready;
            self.mark_ready(wi);
        }
    }

    /// Transition a `Ready` warp to `Busy(until)`.
    #[inline]
    fn go_busy(&mut self, wi: usize, until: Cycle) {
        self.clear_ready(wi);
        self.warps[wi].state = WState::Busy(until);
        self.busy_heap.push(std::cmp::Reverse((until, wi as u32)));
    }

    /// All warps retired?
    pub fn done(&self) -> bool {
        self.done_warps == self.warps.len()
    }

    /// The largest remaining instruction count (`insns.len() - pc`) over
    /// this SM's live warps, capped at `cap` (with early exit once the cap
    /// is reached). A warp with `r` unissued instructions needs `r`
    /// distinct issue cycles before it can retire — the SM issues at most
    /// one instruction per cycle — so [`Self::done`] cannot become true
    /// before `max_remaining_insns(..)` further cycles have elapsed. The
    /// epoch scheduler uses this as its termination-check lookahead
    /// (DESIGN.md §18).
    pub fn max_remaining_insns(&self, cap: u64) -> u64 {
        let mut rem = 0u64;
        for (w, p) in self.warps.iter().zip(&self.programs) {
            if w.state == WState::Done {
                continue;
            }
            rem = rem.max((p.insns.len() - w.pc) as u64);
            if rem >= cap {
                return cap;
            }
        }
        rem
    }

    /// Any live warp currently blocked on memory? Such a warp cannot wake
    /// (let alone retire) before a response reaches this SM — the epoch
    /// scheduler combines this with the response crossbar's in-flight
    /// arrivals to extend its termination lookahead across the drain tail
    /// (DESIGN.md §18). Busy warps have exactly one heap entry each, so
    /// the memory-blocked count falls out of the other state counters.
    pub fn has_mem_blocked_warp(&self) -> bool {
        self.warps.len() - self.done_warps - self.ready_count - self.busy_heap.len() > 0
    }

    /// Budget lookahead inputs for the epoch scheduler (DESIGN.md §18):
    /// `(live_warps, overhang, heaviest)` over the not-yet-done warps,
    /// where `overhang` sums and `heaviest` maxes the per-warp largest
    /// single-instruction weight. Two independent ceilings on what this SM
    /// can retire inside a `W`-cycle span follow:
    ///
    /// * **issue port** — one instruction per cycle, each weighing at most
    ///   `heaviest`: `W * heaviest`;
    /// * **warp occupancy** — every weighted instruction also occupies its
    ///   warp for that many cycles (`Compute(k)`/`Delay(k)` go busy `k`
    ///   after retiring `k`; memory ops retire 1, occupy ≥ 1), so a warp
    ///   retires at most `W + max_weight` per span (its issues must fit,
    ///   bar one overhanging tail): `W * live_warps + overhang`.
    ///
    /// The epoch scheduler takes the min per SM — the port bound wins for
    /// many-warps/light-weights kernels, occupancy for few-warps/heavy-
    /// delay ones — and sums across SMs to bound how fast an instruction
    /// budget can drain.
    pub fn budget_lookahead(&self) -> (u64, u64, u64) {
        let mut live = 0u64;
        let mut overhang = 0u64;
        let mut heaviest = 0u64;
        for (w, &mw) in self.warps.iter().zip(&self.warp_max_weight) {
            if w.state != WState::Done {
                live += 1;
                overhang += mw;
                heaviest = heaviest.max(mw);
            }
        }
        (live, overhang, heaviest)
    }

    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }

    /// L1 statistics (hit rate etc.).
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(((self.id.0 as u64) << 40) | self.next_req)
    }

    /// Deliver a line fill. Satisfies every warp waiting on the line.
    pub fn accept_response(&mut self, resp: SmResponse, now: Cycle) {
        // A fill frees an MSHR entry and inserts into L1 — the memoized
        // capacity failures below are no longer conclusive.
        self.fill_epoch += 1;
        let waiters = self.l1_mshr.fill(resp.line_addr);
        self.l1.fill(resp.line_addr, false);
        for w in waiters {
            let warp = &mut self.warps[w as usize];
            debug_assert!(warp.outstanding > 0);
            warp.outstanding -= 1;
            if resp.from_dram {
                warp.cur.dram_responses += 1;
                if warp.cur.first_dram == 0 || resp.dram_cycle < warp.cur.first_dram {
                    warp.cur.first_dram = resp.dram_cycle;
                }
                warp.cur.last_dram = warp.cur.last_dram.max(resp.dram_cycle);
            }
            if warp.outstanding == 0 && warp.state == WState::WaitMem {
                warp.cur.complete = now;
                self.records.push(warp.cur);
                self.wake(w as usize);
            }
        }
    }

    /// One cycle: drain staged requests into the crossbar, wake busy warps,
    /// then let the greedy-then-oldest scheduler issue one instruction.
    /// Outgoing requests (at most `xbar_free`) are appended to `out`.
    pub fn tick(&mut self, now: Cycle, xbar_free: usize, out: &mut Vec<MemRequest>) {
        let mut budget = xbar_free;
        while budget > 0 {
            let Some(r) = self.stage_q.pop_front() else {
                break;
            };
            out.push(r);
            budget -= 1;
        }
        // Wake expired Busy warps: pop the heap up to `now`. Wake actions
        // only touch the woken warp (plus commutative counters), so heap
        // order vs. the old index-order scan is unobservable.
        while let Some(&std::cmp::Reverse((until, wi))) = self.busy_heap.peek() {
            if until > now {
                break;
            }
            self.busy_heap.pop();
            debug_assert!(matches!(self.warps[wi as usize].state, WState::Busy(u) if u == until));
            self.wake(wi as usize);
        }
        let n = self.warps.len();
        if n == 0 {
            return;
        }
        if now < self.port_free {
            self.port_busy_cycles += 1;
            return;
        }
        if !self.done() && self.ready_count == 0 && self.busy_heap.is_empty() {
            self.mem_idle_cycles += 1;
        }
        // Memory instructions stage their requests; only one staged group
        // at a time keeps ordering simple and throttles naturally.
        let can_stage = self.stage_q.is_empty();
        // Greedy: retry the last-issued warp first, then oldest-first over
        // the ready bitset. The issue stage tries a bounded number of ready
        // candidates per cycle (a structural port limit that also keeps the
        // simulator fast when many warps are blocked on full MSHRs or
        // injection queues). A failed try_issue mutates no warp state, so
        // iterating a snapshot of each bitset word stays exact.
        let mut attempts = 0;
        let li = self.last_issued;
        if self.is_ready(li) {
            if self.try_issue(li, now, can_stage, out, &mut budget) {
                return;
            }
            attempts += 1;
            if attempts >= 4 {
                return;
            }
        }
        for word_i in 0..self.ready_words.len() {
            let mut word = self.ready_words[word_i];
            while word != 0 {
                let wi = (word_i << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                if wi == li {
                    continue; // already tried as the greedy candidate
                }
                if self.try_issue(wi, now, can_stage, out, &mut budget) {
                    self.last_issued = wi;
                    return;
                }
                attempts += 1;
                if attempts >= 4 {
                    return;
                }
            }
        }
    }

    /// Earliest cycle [`Self::tick`] can change warp state: `now` while
    /// staged requests are draining, the earliest `Busy` expiry, or
    /// `port_free` if any warp is ready to issue. `None` when every warp is
    /// blocked on memory or done — wake-ups then come from
    /// [`Self::accept_response`], which other components' events drive.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.warps.is_empty() {
            return None;
        }
        if !self.stage_q.is_empty() {
            return Some(now);
        }
        // The heap min is the earliest Busy expiry (one entry per Busy warp).
        let mut ev: Option<Cycle> = self
            .busy_heap
            .peek()
            .map(|&std::cmp::Reverse((until, _))| until.max(now));
        if self.ready_count > 0 {
            let c = self.port_free.max(now);
            ev = Some(ev.map_or(c, |e| e.min(c)));
        }
        ev
    }

    /// Account for the cycles `[now, target)` being skipped: [`Self::tick`]
    /// increments `port_busy_cycles` whenever the port is occupied and
    /// `mem_idle_cycles` whenever the port is free but every warp is blocked
    /// on memory — both are pure functions of state that is frozen across a
    /// skip (no `Busy` warp expires before `target` by construction), so
    /// they are replayed here in closed form.
    pub fn skip(&mut self, now: Cycle, target: Cycle) {
        if self.warps.is_empty() {
            return;
        }
        debug_assert!(self.stage_q.is_empty(), "skip with staged requests");
        let pb = self.port_free.clamp(now, target) - now;
        self.port_busy_cycles += pb;
        if !self.done() && self.ready_count == 0 && self.busy_heap.is_empty() {
            self.mem_idle_cycles += (target - now) - pb;
        }
    }

    /// Attempt to issue the next instruction of warp `wi`. Returns false if
    /// blocked on resources (the scheduler then tries another warp).
    fn try_issue(
        &mut self,
        wi: usize,
        now: Cycle,
        can_stage: bool,
        out: &mut Vec<MemRequest>,
        budget: &mut usize,
    ) -> bool {
        let pc = self.warps[wi].pc;
        let insn = &self.programs[wi].insns[pc];
        match insn {
            Instruction::Compute(k) => {
                let k = *k;
                self.go_busy(wi, now + k as Cycle);
                self.warps[wi].retired += k as u64;
                self.retired += k as u64;
                // The warp's k instructions occupy the shared issue port.
                self.port_free = now + k as Cycle;
                self.advance(wi);
                true
            }
            Instruction::Delay(k) => {
                let k = *k;
                self.go_busy(wi, now + k as Cycle);
                self.warps[wi].retired += k as u64;
                self.retired += k as u64;
                self.advance(wi);
                true
            }
            Instruction::Load { addrs, mask } => {
                if !can_stage {
                    return false;
                }
                if self.warps[wi].mshr_block_epoch != u64::MAX
                    && self.fill_epoch - self.warps[wi].mshr_block_epoch
                        < self.warps[wi].mshr_block_deficit
                {
                    // This load failed the MSHR capacity check with a
                    // deficit that fills since then cannot yet have closed
                    // — it is guaranteed to fail again (see
                    // `WarpCtx::mshr_block_epoch`), so skip the coalesce +
                    // classify rescan.
                    #[cfg(debug_assertions)]
                    {
                        let mut lines = Vec::new();
                        coalesce_into(addrs, *mask, self.line_shift, &mut lines);
                        let mut fresh = Vec::new();
                        for &l in &lines {
                            if !self.l1.contains(l)
                                && !self.l1_mshr.in_flight(l)
                                && !fresh.contains(&l)
                            {
                                fresh.push(l);
                            }
                        }
                        debug_assert!(
                            self.l1_mshr.len() + fresh.len() > self.l1_mshr_cap,
                            "memoized MSHR-capacity failure is no longer valid"
                        );
                    }
                    self.resource_stalls += 1;
                    return false;
                }
                // Coalesce here, while `addrs` is still borrowed from the
                // (read-only) program store: issue_load then takes the line
                // list by value and the 256-byte lane array never needs
                // cloning.
                let mask = *mask;
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_into(addrs, mask, self.line_shift, &mut lines);
                self.issue_load(wi, now, lines, mask, out, budget)
            }
            Instruction::Store { addrs, mask } => {
                if !can_stage {
                    return false;
                }
                let mask = *mask;
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_into(addrs, mask, self.line_shift, &mut lines);
                self.issue_store(wi, now, lines, out, budget)
            }
        }
    }

    /// Send `reqs` toward the crossbar: up to `budget` immediately, the rest
    /// through the staging queue. Drains in place so the caller's (scratch)
    /// buffer is reusable.
    fn dispatch(
        &mut self,
        reqs: &mut Vec<MemRequest>,
        out: &mut Vec<MemRequest>,
        budget: &mut usize,
    ) {
        for r in reqs.drain(..) {
            if *budget > 0 {
                out.push(r);
                *budget -= 1;
            } else {
                self.stage_q.push_back(r);
            }
        }
    }

    /// Advance the program counter. Completion ("Done") is detected when
    /// the warp next leaves its Busy/WaitMem state, so an in-flight final
    /// load still blocks retirement of the warp.
    fn advance(&mut self, wi: usize) {
        self.warps[wi].pc += 1;
    }

    /// `lines` is the already-coalesced line list (built by the caller from
    /// the instruction's lane addresses); ownership returns to
    /// `scratch_lines` on every exit path.
    fn issue_load(
        &mut self,
        wi: usize,
        now: Cycle,
        lines: Vec<u64>,
        mask: LaneMask,
        out: &mut Vec<MemRequest>,
        budget: &mut usize,
    ) -> bool {
        // Classify without mutating yet (all-or-nothing issue).
        let mut new_misses = std::mem::take(&mut self.scratch_misses);
        new_misses.clear();
        let mut merged = 0u32;
        let mut new_entries = 0usize;
        // Bit i set = lines[i] missed; the commit loop reuses this (L1
        // state cannot change in between) to skip re-scanning the set.
        let mut miss_mask = 0u64;
        for (i, &l) in lines.iter().enumerate() {
            if self.l1.contains(l) {
                continue;
            }
            miss_mask |= 1u64 << i;
            if self.l1_mshr.in_flight(l) {
                merged += 1;
            } else if !new_misses.contains(&l) {
                new_misses.push(l);
                new_entries += 1;
            }
        }
        if self.l1_mshr.len() + new_entries > self.l1_mshr_capacity() {
            self.resource_stalls += 1;
            self.warps[wi].mshr_block_epoch = self.fill_epoch;
            self.warps[wi].mshr_block_deficit =
                (self.l1_mshr.len() + new_entries - self.l1_mshr_capacity()) as u64;
            self.scratch_lines = lines;
            self.scratch_misses = new_misses;
            return false;
        }
        // Commit: probe hits (LRU update + stats), register misses.
        let warp_gid = GlobalWarpId {
            sm: self.id,
            warp: ldsim_types::ids::WarpId(wi as u16),
        };
        let wg = WarpGroupId::new(warp_gid, self.warps[wi].load_serial);
        self.warps[wi].load_serial += 1;

        let mut outstanding = 0u32;
        for (i, &l) in lines.iter().enumerate() {
            if miss_mask >> i & 1 == 0 {
                // L1 hit: satisfied this cycle (probe refreshes LRU/stats).
                let hit = self.l1.probe(l, false);
                debug_assert!(hit);
                continue;
            }
            self.l1.probe_known_miss(l);
            outstanding += 1;
            match self.l1_mshr.register(l, wi as u16) {
                MshrOutcome::Allocated | MshrOutcome::Merged => {}
                MshrOutcome::Full => unreachable!("capacity checked above"),
            }
        }
        let _ = merged;

        // Build the warp-group of outgoing requests, with per-channel sizes
        // and last-of-group tags.
        let mut reqs = std::mem::take(&mut self.scratch_reqs);
        reqs.clear();
        let mut per_channel = [0u16; 16];
        for &l in &new_misses {
            let d = self.mapper.decode(l << self.line_shift);
            per_channel[d.channel.0 as usize] += 1;
            reqs.push(MemRequest {
                id: self.fresh_id(),
                kind: ReqKind::Read,
                line_addr: l,
                decoded: d,
                wg,
                last_of_group: false,
                group_size_on_channel: 0,
                issue_cycle: now,
                arrival_cycle: 0,
            });
        }
        self.scratch_misses = new_misses;
        let mut seen = [0u16; 16];
        for r in reqs.iter_mut() {
            let c = r.decoded.channel.0 as usize;
            seen[c] += 1;
            r.group_size_on_channel = per_channel[c];
            r.last_of_group = seen[c] == per_channel[c];
        }

        // Load record bookkeeping. One sorted pass over (channel, bank,
        // row) keys yields both the distinct-bank count and the same-row
        // membership count: a run of m > 1 equal keys contributes its m
        // members — exactly the old O(k²) "shares a row with another
        // member" scan — and the distinct (channel, bank) prefixes are the
        // old sort-dedup pair count.
        let mut channels = 0u32;
        for &c in per_channel.iter() {
            if c > 0 {
                channels += 1;
            }
        }
        let mut keys = std::mem::take(&mut self.scratch_keys);
        keys.clear();
        keys.extend(
            reqs.iter()
                .map(|r| (r.decoded.channel.0, r.decoded.bank.0, r.decoded.row)),
        );
        keys.sort_unstable();
        let mut banks = 0u32;
        let mut same_row = 0u32;
        let mut i = 0;
        while i < keys.len() {
            if i == 0 || (keys[i].0, keys[i].1) != (keys[i - 1].0, keys[i - 1].1) {
                banks += 1;
            }
            let mut j = i + 1;
            while j < keys.len() && keys[j] == keys[i] {
                j += 1;
            }
            if j - i > 1 {
                same_row += (j - i) as u32;
            }
            i = j;
        }
        self.scratch_keys = keys;
        let rec = LoadRecord {
            warp: warp_gid,
            active_lanes: mask.count(),
            coalesced: lines.len() as u32,
            mem_reqs: reqs.len() as u32,
            dram_responses: 0,
            issue: now,
            complete: now,
            first_dram: 0,
            last_dram: 0,
            channels_touched: channels,
            banks_touched: banks,
            same_row_reqs: same_row,
        };

        self.dispatch(&mut reqs, out, budget);
        self.scratch_reqs = reqs;
        {
            let w = &mut self.warps[wi];
            w.cur = rec;
            w.outstanding = outstanding;
            w.retired += 1;
        }
        self.retired += 1;
        if outstanding == 0 {
            // All lanes hit in L1: the load costs one cycle.
            self.records.push(rec);
            self.go_busy(wi, now + 1);
        } else {
            self.clear_ready(wi);
            self.warps[wi].state = WState::WaitMem;
        }
        self.advance(wi);
        self.scratch_lines = lines;
        true
    }

    /// `lines` is the already-coalesced line list; see [`Self::issue_load`].
    fn issue_store(
        &mut self,
        wi: usize,
        now: Cycle,
        lines: Vec<u64>,
        out: &mut Vec<MemRequest>,
        budget: &mut usize,
    ) -> bool {
        let warp_gid = GlobalWarpId {
            sm: self.id,
            warp: ldsim_types::ids::WarpId(wi as u16),
        };
        let wg = WarpGroupId::new(warp_gid, self.warps[wi].load_serial);
        self.warps[wi].load_serial += 1;
        let mut reqs = std::mem::take(&mut self.scratch_reqs);
        reqs.clear();
        for &l in &lines {
            // Write-through, no-allocate: keep L1 coherent by invalidation.
            self.l1.invalidate(l);
            let d = self.mapper.decode(l << self.line_shift);
            reqs.push(MemRequest {
                id: self.fresh_id(),
                kind: ReqKind::Write,
                line_addr: l,
                decoded: d,
                wg,
                last_of_group: false,
                group_size_on_channel: 1,
                issue_cycle: now,
                arrival_cycle: 0,
            });
        }
        self.dispatch(&mut reqs, out, budget);
        self.scratch_reqs = reqs;
        self.warps[wi].retired += 1;
        self.retired += 1;
        self.go_busy(wi, now + 1);
        self.advance(wi);
        self.scratch_lines = lines;
        true
    }

    fn l1_mshr_capacity(&self) -> usize {
        self.l1_mshr_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::config::{GpuConfig, MemConfig};
    use ldsim_types::kernel::Instruction as I;

    fn mk_sm(programs: Vec<WarpProgram>) -> Sm {
        let cfg = GpuConfig::default();
        let mapper = AddressMapper::new(&MemConfig::default(), 128);
        Sm::new(SmId(0), &cfg, mapper, programs)
    }

    fn gather(base: u64, stride: u64) -> [u64; 32] {
        let mut a = [0u64; 32];
        for (l, x) in a.iter_mut().enumerate() {
            *x = base + stride * l as u64;
        }
        a
    }

    #[test]
    fn compute_retires_and_blocks() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::Compute(5), I::Compute(2)])]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out);
        assert_eq!(sm.retired, 5);
        // Busy until cycle 5: nothing issues at 1..4.
        for now in 1..5 {
            sm.tick(now, 8, &mut out);
            assert_eq!(sm.retired, 5, "warp busy at {now}");
        }
        sm.tick(5, 8, &mut out);
        assert_eq!(sm.retired, 7);
        // Done is observed when the final Compute's busy window expires.
        sm.tick(7, 8, &mut out);
        assert!(sm.done());
    }

    #[test]
    fn load_blocks_until_all_responses() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![
            I::load(gather(0, 4096)), // 32 distinct lines
            I::Compute(1),
        ])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        assert_eq!(out.len(), 32);
        assert_eq!(sm.retired, 1);
        // No progress while waiting.
        sm.tick(1, 32, &mut out);
        assert_eq!(sm.retired, 1);
        // Return 31 of 32 lines: still blocked.
        for r in out.iter().take(31) {
            sm.accept_response(
                SmResponse {
                    line_addr: r.line_addr,
                    from_dram: true,
                    dram_cycle: 100,
                },
                100,
            );
        }
        sm.tick(101, 32, &mut Vec::new());
        assert_eq!(sm.retired, 1, "warp must wait for the last request");
        sm.accept_response(
            SmResponse {
                line_addr: out[31].line_addr,
                from_dram: true,
                dram_cycle: 400,
            },
            400,
        );
        sm.tick(401, 32, &mut Vec::new());
        assert_eq!(sm.retired, 2);
        sm.tick(402, 32, &mut Vec::new());
        assert!(sm.done());
        // The record captured the divergence window.
        assert_eq!(sm.records.len(), 1);
        let rec = &sm.records[0];
        assert_eq!(rec.mem_reqs, 32);
        assert_eq!(rec.first_dram, 100);
        assert_eq!(rec.last_dram, 400);
        assert_eq!(rec.dram_gap(), 300);
        assert_eq!(rec.complete, 400);
    }

    #[test]
    fn l1_hit_satisfies_immediately() {
        let addrs = gather(0x8000, 4); // one line
        let mut sm = mk_sm(vec![WarpProgram::new(vec![
            I::load(addrs),
            I::load(addrs), // same line again: L1 hit
        ])]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out);
        assert_eq!(out.len(), 1);
        sm.accept_response(
            SmResponse {
                line_addr: out[0].line_addr,
                from_dram: true,
                dram_cycle: 50,
            },
            50,
        );
        out.clear();
        sm.tick(51, 8, &mut out);
        assert!(out.is_empty(), "second load hits in L1");
        assert_eq!(sm.records.len(), 2);
        assert_eq!(sm.records[1].mem_reqs, 0);
        sm.tick(52, 8, &mut out);
        assert!(sm.done());
    }

    #[test]
    fn mshr_merges_across_warps() {
        let addrs = gather(0x20_0000, 4);
        let mut sm = mk_sm(vec![
            WarpProgram::new(vec![I::load(addrs)]),
            WarpProgram::new(vec![I::load(addrs)]),
        ]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out);
        sm.tick(1, 8, &mut out);
        assert_eq!(out.len(), 1, "second warp merges into the first's MSHR");
        sm.accept_response(
            SmResponse {
                line_addr: out[0].line_addr,
                from_dram: true,
                dram_cycle: 80,
            },
            80,
        );
        // Both warps complete off the single fill.
        assert_eq!(sm.records.len(), 2);
        sm.tick(81, 8, &mut out);
        sm.tick(82, 8, &mut out);
        assert!(sm.done());
    }

    #[test]
    fn store_does_not_block() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![
            I::store(gather(0, 8)), // 2 lines
            I::Compute(1),
        ])]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.kind == ReqKind::Write));
        sm.tick(1, 8, &mut out);
        assert_eq!(sm.retired, 2, "store must not block the warp");
        sm.tick(2, 8, &mut out);
        sm.tick(3, 8, &mut out);
        assert!(sm.done());
    }

    #[test]
    fn wide_gather_stages_and_trickles_out() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::load(gather(0, 4096))])]);
        let mut out = Vec::new();
        sm.tick(0, 4, &mut out); // 32 requests, 4 crossbar slots
        assert_eq!(out.len(), 4, "first slice goes out immediately");
        // The rest drain in order as space frees up.
        for now in 1..8u64 {
            sm.tick(now, 4, &mut out);
        }
        assert_eq!(out.len(), 32);
        let ids: Vec<u64> = out.iter().map(|r| r.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "staged requests preserve order");
        // A second load cannot issue while the first is still staged.
        let mut sm2 = mk_sm(vec![
            WarpProgram::new(vec![I::load(gather(0, 4096))]),
            WarpProgram::new(vec![I::load(gather(1 << 20, 4096))]),
        ]);
        let mut out2 = Vec::new();
        sm2.tick(0, 2, &mut out2);
        sm2.tick(1, 2, &mut out2); // warp 1 blocked: stage_q still busy
        let warps: std::collections::HashSet<u16> = out2.iter().map(|r| r.wg.warp.warp.0).collect();
        assert_eq!(warps.len(), 1, "one staged group at a time");
    }

    #[test]
    fn group_tags_and_sizes_are_consistent() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::load(gather(0, 4096))])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        let mut per_channel: std::collections::HashMap<u8, (u16, u16)> = Default::default();
        for r in &out {
            let e = per_channel.entry(r.decoded.channel.0).or_insert((0, 0));
            e.0 += 1;
            assert!(r.group_size_on_channel > 0);
            e.1 = r.group_size_on_channel;
        }
        for (_ch, (count, declared)) in per_channel {
            assert_eq!(count, declared);
        }
        // Exactly one last_of_group per channel.
        let mut lasts: std::collections::HashMap<u8, u32> = Default::default();
        for r in &out {
            if r.last_of_group {
                *lasts.entry(r.decoded.channel.0).or_insert(0) += 1;
            }
        }
        assert!(lasts.values().all(|&v| v == 1));
    }

    #[test]
    fn masked_load_touches_active_lanes_only() {
        let mut addrs = [0u64; 32];
        for (l, a) in addrs.iter_mut().enumerate() {
            *a = (l as u64) * 4096;
        }
        let mut mask = ldsim_types::ids::LaneMask::NONE;
        mask.set(0);
        mask.set(7);
        mask.set(31);
        let mut sm = mk_sm(vec![WarpProgram::new(vec![Instruction::Load {
            addrs: Box::new(addrs),
            mask,
        }])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        assert_eq!(out.len(), 3, "one request per active lane's line");
        assert!(sm.records.is_empty(), "load still outstanding");
        for r in &out {
            sm.accept_response(
                SmResponse {
                    line_addr: r.line_addr,
                    from_dram: true,
                    dram_cycle: 90,
                },
                90,
            );
        }
        assert_eq!(sm.records[0].active_lanes, 3);
        assert_eq!(sm.records[0].coalesced, 3);
    }

    #[test]
    fn compute_occupies_port_delay_does_not() {
        let mut sm = mk_sm(vec![
            WarpProgram::new(vec![I::Compute(10)]),
            WarpProgram::new(vec![I::Compute(1)]),
        ]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out); // warp 0: Compute(10) -> port busy to 10
        sm.tick(1, 8, &mut out); // port busy: warp 1 cannot issue
        assert_eq!(sm.retired, 10);
        assert!(sm.port_busy_cycles > 0);
        sm.tick(10, 8, &mut out); // port free: warp 1 issues
        assert_eq!(sm.retired, 11);

        let mut sm2 = mk_sm(vec![
            WarpProgram::new(vec![I::Delay(10)]),
            WarpProgram::new(vec![I::Compute(1)]),
        ]);
        sm2.tick(0, 8, &mut out); // warp 0: Delay -> port free next cycle
        sm2.tick(1, 8, &mut out); // warp 1 issues immediately
        assert_eq!(sm2.retired, 11, "Delay must not hold the port");
    }

    #[test]
    fn load_record_same_row_statistic() {
        // Two lanes-groups on the same row + one elsewhere: 2 of 3 requests
        // share a row.
        let mapper = AddressMapper::new(&MemConfig::default(), 128);
        let base = 0x40_0000u64;
        let buddies = mapper.same_row_lines(base);
        assert!(buddies.len() >= 2);
        let mut addrs = [0u64; 32];
        addrs[..16].fill(buddies[0]);
        addrs[16..28].fill(buddies[1]);
        addrs[28..].fill(0x7F0_0000); // far away
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::load(addrs)])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        for r in &out {
            sm.accept_response(
                SmResponse {
                    line_addr: r.line_addr,
                    from_dram: true,
                    dram_cycle: 50,
                },
                50,
            );
        }
        let rec = &sm.records[0];
        assert_eq!(rec.mem_reqs, 3);
        assert_eq!(rec.same_row_reqs, 2);
        assert!(rec.banks_touched >= 1 && rec.channels_touched >= 1);
    }

    #[test]
    fn mem_idle_counted_when_all_warps_blocked() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::load(gather(0, 4096))])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        for now in 1..20 {
            sm.tick(now, 32, &mut out);
        }
        assert!(sm.mem_idle_cycles >= 19, "idle {}", sm.mem_idle_cycles);
    }

    #[test]
    fn next_event_tracks_busy_and_port() {
        let mut sm = mk_sm(vec![
            WarpProgram::new(vec![I::Compute(10)]),
            WarpProgram::new(vec![I::Compute(1)]),
        ]);
        let mut out = Vec::new();
        assert_eq!(sm.next_event(0), Some(0), "ready warp, free port");
        sm.tick(0, 8, &mut out); // warp 0 busy + port occupied until 10
                                 // Warp 1 is Ready but the port is busy: next event is port_free
                                 // (=10), which coincides with warp 0's wake-up.
        assert_eq!(sm.next_event(1), Some(10));
        sm.tick(10, 8, &mut out);
        sm.tick(11, 8, &mut out);
        sm.tick(12, 8, &mut out);
        assert!(sm.done());
        assert_eq!(sm.next_event(13), None, "done SM has no events");
    }

    #[test]
    fn next_event_none_while_waiting_on_memory() {
        let mut sm = mk_sm(vec![WarpProgram::new(vec![I::load(gather(0, 4096))])]);
        let mut out = Vec::new();
        sm.tick(0, 32, &mut out);
        assert_eq!(sm.next_event(1), None, "all warps blocked on memory");
        sm.accept_response(
            SmResponse {
                line_addr: out[0].line_addr,
                from_dram: true,
                dram_cycle: 50,
            },
            50,
        );
        // Still 31 lines outstanding: no SM-local event.
        assert_eq!(sm.next_event(51), None);
    }

    #[test]
    fn skip_matches_explicit_ticks_cycle_counters() {
        // One warp blocked on memory: ticking T idle cycles and skipping T
        // cycles must accrue identical port-busy / mem-idle statistics.
        let mk = || mk_sm(vec![WarpProgram::new(vec![I::load(gather(0, 4096))])]);
        let mut ticked = mk();
        let mut skipped = mk();
        let mut out = Vec::new();
        ticked.tick(0, 32, &mut out);
        out.clear();
        skipped.tick(0, 32, &mut out);
        for now in 1..100u64 {
            ticked.tick(now, 32, &mut Vec::new());
        }
        skipped.skip(1, 100);
        assert_eq!(ticked.port_busy_cycles, skipped.port_busy_cycles);
        assert_eq!(ticked.mem_idle_cycles, skipped.mem_idle_cycles);
        assert!(skipped.mem_idle_cycles > 0);

        // Port occupied by a long Compute on a done-warp path: the port-busy
        // tail must be identical too.
        let mk2 = || mk_sm(vec![WarpProgram::new(vec![I::Compute(40)])]);
        let mut t2 = mk2();
        let mut s2 = mk2();
        t2.tick(0, 8, &mut Vec::new());
        s2.tick(0, 8, &mut Vec::new());
        for now in 1..30u64 {
            t2.tick(now, 8, &mut Vec::new());
        }
        s2.skip(1, 30);
        assert_eq!(t2.port_busy_cycles, s2.port_busy_cycles);
        assert_eq!(t2.mem_idle_cycles, s2.mem_idle_cycles);
        assert_eq!(t2.port_busy_cycles, 29);
    }

    #[test]
    fn greedy_then_oldest_prefers_last_issued() {
        let mut sm = mk_sm(vec![
            WarpProgram::new(vec![I::Compute(1), I::Compute(1)]),
            WarpProgram::new(vec![I::Compute(1), I::Compute(1)]),
        ]);
        let mut out = Vec::new();
        sm.tick(0, 8, &mut out); // warp 0 issues, busy until 1
        sm.tick(1, 8, &mut out); // warp 0 ready again (greedy) -> issues
        assert_eq!(sm.warps[0].retired, 2);
        assert_eq!(sm.warps[1].retired, 0);
    }
}
