//! SIMT GPU core model.
//!
//! The GPU side of the simulator (Section II-A/II-B of the paper): each SM
//! runs up to 48 resident warps in lockstep over the kernel IR, with a
//! greedy-then-oldest warp scheduler issuing one warp-instruction per
//! cycle. A vector load's 32 lane addresses pass through the
//! [`coalescer`], then the per-SM L1 ([`cache`]) with MSHR merging; the
//! surviving misses become the warp-group of DRAM-bound requests whose
//! latency divergence the paper studies. The warp blocks until every lane
//! is satisfied.
//!
//! Stores are fire-and-forget write-throughs to the L2 (writes are not on
//! the critical path; Section II-C) — they become DRAM traffic later, as
//! L2 write-back evictions.
//!
//! The [`xbar`] crossbar preserves per-source ordering (required by the
//! warp-group transfer-complete detection; Section IV-B.2) and arbitrates
//! one flit per destination per cycle.

pub mod cache;
pub mod coalescer;
pub mod sm;
pub mod xbar;

pub use cache::{Cache, Mshr, MshrOutcome};
pub use coalescer::coalesce;
pub use sm::{LoadRecord, Sm, SmResponse};
pub use xbar::Crossbar;
