//! Scoped worker-pool map: the experiment runner's rayon replacement.
//!
//! `parallel_map` runs `f` over every item on `min(items, cores)` scoped
//! threads, preserving input order in the output. Work is distributed by an
//! atomic cursor, so uneven item costs (a Full-scale WG-W run next to a
//! Tiny FCFS run) still balance.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel, preserving order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand items out through Option slots so workers can take ownership.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken twice");
                let result = f(item);
                *out[i].lock().unwrap() = Some(result);
            });
        }
    });

    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker missed a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |x| x * x);
        assert_eq!(ys.len(), 100);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let e: Vec<u32> = parallel_map(Vec::new(), |x: u32| x);
        assert!(e.is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        let xs: Vec<u64> = (0..32).collect();
        let ys = parallel_map(xs, |x| {
            // Uneven busy-work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in ys.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
