//! Scoped worker-pool map: the experiment runner's rayon replacement.
//!
//! `parallel_map` runs `f` over every item on `min(items, jobs())` scoped
//! threads, preserving input order in the output. Work is distributed by an
//! atomic cursor, so uneven item costs (a Full-scale WG-W run next to a
//! Tiny FCFS run) still balance.
//!
//! The worker count defaults to `available_parallelism`, but can be capped:
//! programmatically via [`set_jobs`] (the bench binaries' `--jobs N` flag)
//! or with the `LDSIM_JOBS` environment variable. CI runners advertise more
//! cores than they deliver, and deterministic-timing debugging wants
//! `--jobs 1`; both need an override that `available_parallelism` alone
//! cannot provide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads [`parallel_map`] uses. `Some(n)` caps
/// at `n`; `None` clears the override and falls back to `LDSIM_JOBS` /
/// `available_parallelism`. `Some(0)` is a caller bug — "zero workers" is
/// meaningless and almost certainly meant `None` — so it debug-asserts;
/// release builds clamp it to 1 as before.
pub fn set_jobs(jobs: Option<usize>) {
    debug_assert!(
        jobs != Some(0),
        "set_jobs(Some(0)): zero workers is meaningless — pass None to clear \
         the override or Some(n >= 1) to cap it"
    );
    JOBS_OVERRIDE.store(jobs.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The worker count the next [`parallel_map`] call will use, resolved in
/// priority order: [`set_jobs`] override, then the `LDSIM_JOBS` environment
/// variable (ignored unless it parses to a positive integer), then
/// `available_parallelism`.
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("LDSIM_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = jobs().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand items out through Option slots so workers can take ownership.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken twice");
                let result = f(item);
                *out[i].lock().unwrap() = Some(result);
            });
        }
    });

    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker missed a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |x| x * x);
        assert_eq!(ys.len(), 100);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let e: Vec<u32> = parallel_map(Vec::new(), |x: u32| x);
        assert!(e.is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_override_wins_clears_and_serialises() {
        // One test, not several: `set_jobs` is process-wide state, and the
        // test harness runs sibling tests concurrently.
        set_jobs(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs(Some(1));
        assert_eq!(jobs(), 1);
        let caller = std::thread::current().id();
        let ids = parallel_map(vec![0u8; 16], |_| std::thread::current().id());
        assert!(
            ids.iter().all(|id| *id == caller),
            "--jobs 1 must run sequentially on the calling thread"
        );
        set_jobs(None);
        assert!(jobs() >= 1);
    }

    // Guarded: `debug_assert!` compiles out under `--release` test runs.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "set_jobs(Some(0))")]
    fn zero_jobs_is_rejected() {
        set_jobs(Some(0));
    }

    #[test]
    fn uneven_work_balances() {
        let xs: Vec<u64> = (0..32).collect();
        let ys = parallel_map(xs, |x| {
            // Uneven busy-work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in ys.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
