//! Worker pools for the ldsim workspace: the experiment runner's rayon
//! replacement plus the simulator's intra-run partition pool.
//!
//! Two independent axes of parallelism live here, each with its own knob:
//!
//! * **Across cells** — [`parallel_map`] runs `f` over every item on
//!   `min(items, jobs())` scoped threads, preserving input order in the
//!   output. Work is distributed by an atomic cursor, so uneven item costs
//!   (a Full-scale WG-W run next to a Tiny FCFS run) still balance. The
//!   worker count defaults to `available_parallelism`, capped by
//!   [`set_jobs`] (the bench binaries' `--jobs N` flag) or the `LDSIM_JOBS`
//!   environment variable.
//!
//! * **Inside a run** — [`BarrierPool`] is the persistent fork-join pool
//!   the simulator uses to step its memory partitions concurrently between
//!   deterministic epoch barriers. Its width comes from [`set_sim_threads`]
//!   (the `--threads N` flag) or `LDSIM_SIM_THREADS`, defaulting to 1
//!   (serial) so cached cell keys and CI timings are unperturbed.
//!
//! Both environment variables are validated: an unparsable or zero value
//! warns once to stderr instead of being silently ignored, so a CI
//! misconfiguration (`LDSIM_JOBS=all`) is visible in the log rather than
//! quietly running at the wrong width.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide intra-run thread-count override; 0 means "not set".
static SIM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads [`parallel_map`] uses. `Some(n)` caps
/// at `n`; `None` clears the override and falls back to `LDSIM_JOBS` /
/// `available_parallelism`. `Some(0)` is a caller bug — "zero workers" is
/// meaningless and almost certainly meant `None` — so it debug-asserts;
/// release builds clamp it to 1 as before.
pub fn set_jobs(jobs: Option<usize>) {
    debug_assert!(
        jobs != Some(0),
        "set_jobs(Some(0)): zero workers is meaningless — pass None to clear \
         the override or Some(n >= 1) to cap it"
    );
    JOBS_OVERRIDE.store(jobs.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Set the intra-run partition thread count (the `--threads N` flag).
/// `Some(n)` forces `n`; `None` clears the override and falls back to
/// `LDSIM_SIM_THREADS` / serial. Same `Some(0)` contract as [`set_jobs`].
pub fn set_sim_threads(threads: Option<usize>) {
    debug_assert!(
        threads != Some(0),
        "set_sim_threads(Some(0)): zero workers is meaningless — pass None \
         to clear the override or Some(n >= 1) to set it"
    );
    SIM_THREADS_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Read a positive-integer environment knob, warning **once** per variable
/// (per process) on an unparsable or zero value instead of silently
/// ignoring it.
fn env_threads(var: &str, warned: &AtomicBool) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            if !warned.swap(true, Ordering::Relaxed) {
                eprintln!("warning: ignoring {var}={raw:?}: expected a positive integer");
            }
            None
        }
    }
}

/// The worker count the next [`parallel_map`] call will use, resolved in
/// priority order: [`set_jobs`] override, then the `LDSIM_JOBS` environment
/// variable (must parse to a positive integer — anything else warns once
/// and is ignored), then `available_parallelism`.
pub fn jobs() -> usize {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads("LDSIM_JOBS", &WARNED) {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The intra-run partition thread count, resolved in priority order:
/// [`set_sim_threads`] override, then `LDSIM_SIM_THREADS` (same validation
/// as `LDSIM_JOBS`), then **1** — serial is the default, so cached cell
/// keys, golden pins, and CI timings are unperturbed unless a run opts in.
pub fn sim_threads() -> usize {
    static WARNED: AtomicBool = AtomicBool::new(false);
    let forced = SIM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    env_threads("LDSIM_SIM_THREADS", &WARNED).unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving order.
///
/// A worker panic fails fast: the cursor is poisoned so the remaining
/// workers stop grabbing items (a doomed cold Full sweep dies in seconds,
/// not hours), and the panic propagates to the caller when the scope joins.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = jobs().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // The atomic cursor hands each index to exactly one worker, so the
    // slots need no per-slot locking — one mutex over each whole vector is
    // enough (held only for the O(1) take/store, never across `f`).
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(items.into_iter().map(Some).collect());
    let out: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);

    /// On-panic cursor poison: jumps the cursor past the end so sibling
    /// workers stop claiming new items. Disarmed on the success path.
    struct Poison<'a> {
        cursor: &'a AtomicUsize,
        n: usize,
        armed: bool,
    }
    impl Drop for Poison<'_> {
        fn drop(&mut self) {
            if self.armed {
                self.cursor.store(self.n, Ordering::Relaxed);
            }
        }
    }

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots.lock().unwrap()[i].take().expect("slot taken twice");
                let mut poison = Poison {
                    cursor: &cursor,
                    n,
                    armed: true,
                };
                let result = f(item);
                poison.armed = false;
                out.lock().unwrap()[i] = Some(result);
            });
        }
    });

    out.into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("worker missed a slot"))
        .collect()
}

// ---------------------------------------------------------------------------
// BarrierPool: the simulator's intra-run fork-join pool.
// ---------------------------------------------------------------------------

/// The job a [`BarrierPool`] epoch runs: each worker (including the caller,
/// as worker 0) invokes it once with its worker index.
type Job = *const (dyn Fn(usize) + Sync);

/// How many spin iterations a waiter burns before parking on a condvar.
/// Epochs land every few dozen simulated cycles, so a waiter almost always
/// sees the flip inside this budget (the fast path stays lock-free); the
/// budget only runs dry when the machine is genuinely idle — a serial
/// stretch, the owner off in the hub replay, or the run winding down —
/// where burning a core for milliseconds is pure waste.
const SPIN_LIMIT: u32 = 4096;

/// State shared between the pool owner and its persistent workers.
struct PoolShared {
    /// The current epoch's job, published before `epoch` is bumped and
    /// cleared after every worker has checked in. Only valid to read after
    /// observing an `epoch` increment (Acquire pairs with the Release bump).
    job: UnsafeCell<Option<Job>>,
    /// Epoch counter: workers run one job per observed increment.
    epoch: AtomicUsize,
    /// Workers that have finished the current epoch's job.
    done: AtomicUsize,
    panicked: AtomicBool,
    shutdown: AtomicBool,
    /// Spawned-worker count (`threads - 1`): lets the last finisher of an
    /// epoch — and only it — take the lock to wake a parked owner.
    workers: usize,
    /// Parking lot. The mutex guards no data — the atomics above are the
    /// state — it exists so `epoch`/`done` flips can be published under it,
    /// which is what makes the condvar handoff race-free: a waiter
    /// rechecks the atomic *while holding the lock* before sleeping, and a
    /// notifier flips-then-notifies *while holding the lock*, so the flip
    /// cannot slip into the gap between a waiter's recheck and its wait.
    lock: Mutex<()>,
    /// Workers park here when `epoch` stays put past their spin budget.
    work_cv: Condvar,
    /// The owner parks here when `done` stays short past its spin budget.
    done_cv: Condvar,
    /// Times any waiter actually parked (test observability; Relaxed).
    parks: AtomicUsize,
}

// SAFETY: `job` is only written by the owner between epochs (no worker
// reads it until the Release bump of `epoch` publishes the write) and only
// read by workers during an epoch (the owner does not touch it again until
// every worker has bumped `done`). The pointee itself is `Sync`, so calling
// it from any worker thread is fine.
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// A persistent fork-join worker pool with deterministic epoch barriers —
/// the simulator's partition-stepping engine.
///
/// `new(t)` spawns `t - 1` OS threads once; every [`run`](Self::run) after
/// that is a lock-free publish + spin-join (no per-epoch thread spawns —
/// the pool survives for the millions of epochs of a single simulation).
/// The caller participates as worker 0, so `t = 2` means one spawned
/// thread. Waiters spin with periodic `yield_now` for a bounded budget
/// ([`SPIN_LIMIT`]), then park on a condvar — so a hot pool joins epochs
/// without a single syscall, while an idle pool (serial stretches, the
/// owner busy in the hub replay, the end of a run) costs nothing.
///
/// A panic inside a job — on any worker, including the caller — is caught,
/// the barrier still completes (so the borrowed job is provably dead before
/// `run` returns), and the panic is re-raised on the calling thread.
pub struct BarrierPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl BarrierPool {
    /// Build a pool of `threads` total workers (the calling thread counts
    /// as one). `threads <= 1` spawns nothing; `run` degenerates to a plain
    /// call on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            workers: threads - 1,
            lock: Mutex::new(()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            parks: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ldsim-part-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn partition worker")
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// Total worker count (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many times any waiter (worker or owner) exhausted its spin
    /// budget and parked on a condvar. Observability for tests — a pool
    /// left idle must park rather than burn cores.
    pub fn parks(&self) -> usize {
        self.shared.parks.load(Ordering::Relaxed)
    }

    /// Run one epoch: every worker calls `job(worker_index)` exactly once;
    /// `run` returns only after all of them have finished (the barrier).
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.threads <= 1 {
            job(0);
            return;
        }
        let shared = &*self.shared;
        shared.done.store(0, Ordering::Relaxed);
        // SAFETY: no epoch is in flight (the previous `run` joined every
        // worker), so no worker reads `job` until the Release bump below.
        // The lifetime erasure is sound because the barrier at the end of
        // this function proves every worker is done with the reference
        // before it dies.
        unsafe {
            let erased: Job = std::mem::transmute(job as *const (dyn Fn(usize) + Sync));
            *shared.job.get() = Some(erased);
        }
        // Bump-then-notify under the lock: a worker that decided to park
        // rechecks `epoch` while holding it, so the flip cannot land in
        // the gap between that recheck and its wait. Spinning workers
        // never touch the lock — they see the Release bump directly.
        {
            let _g = shared.lock.lock().unwrap();
            shared.epoch.fetch_add(1, Ordering::Release);
            shared.work_cv.notify_all();
        }
        // The caller is worker 0. Catch a local panic so the join below
        // still happens — unwinding past live borrows of `job` would be
        // unsound, not just impolite.
        let local = catch_unwind(AssertUnwindSafe(|| job(0)));
        let workers = self.threads - 1;
        let mut spins = 0u32;
        while shared.done.load(Ordering::Acquire) < workers {
            spins += 1;
            if spins > SPIN_LIMIT {
                // Park until the last finisher notifies. Recheck under the
                // lock: the finisher bumps `done` then locks to notify, so
                // either we see the final count here or the notify must
                // wait for our `wait()` to release the lock.
                shared.parks.fetch_add(1, Ordering::Relaxed);
                let mut g = shared.lock.lock().unwrap();
                while shared.done.load(Ordering::Acquire) < workers {
                    g = shared.done_cv.wait(g).unwrap();
                }
                break;
            }
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: every worker has checked in; the borrow is dead.
        unsafe {
            *shared.job.get() = None;
        }
        if let Err(p) = local {
            resume_unwind(p);
        }
        if shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("BarrierPool worker panicked (see stderr for the worker's message)");
        }
    }

    /// Run one epoch over `items`, striping item `i` to worker
    /// `i % threads`. Each item is visited by exactly one worker, so `f`
    /// gets `&mut` access without locks; the stripes are disjoint by
    /// construction and the exclusive borrow of `items` spans the barrier.
    pub fn run_disjoint<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let n = items.len();
        let threads = self.threads;
        let base = items.as_mut_ptr() as usize;
        self.run(&move |w: usize| {
            let mut i = w;
            while i < n {
                // SAFETY: worker `w` touches exactly the indices congruent
                // to `w` mod `threads` — disjoint across workers — and the
                // `&mut [T]` borrow outlives the epoch barrier.
                let item = unsafe { &mut *(base as *mut T).add(i) };
                f(i, item);
                i += threads;
            }
        });
    }
}

impl Drop for BarrierPool {
    fn drop(&mut self) {
        // Flip-then-notify under the lock (same pairing as `run`) so a
        // worker that parked between epochs is guaranteed to see the
        // shutdown and exit rather than sleeping through the join forever.
        {
            let _g = self.shared.lock.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    let mut seen = 0usize;
    loop {
        let mut spins = 0u32;
        let epoch = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            spins += 1;
            if spins > SPIN_LIMIT {
                // Park until the owner publishes the next epoch (or shuts
                // the pool down). The owner flips both flags under the
                // lock, so the recheck-then-wait below cannot miss one.
                shared.parks.fetch_add(1, Ordering::Relaxed);
                let mut g = shared.lock.lock().unwrap();
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let e = shared.epoch.load(Ordering::Acquire);
                    if e != seen {
                        break;
                    }
                    g = shared.work_cv.wait(g).unwrap();
                }
                break shared.epoch.load(Ordering::Acquire);
            }
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        };
        seen = epoch;
        // SAFETY: the Acquire load of `epoch` pairs with the owner's
        // Release bump, which happens-after the job pointer was written.
        let job = unsafe { (*shared.job.get()).expect("epoch bumped with no job") };
        // SAFETY: the owner keeps the job borrow alive until every worker
        // bumps `done`, which happens strictly after this call returns.
        let r = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(worker) }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        let finished = shared.done.fetch_add(1, Ordering::Release) + 1;
        if finished == shared.workers {
            // Wake a possibly-parked owner. Locking first pairs with the
            // owner's recheck-under-lock, so this notify cannot fire in
            // the gap between that recheck and the owner's wait.
            let _g = shared.lock.lock().unwrap();
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<u64> = (0..100).collect();
        let ys = parallel_map(xs, |x| x * x);
        assert_eq!(ys.len(), 100);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let e: Vec<u32> = parallel_map(Vec::new(), |x: u32| x);
        assert!(e.is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_override_wins_clears_and_serialises() {
        // One test, not several: `set_jobs` is process-wide state, and the
        // test harness runs sibling tests concurrently.
        set_jobs(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs(Some(1));
        assert_eq!(jobs(), 1);
        let caller = std::thread::current().id();
        let ids = parallel_map(vec![0u8; 16], |_| std::thread::current().id());
        assert!(
            ids.iter().all(|id| *id == caller),
            "--jobs 1 must run sequentially on the calling thread"
        );
        set_jobs(None);
        assert!(jobs() >= 1);
    }

    #[test]
    fn sim_threads_defaults_serial_and_override_wins() {
        // Also one test for the same process-global reason as above. The
        // env fallback is not exercised here (the harness shares the
        // process environment across threads); tests/threaded.rs covers the
        // config-level plumbing end to end.
        assert_eq!(sim_threads(), 1, "serial must be the default");
        set_sim_threads(Some(4));
        assert_eq!(sim_threads(), 4);
        set_sim_threads(None);
        assert_eq!(sim_threads(), 1);
    }

    // Guarded: `debug_assert!` compiles out under `--release` test runs.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "set_jobs(Some(0))")]
    fn zero_jobs_is_rejected() {
        set_jobs(Some(0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "set_sim_threads(Some(0))")]
    fn zero_sim_threads_is_rejected() {
        set_sim_threads(Some(0));
    }

    #[test]
    fn uneven_work_balances() {
        let xs: Vec<u64> = (0..32).collect();
        let ys = parallel_map(xs, |x| {
            // Uneven busy-work.
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in ys.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn worker_panic_fails_fast_and_propagates() {
        // A panicking item must abort the map (propagated panic) and poison
        // the cursor so trailing items are never started.
        let started = Arc::new(AtomicUsize::new(0));
        let s2 = Arc::clone(&started);
        let items: Vec<usize> = (0..1000).collect();
        let r = catch_unwind(AssertUnwindSafe(move || {
            parallel_map(items, |i| {
                s2.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
                // Slow the survivors so the poison has someone to stop.
                std::thread::sleep(std::time::Duration::from_millis(1));
                i
            })
        }));
        assert!(r.is_err(), "worker panic must propagate to the caller");
        assert!(
            started.load(Ordering::Relaxed) < 1000,
            "cursor poisoning must stop workers from draining the whole list"
        );
    }

    #[test]
    fn barrier_pool_runs_epochs_and_stripes_disjointly() {
        let pool = BarrierPool::new(3);
        assert_eq!(pool.threads(), 3);
        let mut items: Vec<u64> = vec![0; 10];
        for epoch in 1..=100u64 {
            pool.run_disjoint(&mut items, |i, x| *x += epoch + i as u64);
        }
        let sum: u64 = (1..=100u64).sum();
        for (i, x) in items.iter().enumerate() {
            assert_eq!(*x, sum + 100 * i as u64, "item {i}");
        }
    }

    #[test]
    fn barrier_pool_serial_degenerates_to_plain_call() {
        let pool = BarrierPool::new(1);
        let mut items = vec![1u32, 2, 3];
        pool.run_disjoint(&mut items, |_, x| *x *= 10);
        assert_eq!(items, vec![10, 20, 30]);
    }

    #[test]
    fn barrier_pool_parks_after_spin_budget_and_wakes_for_next_epoch() {
        let pool = BarrierPool::new(3);
        let mut items: Vec<u64> = vec![0; 8];
        pool.run_disjoint(&mut items, |_, x| *x += 1);
        // Leave the pool idle long past any reasonable spin budget: the
        // workers must park (observable via the counter), not burn cores.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.parks() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            pool.parks() > 0,
            "idle workers must park once the spin budget runs out"
        );
        // A parked pool must wake for the next epoch and still join it.
        pool.run_disjoint(&mut items, |_, x| *x += 1);
        assert_eq!(items, vec![2; 8]);
        // Drop must wake parked workers (the join inside would hang
        // otherwise — the test harness timeout is the assertion).
        drop(pool);
    }

    #[test]
    fn barrier_pool_worker_panic_reraises_on_caller() {
        let pool = BarrierPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 1 {
                    panic!("worker down");
                }
            });
        }));
        assert!(r.is_err(), "worker panic must re-raise on the caller");
        // The pool must survive a panicked epoch and run the next one.
        let mut items = vec![0u8; 4];
        pool.run_disjoint(&mut items, |_, x| *x = 7);
        assert_eq!(items, vec![7; 4]);
    }
}
