//! Minimal JSON writer + parser for the JSONL exports (run results, event
//! traces, the sweep orchestrator's cell cache).
//!
//! Only the subset the workspace emits is supported: flat objects with
//! string / integer / float / bool / null fields and arrays of numbers.
//! Output is deterministic — fields appear in insertion order and floats
//! use Rust's shortest-roundtrip formatting — and [`parse_object`] inverts
//! it exactly: integers stay integers (a 64-bit trace hash must not round
//! through `f64`) and floats re-parse to the identical bit pattern, so a
//! value that round-trips through the cell cache re-serialises to the
//! same bytes.

use std::fmt::Write as _;

/// One parsed JSON value (the subset [`JsonObject`] can emit).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Non-negative integer literal (no `.`/`e`) that fits `u64`.
    U64(u64),
    /// Negative integer literal that fits `i64`.
    I64(i64),
    /// Any other number literal.
    F64(f64),
    Str(String),
    /// Array of numbers (the only array shape the workspace emits).
    Arr(Vec<JsonValue>),
}

impl JsonValue {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: exact for integer literals that fit, lossy never —
    /// a `U64` above 2^53 was written by [`JsonObject::u64`] and should be
    /// read back via [`Self::as_u64`] instead.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::I64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parsed flat JSON object: field order preserved, lookup by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedObject {
    fields: Vec<(String, JsonValue)>,
}

impl ParsedObject {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn fields(&self) -> &[(String, JsonValue)] {
        &self.fields
    }

    /// Typed accessors that name the missing/mistyped key in the error —
    /// a cache row failing to load should say which field broke.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing or non-u64 field '{key}'"))
    }

    pub fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
    }

    pub fn req_bool(&self, key: &str) -> Result<bool, String> {
        self.get(key)
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("missing or non-bool field '{key}'"))
    }

    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("missing or non-string field '{key}'"))
    }
}

/// Parse one flat JSON object (the shape [`JsonObject`] writes: scalar
/// fields plus arrays of numbers; no nested objects). Returns an error
/// describing the first offence — callers treat unparseable cache lines as
/// absent, so the message is diagnostic, not control flow.
pub fn parse_object(s: &str) -> Result<ParsedObject, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            fields.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(ParsedObject { fields })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected '{}', got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        self.pos += 4;
                        // The writer only escapes control characters this
                        // way, so surrogate pairs never occur.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        if start + width > self.bytes.len() {
                            return Err("truncated utf-8 sequence".into());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + width])
                            .map_err(|_| "invalid utf-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at offset {start}"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| JsonValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| JsonValue::Null),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Arr(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

/// Escape a string into a JSON string literal (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Floats: non-finite values become `null` (JSON has no NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    pub fn opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => self.u64(k, x),
            None => self.null(k),
        }
    }

    pub fn u64_array(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Finish and return the serialized object.
    pub fn build(&mut self) -> String {
        let mut s = std::mem::take(&mut self.buf);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let mut o = JsonObject::new();
        o.str("name", "bfs")
            .u64("cycles", 12)
            .f64("ipc", 1.5)
            .bool("ok", true);
        assert_eq!(
            o.build(),
            r#"{"name":"bfs","cycles":12,"ipc":1.5,"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut o = JsonObject::new();
        o.str("s", "a\"b\\c\nd");
        assert_eq!(o.build(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN).f64("y", f64::INFINITY).f64("z", 0.25);
        assert_eq!(o.build(), r#"{"x":null,"y":null,"z":0.25}"#);
    }

    #[test]
    fn arrays_and_options() {
        let mut o = JsonObject::new();
        o.u64_array("a", &[1, 2, 3])
            .opt_u64("h", None)
            .opt_u64("g", Some(7));
        assert_eq!(o.build(), r#"{"a":[1,2,3],"h":null,"g":7}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().build(), "{}");
    }

    #[test]
    fn parse_inverts_writer_exactly() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\\c\nd")
            .u64("big", u64::MAX) // would not survive an f64 round-trip
            .i64("neg", -42)
            .f64("ipc", 0.1 + 0.2) // non-representable decimal: bit-exact?
            .f64("nan", f64::NAN)
            .bool("ok", true)
            .null("none")
            .u64_array("xs", &[1, 2, 3]);
        let text = o.build();
        let p = parse_object(&text).unwrap();
        assert_eq!(p.req_str("name").unwrap(), "a\"b\\c\nd");
        assert_eq!(p.req_u64("big").unwrap(), u64::MAX);
        assert_eq!(p.get("neg"), Some(&JsonValue::I64(-42)));
        assert_eq!(
            p.req_f64("ipc").unwrap().to_bits(),
            (0.1 + 0.2f64).to_bits()
        );
        assert_eq!(p.get("nan"), Some(&JsonValue::Null));
        assert!(p.req_bool("ok").unwrap());
        assert_eq!(p.get("none"), Some(&JsonValue::Null));
        let xs: Vec<u64> = p
            .get("xs")
            .and_then(|v| v.as_arr())
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(xs, [1, 2, 3]);
        // Re-serialising the parsed floats reproduces the original bytes.
        let mut again = JsonObject::new();
        again.f64("ipc", p.req_f64("ipc").unwrap());
        let again = again.build();
        assert!(text.contains(&again[1..again.len() - 1]));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object("{\"a\":1").is_err()); // truncated (crash mid-append)
        assert!(parse_object("{\"a\":1}x").is_err()); // trailing garbage
        assert!(parse_object("{\"a\":}").is_err());
        assert!(parse_object("not json").is_err());
        assert!(parse_object("{\"a\":\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_whitespace_and_empty() {
        let p = parse_object(" { } ").unwrap();
        assert!(p.fields().is_empty());
        let p = parse_object("{ \"a\" : 1 , \"b\" : [ 1 , 2 ] }").unwrap();
        assert_eq!(p.req_u64("a").unwrap(), 1);
        assert_eq!(p.get("b").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parse_preserves_unicode() {
        let mut o = JsonObject::new();
        o.str("s", "héllo — ünïcode \u{1}");
        let p = parse_object(&o.build()).unwrap();
        assert_eq!(p.req_str("s").unwrap(), "héllo — ünïcode \u{1}");
    }

    #[test]
    fn typed_accessors_name_the_field() {
        let p = parse_object("{\"a\":\"x\"}").unwrap();
        assert!(p.req_u64("a").unwrap_err().contains("'a'"));
        assert!(p.req_u64("missing").unwrap_err().contains("'missing'"));
    }
}
