//! Minimal JSON writer for the JSONL exports (run results, event traces).
//!
//! Only the subset the workspace emits is supported: flat objects with
//! string / integer / float / bool / null fields and arrays of numbers.
//! Output is deterministic — fields appear in insertion order and floats
//! use Rust's shortest-roundtrip formatting.

use std::fmt::Write as _;

/// Escape a string into a JSON string literal (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn i64(&mut self, k: &str, v: i64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Floats: non-finite values become `null` (JSON has no NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    pub fn opt_u64(&mut self, k: &str, v: Option<u64>) -> &mut Self {
        match v {
            Some(x) => self.u64(k, x),
            None => self.null(k),
        }
    }

    pub fn u64_array(&mut self, k: &str, vs: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Finish and return the serialized object.
    pub fn build(&mut self) -> String {
        let mut s = std::mem::take(&mut self.buf);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let mut o = JsonObject::new();
        o.str("name", "bfs")
            .u64("cycles", 12)
            .f64("ipc", 1.5)
            .bool("ok", true);
        assert_eq!(
            o.build(),
            r#"{"name":"bfs","cycles":12,"ipc":1.5,"ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut o = JsonObject::new();
        o.str("s", "a\"b\\c\nd");
        assert_eq!(o.build(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN).f64("y", f64::INFINITY).f64("z", 0.25);
        assert_eq!(o.build(), r#"{"x":null,"y":null,"z":0.25}"#);
    }

    #[test]
    fn arrays_and_options() {
        let mut o = JsonObject::new();
        o.u64_array("a", &[1, 2, 3])
            .opt_u64("h", None)
            .opt_u64("g", Some(7));
        assert_eq!(o.build(), r#"{"a":[1,2,3],"h":null,"g":7}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().build(), "{}");
    }
}
