//! Deterministic, seedable PRNG: xoshiro256** seeded via SplitMix64.
//!
//! The generator only has to be fast, well-mixed, and stable across
//! platforms and releases — workload generation depends on it being
//! reproducible forever, so the implementation is frozen here rather than
//! inherited from an external crate whose algorithm may change.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace-standard deterministic RNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Build from a 64-bit seed (SplitMix64 state expansion, as the
    /// xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift with rejection.
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform sample from a (half-open or inclusive) integer range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits -> uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges the RNG can sample uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn frozen_reference_stream() {
        // Guard against accidental algorithm changes: these outputs are the
        // reproducibility contract for every seeded workload.
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(r.next_u64(), 0xBF6E_1F78_4956_452A);
        assert_eq!(r.next_u64(), 0x1A5F_849D_4933_E6E0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = r.gen_range(10u32..11);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probabilities() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
