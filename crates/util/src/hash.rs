//! Streaming FNV-1a 64-bit hashing.
//!
//! Used for stable trace hashes: the same event stream must hash to the
//! same value on every platform and in every build profile, so the
//! algorithm is fixed here (not `std::hash`, whose output is unspecified
//! across releases and randomised for HashMap use).

/// Streaming FNV-1a (64-bit).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    #[inline]
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    #[inline]
    pub fn write_u32(&mut self, x: u32) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    #[inline]
    pub fn write_u8(&mut self, x: u8) -> &mut Self {
        self.write(&[x])
    }

    /// Hash an `f64` by its bit pattern (exact, not approximate).
    #[inline]
    pub fn write_f64(&mut self, x: f64) -> &mut Self {
        self.write_u64(x.to_bits())
    }

    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot convenience.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// FNV-1a as a [`std::hash::Hasher`], for `HashMap`/`HashSet` keys.
///
/// Much cheaper than `std`'s default SipHash on the small fixed-width keys
/// the simulator uses everywhere (line addresses, warp-group ids), and —
/// unlike `RandomState` — deterministic across runs, so map iteration order
/// is at least reproducible within one build. Code that *iterates* such a
/// map must still resolve picks through an explicit total order (see
/// DESIGN.md §13); determinism of the hasher is hardening, not a licence to
/// depend on iteration order.
///
/// Integer keys take the fast word-at-a-time path (`write_u64` etc. fold
/// the whole word in one multiply); byte-slice keys stream per byte like
/// canonical FNV-1a. The two paths differ (word folding is not
/// byte-for-byte FNV), which is fine for hash tables but means
/// [`FnvHasher`] output must never be used as a *stable* digest — that is
/// what [`Fnv64`] is for.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(PRIME);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `BuildHasher` producing [`FnvHasher`]s (zero-sized, `const`-constructible).
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    #[inline]
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// `HashMap` keyed through [`FnvHasher`] — drop-in for `std::collections::HashMap`.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

/// `HashSet` keyed through [`FnvHasher`] — drop-in for `std::collections::HashSet`.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn hasher_maps_behave_and_are_deterministic() {
        use std::hash::{BuildHasher, Hasher};
        let mut m: FnvHashMap<u64, u32> = FnvHashMap::default();
        for i in 0..1000u64 {
            m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i as u32);
        }
        for i in 0..1000u64 {
            let k = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(m.get(&k), Some(&(i as u32)));
        }
        let mut s: FnvHashSet<(u16, u16, u32)> = FnvHashSet::default();
        assert!(s.insert((1, 2, 3)));
        assert!(!s.insert((1, 2, 3)));
        // Same key, same build → same hash (no RandomState).
        let h = |x: u64| {
            let mut h = FnvBuildHasher.build_hasher();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Byte-slice path still matches canonical FNV-1a.
        let mut h = FnvHasher::default();
        Hasher::write(&mut h, b"foobar");
        assert_eq!(Hasher::finish(&h), 0x85944171f73967e8);
    }

    #[test]
    fn u64_and_f64_are_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_f64(1.5);
        let mut d = Fnv64::new();
        d.write_u64(1.5f64.to_bits());
        assert_eq!(c.finish(), d.finish());
    }
}
