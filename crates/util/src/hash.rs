//! Streaming FNV-1a 64-bit hashing.
//!
//! Used for stable trace hashes: the same event stream must hash to the
//! same value on every platform and in every build profile, so the
//! algorithm is fixed here (not `std::hash`, whose output is unspecified
//! across releases and randomised for HashMap use).

/// Streaming FNV-1a (64-bit).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self(OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    #[inline]
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    #[inline]
    pub fn write_u32(&mut self, x: u32) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    #[inline]
    pub fn write_u8(&mut self, x: u8) -> &mut Self {
        self.write(&[x])
    }

    /// Hash an `f64` by its bit pattern (exact, not approximate).
    #[inline]
    pub fn write_f64(&mut self, x: f64) -> &mut Self {
        self.write_u64(x.to_bits())
    }

    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot convenience.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo").write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn u64_and_f64_are_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_f64(1.5);
        let mut d = Fnv64::new();
        d.write_u64(1.5f64.to_bits());
        assert_eq!(c.finish(), d.finish());
    }
}
