//! Zero-dependency support library for the ldsim workspace.
//!
//! The build environment is fully offline, so everything that would
//! normally come from small external crates lives here instead:
//!
//! * [`rng`] — a deterministic, seedable PRNG (xoshiro256**) with the
//!   `gen_range` / `gen_bool` surface the workload generators use;
//! * [`json`] — a minimal JSON object writer for the JSONL exports
//!   (results and event traces);
//! * [`hash`] — streaming FNV-1a 64-bit hashing for stable trace hashes;
//! * [`par`] — a scoped worker-pool `parallel_map` replacing rayon in the
//!   experiment runner, plus the simulator's intra-run [`BarrierPool`].

pub mod hash;
pub mod json;
pub mod par;
pub mod rng;

pub use hash::{Fnv64, FnvBuildHasher, FnvHashMap, FnvHashSet, FnvHasher};
pub use json::{parse_object, JsonObject, JsonValue, ParsedObject};
pub use par::{jobs, parallel_map, set_jobs, set_sim_threads, sim_threads, BarrierPool};
pub use rng::StdRng;
