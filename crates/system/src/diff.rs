//! Differential checking across the scheduler ladder.
//!
//! The paper's schedulers differ only in *ordering* decisions: for a given
//! (benchmark, seed), every scheduler must
//!
//! 1. **conserve requests** — each read delivered to a memory partition
//!    produces exactly one SM response (none lost, none duplicated);
//! 2. **obey the DRAM protocol** — the independent [`ldsim_gddr5::TimingAuditor`]
//!    observes zero violations;
//! 3. **be reproducible** — re-running the identical configuration yields a
//!    bit-identical [`RunResult`] and event-trace hash.
//!
//! [`differential_check`] runs each scheduler twice with auditing and
//! tracing enabled and scores all three properties. Runs go to completion
//! (no instruction budget): conservation is only a meaningful equality on a
//! fully drained machine.

use crate::metrics::RunResult;
use crate::sim::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_util::parallel_map;
use ldsim_workloads::{benchmark, Scale};

/// Outcome of the differential check for one scheduler.
#[derive(Debug, Clone)]
pub struct DiffCell {
    pub scheduler: SchedulerKind,
    pub result: RunResult,
    /// Protocol violations the auditor counted.
    pub violations: u64,
    /// Reads delivered == responses returned.
    pub conserved: bool,
    /// Second identical run produced an identical result and trace hash.
    pub reproducible: bool,
}

impl DiffCell {
    pub fn clean(&self) -> bool {
        self.result.finished
            && self.violations == 0
            && self.conserved
            && self.reproducible
            && self.result.dropped_requests == 0
    }
}

/// The full differential report for one (benchmark, seed).
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub benchmark: String,
    pub scale: Scale,
    pub seed: u64,
    pub cells: Vec<DiffCell>,
}

impl DiffReport {
    pub fn all_clean(&self) -> bool {
        self.cells.iter().all(DiffCell::clean)
    }

    /// Human-readable description of every failed property.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            let name = c.scheduler.name();
            if !c.result.finished {
                out.push(format!("{}/{name}: did not finish", self.benchmark));
            }
            if c.violations > 0 {
                out.push(format!(
                    "{}/{name}: {} protocol violation(s)",
                    self.benchmark, c.violations
                ));
            }
            if !c.conserved {
                out.push(format!(
                    "{}/{name}: conservation broken ({} requests, {} responses)",
                    self.benchmark, c.result.mem_read_requests, c.result.mem_read_responses
                ));
            }
            if !c.reproducible {
                out.push(format!("{}/{name}: not reproducible", self.benchmark));
            }
            if c.result.dropped_requests > 0 {
                out.push(format!(
                    "{}/{name}: {} request(s) dropped at a crossbar",
                    self.benchmark, c.result.dropped_requests
                ));
            }
        }
        out
    }
}

fn audited_run(bench: &str, scale: Scale, seed: u64, kind: SchedulerKind) -> RunResult {
    let kernel = benchmark(bench, scale, seed).generate();
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_audit()
        .with_trace();
    Simulator::new(cfg, &kernel).run()
}

/// Run `kinds` (twice each) on one benchmark and score conservation,
/// conformance, and reproducibility. Schedulers run in parallel.
pub fn differential_check(
    bench: &str,
    scale: Scale,
    seed: u64,
    kinds: &[SchedulerKind],
) -> DiffReport {
    let cells = parallel_map(kinds.to_vec(), |kind| {
        let a = audited_run(bench, scale, seed, kind);
        let b = audited_run(bench, scale, seed, kind);
        DiffCell {
            scheduler: kind,
            violations: a.audit_violations,
            conserved: a.conserves_requests(),
            reproducible: a == b,
            result: a,
        }
    });
    DiffReport {
        benchmark: bench.to_string(),
        scale,
        seed,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_check_passes_on_tiny_bfs() {
        let report = differential_check(
            "bfs",
            Scale::Tiny,
            11,
            &[SchedulerKind::Gmc, SchedulerKind::Wg],
        );
        assert_eq!(report.cells.len(), 2);
        assert!(report.all_clean(), "failures: {:?}", report.failures());
        for c in &report.cells {
            assert!(c.result.audit_commands > 0, "auditor saw no commands");
            assert!(c.result.trace_hash.is_some());
            assert!(c.result.mem_read_requests > 0);
        }
        // Different schedulers genuinely scheduled differently (the trace
        // hash covers command order), yet both conserve and conform.
        let h0 = report.cells[0].result.trace_hash;
        let h1 = report.cells[1].result.trace_hash;
        assert_ne!(h0, h1, "GMC and WG should order commands differently");
    }

    #[test]
    fn failure_report_is_descriptive() {
        let mut report = differential_check("nw", Scale::Tiny, 3, &[SchedulerKind::Gmc]);
        assert!(report.all_clean(), "failures: {:?}", report.failures());
        report.cells[0].violations = 2;
        report.cells[0].conserved = false;
        report.cells[0].result.dropped_requests = 1;
        assert!(!report.all_clean());
        let msgs = report.failures();
        assert!(msgs.iter().any(|m| m.contains("protocol violation")));
        assert!(msgs.iter().any(|m| m.contains("conservation broken")));
        assert!(msgs.iter().any(|m| m.contains("dropped at a crossbar")));
    }
}
