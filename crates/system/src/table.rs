//! Minimal fixed-width table printer for the experiment binaries.

/// A simple text table: header row plus data rows, auto-sized columns.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numbers, left-align first column.
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    out.push_str(&format!("{:>w$}", c, w = width[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            fmt_row(r, &width, &mut out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format helpers for the experiment binaries.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["bench", "IPC"]);
        t.row(vec!["bfs".into(), "1.25".into()]);
        t.row(vec!["longername".into(), "0.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].starts_with("bfs"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.101), "10.1%");
    }
}
