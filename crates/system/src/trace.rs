//! Structured, deterministic event tracing.
//!
//! When [`SimConfig::trace`](ldsim_types::config::SimConfig) is set, the
//! simulator records three event streams:
//!
//! * **per-channel DRAM command logs** — every ACT/PRE/RD/WR/REF the channel
//!   issued, with cycle stamps (captured by the channel itself, see
//!   [`ldsim_gddr5::Channel::enable_cmd_log`]);
//! * **warp-group lifecycle** — the delivery of each read request to its
//!   memory partition and each DRAM read completion, keyed by
//!   (SM, warp, load-serial, channel);
//! * **latency-divergence samples** — the per-load records (Figs. 3/9/10
//!   inputs) every SM already keeps.
//!
//! The trace supports two consumers: [`Trace::stable_hash`] folds every
//! event into a single FNV-1a 64 digest (the determinism and differential
//! tests compare digests, not gigabytes), and [`Trace::write_jsonl`] dumps
//! one JSON object per line for offline analysis.

use ldsim_gddr5::{CmdEvent, CmdKind};
use ldsim_gpu::sm::LoadRecord;
use ldsim_types::clock::Cycle;
use ldsim_types::ids::WarpGroupId;
use ldsim_util::hash::Fnv64;
use ldsim_util::json::JsonObject;
use std::io::{self, Write};

/// Lifecycle stage of a warp-group event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgStage {
    /// A read request of the group was delivered to a memory partition.
    Arrive,
    /// A DRAM read of the group completed (data burst end booked).
    Serve,
}

impl WgStage {
    pub fn name(&self) -> &'static str {
        match self {
            WgStage::Arrive => "arrive",
            WgStage::Serve => "serve",
        }
    }
}

/// One warp-group lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WgEvent {
    pub cycle: Cycle,
    pub wg: WarpGroupId,
    pub channel: u8,
    pub stage: WgStage,
}

/// The assembled event trace of one simulation run.
#[derive(Debug, Clone)]
pub struct Trace {
    pub benchmark: String,
    pub scheduler: String,
    /// DRAM command log per channel, in issue order.
    pub channel_cmds: Vec<Vec<CmdEvent>>,
    /// Warp-group lifecycle events, in simulation order.
    pub wg_events: Vec<WgEvent>,
    /// Per-load latency-divergence samples, grouped by SM then program order.
    pub loads: Vec<LoadRecord>,
}

impl Trace {
    /// Total events across all streams.
    pub fn len(&self) -> usize {
        self.channel_cmds.iter().map(Vec::len).sum::<usize>()
            + self.wg_events.len()
            + self.loads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable digest of the whole trace: identical (workload, config)
    /// runs must produce identical hashes — the determinism harness's
    /// one-number comparison. The encoding is explicit field-by-field
    /// little-endian, so it does not depend on struct layout.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write(self.benchmark.as_bytes());
        h.write(self.scheduler.as_bytes());
        for (ch, log) in self.channel_cmds.iter().enumerate() {
            h.write_u64(ch as u64);
            h.write_u64(log.len() as u64);
            for ev in log {
                h.write_u64(ev.cycle);
                h.write_u8(cmd_code(ev.kind));
                h.write_u8(ev.bank);
                h.write_u32(ev.row);
            }
        }
        h.write_u64(self.wg_events.len() as u64);
        for e in &self.wg_events {
            h.write_u64(e.cycle);
            h.write_u32(e.wg.warp.sm.0 as u32);
            h.write_u32(e.wg.warp.warp.0 as u32);
            h.write_u32(e.wg.load_serial);
            h.write_u8(e.channel);
            h.write_u8(match e.stage {
                WgStage::Arrive => 0,
                WgStage::Serve => 1,
            });
        }
        h.write_u64(self.loads.len() as u64);
        for r in &self.loads {
            h.write_u32(r.warp.sm.0 as u32);
            h.write_u32(r.warp.warp.0 as u32);
            h.write_u32(r.active_lanes);
            h.write_u32(r.coalesced);
            h.write_u32(r.mem_reqs);
            h.write_u32(r.dram_responses);
            h.write_u64(r.issue);
            h.write_u64(r.complete);
            h.write_u64(r.first_dram);
            h.write_u64(r.last_dram);
            h.write_u32(r.channels_touched);
            h.write_u32(r.banks_touched);
            h.write_u32(r.same_row_reqs);
        }
        h.finish()
    }

    /// Export as JSON Lines: one `meta` line, then one line per event.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let meta = JsonObject::new()
            .str("type", "meta")
            .str("benchmark", &self.benchmark)
            .str("scheduler", &self.scheduler)
            .u64("channels", self.channel_cmds.len() as u64)
            .u64("events", self.len() as u64)
            .u64("trace_hash", self.stable_hash())
            .build();
        writeln!(w, "{meta}")?;
        for (ch, log) in self.channel_cmds.iter().enumerate() {
            for ev in log {
                let line = JsonObject::new()
                    .str("type", "cmd")
                    .u64("channel", ch as u64)
                    .u64("cycle", ev.cycle)
                    .str("cmd", ev.kind.name())
                    .u64("bank", ev.bank as u64)
                    .u64("row", ev.row as u64)
                    .build();
                writeln!(w, "{line}")?;
            }
        }
        for e in &self.wg_events {
            let line = JsonObject::new()
                .str("type", "wg")
                .str("stage", e.stage.name())
                .u64("cycle", e.cycle)
                .u64("sm", e.wg.warp.sm.0 as u64)
                .u64("warp", e.wg.warp.warp.0 as u64)
                .u64("load_serial", e.wg.load_serial as u64)
                .u64("channel", e.channel as u64)
                .build();
            writeln!(w, "{line}")?;
        }
        for r in &self.loads {
            let line = JsonObject::new()
                .str("type", "load")
                .u64("sm", r.warp.sm.0 as u64)
                .u64("warp", r.warp.warp.0 as u64)
                .u64("coalesced", r.coalesced as u64)
                .u64("mem_reqs", r.mem_reqs as u64)
                .u64("dram_responses", r.dram_responses as u64)
                .u64("issue", r.issue)
                .u64("complete", r.complete)
                .u64("first_dram", r.first_dram)
                .u64("last_dram", r.last_dram)
                .u64("dram_gap", r.dram_gap())
                .build();
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

fn cmd_code(k: CmdKind) -> u8 {
    match k {
        CmdKind::Act => 0,
        CmdKind::Pre => 1,
        CmdKind::Read => 2,
        CmdKind::Write => 3,
        CmdKind::RefAb => 4,
        CmdKind::FastRead => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::ids::GlobalWarpId;

    fn sample() -> Trace {
        Trace {
            benchmark: "bfs".into(),
            scheduler: "WG".into(),
            channel_cmds: vec![
                vec![
                    CmdEvent {
                        cycle: 3,
                        kind: CmdKind::Act,
                        bank: 0,
                        row: 17,
                    },
                    CmdEvent {
                        cycle: 21,
                        kind: CmdKind::Read,
                        bank: 0,
                        row: 0,
                    },
                ],
                vec![],
            ],
            wg_events: vec![WgEvent {
                cycle: 1,
                wg: WarpGroupId::new(GlobalWarpId::new(2, 5), 7),
                channel: 0,
                stage: WgStage::Arrive,
            }],
            loads: vec![LoadRecord {
                warp: GlobalWarpId::new(2, 5),
                active_lanes: 32,
                coalesced: 4,
                mem_reqs: 4,
                dram_responses: 4,
                issue: 1,
                complete: 99,
                first_dram: 40,
                last_dram: 90,
                channels_touched: 2,
                banks_touched: 3,
                same_row_reqs: 0,
            }],
        }
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let t = sample();
        let h1 = t.stable_hash();
        let h2 = t.clone().stable_hash();
        assert_eq!(h1, h2, "same trace must hash identically");
        let mut t2 = sample();
        t2.channel_cmds[0][0].cycle += 1;
        assert_ne!(h1, t2.stable_hash(), "hash must see command cycles");
        let mut t3 = sample();
        t3.wg_events[0].stage = WgStage::Serve;
        assert_ne!(h1, t3.stable_hash(), "hash must see lifecycle stages");
    }

    #[test]
    fn jsonl_has_meta_and_all_events() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 1 + t.len());
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"benchmark\":\"bfs\""));
        assert!(lines[0].contains(&format!("\"trace_hash\":{}", t.stable_hash())));
        assert!(lines.iter().any(|l| l.contains("\"cmd\":\"ACT\"")));
        assert!(lines.iter().any(|l| l.contains("\"stage\":\"arrive\"")));
        assert!(lines.iter().any(|l| l.contains("\"type\":\"load\"")));
        // Every line parses as a flat JSON object (cheap well-formedness
        // check without a parser: balanced braces, no raw newlines inside).
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn len_and_empty() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let e = Trace {
            benchmark: String::new(),
            scheduler: String::new(),
            channel_cmds: vec![],
            wg_events: vec![],
            loads: vec![],
        };
        assert!(e.is_empty());
    }
}
