//! The global sweep orchestrator: one pass over every figure's cells, with
//! a content-addressed result cache.
//!
//! The paper's evidence is a dozen figures and tables built from heavily
//! overlapping (benchmark × scheduler × scale × seed × config) grids.
//! Running each figure binary independently re-simulates the shared cells
//! once per figure and regenerates every kernel per run. This module turns
//! the whole reproduction into one job:
//!
//! 1. every figure/table declares its grid as a data-only [`FigureSpec`]
//!    (a list of [`Cell`]s plus a render closure over a shared
//!    [`CellStore`]);
//! 2. [`run_sweep`] dedupes cells *globally across figures* by
//!    content-addressed key, consults the crash-safe cache, generates each
//!    distinct kernel once, and runs the remaining unique cells through one
//!    work-stealing [`parallel_map`] pass;
//! 3. each figure renders from the shared store — identical bytes to its
//!    standalone binary, because the render code *is* the binary's body.
//!
//! ## Cell-key contract
//!
//! A cell's key is FNV-1a over the [`ENGINE_SALT`], the benchmark name,
//! scale, seed, and the *fingerprint of the fully-resolved* [`SimConfig`]
//! (scheduler, run options, and [`CfgTweak`] applied). Two cells with the
//! same key are the same simulation by construction — a tweak that resolves
//! to the default config (e.g. `GmcMaxStreak(16)`) dedupes against the
//! untweaked cell, which is correct: the config *is* the semantics. Only
//! two knobs are excluded from the fingerprint: `instruction_limit`, which
//! the runner derives deterministically from (benchmark, scale, seed) —
//! already part of the key — and `sim_threads`, which changes how a cell is
//! executed but (provably, see tests/threaded.rs) not a bit of what it
//! computes. [`CfgTweak`] is a closed enum (not a closure) precisely so no
//! tweak can sneak an unhashed knob past the key.
//!
//! ## Cache & resume semantics
//!
//! Completed cells append one self-describing JSONL row to the cache file
//! as they finish (single `write` per row, so a crash leaves at most one
//! torn final line, which the loader skips). Rows are trusted only if their
//! engine salt matches [`ENGINE_SALT`] *and* their key re-derives from a
//! currently-requested cell — stale entries self-invalidate and simply get
//! re-simulated. Re-running after a crash therefore resumes exactly where
//! the sweep died, and a fully-warm run renders every figure without
//! simulating at all.

use crate::metrics::RunResult;
use crate::runner::{run_one_kernel, run_opts, RunOpts};
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{
    CacheConfig, GpuConfig, MemConfig, PagePolicy, Preset, SchedulerKind, SimConfig, TimingParams,
};
use ldsim_types::kernel::KernelProgram;
use ldsim_util::{parallel_map, Fnv64, FnvHashMap};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// Engine-version salt folded into every cell key. Bump it whenever a
/// change alters simulation *results* (scheduler behaviour, timing, metric
/// definitions, workload generation) so every cached cell self-invalidates;
/// leave it alone for pure orchestration/rendering changes. The bit-exact
/// test ladders (fastforward, reference_picks, determinism) are the
/// reviewers' guide: if they needed re-blessing, bump the salt.
pub const ENGINE_SALT: &str = "ldsim-engine-2026-08-07";

/// Every engine salt this repository has shipped, newest first — the
/// *generation history* behind the shard compactor's eviction policy
/// (DESIGN.md §19). When [`ENGINE_SALT`] is bumped, push the old value onto
/// the front of the tail instead of deleting it: compaction keeps rows at
/// generation 0 (current) and 1 (previous — a rollback or a mixed-version
/// sweep farm can still serve them) and evicts anything older or unknown.
/// The warm-start loader is stricter and only ever *serves* generation 0.
pub const ENGINE_SALT_HISTORY: &[&str] = &[ENGINE_SALT];

/// Generation distance of `salt` from the current engine: 0 = current,
/// 1 = previous, `None` = unknown (foreign or pre-history).
pub fn salt_generation(salt: &str) -> Option<usize> {
    ENGINE_SALT_HISTORY.iter().position(|s| *s == salt)
}

/// Default shard count for directory-mode caches (the `repro` binary and
/// `ldsim-server`). 8 shards keep individual files small at Full scale
/// while staying trivial to eyeball in a directory listing.
pub const DEFAULT_SHARDS: usize = 8;

/// A data-only configuration variation — everything the figure/ablation
/// grids tweak beyond the scheduler. Closed enum, not a closure: the sweep
/// must be able to *hash* a cell's full configuration, and an arbitrary
/// `Fn(&mut SimConfig)` cannot be content-addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgTweak {
    /// The figure grids' common case: scheduler only, defaults otherwise.
    None,
    /// Fig. 4's ideal coalescer (one request per load).
    PerfectCoalescing,
    /// Ablation 1: WG-M coordination-network hop latency.
    CoordLatency(u64),
    /// Ablation 2: write-drain watermarks.
    WriteWatermarks { hi: usize, lo: usize },
    /// Ablation 3: flat tCCD (no bank groups) — tCCDS raised to tCCDL.
    FlatCcd,
    /// Ablation 4: periodic refresh disabled.
    RefreshOff,
    /// Ablation 4: closed-page (auto-precharge) row management.
    ClosedPage,
    /// Ablation 5: GMC row-hit streak cap.
    GmcMaxStreak(usize),
    /// Calibration: bypass the L2 slices (microbench `mb_bypass` cells).
    L2Bypass,
    /// Run on a different DRAM backend (GDDR3/GDDR6/HBM device description
    /// and command clock; controller policy knobs untouched). The preset is
    /// an ordinary cell dimension: `Backend(Preset::Gddr5)` resolves to the
    /// default machine and therefore dedupes against untweaked cells.
    Backend(Preset),
}

impl CfgTweak {
    /// Apply this variation to a config (scheduler already set).
    pub fn apply(&self, cfg: &mut SimConfig) {
        match *self {
            CfgTweak::None => {}
            CfgTweak::PerfectCoalescing => cfg.perfect_coalescing = true,
            CfgTweak::CoordLatency(lat) => cfg.mem.coord_latency = lat,
            CfgTweak::WriteWatermarks { hi, lo } => {
                cfg.mem.write_hi = hi;
                cfg.mem.write_lo = lo;
            }
            CfgTweak::FlatCcd => cfg.mem.timing.t_ccds_ck = cfg.mem.timing.t_ccdl_ck,
            CfgTweak::RefreshOff => cfg.mem.refresh_enabled = false,
            CfgTweak::ClosedPage => cfg.mem.page_policy = PagePolicy::Closed,
            CfgTweak::GmcMaxStreak(n) => cfg.mem.gmc_max_streak = n,
            CfgTweak::L2Bypass => cfg.gpu.l2_bypass = true,
            CfgTweak::Backend(p) => p.apply(cfg),
        }
    }
}

/// One (benchmark × scheduler × scale × seed × tweak) simulation, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    pub bench: &'static str,
    pub scale: ldsim_workloads::Scale,
    pub seed: u64,
    pub kind: SchedulerKind,
    pub tweak: CfgTweak,
}

impl Cell {
    /// An untweaked cell — the overwhelmingly common case.
    pub fn new(
        bench: &'static str,
        scale: ldsim_workloads::Scale,
        seed: u64,
        kind: SchedulerKind,
    ) -> Self {
        Self {
            bench,
            scale,
            seed,
            kind,
            tweak: CfgTweak::None,
        }
    }

    pub fn with_tweak(mut self, tweak: CfgTweak) -> Self {
        self.tweak = tweak;
        self
    }

    /// The fully-resolved configuration this cell runs under, minus the
    /// kernel-derived `instruction_limit`. Mirrors the runner's resolution
    /// order exactly: defaults → scheduler → run options → tweak.
    pub fn config(&self, opts: RunOpts) -> SimConfig {
        let mut cfg = SimConfig::default().with_scheduler(self.kind);
        cfg.audit = opts.audit;
        cfg.trace = opts.trace;
        cfg.hist = opts.hist;
        self.tweak.apply(&mut cfg);
        cfg
    }

    /// Content-addressed cache key: FNV-1a over the engine salt, the
    /// workload coordinates, and the resolved-config fingerprint.
    pub fn key(&self, opts: RunOpts) -> u64 {
        let mut h = Fnv64::new();
        h.write(ENGINE_SALT.as_bytes());
        h.write(self.bench.as_bytes());
        h.write_u8(scale_ord(self.scale));
        h.write_u64(self.seed);
        h.write_u64(config_fingerprint(&self.config(opts)));
        h.finish()
    }
}

fn scale_ord(s: ldsim_workloads::Scale) -> u8 {
    match s {
        ldsim_workloads::Scale::Tiny => 0,
        ldsim_workloads::Scale::Small => 1,
        ldsim_workloads::Scale::Full => 2,
    }
}

/// Stable FNV-1a digest over every [`SimConfig`] knob (except the
/// kernel-derived `instruction_limit` — see the module docs). Any default
/// change, tweak, or scheduler switch changes the fingerprint, so cached
/// cells keyed on it self-invalidate.
///
/// Exhaustive *by construction*: every config struct is fully destructured
/// (no `..` rest patterns), so adding a field to `SimConfig`, `GpuConfig`,
/// `CacheConfig`, `MemConfig`, `TimingParams`, or `ClockDomain` without
/// deciding how it fingerprints is a compile error (E0027), not a silent
/// stale-cache hazard. The hash write order is frozen — it is the cache-key
/// wire format; append new fields at the end of their section and bump
/// [`ENGINE_SALT`] only if the *semantics* changed.
pub fn config_fingerprint(cfg: &SimConfig) -> u64 {
    // Three deliberate exclusions: `instruction_limit`, which the runner
    // derives deterministically from (benchmark, scale, seed) — already
    // part of the cell key — and `sim_threads` / `epoch_max`, which are
    // execution strategy, not semantics: the threaded partition pool and
    // its multi-cycle epoch windows are pinned bit-exact against the
    // serial loop (tests/threaded.rs), so a cached cell is valid at any
    // thread count and any epoch cadence.
    let SimConfig {
        gpu,
        mem,
        scheduler,
        perfect_coalescing,
        max_cycles,
        instruction_limit: _,
        clock,
        audit,
        trace,
        fast_forward,
        hist,
        sim_threads: _,
        epoch_max: _,
    } = cfg;
    let mut h = Fnv64::new();
    // GPU side.
    let GpuConfig {
        num_sms,
        warp_size,
        max_warps_per_sm,
        l1,
        l2_slice,
        xbar_latency,
        xbar_queue,
        l2_bypass,
    } = gpu;
    h.write_u64(*num_sms as u64)
        .write_u64(*warp_size as u64)
        .write_u64(*max_warps_per_sm as u64)
        .write_u64(*xbar_latency)
        .write_u64(*xbar_queue as u64)
        .write_u8(*l2_bypass as u8);
    for c in [l1, l2_slice] {
        let CacheConfig {
            size_bytes,
            line_bytes,
            ways,
            mshr_entries,
            latency,
        } = c;
        h.write_u64(*size_bytes as u64)
            .write_u64(*line_bytes as u64)
            .write_u64(*ways as u64)
            .write_u64(*mshr_entries as u64)
            .write_u64(*latency);
    }
    // Memory side.
    let MemConfig {
        num_channels,
        banks_per_channel,
        banks_per_group,
        row_bytes,
        read_queue,
        write_queue,
        write_hi,
        write_lo,
        timing,
        coord_latency,
        gmc_max_streak,
        gmc_age_threshold,
        wgw_margin,
        bursts_per_access,
        page_policy,
        refresh_enabled,
        reference_picks,
    } = mem;
    h.write_u64(*num_channels as u64)
        .write_u64(*banks_per_channel as u64)
        .write_u64(*banks_per_group as u64)
        .write_u64(*row_bytes as u64)
        .write_u64(*read_queue as u64)
        .write_u64(*write_queue as u64)
        .write_u64(*write_hi as u64)
        .write_u64(*write_lo as u64)
        .write_u64(*coord_latency)
        .write_u64(*gmc_max_streak as u64)
        .write_u64(*gmc_age_threshold)
        .write_u64(*wgw_margin as u64)
        .write_u64(*bursts_per_access)
        .write_u8(match page_policy {
            PagePolicy::Open => 0,
            PagePolicy::Closed => 1,
        })
        .write_u8(*refresh_enabled as u8)
        .write_u8(*reference_picks as u8);
    let TimingParams {
        t_rc_ns,
        t_rcd_ns,
        t_rp_ns,
        t_cas_ns,
        t_ras_ns,
        t_rrd_ns,
        t_wtr_ns,
        t_faw_ns,
        t_rtp_ns,
        t_wr_ns,
        t_refi_ns,
        t_rfc_ns,
        t_wl_ck,
        t_burst_ck,
        t_rtrs_ck,
        t_ccdl_ck,
        t_ccds_ck,
    } = timing;
    for ns in [
        t_rc_ns, t_rcd_ns, t_rp_ns, t_cas_ns, t_ras_ns, t_rrd_ns, t_wtr_ns, t_faw_ns, t_rtp_ns,
        t_wr_ns, t_refi_ns, t_rfc_ns,
    ] {
        h.write_f64(*ns);
    }
    for ck in [t_wl_ck, t_burst_ck, t_rtrs_ck, t_ccdl_ck, t_ccds_ck] {
        h.write_u64(*ck);
    }
    // Top level.
    let (sched, alpha) = match scheduler {
        SchedulerKind::Fcfs => (0u8, 0u8),
        SchedulerKind::FrFcfs => (1, 0),
        SchedulerKind::Gmc => (2, 0),
        SchedulerKind::Wafcfs => (3, 0),
        SchedulerKind::Sbwas { alpha_q } => (4, *alpha_q),
        SchedulerKind::Wg => (5, 0),
        SchedulerKind::WgM => (6, 0),
        SchedulerKind::WgBw => (7, 0),
        SchedulerKind::WgW => (8, 0),
        SchedulerKind::ZeroDivergence => (9, 0),
        SchedulerKind::ParBs => (10, 0),
        SchedulerKind::AtlasLite => (11, 0),
        SchedulerKind::WgShared => (12, 0),
    };
    let ClockDomain { tck_ns } = clock;
    h.write_u8(sched)
        .write_u8(alpha)
        .write_u8(*perfect_coalescing as u8)
        .write_u64(*max_cycles)
        .write_f64(*tck_ns)
        .write_u8(*audit as u8)
        .write_u8(*trace as u8)
        .write_u8(*fast_forward as u8)
        .write_u8(*hist as u8);
    h.finish()
}

/// The shared result store every figure renders from: cell key →
/// [`RunResult`], under the run options the sweep was planned with.
#[derive(Debug)]
pub struct CellStore {
    opts: RunOpts,
    map: FnvHashMap<u64, RunResult>,
}

impl CellStore {
    pub fn new(opts: RunOpts) -> Self {
        Self {
            opts,
            map: FnvHashMap::default(),
        }
    }

    pub fn insert(&mut self, cell: &Cell, result: RunResult) {
        self.map.insert(cell.key(self.opts), result);
    }

    pub fn contains(&self, cell: &Cell) -> bool {
        self.map.contains_key(&cell.key(self.opts))
    }

    /// Fetch a cell's result; panics naming the cell if it was never
    /// declared — a figure reading a cell outside its spec is a bug, not a
    /// recoverable condition.
    pub fn get(&self, cell: &Cell) -> &RunResult {
        self.map.get(&cell.key(self.opts)).unwrap_or_else(|| {
            panic!(
                "cell not in store: {}/{:?} scale {:?} seed {} tweak {:?} — \
                 was it declared in the figure's spec?",
                cell.bench, cell.kind, cell.scale, cell.seed, cell.tweak
            )
        })
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One figure or table: its simulation grid as data, plus the render step
/// that turns shared-store cells into the binary's exact stdout and
/// `results/<name>.jsonl` bytes. `render` receives the store and the
/// results directory to write into.
pub struct FigureSpec {
    pub name: &'static str,
    pub cells: Vec<Cell>,
    #[allow(clippy::type_complexity)]
    pub render: Box<dyn Fn(&CellStore, &Path) + Send + Sync>,
}

/// How a sweep executes: where the cache lives, which salt validates it,
/// and the test-only crash injection.
pub struct SweepConfig<'a> {
    /// Where completed cells persist; `None` disables caching (the
    /// standalone figure binaries, which must behave exactly as before).
    /// A path ending in `.jsonl` is the legacy single-file log; any other
    /// path is a *shard directory* ([`crate::shard::ShardMap`]) holding
    /// [`Self::shards`] files partitioned by cellkey.
    pub cache_path: Option<&'a Path>,
    /// Salt cached rows must carry. Production always passes
    /// [`ENGINE_SALT`]; tests pass a different salt to prove invalidation.
    pub salt: &'a str,
    /// Stop after simulating this many cells (cache rows for them are
    /// already appended) — the crash-resume tests' kill switch.
    pub max_simulated: Option<usize>,
    /// Shard count used when `cache_path` names a directory. Ignored for
    /// single-file caches, and overridden by an existing directory's
    /// `shards.meta` (the on-disk layout wins).
    pub shards: usize,
}

impl Default for SweepConfig<'_> {
    fn default() -> Self {
        Self {
            cache_path: None,
            salt: ENGINE_SALT,
            max_simulated: None,
            shards: DEFAULT_SHARDS,
        }
    }
}

/// Whether a cache path selects the legacy single-file log (extension
/// `.jsonl`) or a shard directory.
fn is_single_file(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "jsonl")
}

/// What a sweep did, for logging and the resume/invalidation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Cells declared across all specs (with duplicates).
    pub declared: usize,
    /// Unique cells after global dedup.
    pub unique: usize,
    /// Unique cells satisfied from the cache.
    pub from_cache: usize,
    /// Unique cells actually simulated this run.
    pub simulated: usize,
    /// Cache lines skipped: wrong salt, torn/corrupt, or not requested.
    pub skipped_lines: usize,
}

/// Run every unique cell of `cells` (deduped by content-addressed key),
/// consulting and appending to the cache per `cfg`, and return the shared
/// store plus what happened. Panics on simulation integrity failures
/// (dropped requests, audit violations, conservation, instruction-count
/// mismatches) exactly like the per-figure runner does.
pub fn run_sweep(cells: &[Cell], cfg: &SweepConfig) -> (CellStore, SweepStats) {
    let opts = run_opts();
    let mut store = CellStore::new(opts);
    let mut stats = SweepStats {
        declared: cells.len(),
        unique: 0,
        from_cache: 0,
        simulated: 0,
        skipped_lines: 0,
    };

    // Global dedup, preserving first-declaration order for a stable,
    // resumable work list.
    let mut unique: Vec<Cell> = Vec::new();
    let mut by_key: FnvHashMap<u64, Cell> = FnvHashMap::default();
    for &cell in cells {
        let key = cell.key(opts);
        if by_key.insert(key, cell).is_none() {
            unique.push(cell);
        }
    }
    stats.unique = unique.len();

    // Warm start: absorb every valid, currently-requested cache row.
    if let Some(path) = cfg.cache_path {
        stats.skipped_lines = if is_single_file(path) {
            load_cache(path, cfg.salt, &by_key, opts, &mut store)
        } else {
            let map = crate::shard::ShardMap::open(path, cfg.shards);
            map.shard_paths()
                .iter()
                .map(|p| load_cache(p, cfg.salt, &by_key, opts, &mut store))
                .sum()
        };
        stats.from_cache = store.len();
    }

    let mut to_run: Vec<Cell> = unique
        .iter()
        .copied()
        .filter(|c| !store.contains(c))
        .collect();
    if let Some(limit) = cfg.max_simulated {
        to_run.truncate(limit);
    }

    // Generate each distinct kernel once, in parallel, then run the unique
    // cells through one work-stealing pass sharing the kernels read-only.
    let mut kernel_ids: Vec<(&'static str, ldsim_workloads::Scale, u64)> = Vec::new();
    for c in &to_run {
        let id = (c.bench, c.scale, c.seed);
        if !kernel_ids.contains(&id) {
            kernel_ids.push(id);
        }
    }
    let kernels: FnvHashMap<(&'static str, u8, u64), KernelProgram> = kernel_ids
        .iter()
        .map(|&(b, s, seed)| (b, scale_ord(s), seed))
        .zip(parallel_map(kernel_ids.clone(), |(b, s, seed)| {
            ldsim_workloads::benchmark(b, s, seed).generate()
        }))
        .collect();

    let appender = cfg.cache_path.map(|path| {
        if is_single_file(path) {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
            }
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open cache {}: {e}", path.display()));
            Appender::Single(Mutex::new(file))
        } else {
            Appender::Sharded(crate::shard::ShardMap::open(path, cfg.shards))
        }
    });

    let salt = cfg.salt;
    let fresh: Vec<(Cell, RunResult)> = parallel_map(to_run, |cell| {
        let kernel = &kernels[&(cell.bench, scale_ord(cell.scale), cell.seed)];
        let result = run_one_kernel(
            kernel,
            cell.bench,
            cell.scale,
            cell.seed,
            cell.kind,
            |cfg| cell.tweak.apply(cfg),
        );
        if let Some(log) = &appender {
            assert!(
                result.hists.is_none(),
                "refusing to cache an armed-histogram run ({}/{:?}): \
                 distributions do not round-trip through the cell cache — \
                 use the standalone histreport binary instead",
                cell.bench,
                cell.kind
            );
            let row = cache_row(&cell, opts, salt, &result);
            match log {
                Appender::Single(file) => {
                    let mut f = file.lock().unwrap();
                    // One write per row: a crash tears at most the final
                    // line, which the loader skips.
                    f.write_all(row.as_bytes())
                        .unwrap_or_else(|e| panic!("cache append failed: {e}"));
                }
                // ShardMap::append opens-appends-closes under the hood, so
                // concurrent workers only contend on the OS append lock.
                Appender::Sharded(map) => map.append(cell.key(opts), &row),
            }
        }
        (cell, result)
    });
    stats.simulated = fresh.len();
    for (cell, result) in fresh {
        store.insert(&cell, result);
    }

    if cfg.max_simulated.is_none() {
        verify_instruction_consistency(&unique, &store);
    }
    (store, stats)
}

/// Where finished cells are appended: the legacy single file, or one shard
/// file per cellkey partition.
enum Appender {
    Single(Mutex<std::fs::File>),
    Sharded(crate::shard::ShardMap),
}

/// Serialise one completed cell as a self-describing cache line — the wire
/// format shared by the single-file log, the shard store, and the
/// `ldsim-server` job results. Public so the server can persist cells it
/// ran outside [`run_sweep`] in the identical format.
pub fn cache_row(cell: &Cell, opts: RunOpts, salt: &str, result: &RunResult) -> String {
    let result_json = result.to_json();
    format!(
        "{{\"cellkey\":\"{:016x}\",\"engine\":\"{}\",\"scale\":\"{:?}\",\"seed\":{},\
         \"cfg\":\"{:016x}\",{}\n",
        cell.key(opts),
        salt,
        cell.scale,
        cell.seed,
        config_fingerprint(&cell.config(opts)),
        &result_json[1..],
    )
}

/// Load every trustworthy cache row into the store; returns the number of
/// lines skipped (torn, corrupt, wrong salt, or not in the requested set).
fn load_cache(
    path: &Path,
    salt: &str,
    requested: &FnvHashMap<u64, Cell>,
    opts: RunOpts,
    store: &mut CellStore,
) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return 0,
        Err(e) => panic!("cannot read cache {}: {e}", path.display()),
    };
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_cache_line(line, salt, requested, opts) {
            Some((cell, result)) => store.insert(&cell, result),
            None => skipped += 1,
        }
    }
    skipped
}

/// Validate one cache line: parses, salt matches, its key re-derives from a
/// requested cell, and the stored benchmark/config agree with that cell
/// (belt and braces against key collisions and hand-edited files). Public
/// for the same reason as [`cache_row`]: the server's dedupe path trusts a
/// disk row only after it passes exactly this check.
pub fn parse_cache_line(
    line: &str,
    salt: &str,
    requested: &FnvHashMap<u64, Cell>,
    opts: RunOpts,
) -> Option<(Cell, RunResult)> {
    let p = ldsim_util::parse_object(line).ok()?;
    if p.req_str("engine").ok()? != salt {
        return None;
    }
    let key = u64::from_str_radix(p.req_str("cellkey").ok()?, 16).ok()?;
    let cell = *requested.get(&key)?;
    let fingerprint = u64::from_str_radix(p.req_str("cfg").ok()?, 16).ok()?;
    if fingerprint != config_fingerprint(&cell.config(opts)) {
        return None;
    }
    let result = RunResult::from_json(line).ok()?;
    if result.benchmark != cell.bench {
        return None;
    }
    Some((cell, result))
}

/// The cross-scheduler invariant `run_grid` enforced, applied globally:
/// every untweaked cell of one (benchmark, scale, seed) must have retired
/// the identical instruction count — schedulers saw the same workload under
/// the same budget, whether the number came from the cache or a fresh run.
fn verify_instruction_consistency(cells: &[Cell], store: &CellStore) {
    let mut first: FnvHashMap<(&str, u8, u64), (&Cell, u64)> = FnvHashMap::default();
    for cell in cells {
        if cell.tweak != CfgTweak::None {
            continue;
        }
        let n = store.get(cell).instructions;
        match first.entry((cell.bench, scale_ord(cell.scale), cell.seed)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((cell, n));
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let (ref_cell, ref_n) = *e.get();
                assert_eq!(
                    n, ref_n,
                    "{}: {:?} retired a different instruction count than {:?} — \
                     schedulers did not see the same workload (stale cache?)",
                    cell.bench, cell.kind, ref_cell.kind
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::set_run_opts;
    use ldsim_workloads::Scale;

    fn cell(kind: SchedulerKind) -> Cell {
        Cell::new("bfs", Scale::Tiny, 7, kind)
    }

    #[test]
    fn keys_are_stable_and_discriminating() {
        let opts = RunOpts::default();
        let a = cell(SchedulerKind::Gmc);
        assert_eq!(a.key(opts), a.key(opts), "key must be deterministic");
        assert_ne!(a.key(opts), cell(SchedulerKind::Wg).key(opts));
        assert_ne!(
            a.key(opts),
            Cell::new("bfs", Scale::Tiny, 8, SchedulerKind::Gmc).key(opts)
        );
        assert_ne!(
            a.key(opts),
            Cell::new("bfs", Scale::Small, 7, SchedulerKind::Gmc).key(opts)
        );
        assert_ne!(
            a.key(opts),
            Cell::new("spmv", Scale::Tiny, 7, SchedulerKind::Gmc).key(opts)
        );
        assert_ne!(
            a.key(opts),
            a.with_tweak(CfgTweak::RefreshOff).key(opts),
            "a config tweak must change the key"
        );
        let armed = RunOpts {
            trace: true,
            ..RunOpts::default()
        };
        assert_ne!(
            a.key(opts),
            a.key(armed),
            "run options change results, so they must change the key"
        );
        // SBWAS alpha is part of the scheduler identity.
        assert_ne!(
            cell(SchedulerKind::Sbwas { alpha_q: 1 }).key(opts),
            cell(SchedulerKind::Sbwas { alpha_q: 2 }).key(opts)
        );
    }

    #[test]
    fn default_valued_tweak_dedupes_against_untweaked() {
        // GmcMaxStreak(16) == the default: identical resolved config,
        // identical key — simulating it twice would be waste, not safety.
        let opts = RunOpts::default();
        let base = cell(SchedulerKind::Gmc);
        let tweaked = base.with_tweak(CfgTweak::GmcMaxStreak(16));
        assert_eq!(base.key(opts), tweaked.key(opts));
        assert_ne!(
            base.key(opts),
            base.with_tweak(CfgTweak::GmcMaxStreak(2)).key(opts)
        );
    }

    #[test]
    fn fingerprint_sees_every_knob_family() {
        let base = config_fingerprint(&SimConfig::default());
        let mut c = SimConfig::default();
        c.mem.write_hi = 33;
        assert_ne!(base, config_fingerprint(&c));
        let mut c = SimConfig::default();
        c.mem.timing.t_cas_ns = 13.0;
        assert_ne!(base, config_fingerprint(&c));
        let mut c = SimConfig::default();
        c.gpu.l2_slice.mshr_entries = 97;
        assert_ne!(base, config_fingerprint(&c));
        let c = SimConfig {
            fast_forward: false,
            ..SimConfig::default()
        };
        assert_ne!(base, config_fingerprint(&c));
        let mut c = SimConfig::default();
        c.mem.reference_picks = true;
        assert_ne!(base, config_fingerprint(&c));
    }

    #[test]
    fn backend_gddr5_dedupes_and_other_presets_split() {
        // Backend(Gddr5) resolves to the default machine: same config, same
        // key, no wasted simulation. Every other preset must split the key.
        let opts = RunOpts::default();
        let base = cell(SchedulerKind::Gmc);
        assert_eq!(
            base.key(opts),
            base.with_tweak(CfgTweak::Backend(Preset::Gddr5)).key(opts)
        );
        for p in [Preset::Gddr3, Preset::Gddr6, Preset::Hbm] {
            assert_ne!(
                base.key(opts),
                base.with_tweak(CfgTweak::Backend(p)).key(opts),
                "{} must not collide with the default machine",
                p.name()
            );
        }
    }

    #[test]
    fn presets_and_single_knobs_produce_distinct_fingerprints() {
        // Property over the whole timing/topology grammar: any two distinct
        // presets, and any single knob nudged off its default, must land on
        // distinct fingerprints. A collision anywhere here is a silent
        // stale-cache hazard.
        use ldsim_types::config::parse_timing_string;
        let mut prints: Vec<(String, u64)> =
            vec![("default".into(), config_fingerprint(&SimConfig::default()))];
        for p in Preset::ALL.iter().skip(1) {
            prints.push((
                p.name().to_string(),
                config_fingerprint(&SimConfig::default().with_preset(*p)),
            ));
        }
        // One single-key override per grammar knob, each off its default.
        for s in [
            "nch=5",
            "nbk=8",
            "nbkgrp=8",
            "row=1024",
            "bpa=4",
            "CK=1.5",
            "RC=41",
            "RCD=13",
            "RP=13",
            "CL=13",
            "RAS=29",
            "RRD=6",
            "WTR=6",
            "FAW=24",
            "RTP=3",
            "WR=13",
            "REFI=2000",
            "RFC=120",
            "WL=5",
            "BL=4",
            "RTRS=2",
            "CCDL=4",
            "CCDS=1",
        ] {
            let (mem, clock) = parse_timing_string(s).unwrap();
            let cfg = SimConfig {
                mem,
                clock,
                ..SimConfig::default()
            };
            prints.push((s.to_string(), config_fingerprint(&cfg)));
        }
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(
                    prints[i].1, prints[j].1,
                    "fingerprint collision: {} vs {}",
                    prints[i].0, prints[j].0
                );
            }
        }
    }

    #[test]
    fn preset_cells_partition_the_cache() {
        // Same benchmark, same knobs, different DRAM backend: the preset
        // dimension alone must partition the cell cache — a collision would
        // serve GDDR5 numbers as HBM numbers. Pin it end to end through the
        // JSONL file, like the microbench/CSR partition test below.
        let _guard = crate::runner::test_opts_lock();
        set_run_opts(RunOpts::default());
        let opts = RunOpts::default();
        let dir =
            std::env::temp_dir().join(format!("ldsim-preset-partition-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cellcache.jsonl");
        let cells: Vec<Cell> = Preset::ALL
            .iter()
            .map(|&p| cell(SchedulerKind::Gmc).with_tweak(CfgTweak::Backend(p)))
            .collect();
        let mut keys: Vec<u64> = cells.iter().map(|c| c.key(opts)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "preset keys must be distinct");

        let cfg = SweepConfig {
            cache_path: Some(&cache),
            ..SweepConfig::default()
        };
        let (store, stats) = run_sweep(&cells, &cfg);
        assert_eq!(stats.simulated, 4, "all four backends must simulate cold");
        let text = std::fs::read_to_string(&cache).unwrap();
        assert_eq!(text.lines().count(), 4, "one cache row per backend");

        // Warm reload: each backend's row comes back under its own key.
        let (store2, stats2) = run_sweep(&cells, &cfg);
        assert_eq!(stats2.from_cache, 4);
        assert_eq!(stats2.simulated, 0);
        for c in &cells {
            assert_eq!(store2.get(c), store.get(c), "warm row must be bit-exact");
        }
        // And the backends genuinely differ: at least one metric moves.
        let lat: Vec<u64> = cells
            .iter()
            .map(|c| store.get(c).avg_effective_latency.round() as u64)
            .collect();
        assert!(
            lat.windows(2).any(|w| w[0] != w[1]),
            "different DRAM backends should not produce identical latencies: {lat:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_dedupes_and_caches_across_figures() {
        let _guard = crate::runner::test_opts_lock();
        set_run_opts(RunOpts::default());
        let dir = std::env::temp_dir().join(format!("ldsim-sweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cellcache.jsonl");
        // Two "figures" sharing the bfs/Gmc cell.
        let cells = vec![
            cell(SchedulerKind::Gmc),
            cell(SchedulerKind::Wg),
            cell(SchedulerKind::Gmc), // duplicate across figures
        ];
        let cfg = SweepConfig {
            cache_path: Some(&cache),
            ..SweepConfig::default()
        };
        let (store, stats) = run_sweep(&cells, &cfg);
        assert_eq!(stats.declared, 3);
        assert_eq!(stats.unique, 2);
        assert_eq!(stats.from_cache, 0);
        assert_eq!(stats.simulated, 2);
        assert_eq!(store.len(), 2);
        let cold = store.get(&cell(SchedulerKind::Gmc)).clone();

        // Warm rerun: everything from cache, nothing simulated, identical
        // result bytes.
        let (store2, stats2) = run_sweep(&cells, &cfg);
        assert_eq!(stats2.from_cache, 2);
        assert_eq!(stats2.simulated, 0);
        assert_eq!(
            store2.get(&cell(SchedulerKind::Gmc)).to_json(),
            cold.to_json()
        );

        // A bumped salt invalidates every row (they re-simulate), and the
        // old rows survive alongside the new ones.
        let bumped = SweepConfig {
            cache_path: Some(&cache),
            salt: "other-engine",
            ..SweepConfig::default()
        };
        let (_, stats3) = run_sweep(&cells, &bumped);
        assert_eq!(stats3.from_cache, 0, "bumped salt must invalidate");
        assert_eq!(stats3.simulated, 2);
        assert!(stats3.skipped_lines >= 2);
        let (_, stats4) = run_sweep(&cells, &cfg);
        assert_eq!(stats4.from_cache, 2, "original salt rows still valid");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn microbench_and_csr_cells_partition_the_cache() {
        // A calibration chase kernel and a CSR benchmark at *identical*
        // knobs (scale, seed, scheduler, tweak) resolve to the same config
        // fingerprint — only the bench name separates their cache keys. A
        // collision would silently serve one workload's numbers for the
        // other, so pin the partitioning end to end through the JSONL file.
        let _guard = crate::runner::test_opts_lock();
        set_run_opts(RunOpts::default());
        let opts = RunOpts::default();
        let dir = std::env::temp_dir().join(format!("ldsim-partition-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cellcache.jsonl");
        let mb = Cell::new("mb_serial", Scale::Tiny, 7, SchedulerKind::Gmc);
        let csr = Cell::new("bfs", Scale::Tiny, 7, SchedulerKind::Gmc);
        assert_eq!(
            config_fingerprint(&mb.config(opts)),
            config_fingerprint(&csr.config(opts)),
            "identical knobs must resolve to one config fingerprint"
        );
        assert_ne!(mb.key(opts), csr.key(opts), "bench name must split the key");

        let cells = vec![mb, csr];
        let cfg = SweepConfig {
            cache_path: Some(&cache),
            ..SweepConfig::default()
        };
        let (store, stats) = run_sweep(&cells, &cfg);
        assert_eq!(stats.simulated, 2, "both cells must simulate cold");
        let text = std::fs::read_to_string(&cache).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one cache row per cell");
        for (c, name) in [(&mb, "mb_serial"), (&csr, "bfs")] {
            let key = format!("\"cellkey\":\"{:016x}\"", c.key(opts));
            let row = lines
                .iter()
                .find(|l| l.contains(&key))
                .unwrap_or_else(|| panic!("no cache row keyed for {name}"));
            assert!(
                row.contains(&format!("\"benchmark\":\"{name}\"")),
                "row keyed for {name} must carry that benchmark's result"
            );
        }

        // Warm reload: both rows come back from cache, each under its own
        // benchmark — no cross-serving.
        let (store2, stats2) = run_sweep(&cells, &cfg);
        assert_eq!(stats2.from_cache, 2);
        assert_eq!(stats2.simulated, 0);
        for c in [&mb, &csr] {
            assert_eq!(store2.get(c), store.get(c), "warm row must be bit-exact");
            assert_eq!(store2.get(c).benchmark, c.bench);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_resume_completes_from_partial_cache() {
        let _guard = crate::runner::test_opts_lock();
        set_run_opts(RunOpts::default());
        let dir = std::env::temp_dir().join(format!("ldsim-resume-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cellcache.jsonl");
        let cells = vec![
            cell(SchedulerKind::Gmc),
            cell(SchedulerKind::Wg),
            cell(SchedulerKind::WgW),
        ];
        // "Crash" after one cell.
        let crashed = SweepConfig {
            cache_path: Some(&cache),
            max_simulated: Some(1),
            ..SweepConfig::default()
        };
        let (_, s1) = run_sweep(&cells, &crashed);
        assert_eq!(s1.simulated, 1);
        // Simulate a torn final line from a mid-append crash.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&cache)
                .unwrap();
            write!(
                f,
                "{{\"cellkey\":\"00ff\",\"engine\":\"{ENGINE_SALT}\",\"tr"
            )
            .unwrap();
        }
        // Resume: picks up the finished cell, skips the torn line, runs
        // the remaining two.
        let cfg = SweepConfig {
            cache_path: Some(&cache),
            ..SweepConfig::default()
        };
        let (store, s2) = run_sweep(&cells, &cfg);
        assert_eq!(s2.from_cache, 1);
        assert_eq!(s2.simulated, 2);
        assert!(s2.skipped_lines >= 1, "torn line must be skipped");
        assert_eq!(store.len(), 3);
        // A cache-free run agrees bit-exactly with the resumed one.
        let (fresh, _) = run_sweep(&cells, &SweepConfig::default());
        for c in &cells {
            assert_eq!(fresh.get(c), store.get(c), "resume must be bit-exact");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cell not in store")]
    fn undeclared_cell_lookup_panics() {
        let store = CellStore::new(RunOpts::default());
        store.get(&cell(SchedulerKind::Gmc));
    }

    #[test]
    fn salt_history_starts_at_the_current_salt_and_stays_key_safe() {
        // The compactor's generation arithmetic and the CI cache key both
        // hang off this list: generation 0 must be ENGINE_SALT itself,
        // every entry must be unique, and every entry must stay shell- and
        // cache-key-safe (scripts/engine_salt.sh interpolates it raw).
        assert_eq!(ENGINE_SALT_HISTORY[0], ENGINE_SALT);
        assert_eq!(salt_generation(ENGINE_SALT), Some(0));
        assert_eq!(salt_generation("never-shipped"), None);
        for (i, s) in ENGINE_SALT_HISTORY.iter().enumerate() {
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "salt generation {i} is not key-safe: {s:?}"
            );
            assert_eq!(salt_generation(s), Some(i));
        }
        let mut uniq: Vec<&str> = ENGINE_SALT_HISTORY.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ENGINE_SALT_HISTORY.len(), "duplicate salt");
    }

    #[test]
    fn sharded_cache_round_trips_and_compaction_preserves_warm_reload() {
        // The directory-mode cache must behave exactly like the single
        // file: cold run populates the shards (rows routed by key), warm
        // run simulates nothing and reloads bit-exact — and a compaction
        // pass over a polluted store (stale-salt + torn rows appended to
        // every shard) must shrink the files while leaving the warm reload
        // byte-identical. This is the in-`cargo test` half of the CI
        // compaction gate.
        let _guard = crate::runner::test_opts_lock();
        set_run_opts(RunOpts::default());
        let dir = std::env::temp_dir().join(format!("ldsim-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cellcache");
        let cells = vec![
            cell(SchedulerKind::Gmc),
            cell(SchedulerKind::Wg),
            cell(SchedulerKind::WgW),
            Cell::new("spmv", Scale::Tiny, 7, SchedulerKind::Gmc),
        ];
        let cfg = SweepConfig {
            cache_path: Some(&cache),
            shards: 4,
            ..SweepConfig::default()
        };
        let (store, stats) = run_sweep(&cells, &cfg);
        assert_eq!(stats.simulated, 4);
        let map = crate::shard::ShardMap::open(&cache, 4);
        assert_eq!(map.shards(), 4);
        // Rows landed in the shard their key maps to.
        let opts = RunOpts::default();
        let mut found = 0;
        for (i, p) in map.shard_paths().iter().enumerate() {
            for line in std::fs::read_to_string(p).unwrap_or_default().lines() {
                let obj = ldsim_util::parse_object(line).unwrap();
                let key = u64::from_str_radix(obj.req_str("cellkey").unwrap(), 16).unwrap();
                assert_eq!(map.shard_of(key), i, "row in the wrong shard");
                found += 1;
            }
        }
        assert_eq!(found, 4, "one row per simulated cell across the shards");
        assert!(cells.iter().all(|c| {
            let k = c.key(opts);
            map.shard_of(k) < 4
        }));

        // Warm reload: everything from cache, bit-exact.
        let (warm, wstats) = run_sweep(&cells, &cfg);
        assert_eq!(wstats.simulated, 0);
        assert_eq!(wstats.from_cache, 4);
        for c in &cells {
            assert_eq!(warm.get(c), store.get(c));
        }

        // Pollute every shard with a stale-salt row and a torn row, then
        // compact: files shrink back, reload still byte-exact.
        for (i, p) in map.shard_paths().iter().enumerate() {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .unwrap();
            let key = i as u64; // key i lands in shard i (i % 4 == i)
            writeln!(
                f,
                "{{\"cellkey\":\"{key:016x}\",\"engine\":\"ldsim-engine-0000-00-00\",\"x\":1}}"
            )
            .unwrap();
            write!(f, "{{\"cellkey\":\"dead").unwrap();
        }
        let polluted = map.total_bytes();
        let cstats = map.compact(ENGINE_SALT_HISTORY);
        assert_eq!(cstats.rows_kept, 4, "{cstats:?}");
        assert_eq!(cstats.rows_stale, 4, "{cstats:?}");
        assert_eq!(cstats.rows_torn, 4, "{cstats:?}");
        assert!(cstats.bytes_after < polluted);
        let (compacted, cwstats) = run_sweep(&cells, &cfg);
        assert_eq!(cwstats.simulated, 0, "compaction must not lose cells");
        assert_eq!(cwstats.from_cache, 4);
        assert_eq!(cwstats.skipped_lines, 0, "compaction removed all junk");
        for c in &cells {
            assert_eq!(
                compacted.get(c).to_json(),
                store.get(c).to_json(),
                "warm reload after compaction must be byte-exact"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
