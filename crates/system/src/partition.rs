//! A memory partition: one shared-L2 slice fronting one GDDR5 channel
//! controller (Section II-B).
//!
//! Reads that hit the L2 (or merge into an in-flight L2 miss) are *absorbed*
//! — the controller's warp-group tracker is told so the group can still be
//! recognised as fully transferred. Misses forward to the controller after
//! the L2 lookup latency. Stores write-allocate without fetch; dirty
//! evictions become the DRAM write traffic that the write-drain machinery
//! (and WG-W) manages.

use crate::trace::{WgEvent, WgStage};
use ldsim_gpu::cache::{Cache, Mshr};
use ldsim_gpu::sm::SmResponse;
use ldsim_memctrl::{Controller, CoordMsg};
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::Cycle;
use ldsim_types::config::{CacheConfig, MemConfig};
use ldsim_types::ids::{ChannelId, RequestId};
use ldsim_types::req::{MemRequest, MemResponse, ReqKind};
use ldsim_types::stats::Histogram;
use std::collections::VecDeque;

/// One memory partition.
pub struct Partition {
    pub id: ChannelId,
    pub l2: Cache,
    l2_mshr: Mshr<MemRequest>,
    l2_latency: Cycle,
    pub ctrl: Controller,
    mapper: AddressMapper,
    line_shift: u32,
    /// Cache-bypass mode (`GpuConfig::l2_bypass`): reads skip probe and
    /// fill (MSHR merging still applies), stores go straight to DRAM.
    bypass: bool,
    /// Requests arriving from the request crossbar, processed in order.
    input: VecDeque<MemRequest>,
    /// L2-latency delay line toward the controller.
    to_ctrl: VecDeque<(Cycle, MemRequest)>,
    /// SM-bound responses awaiting the response crossbar, tagged with the
    /// cycle they were staged (tags are monotone — pushes happen in cycle
    /// order). The hub drains entries tagged `<= now`, so a multi-cycle
    /// free-run can stage several cycles' worth and the hub replay still
    /// injects each at the cycle the serial loop would have.
    pub to_sm: VecDeque<(Cycle, usize, SmResponse)>,
    next_wb_id: u64,
    /// Cycles (sampled) with at least one DRAM bank open, for power.
    pub active_samples: u64,
    pub total_samples: u64,
    /// Controller read-queue depth sampled on the same 512-cycle cadence as
    /// the activity samples (None = zero cost). Observation-only.
    depth_hist: Option<Box<Histogram>>,
    // --- epoch-step staging (see `Simulator::step`) ---
    //
    // When partitions step concurrently between epoch barriers, anything a
    // partition would have pushed into simulator-owned state mid-phase is
    // staged in these partition-owned buffers instead, and the main thread
    // drains them in channel-id order at the barrier — reproducing the
    // serial loop's ordering exactly.
    /// This epoch's drained DRAM responses (scratch, reused every cycle).
    resp_buf: Vec<MemResponse>,
    /// Per-cycle coordination-drain scratch (reused).
    coord_buf: Vec<CoordMsg>,
    /// Outbound coordination messages staged for the hub broadcast, tagged
    /// with their emission cycle (monotone).
    pub(crate) epoch_coord: VecDeque<(Cycle, CoordMsg)>,
    /// `Serve`-stage trace events staged for the shared trace stream,
    /// tagged with their emission cycle (monotone; the event's own `cycle`
    /// field carries the DRAM `done_cycle`, which may lag the emission).
    pub(crate) epoch_events: VecDeque<(Cycle, WgEvent)>,
    // --- multi-cycle epoch windows (see `Simulator::run_epoch`) ---
    /// Crossbar deliveries pre-distributed at the window's opening barrier:
    /// `(arrival_cycle, global_grant_seq, request)` in grant order. The
    /// free-run applies each at its arrival cycle, subject to this
    /// partition's own input back-pressure — exactly the serial crossbar's
    /// blocked-retry behaviour, which is destination-local.
    pub(crate) epoch_arrivals: VecDeque<(Cycle, u64, MemRequest)>,
    /// Read deliveries actually performed during the free-run:
    /// `(delivery_cycle, global_grant_seq, warp_group)`. The hub replay
    /// merges these across partitions by `(cycle, seq)` to reproduce the
    /// serial loop's `Arrive` trace order and read-conservation counts.
    pub(crate) epoch_arrive_log: VecDeque<(Cycle, u64, ldsim_types::ids::WarpGroupId)>,
    /// Coordination messages pre-distributed at the window's opening
    /// barrier, tagged with their committed delivery cycle (monotone).
    pub(crate) epoch_coord_in: VecDeque<(Cycle, CoordMsg)>,
}

// Partitions cross thread boundaries in the epoch pool; every policy is
// `Send` by trait bound, so this holds by construction — keep it a
// compile-time fact rather than a latent `Scoped` error.
const _: () = {
    fn assert_send<T: Send>() {}
    let _ = assert_send::<Partition>;
};

impl Partition {
    pub fn new(
        id: ChannelId,
        l2_cfg: &CacheConfig,
        mem: &MemConfig,
        ctrl: Controller,
        bypass: bool,
    ) -> Self {
        Self {
            id,
            l2: Cache::new(l2_cfg),
            l2_mshr: Mshr::new(l2_cfg.mshr_entries),
            l2_latency: l2_cfg.latency,
            ctrl,
            mapper: AddressMapper::new(mem, l2_cfg.line_bytes),
            line_shift: l2_cfg.line_bytes.trailing_zeros(),
            bypass,
            input: VecDeque::new(),
            to_ctrl: VecDeque::new(),
            to_sm: VecDeque::new(),
            next_wb_id: 0,
            active_samples: 0,
            total_samples: 0,
            depth_hist: None,
            resp_buf: Vec::new(),
            coord_buf: Vec::new(),
            epoch_coord: VecDeque::new(),
            epoch_events: VecDeque::new(),
            epoch_arrivals: VecDeque::new(),
            epoch_arrive_log: VecDeque::new(),
            epoch_coord_in: VecDeque::new(),
        }
    }

    /// Arm this partition's sampled read-queue-depth histogram and the
    /// controller/channel recorders behind it. Observation-only.
    pub fn enable_hist(&mut self) {
        self.depth_hist = Some(Box::new(Histogram::latency()));
        self.ctrl.enable_hist();
    }

    /// Recorded sampled read-queue-depth distribution (None if unarmed).
    pub fn depth_hist(&self) -> Option<&Histogram> {
        self.depth_hist.as_deref()
    }

    /// Input-buffer capacity: kept shallow so backlog accumulates in the
    /// controller's scheduler-visible read queue, not in blind FIFOs.
    pub const INPUT_CAP: usize = 8;

    /// Room for another crossbar delivery?
    pub fn can_accept(&self) -> bool {
        self.input.len() < Self::INPUT_CAP
    }

    /// Free input-buffer slots.
    pub fn input_room(&self) -> usize {
        Self::INPUT_CAP - self.input.len()
    }

    /// A request arrived from the request crossbar.
    pub fn accept(&mut self, req: MemRequest) {
        debug_assert!(self.can_accept());
        self.input.push_back(req);
    }

    /// Epoch phase A: tick the controller and (for coordinating
    /// schedulers) stage its outbound coordination messages in
    /// [`Self::epoch_coord`] for the hub to broadcast at the barrier.
    /// Touches only this partition's state, so partitions can run it
    /// concurrently.
    pub(crate) fn epoch_ctrl_tick(&mut self, now: Cycle, coordinating: bool) {
        self.ctrl.tick(now);
        if coordinating {
            self.ctrl.drain_coord(&mut self.coord_buf);
            for msg in self.coord_buf.drain(..) {
                self.epoch_coord.push_back((now, msg));
            }
        }
    }

    /// Epoch phase C: apply this cycle's completed DRAM reads (staging a
    /// `Serve` trace event per response when tracing) and run the L2-slice
    /// tick. Like phase A, this reads and writes only partition-owned
    /// state — SM-bound responses land in `to_sm`, which the hub drains
    /// after the barrier.
    pub(crate) fn epoch_serve_and_tick(&mut self, now: Cycle, trace_on: bool) {
        self.resp_buf.clear();
        self.ctrl.drain_responses(&mut self.resp_buf);
        for i in 0..self.resp_buf.len() {
            let resp = self.resp_buf[i];
            if trace_on {
                self.epoch_events.push_back((
                    now,
                    WgEvent {
                        cycle: resp.done_cycle,
                        wg: resp.wg,
                        channel: self.id.0,
                        stage: WgStage::Serve,
                    },
                ));
            }
            self.on_ctrl_response(&resp, now);
        }
        self.tick(now);
    }

    /// Free-run this partition's cycles `[now, end)` without touching any
    /// shared state — the body of a multi-cycle conservative epoch
    /// (DESIGN.md §18). Pre-distributed crossbar arrivals
    /// ([`Self::epoch_arrivals`]) and coordination deliveries
    /// ([`Self::epoch_coord_in`]) are applied at their committed cycles —
    /// arrivals subject to this partition's own input back-pressure, which
    /// replays the crossbar's destination-local blocked-retry behaviour.
    /// Everything the hub needs afterwards (SM responses, trace events,
    /// outbound coordination, the arrive log) is staged cycle-tagged in
    /// partition-owned buffers. Locally idle stretches are skipped under
    /// the same per-component `next_event` contract the global
    /// fast-forward relies on, replaying 512-cycle activity samples in
    /// bulk.
    pub(crate) fn free_run(&mut self, now: Cycle, end: Cycle, coordinating: bool, trace_on: bool) {
        let mut c = now;
        while c < end {
            match self.local_horizon(c) {
                None => {
                    self.replay_samples(c, end);
                    return;
                }
                Some(h) if h > c => {
                    let t = h.min(end);
                    self.replay_samples(c, t);
                    c = t;
                    continue;
                }
                _ => {}
            }
            self.epoch_ctrl_tick(c, coordinating);
            while let Some(&(deliver_at, msg)) = self.epoch_coord_in.front() {
                if deliver_at > c {
                    break;
                }
                self.epoch_coord_in.pop_front();
                self.ctrl.deliver_coord(msg, c);
            }
            self.epoch_serve_and_tick(c, trace_on);
            while let Some(&(arrive, _, _)) = self.epoch_arrivals.front() {
                if arrive > c || !self.can_accept() {
                    break;
                }
                let (_, seq, req) = self.epoch_arrivals.pop_front().unwrap();
                if req.kind == ReqKind::Read {
                    self.epoch_arrive_log.push_back((c, seq, req.wg));
                }
                self.accept(req);
            }
            if (c + 1).is_multiple_of(512) {
                self.sample_activity();
            }
            c += 1;
        }
    }

    /// Earliest cycle in a free-run at which this partition's own state
    /// can change. Unlike [`Self::next_event`], staged SM responses do
    /// *not* pin `now`: the hub drains `to_sm` at the closing barrier and
    /// no partition phase reads it.
    fn local_horizon(&self, now: Cycle) -> Option<Cycle> {
        if !self.input.is_empty() {
            return Some(now);
        }
        let mut ev = self.ctrl.next_event(now);
        let mut fold = |c: Cycle| {
            let c = c.max(now);
            ev = Some(ev.map_or(c, |e| e.min(c)));
        };
        if let Some(&(ready, _)) = self.to_ctrl.front() {
            fold(ready);
        }
        if let Some(&(arrive, _, _)) = self.epoch_arrivals.front() {
            fold(arrive);
        }
        if let Some(&(deliver_at, _)) = self.epoch_coord_in.front() {
            fold(deliver_at);
        }
        ev
    }

    /// Bulk-replay the 512-cycle activity samples the per-cycle loop would
    /// have taken across the locally idle cycles `[from, to)`.
    fn replay_samples(&mut self, from: Cycle, to: Cycle) {
        let n = to / 512 - from / 512;
        if n > 0 {
            self.sample_activity_many(n);
        }
    }

    /// Process this cycle's partition work (after the controller has been
    /// ticked and its responses applied via [`Self::on_ctrl_response`]).
    pub fn tick(&mut self, now: Cycle) {
        // Release L2-latency-delayed requests to the controller.
        while let Some(&(ready, _)) = self.to_ctrl.front() {
            if ready > now {
                break;
            }
            let (_, req) = self.to_ctrl.pop_front().unwrap();
            self.ctrl.push_request(req);
        }
        // One L2 access per cycle (single-ported slice).
        if let Some(req) = self.input.front().copied() {
            match req.kind {
                ReqKind::Read => {
                    // Gate miss processing on controller backlog so queueing
                    // stays inside the scheduler-visible read queue.
                    let ctrl_full = self.ctrl.read_backlog() + self.to_ctrl.len()
                        >= self.ctrl.read_capacity() + 8;
                    if !self.bypass && self.l2.probe(req.line_addr, false) {
                        // L2 hit: absorbed; respond to the SM.
                        self.input.pop_front();
                        self.ctrl.note_absorbed(req.wg, req.group_size_on_channel);
                        self.to_sm.push_back((
                            now,
                            req.wg.warp.sm.0 as usize,
                            SmResponse {
                                line_addr: req.line_addr,
                                from_dram: false,
                                dram_cycle: 0,
                            },
                        ));
                    } else if self.l2_mshr.in_flight(req.line_addr) {
                        // Merged: absorbed; data comes with the earlier miss.
                        self.input.pop_front();
                        self.ctrl.note_absorbed(req.wg, req.group_size_on_channel);
                        // Cross-warp sharing signal (Section VIII): the
                        // original group's line now blocks another warp too.
                        if let Some(first) = self.l2_mshr.waiters(req.line_addr).first() {
                            if first.wg.warp != req.wg.warp {
                                self.ctrl.note_shared(first.wg);
                            }
                        }
                        let _ = self.l2_mshr.register(req.line_addr, req);
                    } else if !ctrl_full && self.l2_mshr.can_accept(req.line_addr) {
                        self.input.pop_front();
                        let _ = self.l2_mshr.register(req.line_addr, req);
                        self.to_ctrl.push_back((now + self.l2_latency, req));
                    }
                    // else: MSHR or controller full — head-of-line stall.
                }
                ReqKind::Write => {
                    if self.ctrl.write_backlog() >= self.ctrl.write_capacity() + 8 {
                        return; // back-pressure stores too
                    }
                    self.input.pop_front();
                    if self.bypass {
                        // Straight to the write queue, like a dirty eviction
                        // would have gone; no allocation, no probe.
                        self.write_back(req.line_addr, now);
                    } else if !self.l2.probe(req.line_addr, true) {
                        // Write-allocate without fetch; dirty eviction
                        // becomes a DRAM write-back.
                        if let Some((victim, dirty)) = self.l2.fill(req.line_addr, true) {
                            if dirty {
                                self.write_back(victim, now);
                            }
                        }
                    }
                }
            }
        }
    }

    /// A DRAM read completed: fill the L2 and wake every merged waiter.
    pub fn on_ctrl_response(&mut self, resp: &MemResponse, now: Cycle) {
        debug_assert_eq!(resp.kind, ReqKind::Read);
        if !self.bypass {
            if let Some((victim, dirty)) = self.l2.fill(resp.line_addr, false) {
                if dirty {
                    self.write_back(victim, now);
                }
            }
        }
        for waiter in self.l2_mshr.fill(resp.line_addr) {
            self.to_sm.push_back((
                now,
                waiter.wg.warp.sm.0 as usize,
                SmResponse {
                    line_addr: resp.line_addr,
                    from_dram: true,
                    dram_cycle: resp.done_cycle,
                },
            ));
        }
    }

    fn write_back(&mut self, victim_line: u64, now: Cycle) {
        self.next_wb_id += 1;
        let byte = victim_line << self.line_shift;
        let decoded = self.mapper.decode(byte);
        debug_assert_eq!(
            decoded.channel, self.id,
            "L2 slice holds only its own channel's lines"
        );
        let req = MemRequest {
            id: RequestId(0xB000_0000_0000_0000 | ((self.id.0 as u64) << 40) | self.next_wb_id),
            kind: ReqKind::Write,
            line_addr: victim_line,
            decoded,
            wg: ldsim_types::ids::WarpGroupId::new(
                ldsim_types::ids::GlobalWarpId::new(u16::MAX, self.id.0 as u16),
                self.next_wb_id as u32,
            ),
            last_of_group: true,
            group_size_on_channel: 1,
            issue_cycle: now,
            arrival_cycle: 0,
        };
        self.ctrl.push_request(req);
    }

    /// Earliest cycle this partition (L2 slice + controller) can make
    /// progress. A queued input is immediate — even a stalled head re-probes
    /// the L2 every cycle (stats + LRU), so those cycles cannot be skipped.
    /// SM-bound responses pin `now` too: the response crossbar drains them
    /// each cycle.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.input.is_empty() || !self.to_sm.is_empty() {
            return Some(now);
        }
        let mut ev = self.ctrl.next_event(now);
        if let Some(&(ready, _)) = self.to_ctrl.front() {
            let c = ready.max(now);
            ev = Some(ev.map_or(c, |e| e.min(c)));
        }
        ev
    }

    /// Sample bank-active state (power model input).
    pub fn sample_activity(&mut self) {
        self.total_samples += 1;
        if self.ctrl.channel.open_banks() > 0 {
            self.active_samples += 1;
        }
        if let Some(h) = self.depth_hist.as_deref_mut() {
            h.add(self.ctrl.read_backlog() as u64);
        }
    }

    /// Replay `n` activity samples at once. Valid across a fast-forward
    /// skip: banks neither open nor close while the controller has no event,
    /// so each skipped sample would have observed the same bank state — and
    /// likewise the read backlog, which the bulk histogram add mirrors.
    pub fn sample_activity_many(&mut self, n: u64) {
        self.total_samples += n;
        if self.ctrl.channel.open_banks() > 0 {
            self.active_samples += n;
        }
        if let Some(h) = self.depth_hist.as_deref_mut() {
            h.add_n(self.ctrl.read_backlog() as u64, n);
        }
    }

    /// Any work left anywhere in the partition?
    pub fn busy(&self) -> bool {
        !self.input.is_empty()
            || !self.to_ctrl.is_empty()
            || !self.to_sm.is_empty()
            || !self.l2_mshr.is_empty()
            || !self.ctrl.idle()
    }

    pub fn active_fraction(&self) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.active_samples as f64 / self.total_samples as f64
        }
    }
}
