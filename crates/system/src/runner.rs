//! The experiment runner: sweeps {benchmark x scheduler} grids in parallel
//! (one simulation per core via [`ldsim_util::parallel_map`]) and returns
//! the cells for the figure binaries to format.

use crate::metrics::RunResult;
use crate::sim::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_types::kernel::KernelProgram;
use ldsim_util::parallel_map;
use ldsim_workloads::{benchmark, Scale};
use std::sync::atomic::{AtomicU8, Ordering};

/// One (benchmark, scheduler) simulation outcome.
#[derive(Debug, Clone)]
pub struct GridCell {
    pub benchmark: String,
    pub scheduler: SchedulerKind,
    pub result: RunResult,
}

/// Process-wide options every [`run_one`] / [`run_grid`] call applies —
/// how the bench binaries' `--audit` / `--trace` / `--hist` flags reach all
/// the figure binaries without each one threading a config through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOpts {
    /// Attach the protocol conformance auditor to every channel; a run
    /// that ends with violations panics with the first few diagnoses.
    pub audit: bool,
    /// Record the event trace and publish its stable hash in the result.
    pub trace: bool,
    /// Arm the in-simulator distribution histograms (`RunResult::hists`).
    pub hist: bool,
}

impl RunOpts {
    fn to_bits(self) -> u8 {
        (self.audit as u8) | (self.trace as u8) << 1 | (self.hist as u8) << 2
    }

    fn from_bits(bits: u8) -> Self {
        Self {
            audit: bits & 1 != 0,
            trace: bits & 2 != 0,
            hist: bits & 4 != 0,
        }
    }
}

static RUN_OPTS: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide run options. Last write wins and takes effect for
/// every *subsequent* run — callers (bench binaries, tests) may flip options
/// between runs. Runs already in flight keep the options they started with.
pub fn set_run_opts(opts: RunOpts) {
    RUN_OPTS.store(opts.to_bits(), Ordering::Relaxed);
}

/// The active process-wide run options (default: all off).
pub fn run_opts() -> RunOpts {
    RunOpts::from_bits(RUN_OPTS.load(Ordering::Relaxed))
}

/// Serialise tests that mutate the process-wide [`RunOpts`] — the unit
/// tests of this crate run concurrently in one process, so any test that
/// calls [`set_run_opts`] must hold this lock for its whole body.
#[cfg(test)]
pub(crate) fn test_opts_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one benchmark under one scheduler, using the paper's fixed
/// instruction budget methodology (Section V): the run stops at 70% of the
/// kernel's total instructions (or completion), so throughput — not the
/// slowest warp's tail — is measured. Every scheduler executes the same
/// instruction budget on the same kernel.
pub fn run_one(bench: &str, scale: Scale, seed: u64, kind: SchedulerKind) -> RunResult {
    run_one_with(bench, scale, seed, kind, |_| {})
}

/// Run one benchmark with a custom configuration tweak (applied on top of
/// the process-wide [`RunOpts`], so a tweak can still override them).
pub fn run_one_with(
    bench: &str,
    scale: Scale,
    seed: u64,
    kind: SchedulerKind,
    tweak: impl Fn(&mut SimConfig),
) -> RunResult {
    let kernel = benchmark(bench, scale, seed).generate();
    run_one_kernel(&kernel, bench, scale, seed, kind, tweak)
}

/// [`run_one_with`] on an already-generated kernel, so a grid (or the
/// global sweep orchestrator, or `ldsim-server`'s cell executor) can share
/// one generation per benchmark across scheduler cells.
pub fn run_one_kernel(
    kernel: &KernelProgram,
    bench: &str,
    scale: Scale,
    seed: u64,
    kind: SchedulerKind,
    tweak: impl Fn(&mut SimConfig),
) -> RunResult {
    let opts = run_opts();
    let mut cfg = SimConfig::default().with_scheduler(kind);
    cfg.audit = opts.audit;
    cfg.trace = opts.trace;
    cfg.hist = opts.hist;
    cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
    tweak(&mut cfg);
    let audit_on = cfg.audit;
    let result = Simulator::new(cfg, kernel).run();
    if result.dropped_requests > 0 {
        panic!(
            "{} request(s) dropped at a crossbar \
             ({bench}/{kind:?}, scale {scale:?}, seed {seed}) — \
             injection overflow means results are silently corrupt",
            result.dropped_requests
        );
    }
    if audit_on && result.audit_violations > 0 {
        panic!(
            "DRAM protocol audit failed: {} violation(s) in {} commands \
             ({bench}/{kind:?}, scale {scale:?}, seed {seed})",
            result.audit_violations, result.audit_commands
        );
    }
    check_conservation(
        &result,
        kernel.total_instructions(),
        bench,
        scale,
        seed,
        kind,
    );
    result
}

/// Enforce read conservation (the invariant `RunResult::conserves_requests`
/// documents). A surplus of responses is corrupt in any run (duplication);
/// a deficit is corrupt only once every warp retired — a run cut off by the
/// instruction budget or cycle limit legitimately has reads still in
/// flight.
fn check_conservation(
    result: &RunResult,
    kernel_instructions: u64,
    bench: &str,
    scale: Scale,
    seed: u64,
    kind: SchedulerKind,
) {
    if result.mem_read_responses > result.mem_read_requests {
        panic!(
            "read conservation violated: {} responses for {} requests \
             (duplication) ({bench}/{kind:?}, scale {scale:?}, seed {seed})",
            result.mem_read_responses, result.mem_read_requests
        );
    }
    if result.finished && result.instructions == kernel_instructions && !result.conserves_requests()
    {
        panic!(
            "read conservation violated: {} responses for {} requests on a \
             fully drained run ({bench}/{kind:?}, scale {scale:?}, seed {seed})",
            result.mem_read_responses, result.mem_read_requests
        );
    }
}

/// Run every (benchmark, scheduler) pair in parallel. Each benchmark's
/// kernel is generated once per grid and shared read-only across its
/// scheduler cells — every scheduler sees the identical workload, which the
/// runner verifies by demanding identical retired-instruction counts across
/// each benchmark row.
pub fn run_grid(
    benches: &[&str],
    kinds: &[SchedulerKind],
    scale: Scale,
    seed: u64,
) -> Vec<GridCell> {
    let kernels: Vec<KernelProgram> =
        parallel_map(benches.to_vec(), |b| benchmark(b, scale, seed).generate());
    let pairs: Vec<(&str, &KernelProgram, SchedulerKind)> = benches
        .iter()
        .zip(&kernels)
        .flat_map(|(&b, kern)| kinds.iter().map(move |&k| (b, kern, k)))
        .collect();
    let grid = parallel_map(pairs, |(b, kern, k)| GridCell {
        result: run_one_kernel(kern, b, scale, seed, k, |_| {}),
        benchmark: b.to_string(),
        scheduler: k,
    });
    for row in grid.chunks(kinds.len()) {
        let first = &row[0];
        for c in row {
            assert_eq!(
                c.result.instructions, first.result.instructions,
                "{}: {:?} retired a different instruction count than {:?} — \
                 schedulers did not see the same workload",
                c.benchmark, c.scheduler, first.scheduler
            );
        }
    }
    grid
}

/// Pull one cell out of a grid.
pub fn cell<'a>(grid: &'a [GridCell], bench: &str, kind: SchedulerKind) -> &'a RunResult {
    &grid
        .iter()
        .find(|c| c.benchmark == bench && c.scheduler == kind)
        .unwrap_or_else(|| panic!("missing cell {bench}/{kind:?}"))
        .result
}

/// The canonical scheduler ladders used by the figures.
pub const PAPER_SCHEDULERS: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
];

/// Names of the irregular benchmarks, in the paper's presentation order.
pub fn irregular_names() -> Vec<&'static str> {
    ldsim_workloads::IRREGULAR.iter().map(|p| p.name).collect()
}

/// Names of the regular (Section VI-A) benchmarks.
pub fn regular_names() -> Vec<&'static str> {
    ldsim_workloads::REGULAR.iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_indexes() {
        let grid = run_grid(
            &["bfs", "nw"],
            &[SchedulerKind::Gmc, SchedulerKind::Wg],
            Scale::Tiny,
            7,
        );
        assert_eq!(grid.len(), 4);
        let c = cell(&grid, "bfs", SchedulerKind::Wg);
        assert!(c.finished);
        assert!(c.instructions > 0);
        // Same workload across schedulers: identical instruction counts.
        let g = cell(&grid, "bfs", SchedulerKind::Gmc);
        assert_eq!(c.instructions, g.instructions);
    }

    #[test]
    #[should_panic]
    fn missing_cell_panics() {
        let grid = run_grid(&["bfs"], &[SchedulerKind::Gmc], Scale::Tiny, 7);
        cell(&grid, "bfs", SchedulerKind::WgW);
    }

    #[test]
    fn run_opts_bits_round_trip() {
        for bits in 0..8u8 {
            assert_eq!(RunOpts::from_bits(bits).to_bits(), bits);
        }
        assert_eq!(RunOpts::default().to_bits(), 0);
    }

    #[test]
    fn flipping_run_opts_between_runs_takes_effect() {
        // Regression: the old OnceLock store was first-call-wins, so a test
        // (or bench binary) arming trace after any earlier run silently kept
        // the stale options.
        let _guard = test_opts_lock();
        set_run_opts(RunOpts {
            audit: false,
            trace: true,
            hist: false,
        });
        let a = run_one("bfs", Scale::Tiny, 3, SchedulerKind::Gmc);
        assert!(a.trace_hash.is_some(), "first write must apply");
        assert!(a.hists.is_none());
        set_run_opts(RunOpts {
            audit: true,
            trace: false,
            hist: true,
        });
        assert_eq!(run_opts().to_bits(), 0b101);
        let b = run_one("bfs", Scale::Tiny, 3, SchedulerKind::Gmc);
        assert!(b.trace_hash.is_none(), "flipping trace off must apply");
        assert!(b.hists.is_some(), "flipping hist on must apply");
        assert!(b.audit_commands > 0, "flipping audit on must apply");
        set_run_opts(RunOpts::default());
    }

    #[test]
    fn fully_drained_run_conserves_reads() {
        // Lift the instruction budget so the run drains completely; the
        // runner's conservation check must then demand exact equality (and
        // this run must satisfy it).
        let r = run_one_with("spmv", Scale::Tiny, 5, SchedulerKind::Wg, |cfg| {
            cfg.instruction_limit = None;
        });
        assert!(r.finished);
        assert!(r.conserves_requests());
        assert!(r.mem_read_requests > 0);
    }

    #[test]
    #[should_panic(expected = "duplication")]
    fn duplicated_responses_panic_even_unfinished() {
        let r = RunResult {
            mem_read_requests: 10,
            mem_read_responses: 11,
            finished: false,
            ..Default::default()
        };
        check_conservation(&r, 1000, "bfs", Scale::Tiny, 7, SchedulerKind::Gmc);
    }

    #[test]
    #[should_panic(expected = "fully drained")]
    fn lost_responses_panic_on_drained_runs() {
        let r = RunResult {
            mem_read_requests: 10,
            mem_read_responses: 9,
            finished: true,
            instructions: 1000,
            ..Default::default()
        };
        check_conservation(&r, 1000, "bfs", Scale::Tiny, 7, SchedulerKind::Gmc);
    }

    #[test]
    fn budget_cut_run_may_have_reads_in_flight() {
        // A deficit on a run stopped by the instruction budget is legal.
        let r = RunResult {
            mem_read_requests: 10,
            mem_read_responses: 7,
            finished: true,
            instructions: 700,
            ..Default::default()
        };
        check_conservation(&r, 1000, "bfs", Scale::Tiny, 7, SchedulerKind::Gmc);
    }
}
