//! The experiment runner: sweeps {benchmark x scheduler} grids in parallel
//! (one simulation per core via [`ldsim_util::parallel_map`]) and returns
//! the cells for the figure binaries to format.

use crate::metrics::RunResult;
use crate::sim::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_util::parallel_map;
use ldsim_workloads::{benchmark, Scale};
use std::sync::OnceLock;

/// One (benchmark, scheduler) simulation outcome.
#[derive(Debug, Clone)]
pub struct GridCell {
    pub benchmark: String,
    pub scheduler: SchedulerKind,
    pub result: RunResult,
}

/// Process-wide options every [`run_one`] / [`run_grid`] call applies —
/// how the bench binaries' `--audit` / `--trace` flags reach all nineteen
/// figure binaries without each one threading a config through.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOpts {
    /// Attach the protocol conformance auditor to every channel; a run
    /// that ends with violations panics with the first few diagnoses.
    pub audit: bool,
    /// Record the event trace and publish its stable hash in the result.
    pub trace: bool,
}

static RUN_OPTS: OnceLock<RunOpts> = OnceLock::new();

/// Set the process-wide run options. First call wins; later calls are
/// ignored (the bench binaries call this once, before any runs).
pub fn set_run_opts(opts: RunOpts) {
    let _ = RUN_OPTS.set(opts);
}

/// The active process-wide run options (default: both off).
pub fn run_opts() -> RunOpts {
    RUN_OPTS.get().copied().unwrap_or_default()
}

/// Run one benchmark under one scheduler, using the paper's fixed
/// instruction budget methodology (Section V): the run stops at 70% of the
/// kernel's total instructions (or completion), so throughput — not the
/// slowest warp's tail — is measured. Every scheduler executes the same
/// instruction budget on the same kernel.
pub fn run_one(bench: &str, scale: Scale, seed: u64, kind: SchedulerKind) -> RunResult {
    run_one_with(bench, scale, seed, kind, |_| {})
}

/// Run one benchmark with a custom configuration tweak (applied on top of
/// the process-wide [`RunOpts`], so a tweak can still override them).
pub fn run_one_with(
    bench: &str,
    scale: Scale,
    seed: u64,
    kind: SchedulerKind,
    tweak: impl Fn(&mut SimConfig),
) -> RunResult {
    let kernel = benchmark(bench, scale, seed).generate();
    let opts = run_opts();
    let mut cfg = SimConfig::default().with_scheduler(kind);
    cfg.audit = opts.audit;
    cfg.trace = opts.trace;
    cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
    tweak(&mut cfg);
    let audit_on = cfg.audit;
    let result = Simulator::new(cfg, &kernel).run();
    if result.dropped_requests > 0 {
        panic!(
            "{} request(s) dropped at a crossbar \
             ({bench}/{kind:?}, scale {scale:?}, seed {seed}) — \
             injection overflow means results are silently corrupt",
            result.dropped_requests
        );
    }
    if audit_on && result.audit_violations > 0 {
        panic!(
            "DRAM protocol audit failed: {} violation(s) in {} commands \
             ({bench}/{kind:?}, scale {scale:?}, seed {seed})",
            result.audit_violations, result.audit_commands
        );
    }
    result
}

/// Run every (benchmark, scheduler) pair in parallel. Kernels are generated
/// per cell from the same seed, so all schedulers see identical workloads.
pub fn run_grid(
    benches: &[&str],
    kinds: &[SchedulerKind],
    scale: Scale,
    seed: u64,
) -> Vec<GridCell> {
    let pairs: Vec<(String, SchedulerKind)> = benches
        .iter()
        .flat_map(|b| kinds.iter().map(move |k| (b.to_string(), *k)))
        .collect();
    parallel_map(pairs, |(b, k)| GridCell {
        result: run_one(&b, scale, seed, k),
        benchmark: b,
        scheduler: k,
    })
}

/// Pull one cell out of a grid.
pub fn cell<'a>(grid: &'a [GridCell], bench: &str, kind: SchedulerKind) -> &'a RunResult {
    &grid
        .iter()
        .find(|c| c.benchmark == bench && c.scheduler == kind)
        .unwrap_or_else(|| panic!("missing cell {bench}/{kind:?}"))
        .result
}

/// The canonical scheduler ladders used by the figures.
pub const PAPER_SCHEDULERS: &[SchedulerKind] = &[
    SchedulerKind::Gmc,
    SchedulerKind::Wg,
    SchedulerKind::WgM,
    SchedulerKind::WgBw,
    SchedulerKind::WgW,
];

/// Names of the irregular benchmarks, in the paper's presentation order.
pub fn irregular_names() -> Vec<&'static str> {
    ldsim_workloads::IRREGULAR.iter().map(|p| p.name).collect()
}

/// Names of the regular (Section VI-A) benchmarks.
pub fn regular_names() -> Vec<&'static str> {
    ldsim_workloads::REGULAR.iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_and_indexes() {
        let grid = run_grid(
            &["bfs", "nw"],
            &[SchedulerKind::Gmc, SchedulerKind::Wg],
            Scale::Tiny,
            7,
        );
        assert_eq!(grid.len(), 4);
        let c = cell(&grid, "bfs", SchedulerKind::Wg);
        assert!(c.finished);
        assert!(c.instructions > 0);
        // Same workload across schedulers: identical instruction counts.
        let g = cell(&grid, "bfs", SchedulerKind::Gmc);
        assert_eq!(c.instructions, g.instructions);
    }

    #[test]
    #[should_panic]
    fn missing_cell_panics() {
        let grid = run_grid(&["bfs"], &[SchedulerKind::Gmc], Scale::Tiny, 7);
        cell(&grid, "bfs", SchedulerKind::WgW);
    }
}
