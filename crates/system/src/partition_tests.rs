//! Unit tests for the memory partition (L2 slice + controller glue).

use crate::partition::Partition;
use ldsim_gddr5::{Channel, MerbTable};
use ldsim_memctrl::Controller;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{GpuConfig, MemConfig, SchedulerKind};
use ldsim_types::ids::{ChannelId, GlobalWarpId, RequestId, WarpGroupId};
use ldsim_types::req::{MemRequest, ReqKind};
use ldsim_warpsched::make_policy;

fn mk_partition() -> (Partition, AddressMapper, ChannelId) {
    let mem = MemConfig::default();
    let gpu = GpuConfig::default();
    let t = mem.timing.in_cycles(ClockDomain::GDDR5);
    let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, mem.banks_per_channel);
    let mapper = AddressMapper::new(&mem, 128);
    // Find any address on channel 0 for convenience.
    let ch = ChannelId(0);
    let ctrl = Controller::new(
        ch,
        &mem,
        Channel::new(&mem, t),
        make_policy(SchedulerKind::Gmc, &mem),
        merb,
        false,
    );
    (
        Partition::new(ch, &gpu.l2_slice, &mem, ctrl, false),
        mapper,
        ch,
    )
}

/// Find an address whose decode lands on `ch`.
fn addr_on_channel(mapper: &AddressMapper, ch: ChannelId, salt: u64) -> u64 {
    (0..10_000u64)
        .map(|i| (salt + i) * 128)
        .find(|&a| mapper.decode(a).channel == ch)
        .expect("some address maps to the channel")
}

fn read_req(mapper: &AddressMapper, addr: u64, id: u64, size: u16) -> MemRequest {
    MemRequest {
        id: RequestId(id),
        kind: ReqKind::Read,
        line_addr: mapper.line_addr(addr),
        decoded: mapper.decode(addr),
        wg: WarpGroupId::new(GlobalWarpId::new(1, 2), 7),
        last_of_group: false,
        group_size_on_channel: size,
        issue_cycle: 0,
        arrival_cycle: 0,
    }
}

#[test]
fn l2_hit_is_absorbed_and_answered() {
    let (mut p, mapper, ch) = mk_partition();
    let addr = addr_on_channel(&mapper, ch, 100);
    let req = read_req(&mapper, addr, 1, 2);
    // Warm the L2.
    p.l2.fill(req.line_addr, false);
    p.accept(req);
    p.tick(0);
    // Response queued for the SM, nothing forwarded to the controller.
    assert_eq!(p.to_sm.len(), 1);
    let (_, sm, resp) = p.to_sm[0];
    assert_eq!(sm, 1);
    assert!(!resp.from_dram);
    assert!(p.ctrl.idle());
    // The group tracker learned about the absorbed member.
    assert!(!p.ctrl.groups.is_complete(req.wg) || p.ctrl.groups.get(req.wg).is_none());
}

#[test]
fn l2_miss_forwards_after_lookup_latency() {
    let (mut p, mapper, ch) = mk_partition();
    let addr = addr_on_channel(&mapper, ch, 5000);
    let req = read_req(&mapper, addr, 2, 1);
    p.accept(req);
    p.tick(0);
    // Still inside the L2 latency window: controller has nothing.
    assert!(p.ctrl.idle());
    for now in 1..=GpuConfig::default().l2_slice.latency {
        p.tick(now);
    }
    assert!(!p.ctrl.idle(), "miss must reach the controller");
}

#[test]
fn l2_mshr_merges_duplicate_misses() {
    let (mut p, mapper, ch) = mk_partition();
    let addr = addr_on_channel(&mapper, ch, 9000);
    p.accept(read_req(&mapper, addr, 3, 2));
    p.tick(0);
    p.accept(read_req(&mapper, addr, 4, 2));
    p.tick(1);
    // Two inputs, one distinct line: exactly one downstream request.
    let mut n = 0;
    for now in 2..100 {
        p.tick(now);
        n = p.ctrl.read_backlog();
    }
    assert_eq!(n, 1, "merged miss must not forward twice");
}

#[test]
fn dram_fill_wakes_all_waiters_marked_from_dram() {
    let (mut p, mapper, ch) = mk_partition();
    let addr = addr_on_channel(&mapper, ch, 333);
    p.accept(read_req(&mapper, addr, 5, 2));
    p.tick(0);
    p.accept(read_req(&mapper, addr, 6, 2));
    p.tick(1);
    let resp = ldsim_types::req::MemResponse {
        id: RequestId(5),
        wg: WarpGroupId::new(GlobalWarpId::new(1, 2), 7),
        line_addr: mapper.line_addr(addr),
        kind: ReqKind::Read,
        done_cycle: 500,
    };
    p.on_ctrl_response(&resp, 510);
    assert_eq!(p.to_sm.len(), 2, "both waiters wake");
    assert!(p
        .to_sm
        .iter()
        .all(|(_, _, r)| r.from_dram && r.dram_cycle == 500));
    // The line is now resident: a third access hits.
    assert!(p.l2.contains(mapper.line_addr(addr)));
}

#[test]
fn store_allocates_and_dirty_eviction_writes_back() {
    let (mut p, mapper, ch) = mk_partition();
    // Fill one L2 set with dirty lines, then overflow it.
    let sets = GpuConfig::default().l2_slice.sets();
    let ways = GpuConfig::default().l2_slice.ways;
    let mut victims = Vec::new();
    let mut found = 0;
    // Collect ways+1 distinct lines mapping to the same set on this channel.
    let mut i = 0u64;
    let target_set = None::<u64>;
    let mut target = target_set;
    while found <= ways {
        i += 1;
        let a = i * 128;
        if mapper.decode(a).channel != ch {
            continue;
        }
        let line = mapper.line_addr(a);
        let set = line % sets as u64;
        match target {
            None => {
                target = Some(set);
                victims.push(a);
                found += 1;
            }
            Some(t) if set == t && !victims.contains(&a) => {
                victims.push(a);
                found += 1;
            }
            _ => {}
        }
    }
    let mut now = 0;
    for (j, &a) in victims.iter().enumerate() {
        let mut w = read_req(&mapper, a, 100 + j as u64, 1);
        w.kind = ReqKind::Write;
        while !p.can_accept() {
            p.tick(now);
            now += 1;
        }
        p.accept(w);
        p.tick(now);
        now += 1;
    }
    for extra in 0..50 {
        p.tick(now + extra);
    }
    // Overflowing ways dirty lines in one set must have produced at least
    // one DRAM write-back.
    assert!(
        p.ctrl.write_backlog() > 0 || !p.ctrl.idle(),
        "dirty eviction should reach the controller"
    );
}

#[test]
fn input_backpressure_is_bounded() {
    let (mut p, mapper, ch) = mk_partition();
    let mut accepted = 0;
    for i in 0..64u64 {
        if p.can_accept() {
            let addr = addr_on_channel(&mapper, ch, 12_000 + i * 97);
            p.accept(read_req(&mapper, addr, 200 + i, 1));
            accepted += 1;
        }
    }
    assert_eq!(accepted, Partition::INPUT_CAP, "input buffer must bound");
    assert!(!p.can_accept());
}
