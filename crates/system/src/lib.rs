//! Full-system simulator: SMs ↔ crossbar ↔ memory partitions (L2 slice +
//! GDDR5 controller), plus the metric collectors and the experiment runner
//! that regenerate the paper's tables and figures.
//!
//! The cycle loop (all components share the GDDR5 command clock):
//!
//! 1. each memory controller advances one cycle (command issue, drains,
//!    completions) and its responses flow back into the partition's L2;
//! 2. coordination messages travel on the [`ldsim_warpsched::CoordNetwork`];
//! 3. partitions process crossbar arrivals through the L2 (hits absorbed,
//!    misses forwarded, write-backs generated) and push SM-bound responses
//!    into the response crossbar;
//! 4. SMs wake warps, issue instructions, and inject new warp-groups into
//!    the request crossbar.
//!
//! [`Simulator::run`] returns a [`RunResult`] carrying every statistic the
//! paper's evaluation plots: IPC, effective memory latency, DRAM latency
//! divergence, bandwidth utilisation, row-hit rate, write intensity,
//! drain-stall classification and the DRAM power estimate.

pub mod diff;
pub mod metrics;
pub mod partition;
#[cfg(test)]
mod partition_tests;
pub mod runner;
pub mod shard;
pub mod sim;
pub mod sweep;
pub mod table;
pub mod trace;

pub use diff::{differential_check, DiffCell, DiffReport};
pub use metrics::{RunHists, RunResult};
pub use runner::{run_grid, run_one, run_one_kernel, run_opts, set_run_opts, GridCell, RunOpts};
pub use shard::{CompactStats, ShardMap};
pub use sim::{Simulator, SyncStats};
pub use sweep::{
    config_fingerprint, run_sweep, salt_generation, Cell, CellStore, CfgTweak, FigureSpec,
    SweepConfig, SweepStats, DEFAULT_SHARDS, ENGINE_SALT, ENGINE_SALT_HISTORY,
};
pub use table::Table;
pub use trace::{Trace, WgEvent, WgStage};
