//! Run-level metrics: everything the paper's evaluation section plots.

use ldsim_gpu::sm::LoadRecord;
use ldsim_types::clock::Cycle;
use ldsim_types::stats::Histogram;
use ldsim_util::json::JsonObject;

/// The full per-run distributions behind the `RunResult` percentiles,
/// collected when [`SimConfig::hist`](ldsim_types::config::SimConfig) is
/// armed (the DRAM-gap and effective-latency pair is always recorded at
/// collection time, so those two are populated regardless).
///
/// Derives `PartialEq`: the bit-exactness suites compare whole
/// [`RunResult`]s, so an armed histogram that diverged between the
/// fast-forward and reference loops fails the same assertion as any
/// counter.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHists {
    /// (last - first) DRAM service gap per load with >= 2 DRAM responses.
    pub dram_gap: Histogram,
    /// Issue-to-last-response latency per load that reached DRAM.
    pub effective_latency: Histogram,
    /// Per-bank command-queue depth at every transaction enqueue.
    pub bank_queue_depth: Histogram,
    /// Row-hit streak length (bursts per activate) at every row closure.
    pub row_hit_streak: Histogram,
    /// Busy-bank count at every successful read pick (the MERB view).
    pub merb_occupancy: Histogram,
    /// Controller read-queue depth on the 512-cycle sampling cadence.
    pub read_queue_depth: Histogram,
}

impl RunHists {
    pub fn new() -> Self {
        Self {
            dram_gap: Histogram::latency(),
            effective_latency: Histogram::latency(),
            bank_queue_depth: Histogram::latency(),
            row_hit_streak: Histogram::latency(),
            merb_occupancy: Histogram::latency(),
            read_queue_depth: Histogram::latency(),
        }
    }

    /// Every distribution with its export name, in a stable order.
    pub fn iter_named(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("dram_gap", &self.dram_gap),
            ("effective_latency", &self.effective_latency),
            ("bank_queue_depth", &self.bank_queue_depth),
            ("row_hit_streak", &self.row_hit_streak),
            ("merb_occupancy", &self.merb_occupancy),
            ("read_queue_depth", &self.read_queue_depth),
        ]
    }

    /// [`Self::iter_named`] with mutable histograms, same order — for
    /// cross-run aggregation via [`Histogram::merge`].
    pub fn iter_named_mut(&mut self) -> [(&'static str, &mut Histogram); 6] {
        [
            ("dram_gap", &mut self.dram_gap),
            ("effective_latency", &mut self.effective_latency),
            ("bank_queue_depth", &mut self.bank_queue_depth),
            ("row_hit_streak", &mut self.row_hit_streak),
            ("merb_occupancy", &mut self.merb_occupancy),
            ("read_queue_depth", &mut self.read_queue_depth),
        ]
    }
}

impl Default for RunHists {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of one full-system simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    pub benchmark: String,
    pub scheduler: String,
    /// Did every warp retire before the cycle limit?
    pub finished: bool,
    pub cycles: Cycle,
    pub instructions: u64,

    // ---- Fig. 2: coalescing efficiency ----
    pub loads: u64,
    /// Loads producing >1 request after coalescing.
    pub divergent_loads: u64,
    /// Mean requests per load after coalescing.
    pub avg_reqs_per_load: f64,

    // ---- Fig. 3 / Fig. 10: DRAM latency divergence ----
    /// Mean (last - first) DRAM service gap, over loads with >= 2 DRAM
    /// responses.
    pub avg_dram_gap: f64,
    /// Mean last-request latency / first-request latency ratio.
    pub last_first_ratio: f64,
    /// Mean distinct memory controllers touched per (divergent) load.
    pub avg_channels_touched: f64,
    /// Mean distinct (channel, bank) pairs touched per divergent load.
    pub avg_banks_touched: f64,
    /// Fraction of a warp's requests sharing a DRAM row with another.
    pub same_row_frac: f64,

    // ---- Fig. 9: effective memory latency ----
    /// Mean issue-to-last-response latency over loads that reached DRAM.
    pub avg_effective_latency: f64,

    // ---- tail percentiles (always populated; see `RunHists`) ----
    /// p50/p90/p99 of the per-load DRAM service gap, in cycles. Exact
    /// `Histogram::quantile` semantics: 0 when no load had >= 2 DRAM
    /// responses.
    pub gap_p50: u64,
    pub gap_p90: u64,
    pub gap_p99: u64,
    /// p50/p90/p99 of the per-load effective latency, in cycles.
    pub eff_p50: u64,
    pub eff_p90: u64,
    pub eff_p99: u64,

    // ---- Fig. 11 and Section VI-B ----
    /// DRAM data-bus utilisation (busy cycles / total cycles, averaged over
    /// channels).
    pub bw_utilization: f64,
    pub row_hit_rate: f64,
    /// Estimated DRAM power (W, summed over channels).
    pub dram_power_w: f64,

    // ---- Fig. 12: write drains ----
    /// Writes / (reads + writes) at DRAM.
    pub write_intensity: f64,
    pub drains: u64,
    pub drain_stalled_groups: u64,
    pub drain_stalled_unit: u64,
    pub drain_stalled_orphan: u64,

    // ---- cache behaviour ----
    pub l1_hit_rate: f64,
    pub l2_hit_rate: f64,
    /// Total DRAM reads / writes serviced.
    pub dram_reads: u64,
    pub dram_writes: u64,
    /// Fraction of cycles SMs spent with the issue port busy on compute.
    pub sm_port_busy_frac: f64,
    /// Fraction of cycles SMs spent idle with every warp blocked on memory
    /// (the paper's "SIMD core sits idle" statistic).
    pub sm_mem_idle_frac: f64,
    /// Warp-aware policy counters summed over controllers:
    /// [groups selected, MERB substitutions, WG-W priority grants,
    /// coordination caps applied].
    pub policy_counters: [u64; 4],

    // ---- conformance / conservation / reproducibility ----
    /// DRAM commands re-validated by the [`ldsim_gddr5::TimingAuditor`]
    /// (0 when auditing is disabled).
    pub audit_commands: u64,
    /// Protocol violations the auditor flagged (0 when disabled — check
    /// `audit_commands` to distinguish "clean" from "not audited").
    pub audit_violations: u64,
    /// Read requests delivered to memory partitions.
    pub mem_read_requests: u64,
    /// Read responses delivered back to SMs. Conservation demands equality
    /// with `mem_read_requests` on finished runs: every read delivered to a
    /// partition yields exactly one SM response (L2 hit, MSHR merge, or
    /// DRAM fill) — an inequality means a request was lost or duplicated.
    pub mem_read_responses: u64,
    /// Requests dropped by a failed crossbar injection. Always zero in a
    /// healthy run; a non-zero value is a hard error (the runner panics on
    /// it) — a lost request silently deadlocks its warp otherwise.
    pub dropped_requests: u64,
    /// Stable FNV-1a digest of the event trace (None when tracing is off).
    pub trace_hash: Option<u64>,
    /// Full distributions behind the percentile fields (None unless
    /// `SimConfig::hist` armed them; boxed to keep `RunResult` small).
    pub hists: Option<Box<RunHists>>,
}

impl RunResult {
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of loads that are divergent (Fig. 2's black bar).
    pub fn divergent_frac(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.divergent_loads as f64 / self.loads as f64
        }
    }

    /// Fraction of drain-stalled warp-groups that were unit-sized or
    /// orphaned (Fig. 12's second series).
    pub fn drain_unit_orphan_frac(&self) -> f64 {
        if self.drain_stalled_groups == 0 {
            0.0
        } else {
            (self.drain_stalled_unit + self.drain_stalled_orphan) as f64
                / self.drain_stalled_groups as f64
        }
    }

    /// Did every read delivered to a memory partition produce exactly one
    /// SM response? (Only meaningful on finished runs — a run cut off by
    /// the cycle limit legitimately has responses still in flight.)
    pub fn conserves_requests(&self) -> bool {
        self.mem_read_requests == self.mem_read_responses
    }

    /// Serialize as one flat JSON object (the bench binaries' dump format).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("benchmark", &self.benchmark)
            .str("scheduler", &self.scheduler)
            .bool("finished", self.finished)
            .u64("cycles", self.cycles)
            .u64("instructions", self.instructions)
            .f64("ipc", self.ipc())
            .u64("loads", self.loads)
            .u64("divergent_loads", self.divergent_loads)
            .f64("avg_reqs_per_load", self.avg_reqs_per_load)
            .f64("avg_dram_gap", self.avg_dram_gap)
            .f64("last_first_ratio", self.last_first_ratio)
            .f64("avg_channels_touched", self.avg_channels_touched)
            .f64("avg_banks_touched", self.avg_banks_touched)
            .f64("same_row_frac", self.same_row_frac)
            .f64("avg_effective_latency", self.avg_effective_latency)
            .u64("gap_p50", self.gap_p50)
            .u64("gap_p90", self.gap_p90)
            .u64("gap_p99", self.gap_p99)
            .u64("eff_p50", self.eff_p50)
            .u64("eff_p90", self.eff_p90)
            .u64("eff_p99", self.eff_p99)
            .f64("bw_utilization", self.bw_utilization)
            .f64("row_hit_rate", self.row_hit_rate)
            .f64("dram_power_w", self.dram_power_w)
            .f64("write_intensity", self.write_intensity)
            .u64("drains", self.drains)
            .u64("drain_stalled_groups", self.drain_stalled_groups)
            .u64("drain_stalled_unit", self.drain_stalled_unit)
            .u64("drain_stalled_orphan", self.drain_stalled_orphan)
            .f64("l1_hit_rate", self.l1_hit_rate)
            .f64("l2_hit_rate", self.l2_hit_rate)
            .u64("dram_reads", self.dram_reads)
            .u64("dram_writes", self.dram_writes)
            .f64("sm_port_busy_frac", self.sm_port_busy_frac)
            .f64("sm_mem_idle_frac", self.sm_mem_idle_frac)
            .u64_array("policy_counters", &self.policy_counters)
            .u64("audit_commands", self.audit_commands)
            .u64("audit_violations", self.audit_violations)
            .u64("mem_read_requests", self.mem_read_requests)
            .u64("mem_read_responses", self.mem_read_responses)
            .u64("dropped_requests", self.dropped_requests)
            .opt_u64("trace_hash", self.trace_hash)
            .build()
    }

    /// Parse a flat JSON row produced by [`Self::to_json`] back into a
    /// `RunResult` — the load half of the sweep orchestrator's cell cache.
    ///
    /// Exact by construction: integers never round through `f64`, and
    /// floats re-parse to the identical bit pattern (shortest-roundtrip
    /// formatting), so `from_json(to_json(r)).to_json() == to_json(r)`
    /// byte-for-byte. Extra fields (the cache's key/engine metadata, the
    /// derived `ipc`) are ignored; a *missing* field is an error — a cache
    /// row from an older schema must be treated as absent, not zero-filled.
    /// `hists` do not round-trip (`None` after parsing): cached cells are
    /// unarmed by contract (the orchestrator refuses to cache armed runs).
    pub fn from_json(row: &str) -> Result<RunResult, String> {
        let p = ldsim_util::parse_object(row)?;
        let counters = p
            .get("policy_counters")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| "missing or non-array field 'policy_counters'".to_string())?;
        if counters.len() != 4 {
            return Err(format!("policy_counters has {} entries", counters.len()));
        }
        let mut policy_counters = [0u64; 4];
        for (dst, v) in policy_counters.iter_mut().zip(counters) {
            *dst = v
                .as_u64()
                .ok_or_else(|| "non-u64 entry in 'policy_counters'".to_string())?;
        }
        let trace_hash = match p.get("trace_hash") {
            Some(ldsim_util::JsonValue::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "non-u64 field 'trace_hash'".to_string())?,
            ),
            None => return Err("missing field 'trace_hash'".into()),
        };
        Ok(RunResult {
            benchmark: p.req_str("benchmark")?.to_string(),
            scheduler: p.req_str("scheduler")?.to_string(),
            finished: p.req_bool("finished")?,
            cycles: p.req_u64("cycles")?,
            instructions: p.req_u64("instructions")?,
            loads: p.req_u64("loads")?,
            divergent_loads: p.req_u64("divergent_loads")?,
            avg_reqs_per_load: p.req_f64("avg_reqs_per_load")?,
            avg_dram_gap: p.req_f64("avg_dram_gap")?,
            last_first_ratio: p.req_f64("last_first_ratio")?,
            avg_channels_touched: p.req_f64("avg_channels_touched")?,
            avg_banks_touched: p.req_f64("avg_banks_touched")?,
            same_row_frac: p.req_f64("same_row_frac")?,
            avg_effective_latency: p.req_f64("avg_effective_latency")?,
            gap_p50: p.req_u64("gap_p50")?,
            gap_p90: p.req_u64("gap_p90")?,
            gap_p99: p.req_u64("gap_p99")?,
            eff_p50: p.req_u64("eff_p50")?,
            eff_p90: p.req_u64("eff_p90")?,
            eff_p99: p.req_u64("eff_p99")?,
            bw_utilization: p.req_f64("bw_utilization")?,
            row_hit_rate: p.req_f64("row_hit_rate")?,
            dram_power_w: p.req_f64("dram_power_w")?,
            write_intensity: p.req_f64("write_intensity")?,
            drains: p.req_u64("drains")?,
            drain_stalled_groups: p.req_u64("drain_stalled_groups")?,
            drain_stalled_unit: p.req_u64("drain_stalled_unit")?,
            drain_stalled_orphan: p.req_u64("drain_stalled_orphan")?,
            l1_hit_rate: p.req_f64("l1_hit_rate")?,
            l2_hit_rate: p.req_f64("l2_hit_rate")?,
            dram_reads: p.req_u64("dram_reads")?,
            dram_writes: p.req_u64("dram_writes")?,
            sm_port_busy_frac: p.req_f64("sm_port_busy_frac")?,
            sm_mem_idle_frac: p.req_f64("sm_mem_idle_frac")?,
            policy_counters,
            audit_commands: p.req_u64("audit_commands")?,
            audit_violations: p.req_u64("audit_violations")?,
            mem_read_requests: p.req_u64("mem_read_requests")?,
            mem_read_responses: p.req_u64("mem_read_responses")?,
            dropped_requests: p.req_u64("dropped_requests")?,
            trace_hash,
            hists: None,
        })
    }
}

/// Aggregate per-load records into the divergence metrics.
pub(crate) struct LoadAgg {
    pub loads: u64,
    pub divergent: u64,
    pub total_coalesced: u64,
    pub gap_sum: f64,
    pub gap_cnt: u64,
    pub ratio_sum: f64,
    pub ratio_cnt: u64,
    pub eff_sum: f64,
    pub eff_cnt: u64,
    pub ch_sum: f64,
    pub bank_sum: f64,
    pub spread_cnt: u64,
    pub same_row_num: u64,
    pub same_row_den: u64,
    /// Distribution counterparts of gap_sum/eff_sum, feeding the always-on
    /// `RunResult` percentile fields. Built from the same records at
    /// collection time, so they cannot perturb the simulation.
    pub gap_hist: Histogram,
    pub eff_hist: Histogram,
}

impl LoadAgg {
    pub fn new() -> Self {
        Self {
            loads: 0,
            divergent: 0,
            total_coalesced: 0,
            gap_sum: 0.0,
            gap_cnt: 0,
            ratio_sum: 0.0,
            ratio_cnt: 0,
            eff_sum: 0.0,
            eff_cnt: 0,
            ch_sum: 0.0,
            bank_sum: 0.0,
            spread_cnt: 0,
            same_row_num: 0,
            same_row_den: 0,
            gap_hist: Histogram::latency(),
            eff_hist: Histogram::latency(),
        }
    }

    pub fn add(&mut self, r: &LoadRecord) {
        self.loads += 1;
        self.total_coalesced += r.coalesced as u64;
        if r.coalesced > 1 {
            self.divergent += 1;
        }
        if r.dram_responses >= 1 {
            self.eff_sum += r.effective_latency() as f64;
            self.eff_cnt += 1;
            self.eff_hist.add(r.effective_latency());
        }
        if r.dram_responses >= 2 {
            self.gap_sum += r.dram_gap() as f64;
            self.gap_cnt += 1;
            self.gap_hist.add(r.dram_gap());
            // A load whose first response lands on its issue cycle (an L2
            // fill racing the issue) would divide by zero; floor the first
            // latency at one cycle so every gap-counted load contributes to
            // the ratio too (ratio_cnt == gap_cnt by construction).
            let first = (r.first_dram.saturating_sub(r.issue) as f64).max(1.0);
            let last = r.last_dram.saturating_sub(r.issue) as f64;
            self.ratio_sum += last / first;
            self.ratio_cnt += 1;
        }
        if r.mem_reqs >= 2 {
            self.ch_sum += r.channels_touched as f64;
            self.bank_sum += r.banks_touched as f64;
            self.spread_cnt += 1;
            self.same_row_num += r.same_row_reqs as u64;
            self.same_row_den += r.mem_reqs as u64;
        }
    }
}

fn ratio(n: f64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n / d as f64
    }
}

impl LoadAgg {
    pub fn avg_reqs_per_load(&self) -> f64 {
        ratio(self.total_coalesced as f64, self.loads)
    }
    pub fn avg_gap(&self) -> f64 {
        ratio(self.gap_sum, self.gap_cnt)
    }
    pub fn avg_ratio(&self) -> f64 {
        ratio(self.ratio_sum, self.ratio_cnt)
    }
    pub fn avg_eff(&self) -> f64 {
        ratio(self.eff_sum, self.eff_cnt)
    }
    pub fn avg_channels(&self) -> f64 {
        ratio(self.ch_sum, self.spread_cnt)
    }
    pub fn avg_banks(&self) -> f64 {
        ratio(self.bank_sum, self.spread_cnt)
    }
    pub fn same_row_frac(&self) -> f64 {
        ratio(self.same_row_num as f64, self.same_row_den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(coalesced: u32, mem: u32, dram: u32, first: Cycle, last: Cycle) -> LoadRecord {
        LoadRecord {
            coalesced,
            mem_reqs: mem,
            dram_responses: dram,
            issue: 100,
            complete: last.max(100),
            first_dram: first,
            last_dram: last,
            channels_touched: 2,
            banks_touched: 3,
            same_row_reqs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn aggregation_counts_divergence() {
        let mut a = LoadAgg::new();
        a.add(&rec(1, 0, 0, 0, 0));
        a.add(&rec(4, 4, 4, 200, 500));
        assert_eq!(a.loads, 2);
        assert_eq!(a.divergent, 1);
        assert!((a.avg_reqs_per_load() - 2.5).abs() < 1e-9);
        assert!((a.avg_gap() - 300.0).abs() < 1e-9);
        // ratio = (500-100)/(200-100) = 4
        assert!((a.avg_ratio() - 4.0).abs() < 1e-9);
        assert!((a.avg_channels() - 2.0).abs() < 1e-9);
        assert!((a.same_row_frac() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_agg_is_zero() {
        let a = LoadAgg::new();
        assert_eq!(a.avg_gap(), 0.0);
        assert_eq!(a.avg_reqs_per_load(), 0.0);
        assert!(a.gap_hist.is_empty() && a.eff_hist.is_empty());
    }

    #[test]
    fn ratio_counts_every_gap_counted_load() {
        // Regression: a first response landing on the issue cycle used to be
        // dropped from last_first_ratio entirely, skewing it. With the
        // one-cycle floor it contributes last/1.
        let mut a = LoadAgg::new();
        a.add(&rec(4, 4, 4, 100, 500)); // first == issue
        a.add(&rec(4, 4, 4, 200, 500));
        assert_eq!(a.gap_cnt, 2);
        assert_eq!(
            a.ratio_cnt, a.gap_cnt,
            "every load with a gap must contribute a ratio"
        );
        // (500-100)/1 + (500-100)/(200-100), averaged.
        assert!((a.avg_ratio() - (400.0 + 4.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn agg_histograms_track_gap_and_effective_latency() {
        let mut a = LoadAgg::new();
        a.add(&rec(1, 0, 0, 0, 0)); // never reached DRAM: not recorded
        a.add(&rec(4, 4, 4, 200, 500));
        a.add(&rec(4, 4, 2, 150, 350));
        assert_eq!(a.gap_hist.total(), 2);
        assert_eq!(a.eff_hist.total(), 2);
        // Gaps are 300 and 200; effective latencies 400 and 250 (vs issue
        // 100). Exact min/max survive the bucketing.
        assert_eq!(a.gap_hist.quantile(1.0), 300);
        assert_eq!(a.gap_hist.quantile(0.0), 200);
        assert_eq!(a.eff_hist.quantile(1.0), 400);
    }

    #[test]
    fn run_hists_named_iteration_is_stable() {
        let h = RunHists::new();
        let names: Vec<&str> = h.iter_named().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "dram_gap",
                "effective_latency",
                "bank_queue_depth",
                "row_hit_streak",
                "merb_occupancy",
                "read_queue_depth"
            ]
        );
        assert_eq!(RunHists::default(), h);
    }

    #[test]
    fn run_result_ipc() {
        let r = RunResult {
            benchmark: "x".into(),
            scheduler: "GMC".into(),
            finished: true,
            cycles: 100,
            instructions: 250,
            loads: 10,
            divergent_loads: 5,
            avg_reqs_per_load: 2.0,
            avg_dram_gap: 0.0,
            last_first_ratio: 1.0,
            avg_channels_touched: 2.0,
            avg_banks_touched: 2.0,
            same_row_frac: 0.3,
            avg_effective_latency: 500.0,
            gap_p50: 100,
            gap_p90: 300,
            gap_p99: 600,
            eff_p50: 400,
            eff_p90: 700,
            eff_p99: 900,
            bw_utilization: 0.5,
            row_hit_rate: 0.6,
            dram_power_w: 10.0,
            write_intensity: 0.2,
            drains: 1,
            drain_stalled_groups: 4,
            drain_stalled_unit: 1,
            drain_stalled_orphan: 1,
            l1_hit_rate: 0.2,
            l2_hit_rate: 0.3,
            dram_reads: 100,
            dram_writes: 20,
            sm_port_busy_frac: 0.5,
            sm_mem_idle_frac: 0.1,
            policy_counters: [0; 4],
            audit_commands: 0,
            audit_violations: 0,
            mem_read_requests: 80,
            mem_read_responses: 80,
            dropped_requests: 0,
            trace_hash: Some(42),
            hists: None,
        };
        assert!((r.ipc() - 2.5).abs() < 1e-9);
        assert!((r.divergent_frac() - 0.5).abs() < 1e-9);
        assert!((r.drain_unit_orphan_frac() - 0.5).abs() < 1e-9);
        assert!(r.conserves_requests());
    }

    #[test]
    fn json_round_trips_key_fields() {
        let r = RunResult {
            benchmark: "spmv".into(),
            scheduler: "WG-W".into(),
            finished: true,
            cycles: 1000,
            instructions: 4000,
            trace_hash: Some(0xDEAD),
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"benchmark\":\"spmv\""));
        assert!(j.contains("\"scheduler\":\"WG-W\""));
        assert!(j.contains("\"cycles\":1000"));
        assert!(j.contains("\"ipc\":4"));
        assert!(j.contains(&format!("\"trace_hash\":{}", 0xDEAD)));
        let off = RunResult::default().to_json();
        assert!(off.contains("\"trace_hash\":null"));
    }

    #[test]
    fn from_json_round_trips_byte_exactly() {
        let r = RunResult {
            benchmark: "spmv".into(),
            scheduler: "WG-W".into(),
            finished: true,
            cycles: 123_456_789,
            instructions: 4000,
            avg_reqs_per_load: 0.1 + 0.2, // not exactly representable
            avg_dram_gap: 317.123456789,
            policy_counters: [1, 2, 3, u64::MAX],
            trace_hash: Some(0xcbf2_9ce4_8422_2325), // > 2^53: f64 would corrupt it
            ..Default::default()
        };
        let j = r.to_json();
        let back = RunResult::from_json(&j).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), j, "re-serialisation must be byte-exact");
        // Extra fields (cache metadata, provenance stamps) are ignored.
        let stamped = format!("{{\"figure\":\"figX\",{}", &j[1..]);
        assert_eq!(RunResult::from_json(&stamped).unwrap(), r);
        // None trace hash round-trips too.
        let none = RunResult::default();
        assert_eq!(
            RunResult::from_json(&none.to_json()).unwrap().to_json(),
            none.to_json()
        );
    }

    #[test]
    fn from_json_rejects_missing_fields_and_garbage() {
        let j = RunResult::default().to_json();
        let truncated = &j[..j.len() / 2];
        assert!(RunResult::from_json(truncated).is_err());
        assert!(RunResult::from_json("{}").unwrap_err().contains('\''));
        let wrong = j.replace("\"cycles\":0", "\"cycles\":\"zero\"");
        assert!(RunResult::from_json(&wrong).unwrap_err().contains("cycles"));
    }

    #[test]
    fn conservation_detects_loss_and_duplication() {
        let mut r = RunResult {
            mem_read_requests: 10,
            mem_read_responses: 10,
            ..Default::default()
        };
        assert!(r.conserves_requests());
        r.mem_read_responses = 9; // lost
        assert!(!r.conserves_requests());
        r.mem_read_responses = 11; // duplicated
        assert!(!r.conserves_requests());
    }
}
