//! The sharded cell log: the on-disk half of the content-addressed cell
//! cache, grown from one append-only `cellcache.jsonl` into N shard files
//! plus a crash-safe compaction pass.
//!
//! ## Layout
//!
//! A shard map is a directory:
//!
//! ```text
//! <dir>/shards.meta                 "shards=8\n" — the layout contract
//! <dir>/shard-0000-of-0008.jsonl    rows whose cellkey % 8 == 0
//! <dir>/shard-0001-of-0008.jsonl    ...
//! ```
//!
//! Every row is the same self-describing JSONL line the single-file cache
//! wrote (see [`crate::sweep::cache_row`]): FNV-1a cellkey, engine salt,
//! config fingerprint, full [`RunResult`](crate::RunResult). The shard of
//! a row is `cellkey % shards` — the FNV keyspace is uniform, so shards
//! stay balanced without any placement logic. The shard count is fixed at
//! creation and recorded in `shards.meta`; opening an existing map with a
//! different requested count keeps the on-disk layout (the meta file wins)
//! so a misconfigured client cannot scatter rows across two geometries.
//!
//! ## Compaction & eviction
//!
//! Shard files are append-only: re-running a sweep after a salt bump, a
//! crash mid-append, or years of churn leaves stale, torn, and superseded
//! rows behind. [`ShardMap::compact`] rewrites each shard keeping only the
//! *newest* (last-appended) row per cellkey, dropping:
//!
//! * **torn** rows — unparsable lines (crash mid-append) or rows missing
//!   the `cellkey`/`engine` envelope;
//! * **stale** rows — engine salt more than one generation behind the
//!   current [`ENGINE_SALT`](crate::sweep::ENGINE_SALT) (per the history
//!   passed in, normally
//!   [`ENGINE_SALT_HISTORY`](crate::sweep::ENGINE_SALT_HISTORY)). Rows
//!   exactly one generation old are *kept* — they are dead weight for this
//!   binary but a rollback or a mixed-version farm can still serve them —
//!   and anything older is evicted;
//! * **misplaced** rows — rows whose cellkey does not map to the shard
//!   they sit in (a foreign tool or a re-sharded copy). Dropping a valid
//!   row costs a re-simulation, never a wrong answer, so eviction is
//!   always safe;
//! * **superseded** rows — older appends for a key that appears again
//!   later in the same shard.
//!
//! Crash safety: each shard is rewritten to `<shard>.tmp`, synced, then
//! atomically renamed over the original. A crash at any point leaves
//! either the old shard or the new one — never a torn mix — and the loader
//! skips whatever half-written `.tmp` files remain.

use ldsim_util::FnvHashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Name of the layout-contract file inside a shard directory.
pub const META_FILE: &str = "shards.meta";

/// Hard ceiling on the shard count — far above any sensible layout, low
/// enough that a typo'd `--shards 99999999` cannot create a directory with
/// millions of files.
pub const MAX_SHARDS: usize = 4096;

/// What one [`ShardMap::compact`] pass did, per the whole map.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Rows surviving compaction (newest valid row per key).
    pub rows_kept: usize,
    /// Rows dropped: salt more than one generation old (or unknown).
    pub rows_stale: usize,
    /// Rows dropped: unparsable line or missing cellkey/engine envelope.
    pub rows_torn: usize,
    /// Rows dropped: an append for the same key appears later.
    pub rows_superseded: usize,
    /// Rows dropped: cellkey does not map to the shard holding the row.
    pub rows_misplaced: usize,
    /// Total shard bytes before and after the pass.
    pub bytes_before: u64,
    pub bytes_after: u64,
}

impl CompactStats {
    /// Total rows dropped by the pass.
    pub fn rows_dropped(&self) -> usize {
        self.rows_stale + self.rows_torn + self.rows_superseded + self.rows_misplaced
    }
}

/// A sharded append-only cell log rooted at one directory.
#[derive(Debug, Clone)]
pub struct ShardMap {
    dir: PathBuf,
    shards: usize,
}

impl ShardMap {
    /// Open (creating if necessary) the shard map at `dir`. A fresh
    /// directory is laid out with `shards` shard files; an existing one
    /// keeps its recorded count — the on-disk layout is the contract, and
    /// a caller asking for a different count gets the real one back via
    /// [`Self::shards`].
    pub fn open(dir: &Path, shards: usize) -> ShardMap {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        );
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create shard dir {}: {e}", dir.display()));
        let meta = dir.join(META_FILE);
        let shards = match std::fs::read_to_string(&meta) {
            Ok(text) => {
                let n = text
                    .trim()
                    .strip_prefix("shards=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| (1..=MAX_SHARDS).contains(n))
                    .unwrap_or_else(|| {
                        panic!(
                            "corrupt shard meta {}: {text:?} (want \"shards=N\")",
                            meta.display()
                        )
                    });
                n
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Write-temp-then-rename, like everything else in the map:
                // two racing creators converge on a whole meta file.
                let tmp = dir.join(format!("{META_FILE}.tmp.{}", std::process::id()));
                std::fs::write(&tmp, format!("shards={shards}\n"))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", tmp.display()));
                std::fs::rename(&tmp, &meta)
                    .unwrap_or_else(|e| panic!("cannot commit {}: {e}", meta.display()));
                shards
            }
            Err(e) => panic!("cannot read {}: {e}", meta.display()),
        };
        ShardMap {
            dir: dir.to_path_buf(),
            shards,
        }
    }

    /// The recorded shard count (may differ from the one requested at
    /// [`Self::open`] when the directory already existed).
    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Which shard a cellkey lives in. FNV-1a keys are uniform over `u64`,
    /// so a plain modulus balances the shards.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards as u64) as usize
    }

    /// Path of shard `i` (`shard-0003-of-0008.jsonl`).
    pub fn shard_path(&self, i: usize) -> PathBuf {
        assert!(i < self.shards);
        self.dir
            .join(format!("shard-{i:04}-of-{:04}.jsonl", self.shards))
    }

    /// Every shard path in index order (whether or not the file exists yet
    /// — shards are created lazily on first append).
    pub fn shard_paths(&self) -> Vec<PathBuf> {
        (0..self.shards).map(|i| self.shard_path(i)).collect()
    }

    /// Append one serialized row (must be newline-terminated) under `key`.
    /// Single `write_all`, so a crash tears at most the final line of one
    /// shard — which the loader and compactor both skip.
    pub fn append(&self, key: u64, row: &str) {
        debug_assert!(row.ends_with('\n'), "cache rows are newline-framed");
        let path = self.shard_path(self.shard_of(key));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open shard {}: {e}", path.display()));
        f.write_all(row.as_bytes())
            .unwrap_or_else(|e| panic!("shard append failed ({}): {e}", path.display()));
    }

    /// Total bytes across all shard files (missing shards count zero).
    pub fn total_bytes(&self) -> u64 {
        self.shard_paths()
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum()
    }

    /// Rewrite every shard keeping only the newest valid row per cellkey,
    /// evicting rows whose engine salt is more than one generation behind
    /// `history[0]` (see the module docs for the full policy). Crash-safe:
    /// write-temp-then-rename per shard.
    pub fn compact(&self, history: &[&str]) -> CompactStats {
        assert!(!history.is_empty(), "salt history cannot be empty");
        let mut stats = CompactStats::default();
        for i in 0..self.shards {
            compact_one_file(&self.shard_path(i), history, Some((i, self)), &mut stats);
        }
        stats
    }
}

/// Compact a legacy single-file cell log (`cellcache.jsonl`) in place:
/// the same newest-row-per-key + salt-generation eviction policy as
/// [`ShardMap::compact`], minus the misplacement check (a single file
/// holds the whole keyspace). Crash-safe via the same temp+rename. A
/// missing file is a no-op.
pub fn compact_file(path: &Path, history: &[&str]) -> CompactStats {
    assert!(!history.is_empty(), "salt history cannot be empty");
    let mut stats = CompactStats::default();
    compact_one_file(path, history, None, &mut stats);
    stats
}

/// Shared compaction body: rewrite one append-only log file keeping the
/// newest valid row per key. `placement` carries the (shard index, map)
/// pair when the file is one shard of a [`ShardMap`].
fn compact_one_file(
    path: &Path,
    history: &[&str],
    placement: Option<(usize, &ShardMap)>,
    stats: &mut CompactStats,
) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
        Err(e) => panic!("cannot read cell log {}: {e}", path.display()),
    };
    stats.bytes_before += text.len() as u64;
    // First pass: decide, per key, which line index survives (the last
    // valid append wins).
    let mut keep: FnvHashMap<u64, usize> = FnvHashMap::default();
    let mut verdicts: Vec<Option<u64>> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        match classify(line, history) {
            RowVerdict::Keep(key) => {
                if let Some((shard, map)) = placement {
                    if map.shard_of(key) != shard {
                        stats.rows_misplaced += 1;
                        verdicts.push(None);
                        continue;
                    }
                }
                if keep.insert(key, idx).is_some() {
                    stats.rows_superseded += 1;
                }
                verdicts.push(Some(key));
            }
            RowVerdict::Torn => {
                stats.rows_torn += 1;
                verdicts.push(None);
            }
            RowVerdict::Stale => {
                stats.rows_stale += 1;
                verdicts.push(None);
            }
        }
    }
    // Second pass: emit surviving lines in their original order.
    let mut out = String::with_capacity(text.len());
    for (idx, line) in text.lines().enumerate() {
        if let Some(key) = verdicts[idx] {
            if keep.get(&key) == Some(&idx) {
                out.push_str(line);
                out.push('\n');
                stats.rows_kept += 1;
            }
        }
    }
    stats.bytes_after += out.len() as u64;
    let tmp = path.with_extension(format!("jsonl.tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", tmp.display()));
        f.write_all(out.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", tmp.display()));
        f.sync_all()
            .unwrap_or_else(|e| panic!("cannot sync {}: {e}", tmp.display()));
    }
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("cannot commit compacted log {}: {e}", path.display()));
}

enum RowVerdict {
    Keep(u64),
    Torn,
    Stale,
}

/// Classify one log line under the compaction policy. Only the envelope
/// (cellkey + engine salt) is inspected — full result validation stays
/// where it always was, at load time against the requested cell set.
fn classify(line: &str, history: &[&str]) -> RowVerdict {
    if line.trim().is_empty() {
        return RowVerdict::Torn;
    }
    let Ok(obj) = ldsim_util::parse_object(line) else {
        return RowVerdict::Torn;
    };
    let (Ok(key_hex), Ok(salt)) = (obj.req_str("cellkey"), obj.req_str("engine")) else {
        return RowVerdict::Torn;
    };
    let Ok(key) = u64::from_str_radix(key_hex, 16) else {
        return RowVerdict::Torn;
    };
    match history.iter().position(|s| *s == salt) {
        Some(generation) if generation <= 1 => {}
        _ => return RowVerdict::Stale,
    }
    RowVerdict::Keep(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ldsim-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn row(key: u64, salt: &str, payload: u64) -> String {
        format!("{{\"cellkey\":\"{key:016x}\",\"engine\":\"{salt}\",\"payload\":{payload}}}\n")
    }

    #[test]
    fn keys_route_to_their_shard_and_meta_pins_the_layout() {
        let dir = tmp("route");
        let map = ShardMap::open(&dir, 4);
        assert_eq!(map.shards(), 4);
        for key in [0u64, 1, 5, 7, 1 << 60] {
            map.append(key, &row(key, "s", 1));
        }
        // Every row landed in the file its key maps to.
        for i in 0..4 {
            let text = std::fs::read_to_string(map.shard_path(i)).unwrap_or_default();
            for line in text.lines() {
                let obj = ldsim_util::parse_object(line).unwrap();
                let key = u64::from_str_radix(obj.req_str("cellkey").unwrap(), 16).unwrap();
                assert_eq!(map.shard_of(key), i);
            }
        }
        // Re-opening with a different requested count keeps the layout.
        let reopened = ShardMap::open(&dir, 16);
        assert_eq!(reopened.shards(), 4, "shards.meta must win over the caller");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_newest_drops_torn_stale_misplaced() {
        let dir = tmp("compact");
        let map = ShardMap::open(&dir, 2);
        let history = ["salt-new", "salt-prev", "salt-ancient"];
        // Superseded: two appends for key 2 — the later payload survives.
        map.append(2, &row(2, "salt-new", 1));
        map.append(2, &row(2, "salt-new", 2));
        // One-generation-old salt: kept (rollback grace).
        map.append(4, &row(4, "salt-prev", 3));
        // Two generations old and unknown: evicted.
        map.append(6, &row(6, "salt-ancient", 4));
        map.append(8, &row(8, "salt-from-mars", 5));
        // Torn final line (crash mid-append) in shard 1.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(map.shard_path(1))
                .unwrap();
            write!(f, "{{\"cellkey\":\"0000000000000003\",\"eng").unwrap();
        }
        // Misplaced: a key-5 row hand-placed in shard 0.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(map.shard_path(0))
                .unwrap();
            f.write_all(row(5, "salt-new", 6).as_bytes()).unwrap();
        }

        let before = map.total_bytes();
        let stats = map.compact(&history);
        assert_eq!(stats.rows_kept, 2, "{stats:?}");
        assert_eq!(stats.rows_superseded, 1, "{stats:?}");
        assert_eq!(stats.rows_stale, 2, "{stats:?}");
        assert_eq!(stats.rows_torn, 1, "{stats:?}");
        assert_eq!(stats.rows_misplaced, 1, "{stats:?}");
        assert_eq!(stats.bytes_before, before);
        assert_eq!(stats.bytes_after, map.total_bytes());
        assert!(stats.bytes_after < stats.bytes_before);

        // The survivors: newest key-2 row and the grace-generation key-4.
        let all: String = map
            .shard_paths()
            .iter()
            .filter_map(|p| std::fs::read_to_string(p).ok())
            .collect();
        assert!(all.contains("\"payload\":2"), "{all}");
        assert!(all.contains("\"payload\":3"), "{all}");
        for gone in [
            "\"payload\":1",
            "\"payload\":4",
            "\"payload\":5",
            "\"payload\":6",
        ] {
            assert!(!all.contains(gone), "{gone} survived compaction: {all}");
        }
        // Compaction is idempotent: a second pass changes nothing.
        let stats2 = map.compact(&history);
        assert_eq!(stats2.rows_kept, 2);
        assert_eq!(stats2.rows_dropped(), 0);
        assert_eq!(stats2.bytes_before, stats2.bytes_after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "corrupt shard meta")]
    fn corrupt_meta_is_refused() {
        let dir = tmp("badmeta");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(META_FILE), "shards=zero\n").unwrap();
        ShardMap::open(&dir, 8);
    }
}
