//! The cycle-level full-system simulator.

use crate::metrics::{LoadAgg, RunHists, RunResult};
use crate::partition::Partition;
use crate::trace::{Trace, WgEvent, WgStage};
use ldsim_gddr5::{Channel, MerbTable, PowerModel, PowerParams};
use ldsim_gpu::sm::{Sm, SmResponse};
use ldsim_gpu::xbar::Crossbar;
use ldsim_memctrl::Controller;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::Cycle;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_types::ids::{ChannelId, SmId, WarpGroupId};
use ldsim_types::kernel::KernelProgram;
use ldsim_util::{BarrierPool, FnvHashSet};
use ldsim_warpsched::{make_policy, CoordNetwork};

/// Synchronization accounting for a run: how often the partition pool had
/// to rendezvous with the hub, and how much of the run was covered by
/// multi-cycle epoch windows. Returned by
/// [`Simulator::run_with_sync_stats`]; deliberately *not* part of
/// [`RunResult`], which is compared bit-for-bit across execution
/// strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Partition-phase hand-off points (pool barriers when threaded): 2 per
    /// per-cycle step under a coordinating scheduler, 1 per per-cycle step
    /// otherwise, and 1 per multi-cycle epoch window regardless.
    pub barriers: u64,
    /// Multi-cycle epoch windows executed.
    pub windows: u64,
    /// Cycles covered by multi-cycle epoch windows (so
    /// `epoch_cycles / windows` is the mean window length).
    pub epoch_cycles: u64,
}

/// Warn once per process when the resolved simulation thread count exceeds
/// the partition count — extra workers would only spin at every barrier.
/// Same warn-once discipline as the invalid `LDSIM_SIM_THREADS` warning.
fn warn_threads_capped(requested: usize, num_ch: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: {requested} simulation threads requested (--threads / LDSIM_SIM_THREADS) \
             but the machine has only {num_ch} memory partitions; capping at {num_ch}"
        );
    }
}

/// The assembled machine.
pub struct Simulator {
    cfg: SimConfig,
    sms: Vec<Sm>,
    partitions: Vec<Partition>,
    req_xbar: Crossbar<ldsim_types::req::MemRequest>,
    resp_xbar: Crossbar<SmResponse>,
    coord: CoordNetwork,
    zero_div: bool,
    fast_seen: FnvHashSet<WarpGroupId>,
    benchmark: String,
    /// Intra-run partition pool: `None` runs the partition epochs inline
    /// in channel order (the serial reference), `Some` stripes them over
    /// persistent workers with a barrier at every crossbar hand-off —
    /// bit-exact with serial by construction (see DESIGN.md §17). Width
    /// resolves from `cfg.sim_threads`, falling back to the process-wide
    /// `--threads` / `LDSIM_SIM_THREADS` setting, capped at the partition
    /// count; the default is serial.
    pool: Option<BarrierPool>,
    // Scratch buffers reused every cycle.
    sm_out: Vec<ldsim_types::req::MemRequest>,
    room_buf: Vec<usize>,
    // Conservation counters (always on; two u64 increments per event).
    mem_read_requests: u64,
    mem_read_responses: u64,
    /// Requests dropped by a failed crossbar injection. Always zero in a
    /// healthy run — injection sites check free space first — but counted
    /// (not `debug_assert!`ed away) so a release build surfaces the loss as
    /// a hard error instead of silently corrupting results.
    lost_requests: u64,
    /// Warp-group lifecycle events (populated only when `cfg.trace`).
    wg_events: Vec<WgEvent>,
    /// Scratch for [`Crossbar::min_arrival_per_dst`] over the response
    /// crossbar — reused across epoch-window computations.
    resp_arrival_buf: Vec<Option<Cycle>>,
    /// Scratch for per-SM [`Sm::budget_lookahead`] triples, reused by the
    /// epoch window's instruction-budget bound.
    budget_buf: Vec<(u64, u64, u64)>,
    // Synchronization accounting (see [`SyncStats`]).
    sync_barriers: u64,
    epoch_windows: u64,
    epoch_cycles: u64,
}

impl Simulator {
    /// Build a simulator for `kernel` under `cfg`. The number of SMs is
    /// taken from the kernel (one program list per SM); `cfg.gpu.num_sms`
    /// is updated to match.
    pub fn new(mut cfg: SimConfig, kernel: &KernelProgram) -> Self {
        cfg.gpu.num_sms = kernel.programs.len();
        let mapper = AddressMapper::new(&cfg.mem, cfg.gpu.l1.line_bytes);
        let timing = cfg.mem.timing.in_cycles(cfg.clock);
        let merb = MerbTable::from_timing(&cfg.mem.timing, cfg.clock, cfg.mem.banks_per_channel);
        let zero_div = cfg.scheduler == SchedulerKind::ZeroDivergence;

        let sms: Vec<Sm> = kernel
            .programs
            .iter()
            .enumerate()
            .map(|(i, progs)| {
                let mut progs = progs.clone();
                if cfg.perfect_coalescing {
                    // Fig. 4's Perfect Coalescing model: every load/store
                    // collapses to a single line (all lanes read lane 0's
                    // line).
                    for w in &mut progs {
                        for insn in &mut w.insns {
                            match insn {
                                ldsim_types::kernel::Instruction::Load { addrs, .. }
                                | ldsim_types::kernel::Instruction::Store { addrs, .. } => {
                                    let base = addrs[0];
                                    **addrs = [base; 32];
                                }
                                _ => {}
                            }
                        }
                    }
                }
                Sm::new(SmId(i as u16), &cfg.gpu, mapper, progs)
            })
            .collect();

        let partitions: Vec<Partition> = (0..cfg.mem.num_channels)
            .map(|c| {
                let mut ch = Channel::new(&cfg.mem, timing);
                if cfg.audit {
                    ch.enable_audit();
                }
                if cfg.trace {
                    ch.enable_cmd_log();
                }
                let policy = make_policy(cfg.scheduler, &cfg.mem);
                let ctrl = Controller::new(
                    ChannelId(c as u8),
                    &cfg.mem,
                    ch,
                    policy,
                    merb.clone(),
                    zero_div,
                );
                let mut part = Partition::new(
                    ChannelId(c as u8),
                    &cfg.gpu.l2_slice,
                    &cfg.mem,
                    ctrl,
                    cfg.gpu.l2_bypass,
                );
                if cfg.hist {
                    part.enable_hist();
                }
                part
            })
            .collect();

        let num_sms = sms.len();
        let num_ch = partitions.len();
        let requested = match cfg.sim_threads {
            0 => ldsim_util::sim_threads(),
            n => n,
        };
        let threads = requested.min(num_ch);
        if requested > num_ch {
            warn_threads_capped(requested, num_ch);
        }
        let pool = (threads > 1).then(|| BarrierPool::new(threads));
        Self {
            req_xbar: Crossbar::new(num_sms, num_ch, cfg.gpu.xbar_latency, cfg.gpu.xbar_queue),
            resp_xbar: Crossbar::new(
                num_ch,
                num_sms,
                cfg.gpu.xbar_latency,
                cfg.gpu.xbar_queue * 4,
            ),
            coord: CoordNetwork::new(num_ch, cfg.mem.coord_latency),
            zero_div,
            fast_seen: FnvHashSet::default(),
            benchmark: kernel.name.clone(),
            sms,
            partitions,
            cfg,
            pool,
            sm_out: Vec::new(),
            room_buf: Vec::new(),
            mem_read_requests: 0,
            mem_read_responses: 0,
            lost_requests: 0,
            wg_events: Vec::new(),
            resp_arrival_buf: Vec::new(),
            budget_buf: Vec::new(),
            sync_barriers: 0,
            epoch_windows: 0,
            epoch_cycles: 0,
        }
    }

    /// Like [`Self::run`], but also returns every per-load record (for
    /// trace export and offline analysis).
    pub fn run_with_records(self) -> (RunResult, Vec<ldsim_gpu::sm::LoadRecord>) {
        let mut sim = self;
        let (end, finished) = sim.run_core();
        let records: Vec<ldsim_gpu::sm::LoadRecord> = sim
            .sms
            .iter()
            .flat_map(|s| s.records.iter().copied())
            .collect();
        (sim.collect(end, finished), records)
    }

    /// Run to completion (all warps retired) or the cycle limit; collect the
    /// full metric set.
    pub fn run(self) -> RunResult {
        self.run_traced().0
    }

    /// Like [`Self::run`], but also returns the assembled event [`Trace`]
    /// (None unless the config enabled tracing).
    pub fn run_traced(mut self) -> (RunResult, Option<Trace>) {
        let (end, finished) = self.run_core();
        self.collect_full(end, finished)
    }

    /// Like [`Self::run`], but also returns the run's [`SyncStats`] —
    /// barrier/epoch accounting for the perf report and the CI gate. The
    /// `RunResult` is identical to every other flavour's.
    pub fn run_with_sync_stats(mut self) -> (RunResult, SyncStats) {
        let (end, finished) = self.run_core();
        let stats = SyncStats {
            barriers: self.sync_barriers,
            windows: self.epoch_windows,
            epoch_cycles: self.epoch_cycles,
        };
        (self.collect(end, finished), stats)
    }

    /// The main loop, shared by every run flavour. Steps cycle by cycle,
    /// sampling bank activity every 512th *completed* cycle (the first
    /// sample reflects cycle 511, not the trivially-idle cycle 0). When
    /// `cfg.fast_forward` is set, cycles in which no component can make
    /// progress are skipped in one jump to the event horizon — bit-exact
    /// with the reference loop because every per-cycle side effect of an
    /// idle tick (crossbar round-robin rotation, SM port/idle counters,
    /// activity-sample cadence) is replayed in closed form by the
    /// components' `skip` hooks.
    fn run_core(&mut self) -> (Cycle, bool) {
        let mut now: Cycle = 0;
        let mut finished = false;
        let limit = self.cfg.instruction_limit.unwrap_or(u64::MAX);
        let fast_forward = self.cfg.fast_forward;
        // Multi-cycle epochs engage only when the partition pool exists
        // (threads > 1 — serial stays the per-cycle reference), isn't
        // forced per-cycle by `epoch_max = 1`, and the scheduler isn't
        // ZeroDivergence (its global first-arrival set is fed in
        // cross-partition delivery order, which a free-run can't replay).
        let epochs_on = self.pool.is_some() && self.cfg.epoch_max != 1 && !self.zero_div;
        while now < self.cfg.max_cycles {
            let w = if epochs_on {
                self.epoch_window(now, limit)
            } else {
                1
            };
            if w <= 1 {
                self.step(now);
                if (now + 1).is_multiple_of(512) {
                    for p in &mut self.partitions {
                        p.sample_activity();
                    }
                }
            } else {
                // Covers cycles [now, now + w); the partitions sample their
                // own activity cadence inside the free-run. Leave `now` at
                // the window's last cycle so the exit checks below see the
                // same cycle number the per-cycle loop would have exited
                // at — the window bounds guarantee neither check could
                // have fired earlier in the window.
                self.run_epoch(now, now + w);
                now += w - 1;
            }
            if self.sms.iter().all(|s| s.done()) {
                finished = true;
                break;
            }
            if self.sms.iter().map(|s| s.retired).sum::<u64>() >= limit {
                finished = true;
                break;
            }
            now += 1;
            if fast_forward {
                let target = self
                    .horizon(now)
                    .map_or(self.cfg.max_cycles, |h| h.min(self.cfg.max_cycles));
                if target > now {
                    self.skip_idle_cycles(now, target);
                    now = target;
                }
            }
        }
        (now.max(1), finished)
    }

    /// The event horizon: the earliest cycle ≥ `now` at which any component
    /// can change state. `None` means no component will ever act again
    /// without outside input (the machine is drained or wedged). Components
    /// may report conservatively-early horizons — the loop simply steps and
    /// asks again — but never later than their true next event.
    fn horizon(&self, now: Cycle) -> Option<Cycle> {
        let mut ev: Option<Cycle> = None;
        // A component pinned at `now` forbids any skip, so bail out the
        // moment one reports it — while the machine is busy this makes the
        // horizon poll O(first busy component) instead of O(machine).
        // Cheapest/most-often-pinned components go first.
        macro_rules! merge {
            ($c:expr) => {
                if let Some(c) = $c {
                    if c <= now {
                        return Some(now);
                    }
                    ev = Some(ev.map_or(c, |e: Cycle| e.min(c)));
                }
            };
        }
        merge!(self.req_xbar.next_event(now));
        merge!(self.resp_xbar.next_event(now));
        if self.cfg.scheduler.coordinates() {
            merge!(self.coord.next_event(now));
        }
        for p in &self.partitions {
            merge!(p.next_event(now));
        }
        for sm in &self.sms {
            merge!(sm.next_event(now));
        }
        ev
    }

    /// Replay the deterministic per-cycle side effects of the skipped
    /// cycles `[now, target)` so downstream behaviour is bit-exact with
    /// having ticked each one.
    fn skip_idle_cycles(&mut self, now: Cycle, target: Cycle) {
        let delta = target - now;
        for sm in &mut self.sms {
            sm.skip(now, target);
        }
        self.req_xbar.skip(delta);
        self.resp_xbar.skip(delta);
        // Activity samples land after the step of every cycle c with
        // (c + 1) % 512 == 0; the skipped range contains
        // target/512 - now/512 of them, all observing the same (frozen)
        // bank state.
        let samples = target / 512 - now / 512;
        if samples > 0 {
            for p in &mut self.partitions {
                p.sample_activity_many(samples);
            }
        }
    }

    /// Run `f` over every partition: inline in channel order when serial,
    /// striped over the barrier pool when threaded. Both orders commit the
    /// same per-partition state because `f` touches only the partition it
    /// is handed — anything hub-bound is staged in partition-owned buffers
    /// and merged in channel order after the barrier.
    fn each_partition(&mut self, f: impl Fn(&mut Partition) + Sync) {
        match &self.pool {
            Some(pool) => pool.run_disjoint(&mut self.partitions, |_, p| f(p)),
            None => self.partitions.iter_mut().for_each(f),
        }
    }

    /// The conservative multi-cycle window `W`: partitions may free-run
    /// cycles `[now, now + W)` between barriers because no cross-component
    /// interaction that isn't already committed can land inside the window
    /// (DESIGN.md §18). The bounds, in order:
    ///
    /// * **Crossbar lookahead** — a request granted at cycle `c ≥ now`
    ///   arrives at `c + xbar_latency ≥ now + W` for any
    ///   `W ≤ xbar_latency`; grants committed *before* the window are
    ///   pre-distributed at the opening barrier, so they don't bound `W`.
    /// * **Coordination lookahead** — under a coordinating scheduler a
    ///   message emitted mid-window at `c` delivers at
    ///   `c + coord_latency ≥ now + W` for `W ≤ coord_latency`;
    ///   pre-window broadcasts are pre-distributed likewise.
    /// * **`epoch_max`** — the config cap (0 = auto).
    /// * **Run-exit lookahead** — the cycle-limit, instruction-budget and
    ///   all-warps-done checks fire at end of cycle in the per-cycle loop;
    ///   `W` is clamped so none of them could have fired strictly inside
    ///   the window, making the end-of-window check equivalent.
    fn epoch_window(&mut self, now: Cycle, limit: u64) -> Cycle {
        let mut w = self.cfg.gpu.xbar_latency;
        if self.cfg.epoch_max > 1 {
            w = w.min(self.cfg.epoch_max);
        }
        if self.cfg.scheduler.coordinates() {
            w = w.min(self.cfg.mem.coord_latency);
        }
        w = w.min(self.cfg.max_cycles - now);
        if w <= 1 {
            return 1;
        }
        if limit != u64::MAX {
            // The budget check cannot fire inside a span of `s` cycles
            // while `retired + max_retire(s) < limit`, with `max_retire`
            // summing each SM's tighter ceiling — issue port vs warp
            // occupancy (see [`Sm::budget_lookahead`]).
            let retired: u64 = self.sms.iter().map(|s| s.retired).sum();
            debug_assert!(retired < limit, "run_core would have exited");
            let avail = limit - retired - 1;
            self.budget_buf.clear();
            self.budget_buf
                .extend(self.sms.iter().map(|s| s.budget_lookahead()));
            let max_retire = |s: u64| -> u64 {
                self.budget_buf
                    .iter()
                    .map(|&(live, overhang, heaviest)| (s * heaviest).min(s * live + overhang))
                    .sum()
            };
            if max_retire(w) > avail {
                if max_retire(1) > avail {
                    return 1;
                }
                // `max_retire` is monotone in `s`: binary-search the widest
                // safe span in (1, w).
                let (mut lo, mut hi) = (1u64, w);
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    if max_retire(mid) <= avail {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                w = lo;
            }
            if w <= 1 {
                return 1;
            }
        }
        // The all-done exit needs *every* SM done, so it is bounded below
        // by the slowest SM's earliest possible completion. Two lower
        // bounds per live SM, of which the larger applies:
        //
        // * it still owes `max_remaining_insns` issues at one per cycle;
        // * a warp blocked on memory cannot even wake before a response
        //   crossbar delivery reaches the SM, and within the window only
        //   fills *already in flight* can arrive (anything injected at
        //   `c ≥ now` lands at `c + xbar_latency ≥ now + W`). No fill in
        //   flight at all ⟹ the SM cannot finish inside any `W` we would
        //   pick here, so the cap `w` stands.
        //
        // The second bound is what keeps windows wide across the drain
        // tail, where warps sit on their last outstanding loads with
        // `rem ≈ 0` for hundreds of cycles (DESIGN.md §18).
        self.resp_xbar
            .min_arrival_per_dst(&mut self.resp_arrival_buf);
        let mut bound = 0u64;
        for (i, sm) in self.sms.iter().enumerate() {
            if sm.done() {
                continue;
            }
            let mut d = sm.max_remaining_insns(w);
            if d < w && sm.has_mem_blocked_warp() {
                let fill = match self.resp_arrival_buf[i] {
                    Some(arrive) => arrive.saturating_sub(now),
                    None => w,
                };
                d = d.max(fill);
            }
            bound = bound.max(d);
            if bound >= w {
                return w;
            }
        }
        bound.max(1)
    }

    /// Run the multi-cycle conservative epoch `[now, end)` (DESIGN.md §18):
    /// pre-distribute every cross-partition delivery committed before the
    /// window, free-run all partitions across the whole window in a single
    /// pool hand-off, then replay the hub (SMs, crossbars, coordination)
    /// serially cycle by cycle, merging the staged per-partition results in
    /// exactly the serial loop's order.
    fn run_epoch(&mut self, now: Cycle, end: Cycle) {
        let trace_on = self.cfg.trace;
        let coordinating = self.cfg.scheduler.coordinates();
        self.sync_barriers += 1;
        self.epoch_windows += 1;
        self.epoch_cycles += end - now;
        // --- opening barrier: pre-distribute committed deliveries ---
        // Crossbar payloads due inside the window were all granted before
        // it opened (flight order = grant order), so their contents are
        // known here; only the exact delivery cycle under input
        // back-pressure is not, and that is destination-local, so each
        // partition replays its own. The global grant sequence number lets
        // the closing merge reconstruct the serial delivery order.
        {
            let partitions = &mut self.partitions;
            let mut seq = 0u64;
            self.req_xbar
                .drain_arrivals_before(end, |arrive, dst, req| {
                    partitions[dst].epoch_arrivals.push_back((arrive, seq, req));
                    seq += 1;
                });
            if coordinating {
                self.coord.drain_due_before(end, |deliver_at, dst, msg| {
                    partitions[dst].epoch_coord_in.push_back((deliver_at, msg));
                });
            }
        }
        // --- free-run: one barrier for the whole window ---
        self.each_partition(|p| p.free_run(now, end, coordinating, trace_on));
        // --- hub replay: serial, cycle-exact ---
        for c in now..end {
            if coordinating {
                // Broadcast the coordination messages the controllers
                // emitted at cycle `c`, in channel order — the serial
                // loop's phase-B position and order.
                for (i, p) in self.partitions.iter_mut().enumerate() {
                    while let Some(&(tag, _)) = p.epoch_coord.front() {
                        if tag > c {
                            break;
                        }
                        let (tag, m) = p.epoch_coord.pop_front().unwrap();
                        self.coord.broadcast(i, m, tag);
                    }
                }
                // W ≤ coord_latency: nothing broadcast before the window
                // (pre-distributed) or during it (lands ≥ end) can deliver
                // at `c`.
                debug_assert!(self.coord.next_event(c).is_none_or(|d| d > c));
            }
            if trace_on {
                // Serve events staged at cycle `c`, in channel order.
                for p in &mut self.partitions {
                    while let Some(&(tag, _)) = p.epoch_events.front() {
                        if tag > c {
                            break;
                        }
                        let (_, e) = p.epoch_events.pop_front().unwrap();
                        self.wg_events.push(e);
                    }
                }
            }
            // This cycle's read deliveries, merged across partitions by
            // global grant sequence — the flight queue is always a
            // grant-order subsequence, so within a cycle the serial loop
            // delivers in ascending seq.
            loop {
                let mut best: Option<(usize, u64)> = None;
                for (i, p) in self.partitions.iter().enumerate() {
                    if let Some(&(tag, seq, _)) = p.epoch_arrive_log.front() {
                        if tag == c && best.is_none_or(|(_, bs)| seq < bs) {
                            best = Some((i, seq));
                        }
                    }
                }
                let Some((i, _)) = best else { break };
                let (_, _, wg) = self.partitions[i].epoch_arrive_log.pop_front().unwrap();
                self.mem_read_requests += 1;
                if trace_on {
                    self.wg_events.push(WgEvent {
                        cycle: c,
                        wg,
                        channel: i as u8,
                        stage: WgStage::Arrive,
                    });
                }
            }
            // Partition -> response crossbar: entries staged at or before
            // `c` (later-staged entries wait for their cycle).
            for (pi, p) in self.partitions.iter_mut().enumerate() {
                while let Some(&(tag, sm, _)) = p.to_sm.front() {
                    if tag > c || self.resp_xbar.free_space(pi) == 0 {
                        break;
                    }
                    let (_, _, resp) = p.to_sm.pop_front().unwrap();
                    if !self.resp_xbar.inject(pi, sm, resp) {
                        self.lost_requests += 1;
                    }
                }
            }
            // Response crossbar -> SMs (SMs always accept fills).
            let sms = &mut self.sms;
            let resp_count = &mut self.mem_read_responses;
            self.resp_xbar.tick(
                c,
                |_| true,
                |sm, resp| {
                    *resp_count += 1;
                    sms[sm].accept_response(resp, c);
                },
            );
            // SMs issue.
            for (si, sm) in self.sms.iter_mut().enumerate() {
                self.sm_out.clear();
                let free = self.req_xbar.free_space(si);
                sm.tick(c, free, &mut self.sm_out);
                for r in self.sm_out.drain(..) {
                    let dst = r.decoded.channel.0 as usize;
                    if !self.req_xbar.inject(si, dst, r) {
                        self.lost_requests += 1;
                    }
                }
            }
            // Request crossbar: grants and arbitration only — every
            // delivery due inside the window was pre-distributed, and
            // W ≤ xbar_latency keeps in-window grants from arriving
            // before `end`.
            self.req_xbar.tick(
                c,
                |_| unreachable!("epoch window leaked a request-crossbar delivery"),
                |_, _| unreachable!("epoch window leaked a request-crossbar delivery"),
            );
        }
        // --- closing: re-inject arrivals the window closed on (input full
        // through `end`) so the next window pre-distributes them again.
        // Reverse grant order restores the flight queue's grant order in
        // front of anything granted during the replay. ---
        let mut leftovers: Vec<(Cycle, u64, ldsim_types::req::MemRequest)> = Vec::new();
        for p in &mut self.partitions {
            while let Some(x) = p.epoch_arrivals.pop_front() {
                leftovers.push(x);
            }
            debug_assert!(p.epoch_coord_in.is_empty());
            debug_assert!(p.epoch_coord.is_empty());
            debug_assert!(p.epoch_events.is_empty());
            debug_assert!(p.epoch_arrive_log.is_empty());
        }
        leftovers.sort_unstable_by_key(|&(_, seq, _)| std::cmp::Reverse(seq));
        for (arrive, _, req) in leftovers {
            let dst = req.decoded.channel.0 as usize;
            self.req_xbar.requeue_front(arrive, dst, req);
        }
    }

    /// Advance the machine one cycle.
    ///
    /// The cycle opens with the partition epoch — the only work the
    /// intra-run pool parallelizes. Between two crossbar hand-off points a
    /// partition's evolution depends only on its own state, so partitions
    /// step concurrently and rejoin at a barrier before the hub (crossbars,
    /// coordination network, SMs) runs serially, exactly as in the
    /// reference loop.
    pub fn step(&mut self, now: Cycle) {
        let trace_on = self.cfg.trace;
        self.sync_barriers += if self.cfg.scheduler.coordinates() {
            2
        } else {
            1
        };
        // --- partition epoch: memory controllers + L2 slices ---
        if self.cfg.scheduler.coordinates() {
            // The coordination network (WG-M family) couples partitions
            // mid-cycle, so the epoch splits in two at the hub: controllers
            // tick (staging outbound messages per partition), the hub
            // broadcasts in channel order and delivers — landing *after*
            // every controller's tick, as the committed semantics require —
            // then the serve/L2 phase runs.
            self.each_partition(|p| p.epoch_ctrl_tick(now, true));
            for (i, p) in self.partitions.iter_mut().enumerate() {
                for (tag, m) in p.epoch_coord.drain(..) {
                    debug_assert_eq!(tag, now, "per-cycle step saw a stale staged message");
                    self.coord.broadcast(i, m, now);
                }
            }
            let partitions = &mut self.partitions;
            self.coord.deliver(now, |dst, msg| {
                partitions[dst].ctrl.deliver_coord(msg, now);
            });
            self.each_partition(|p| p.epoch_serve_and_tick(now, trace_on));
        } else {
            // No cross-partition edge until the crossbars: the whole epoch
            // is one fused phase per partition.
            self.each_partition(|p| {
                p.epoch_ctrl_tick(now, false);
                p.epoch_serve_and_tick(now, trace_on);
            });
        }
        if trace_on {
            // Merge staged Serve events in channel-id order — the same
            // order the serial loop emits them in.
            for p in &mut self.partitions {
                self.wg_events
                    .extend(p.epoch_events.drain(..).map(|(_, e)| e));
            }
        }
        // Partition -> response crossbar. Tags can lag `now` (entries a
        // full crossbar left queued, or staged by an earlier epoch window)
        // but never lead it.
        for (pi, p) in self.partitions.iter_mut().enumerate() {
            while let Some(&(tag, sm, _)) = p.to_sm.front() {
                debug_assert!(tag <= now);
                if self.resp_xbar.free_space(pi) == 0 {
                    break;
                }
                let (_, _, resp) = p.to_sm.pop_front().unwrap();
                if !self.resp_xbar.inject(pi, sm, resp) {
                    self.lost_requests += 1;
                }
            }
        }
        // Response crossbar -> SMs (SMs always accept fills).
        let sms = &mut self.sms;
        let resp_count = &mut self.mem_read_responses;
        self.resp_xbar.tick(
            now,
            |_| true,
            |sm, resp| {
                *resp_count += 1;
                sms[sm].accept_response(resp, now);
            },
        );
        // SMs issue.
        for (si, sm) in self.sms.iter_mut().enumerate() {
            self.sm_out.clear();
            let free = self.req_xbar.free_space(si);
            sm.tick(now, free, &mut self.sm_out);
            for r in self.sm_out.drain(..) {
                let dst = r.decoded.channel.0 as usize;
                if !self.req_xbar.inject(si, dst, r) {
                    self.lost_requests += 1;
                }
            }
        }
        // Request crossbar -> partitions. In the zero-divergence ideal
        // model, the first request of each warp-group to arrive anywhere is
        // the group's "one real request"; every later sibling bypasses bank
        // timing (Fig. 4's model).
        let zero_div = self.zero_div;
        let fast_seen = &mut self.fast_seen;
        // Snapshot per-partition input room (reused buffer — this runs every
        // cycle); the acceptance closure draws it down as deliveries are
        // granted within this tick.
        self.room_buf.clear();
        self.room_buf
            .extend(self.partitions.iter().map(|p| p.input_room()));
        let room = &mut self.room_buf;
        let partitions = &mut self.partitions;
        let req_count = &mut self.mem_read_requests;
        let wg_events = &mut self.wg_events;
        self.req_xbar.tick(
            now,
            |dst| {
                if room[dst] > 0 {
                    room[dst] -= 1;
                    true
                } else {
                    false
                }
            },
            |dst, req| {
                if req.kind == ldsim_types::req::ReqKind::Read {
                    *req_count += 1;
                    if trace_on {
                        wg_events.push(WgEvent {
                            cycle: now,
                            wg: req.wg,
                            channel: dst as u8,
                            stage: WgStage::Arrive,
                        });
                    }
                }
                if zero_div
                    && req.kind == ldsim_types::req::ReqKind::Read
                    && !fast_seen.insert(req.wg)
                {
                    partitions[dst].ctrl.fast_track_group(req.wg, now);
                }
                partitions[dst].accept(req);
            },
        );
    }

    /// Test-only fault injection: stuff the request crossbar's source-0
    /// FIFO to capacity and push one request past it, exercising the
    /// lost-request accounting that guards against silent drops.
    #[doc(hidden)]
    pub fn inject_fault_xbar_overflow(&mut self) {
        let mapper = AddressMapper::new(&self.cfg.mem, self.cfg.gpu.l1.line_bytes);
        let mk = |n: u64| {
            let decoded = mapper.decode(0);
            ldsim_types::req::MemRequest {
                id: ldsim_types::ids::RequestId(0xF000_0000_0000_0000 | n),
                kind: ldsim_types::req::ReqKind::Write,
                line_addr: 0,
                decoded,
                wg: WarpGroupId::new(ldsim_types::ids::GlobalWarpId::new(0, 0), u32::MAX),
                last_of_group: true,
                group_size_on_channel: 1,
                issue_cycle: 0,
                arrival_cycle: 0,
            }
        };
        let dst = mapper.decode(0).channel.0 as usize;
        let mut n = 0u64;
        while self.req_xbar.free_space(0) > 0 {
            n += 1;
            let r = mk(n);
            assert!(self.req_xbar.inject(0, dst, r));
        }
        if !self.req_xbar.inject(0, dst, mk(n + 1)) {
            self.lost_requests += 1;
        }
    }

    fn collect(self, cycles: Cycle, finished: bool) -> RunResult {
        self.collect_full(cycles, finished).0
    }

    fn collect_full(mut self, cycles: Cycle, finished: bool) -> (RunResult, Option<Trace>) {
        // Audit tallies and command logs come out of the channels first (the
        // rest of collection only reads).
        let mut audit_commands = 0u64;
        let mut audit_violations = 0u64;
        let mut channel_cmds = Vec::new();
        for p in &mut self.partitions {
            audit_commands += p.ctrl.channel.audit_observed();
            audit_violations += p.ctrl.channel.audit_violation_count();
            if self.cfg.trace {
                channel_cmds.push(p.ctrl.channel.take_cmd_log());
            }
            // Rows still open at end of run never saw their closing PRE;
            // record their streaks now, before the read-only stats pass.
            p.ctrl.channel.flush_streak_hist();
        }
        let scheduler_name = if self.cfg.perfect_coalescing {
            format!("{}+PerfectCoalesce", self.cfg.scheduler.name())
        } else {
            self.cfg.scheduler.name().to_string()
        };
        let trace = if self.cfg.trace {
            Some(Trace {
                benchmark: self.benchmark.clone(),
                scheduler: scheduler_name.clone(),
                channel_cmds,
                wg_events: std::mem::take(&mut self.wg_events),
                loads: self
                    .sms
                    .iter()
                    .flat_map(|s| s.records.iter().copied())
                    .collect(),
            })
        } else {
            None
        };
        let trace_hash = trace.as_ref().map(|t| t.stable_hash());

        let mut agg = LoadAgg::new();
        // Retired-instruction total, clamped to the instruction budget: the
        // loop detects budget exhaustion at end-of-cycle, so the raw sum
        // overshoots by however many instructions retired in the final
        // cycle — an amount that varies per scheduler. Under the paper's
        // fixed-budget methodology every scheduler must be measured over
        // the *same* instruction count, so the overshoot is trimmed here
        // (the cycle count still includes the final cycle for all of them).
        let budget = self.cfg.instruction_limit.unwrap_or(u64::MAX);
        let mut instructions = 0u64;
        let mut l1_hits = 0u64;
        let mut l1_total = 0u64;
        let mut port_busy = 0u64;
        let mut mem_idle = 0u64;
        for sm in &self.sms {
            instructions += sm.retired;
            port_busy += sm.port_busy_cycles;
            mem_idle += sm.mem_idle_cycles;
            for r in &sm.records {
                agg.add(r);
            }
            let s = sm.l1_stats();
            l1_hits += s.hits;
            l1_total += s.hits + s.misses;
        }

        let timing = self.cfg.mem.timing.in_cycles(self.cfg.clock);
        let power_model = PowerModel {
            params: PowerParams::default(),
            clk: self.cfg.clock,
            t_rc: timing.t_rc,
            t_burst: timing.t_burst,
        };
        let mut bw = 0.0;
        let mut hits = 0u64;
        let mut cols = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut power = 0.0;
        let mut l2_hits = 0u64;
        let mut l2_total = 0u64;
        let mut drains = 0u64;
        let mut stalled = 0u64;
        let mut stalled_unit = 0u64;
        let mut stalled_orphan = 0u64;
        let mut counters = [0u64; 4];
        for p in &self.partitions {
            for (i, c) in p.ctrl.policy_counters().iter().enumerate() {
                counters[i] += c;
            }
            let cs = &p.ctrl.channel.stats;
            bw += cs.utilization(cycles.max(1));
            hits += cs.row_hits();
            cols += cs.reads + cs.writes;
            reads += cs.reads + cs.fast_reads;
            writes += cs.writes;
            power += power_model
                .evaluate(cs, cycles.max(1), p.active_fraction())
                .total_w();
            let l2 = p.l2.stats;
            l2_hits += l2.hits;
            l2_total += l2.hits + l2.misses;
            drains += p.ctrl.stats.drains;
            stalled += p.ctrl.stats.drain_stalled_groups;
            stalled_unit += p.ctrl.stats.drain_stalled_unit;
            stalled_orphan += p.ctrl.stats.drain_stalled_orphan;
        }
        let nch = self.partitions.len() as f64;

        let hists = if self.cfg.hist {
            let mut h = RunHists::new();
            h.dram_gap = agg.gap_hist.clone();
            h.effective_latency = agg.eff_hist.clone();
            for p in &self.partitions {
                if let Some(x) = p.ctrl.depth_hist() {
                    h.bank_queue_depth.merge(x);
                }
                if let Some(x) = p.ctrl.channel.streak_hist() {
                    h.row_hit_streak.merge(x);
                }
                if let Some(x) = p.ctrl.merb_occ_hist() {
                    h.merb_occupancy.merge(x);
                }
                if let Some(x) = p.depth_hist() {
                    h.read_queue_depth.merge(x);
                }
            }
            Some(Box::new(h))
        } else {
            None
        };

        let result = RunResult {
            benchmark: self.benchmark,
            scheduler: scheduler_name,
            finished,
            cycles,
            instructions: instructions.min(budget),
            loads: agg.loads,
            divergent_loads: agg.divergent,
            avg_reqs_per_load: agg.avg_reqs_per_load(),
            avg_dram_gap: agg.avg_gap(),
            last_first_ratio: agg.avg_ratio(),
            avg_channels_touched: agg.avg_channels(),
            avg_banks_touched: agg.avg_banks(),
            same_row_frac: agg.same_row_frac(),
            avg_effective_latency: agg.avg_eff(),
            gap_p50: agg.gap_hist.quantile(0.5),
            gap_p90: agg.gap_hist.quantile(0.9),
            gap_p99: agg.gap_hist.quantile(0.99),
            eff_p50: agg.eff_hist.quantile(0.5),
            eff_p90: agg.eff_hist.quantile(0.9),
            eff_p99: agg.eff_hist.quantile(0.99),
            bw_utilization: bw / nch,
            row_hit_rate: if cols == 0 {
                0.0
            } else {
                hits as f64 / cols as f64
            },
            dram_power_w: power,
            write_intensity: if reads + writes == 0 {
                0.0
            } else {
                writes as f64 / (reads + writes) as f64
            },
            drains,
            drain_stalled_groups: stalled,
            drain_stalled_unit: stalled_unit,
            drain_stalled_orphan: stalled_orphan,
            l1_hit_rate: if l1_total == 0 {
                0.0
            } else {
                l1_hits as f64 / l1_total as f64
            },
            l2_hit_rate: if l2_total == 0 {
                0.0
            } else {
                l2_hits as f64 / l2_total as f64
            },
            dram_reads: reads,
            dram_writes: writes,
            sm_port_busy_frac: port_busy as f64 / (cycles.max(1) as f64 * self.sms.len() as f64),
            sm_mem_idle_frac: mem_idle as f64 / (cycles.max(1) as f64 * self.sms.len() as f64),
            policy_counters: counters,
            audit_commands,
            audit_violations,
            mem_read_requests: self.mem_read_requests,
            mem_read_responses: self.mem_read_responses,
            dropped_requests: self.lost_requests,
            trace_hash,
            hists,
        };
        (result, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::ids::LaneMask;
    use ldsim_types::kernel::{Instruction, WarpProgram};

    fn tiny_kernel(lines_per_load: usize, loads: usize) -> KernelProgram {
        let mut programs = Vec::new();
        for sm in 0..2 {
            let mut per_sm = Vec::new();
            for w in 0..2 {
                let mut insns = Vec::new();
                for i in 0..loads {
                    let mut addrs = [0u64; 32];
                    for (l, a) in addrs.iter_mut().enumerate() {
                        let cluster = l * lines_per_load / 32;
                        *a = ((sm * 97 + w * 31 + i * 13 + cluster) as u64) * 4096 + 128 * 7;
                    }
                    insns.push(Instruction::Load {
                        addrs: Box::new(addrs),
                        mask: LaneMask::ALL,
                    });
                    insns.push(Instruction::Compute(4));
                }
                per_sm.push(WarpProgram::new(insns));
            }
            programs.push(per_sm);
        }
        KernelProgram {
            name: "tiny".into(),
            programs,
        }
    }

    #[test]
    fn runs_to_completion_and_counts() {
        let kernel = tiny_kernel(4, 6);
        let cfg = SimConfig {
            max_cycles: 2_000_000,
            ..SimConfig::default()
        };
        let r = Simulator::new(cfg, &kernel).run();
        assert!(r.finished, "simulation should finish");
        assert_eq!(r.loads, 2 * 2 * 6);
        assert_eq!(r.instructions, kernel.total_instructions());
        assert!(r.ipc() > 0.0);
        assert!(r.avg_reqs_per_load >= 1.0);
    }

    #[test]
    fn all_schedulers_complete_same_kernel() {
        let kernel = tiny_kernel(4, 4);
        for k in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::Gmc,
            SchedulerKind::Wafcfs,
            SchedulerKind::Sbwas { alpha_q: 2 },
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
            SchedulerKind::ZeroDivergence,
        ] {
            let cfg = SimConfig {
                max_cycles: 4_000_000,
                ..SimConfig::default()
            }
            .with_scheduler(k);
            let r = Simulator::new(cfg, &kernel).run();
            assert!(r.finished, "{k:?} did not finish");
            assert_eq!(r.instructions, kernel.total_instructions(), "{k:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let kernel = tiny_kernel(3, 5);
        let cfg = SimConfig::default();
        let a = Simulator::new(cfg.clone(), &kernel).run();
        let b = Simulator::new(cfg, &kernel).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.dram_reads, b.dram_reads);
    }

    #[test]
    fn perfect_coalescing_reduces_requests() {
        let kernel = tiny_kernel(8, 5);
        let base = Simulator::new(SimConfig::default(), &kernel).run();
        let cfg = SimConfig {
            perfect_coalescing: true,
            ..SimConfig::default()
        };
        let pc = Simulator::new(cfg, &kernel).run();
        assert!(pc.avg_reqs_per_load <= 1.01);
        assert!(base.avg_reqs_per_load > 2.0);
        assert!(pc.cycles < base.cycles, "perfect coalescing must speed up");
    }

    #[test]
    fn fast_forward_is_bit_exact_with_reference_loop() {
        let kernel = tiny_kernel(6, 5);
        for k in [
            SchedulerKind::Gmc,
            SchedulerKind::WgM,
            SchedulerKind::WgW,
            SchedulerKind::ZeroDivergence,
        ] {
            let cfg = SimConfig {
                max_cycles: 4_000_000,
                ..SimConfig::default()
            }
            .with_scheduler(k)
            .with_trace();
            let fast = Simulator::new(cfg.clone(), &kernel).run_traced();
            let slow = Simulator::new(cfg.with_fast_forward(false), &kernel).run_traced();
            assert_eq!(fast.0, slow.0, "{k:?} diverged");
            assert_eq!(
                fast.1.as_ref().map(|t| t.stable_hash()),
                slow.1.as_ref().map(|t| t.stable_hash()),
                "{k:?} trace hash diverged"
            );
            assert!(fast.0.finished);
        }
    }

    #[test]
    fn threaded_partition_epochs_are_bit_exact() {
        // The pool changes execution strategy, not semantics: identical
        // RunResult and trace hash at every width, for both a plain and a
        // coordinating scheduler (the two step topologies). The full
        // 7-scheduler ladder lives in tests/threaded.rs.
        let kernel = tiny_kernel(6, 5);
        for k in [SchedulerKind::Gmc, SchedulerKind::WgW] {
            let cfg = SimConfig {
                max_cycles: 4_000_000,
                ..SimConfig::default()
            }
            .with_scheduler(k)
            .with_trace();
            let serial = Simulator::new(cfg.clone().with_sim_threads(1), &kernel).run_traced();
            for threads in [2, 6] {
                let t = Simulator::new(cfg.clone().with_sim_threads(threads), &kernel).run_traced();
                assert_eq!(t.0, serial.0, "{k:?} @ {threads} threads diverged");
                assert_eq!(
                    t.1.as_ref().map(|t| t.stable_hash()),
                    serial.1.as_ref().map(|t| t.stable_hash()),
                    "{k:?} @ {threads} threads: trace hash diverged"
                );
            }
        }
    }

    #[test]
    fn epoch_windows_amortize_barriers_and_stay_bit_exact() {
        // Programs long enough that the run-exit lookahead doesn't cap the
        // window below the crossbar/coordination bounds.
        let kernel = tiny_kernel(6, 24);
        let mk = |k: SchedulerKind| {
            SimConfig {
                max_cycles: 4_000_000,
                ..SimConfig::default()
            }
            .with_scheduler(k)
            .with_trace()
            .with_sim_threads(2)
        };
        // Non-coordinating: the window bound is the crossbar latency, so
        // barriers shrink by an order of magnitude or more.
        let cfg = mk(SchedulerKind::Gmc);
        let (r, s) = Simulator::new(cfg.clone(), &kernel).run_with_sync_stats();
        let (rb, sb) = Simulator::new(cfg.clone().with_epoch_max(1), &kernel).run_with_sync_stats();
        assert_eq!(r, rb, "window size must never change results");
        assert_eq!(sb.windows, 0, "epoch_max = 1 forces the per-cycle cadence");
        assert!(s.windows > 0, "auto epochs must engage multi-cycle windows");
        assert!(
            s.epoch_cycles / s.windows <= cfg.gpu.xbar_latency,
            "mean window {} exceeds the crossbar lookahead",
            s.epoch_cycles / s.windows
        );
        assert!(
            sb.barriers >= 10 * s.barriers,
            "barriers: per-cycle {} vs epoch {}",
            sb.barriers,
            s.barriers
        );
        // An explicit cap bounds the window without changing results.
        let (rc, sc) = Simulator::new(cfg.clone().with_epoch_max(4), &kernel).run_with_sync_stats();
        assert_eq!(rc, r, "epoch_max cap changed results");
        assert!(sc.windows > 0 && sc.epoch_cycles / sc.windows <= 4);

        // Coordinating: the window is additionally bounded by coord_latency
        // (4), so the ceiling is 2 barriers/cycle -> 1 per 4 cycles = 8x;
        // assert the >= 4x the CI gate uses.
        let cfg = mk(SchedulerKind::WgW);
        let (r, s) = Simulator::new(cfg.clone(), &kernel).run_with_sync_stats();
        let (rb, sb) = Simulator::new(cfg.clone().with_epoch_max(1), &kernel).run_with_sync_stats();
        assert_eq!(r, rb, "WgW window size must never change results");
        assert!(
            s.epoch_cycles / s.windows.max(1) <= cfg.mem.coord_latency,
            "coordinating window exceeds the coordination lookahead"
        );
        assert!(
            sb.barriers >= 4 * s.barriers,
            "WgW barriers: per-cycle {} vs epoch {}",
            sb.barriers,
            s.barriers
        );
    }

    #[test]
    fn serial_runs_never_use_epoch_windows() {
        // threads = 1 stays the pure per-cycle reference loop even with
        // epochs nominally enabled (epoch_max = 0 auto).
        let kernel = tiny_kernel(4, 6);
        let cfg = SimConfig {
            max_cycles: 2_000_000,
            ..SimConfig::default()
        }
        .with_sim_threads(1);
        let (r, s) = Simulator::new(cfg, &kernel).run_with_sync_stats();
        assert!(r.finished);
        assert_eq!(s.windows, 0);
        assert_eq!(s.epoch_cycles, 0);
    }

    #[test]
    fn zero_divergence_disables_epoch_windows() {
        // The global first-arrival set is fed in cross-partition delivery
        // order, which a partition-local free-run cannot replay.
        let kernel = tiny_kernel(6, 8);
        let cfg = SimConfig {
            max_cycles: 2_000_000,
            ..SimConfig::default()
        }
        .with_scheduler(SchedulerKind::ZeroDivergence)
        .with_sim_threads(2);
        let (r, s) = Simulator::new(cfg.clone(), &kernel).run_with_sync_stats();
        assert!(r.finished);
        assert_eq!(s.windows, 0, "zero-div must stay per-cycle");
        let serial = Simulator::new(cfg.with_sim_threads(1), &kernel).run();
        assert_eq!(r, serial);
    }

    #[test]
    fn activity_sampling_skips_trivially_idle_cycle_zero() {
        // A kernel that finishes in well under 512 cycles must record zero
        // activity samples: the old pre-step check always took a sample at
        // cycle 0, biasing active_fraction toward idle.
        let kernel = KernelProgram {
            name: "blink".into(),
            programs: vec![vec![WarpProgram::new(vec![Instruction::Compute(5)])]],
        };
        let mut sim = Simulator::new(SimConfig::default(), &kernel);
        let (end, finished) = sim.run_core();
        assert!(finished);
        assert!(end < 512);
        for p in &sim.partitions {
            assert_eq!(p.total_samples, 0, "no 512-cycle boundary was crossed");
        }
    }

    #[test]
    fn sampling_cadence_is_preserved_under_fast_forward() {
        // Long memory-bound kernel: both loops must take the same number of
        // samples and agree on the active fraction.
        let kernel = tiny_kernel(16, 24);
        let cfg = SimConfig {
            max_cycles: 4_000_000,
            ..SimConfig::default()
        };
        let mut fast = Simulator::new(cfg.clone(), &kernel);
        let (end_f, _) = fast.run_core();
        let mut slow = Simulator::new(cfg.with_fast_forward(false), &kernel);
        let (end_s, _) = slow.run_core();
        assert_eq!(end_f, end_s);
        assert!(end_f > 1024, "kernel too short to exercise sampling");
        for (f, s) in fast.partitions.iter().zip(&slow.partitions) {
            assert_eq!(f.total_samples, s.total_samples);
            assert_eq!(f.active_samples, s.active_samples);
            // One sample per completed 512-cycle window (cycles 511, 1023, …).
            assert_eq!(f.total_samples, (end_f + 1) / 512);
        }
    }

    #[test]
    fn armed_histograms_are_neutral_and_populated() {
        // Arming the recorders must not change a single bit of the run
        // (same trace hash, same counters), only attach the distributions.
        let kernel = tiny_kernel(16, 24);
        let cfg = SimConfig {
            max_cycles: 4_000_000,
            ..SimConfig::default()
        }
        .with_trace();
        let (off, off_trace) = Simulator::new(cfg.clone(), &kernel).run_traced();
        let (on, on_trace) = Simulator::new(cfg.with_hist(), &kernel).run_traced();
        assert_eq!(
            off_trace.map(|t| t.stable_hash()),
            on_trace.map(|t| t.stable_hash()),
            "recording perturbed the simulation"
        );
        assert!(off.hists.is_none());
        let mut stripped = on.clone();
        stripped.hists = None;
        assert_eq!(stripped, off, "armed run differs beyond the hists field");
        let h = on.hists.expect("armed run must carry distributions");
        assert!(h.dram_gap.total() > 0);
        assert!(h.effective_latency.total() > 0);
        assert!(h.bank_queue_depth.total() > 0);
        assert!(h.row_hit_streak.total() > 0);
        assert!(h.merb_occupancy.total() > 0);
        assert!(
            h.read_queue_depth.total() > 0,
            "run crossed no sample cadence"
        );
        // The always-on percentile fields agree with the full distributions
        // and are monotone in q.
        assert_eq!(on.gap_p99, h.dram_gap.quantile(0.99));
        assert_eq!(on.eff_p50, h.effective_latency.quantile(0.5));
        assert!(on.gap_p50 <= on.gap_p90 && on.gap_p90 <= on.gap_p99);
        assert!(on.eff_p50 <= on.eff_p90 && on.eff_p90 <= on.eff_p99);
        assert!(off.eff_p50 > 0, "percentiles populate without arming");
    }

    #[test]
    fn crossbar_overflow_is_a_counted_hard_error() {
        let kernel = tiny_kernel(2, 2);
        let mut sim = Simulator::new(SimConfig::default(), &kernel);
        sim.inject_fault_xbar_overflow();
        let (r, _) = sim.run_traced();
        assert_eq!(r.dropped_requests, 1, "overflow must surface, not vanish");

        let clean = Simulator::new(SimConfig::default(), &kernel).run();
        assert_eq!(clean.dropped_requests, 0);
    }

    #[test]
    fn zero_divergence_cuts_the_gap() {
        let kernel = tiny_kernel(8, 6);
        let base = Simulator::new(
            SimConfig::default().with_scheduler(SchedulerKind::Gmc),
            &kernel,
        )
        .run();
        let zd = Simulator::new(
            SimConfig::default().with_scheduler(SchedulerKind::ZeroDivergence),
            &kernel,
        )
        .run();
        assert!(
            zd.avg_dram_gap < base.avg_dram_gap,
            "zero-div gap {} vs base {}",
            zd.avg_dram_gap,
            base.avg_dram_gap
        );
        assert!(zd.cycles <= base.cycles);
    }
}
