//! Property tests over every transaction-scheduling policy: conservation,
//! termination, and response-id uniqueness under randomized request
//! streams driven through a real controller (seeded loops — the offline
//! environment has no proptest).

use ldsim_gddr5::{Channel, MerbTable};
use ldsim_memctrl::Controller;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{MemConfig, SchedulerKind};
use ldsim_types::ids::{ChannelId, GlobalWarpId, RequestId, WarpGroupId};
use ldsim_types::req::{MemRequest, ReqKind};
use ldsim_util::StdRng;
use ldsim_warpsched::make_policy;

fn mk_ctrl(kind: SchedulerKind) -> (Controller, AddressMapper) {
    let mem = MemConfig::default();
    let t = mem.timing.in_cycles(ClockDomain::GDDR5);
    let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, mem.banks_per_channel);
    let ctrl = Controller::new(
        ChannelId(0),
        &mem,
        Channel::new(&mem, t),
        make_policy(kind, &mem),
        merb,
        false,
    );
    (ctrl, AddressMapper::new(&mem, 128))
}

fn drive(kind: SchedulerKind, stream: &[(u16, u16, u32, bool)]) {
    let (mut ctrl, m) = mk_ctrl(kind);
    ctrl.enable_audit();
    let mut id = 0u64;
    let mut reads = 0usize;
    for &(sm, warp, addr_seed, is_write) in stream {
        id += 1;
        let addr = (addr_seed as u64 % (1 << 22)) * 128;
        let kind_r = if is_write {
            ReqKind::Write
        } else {
            ReqKind::Read
        };
        if !is_write {
            reads += 1;
        }
        ctrl.push_request(MemRequest {
            id: RequestId(id),
            kind: kind_r,
            line_addr: m.line_addr(addr),
            decoded: m.decode(addr),
            wg: WarpGroupId::new(GlobalWarpId::new(sm % 8, warp % 8), id as u32 / 3),
            last_of_group: true,
            group_size_on_channel: 1,
            issue_cycle: 0,
            arrival_cycle: 0,
        });
    }
    let mut out = Vec::new();
    let mut now = 0u64;
    while !ctrl.idle() && now < 2_000_000 {
        ctrl.tick(now);
        ctrl.drain_responses(&mut out);
        now += 1;
    }
    assert!(ctrl.idle(), "{kind:?} failed to drain within bound");
    assert_eq!(out.len(), reads, "{kind:?} lost or duplicated reads");
    let mut ids: Vec<u64> = out.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), reads, "{kind:?} duplicated a response id");
    assert_eq!(
        ctrl.audit_violation_count(),
        0,
        "{kind:?} issued a protocol-violating command"
    );
}

#[test]
fn every_policy_conserves_requests() {
    let mut rng = StdRng::seed_from_u64(0xF022);
    for _case in 0..12 {
        let len = rng.gen_range(1usize..80);
        let stream: Vec<(u16, u16, u32, bool)> = (0..len)
            .map(|_| {
                (
                    rng.gen_range(0u16..8),
                    rng.gen_range(0u16..8),
                    rng.next_u64() as u32,
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::Gmc,
            SchedulerKind::Wafcfs,
            SchedulerKind::Sbwas { alpha_q: 2 },
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
            SchedulerKind::WgShared,
            SchedulerKind::ParBs,
            SchedulerKind::AtlasLite,
        ] {
            drive(kind, &stream);
        }
    }
}
