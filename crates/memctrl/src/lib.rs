//! GPU memory controller framework and baseline schedulers.
//!
//! The controller mirrors Fig. 1 of the paper: requests arrive from the
//! memory partition into bounded **read/write queues**; a **transaction
//! scheduler** (the pluggable [`Policy`]) picks which request to service
//! next and expands it into DRAM commands placed in **per-bank command
//! queues**; a **command scheduler** issues one legal command per cycle to
//! the GDDR5 [`ldsim_gddr5::Channel`], interleaving bank groups first (the
//! multi-level round-robin of Section II-C). Writes are buffered and drained
//! in batches between high/low watermarks so the bus rarely turns around.
//!
//! Baseline policies implemented here:
//!
//! * [`policies::Fcfs`] — strict arrival order (motivation, Section III-A);
//! * [`policies::FrFcfs`] — first-ready FCFS \[Rixner+ ISCA'00\];
//! * [`policies::Gmc`] — the throughput-optimised GPU memory controller
//!   baseline with row-hit streams, streak limits and age-based starvation
//!   avoidance (Section II-C);
//! * [`policies::Wafcfs`] — warp-group FCFS \[Yuan+ MICRO'08\]
//!   (Section VI-C.2);
//! * [`policies::Sbwas`] — single-bank warp-aware scheduling with a
//!   potential function \[Lakshminarayana+ CAL'11\] (Section VI-C.1).
//!
//! The paper's warp-aware schedulers (WG, WG-M, WG-Bw, WG-W) implement the
//! same [`Policy`] trait from the `ldsim-warpsched` crate.
//!
//! The controller also hosts the *Zero Latency Divergence* ideal model of
//! Fig. 4: once the first DRAM request of a warp-group has been serviced
//! anywhere, the rest of the group's requests bypass bank timing and pay
//! only data-bus bandwidth ([`Controller::fast_track_group`]).

pub mod controller;
pub mod group;
pub mod policies;
pub mod policy;

pub use controller::{Controller, CtrlStats};
pub use group::{GroupState, GroupTracker};
pub use policies::make_baseline_policy;
pub use policy::{BankSnapshot, CoordMsg, Policy, PolicyView, SCORE_HIT, SCORE_MISS};
