//! Warp-group arrival bookkeeping at one controller.
//!
//! The WG transaction scheduler only schedules warp-groups that have been
//! *fully transferred* from the SMs to the controller (Section IV-B.2). In
//! the real design this is detected by tagging the last request of a group;
//! here we track it by count: every request carries the number of its
//! group's requests destined for this channel
//! ([`MemRequest::group_size_on_channel`]), and the memory partition
//! notifies the tracker when a member is *absorbed* upstream (L2 hit or
//! MSHR merge) and will therefore never arrive.

use ldsim_types::ids::WarpGroupId;
use ldsim_types::req::MemRequest;
use ldsim_util::FnvHashMap;

/// Per-group arrival/service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupState {
    /// Requests of this group destined for this channel (post-coalescing,
    /// post-L1).
    pub expected: u16,
    /// Requests that reached the controller.
    pub arrived: u16,
    /// Requests absorbed upstream (L2 hits / MSHR merges).
    pub absorbed: u16,
    /// Requests whose DRAM service completed.
    pub served: u16,
}

impl GroupState {
    /// Has every request of the group that will ever arrive, arrived?
    #[inline]
    pub fn complete(&self) -> bool {
        self.arrived + self.absorbed >= self.expected
    }

    /// Requests at the controller not yet serviced.
    #[inline]
    pub fn outstanding(&self) -> u16 {
        self.arrived - self.served
    }

    /// Has service for the group started but not finished?
    #[inline]
    pub fn partially_served(&self) -> bool {
        self.served > 0 && self.outstanding() > 0
    }
}

/// Tracks every warp-group with in-flight state at one controller.
#[derive(Debug, Clone, Default)]
pub struct GroupTracker {
    groups: FnvHashMap<WarpGroupId, GroupState>,
}

impl GroupTracker {
    /// Record a request arriving at the controller.
    pub fn on_arrival(&mut self, req: &MemRequest) {
        let g = self.groups.entry(req.wg).or_default();
        g.expected = g.expected.max(req.group_size_on_channel);
        g.arrived += 1;
    }

    /// Record that a member of `wg` was absorbed upstream and will never
    /// arrive. `expected` is the group's size on this channel (carried by
    /// the absorbed request).
    pub fn on_absorbed(&mut self, wg: WarpGroupId, expected: u16) {
        let g = self.groups.entry(wg).or_default();
        g.expected = g.expected.max(expected);
        g.absorbed += 1;
        self.retire_if_done(wg);
    }

    /// Record DRAM service completion of one request of `wg`.
    pub fn on_served(&mut self, wg: WarpGroupId) {
        if let Some(g) = self.groups.get_mut(&wg) {
            g.served += 1;
        }
        self.retire_if_done(wg);
    }

    fn retire_if_done(&mut self, wg: WarpGroupId) {
        if let Some(g) = self.groups.get(&wg) {
            if g.complete() && g.outstanding() == 0 {
                self.groups.remove(&wg);
            }
        }
    }

    /// Is the group fully transferred (schedulable by WG)?
    pub fn is_complete(&self, wg: WarpGroupId) -> bool {
        self.groups.get(&wg).map(|g| g.complete()).unwrap_or(true)
    }

    pub fn get(&self, wg: WarpGroupId) -> Option<&GroupState> {
        self.groups.get(&wg)
    }

    /// Iterate over all live groups.
    pub fn iter(&self) -> impl Iterator<Item = (&WarpGroupId, &GroupState)> {
        self.groups.iter()
    }

    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::addr::AddressMapper;
    use ldsim_types::config::MemConfig;
    use ldsim_types::ids::{GlobalWarpId, RequestId};
    use ldsim_types::req::ReqKind;

    fn req(wg: WarpGroupId, size: u16) -> MemRequest {
        let m = AddressMapper::new(&MemConfig::default(), 128);
        MemRequest {
            id: RequestId(0),
            kind: ReqKind::Read,
            line_addr: 0,
            decoded: m.decode(0),
            wg,
            last_of_group: false,
            group_size_on_channel: size,
            issue_cycle: 0,
            arrival_cycle: 0,
        }
    }

    fn wg(serial: u32) -> WarpGroupId {
        WarpGroupId::new(GlobalWarpId::new(0, 0), serial)
    }

    #[test]
    fn completes_when_all_arrive() {
        let mut t = GroupTracker::default();
        let g = wg(1);
        t.on_arrival(&req(g, 3));
        assert!(!t.is_complete(g));
        t.on_arrival(&req(g, 3));
        t.on_arrival(&req(g, 3));
        assert!(t.is_complete(g));
        assert_eq!(t.get(g).unwrap().outstanding(), 3);
    }

    #[test]
    fn absorption_counts_toward_completion() {
        let mut t = GroupTracker::default();
        let g = wg(2);
        t.on_arrival(&req(g, 4));
        t.on_absorbed(g, 4);
        t.on_absorbed(g, 4);
        assert!(!t.is_complete(g));
        t.on_arrival(&req(g, 4));
        assert!(t.is_complete(g));
    }

    #[test]
    fn retires_after_full_service() {
        let mut t = GroupTracker::default();
        let g = wg(3);
        t.on_arrival(&req(g, 2));
        t.on_arrival(&req(g, 2));
        t.on_served(g);
        assert!(t.get(g).unwrap().partially_served());
        t.on_served(g);
        assert!(t.get(g).is_none(), "fully served group retired");
        assert!(t.is_empty());
    }

    #[test]
    fn fully_absorbed_group_never_lingers() {
        let mut t = GroupTracker::default();
        let g = wg(4);
        t.on_absorbed(g, 1);
        assert!(t.get(g).is_none());
    }

    #[test]
    fn unknown_group_is_vacuously_complete() {
        let t = GroupTracker::default();
        assert!(t.is_complete(wg(9)));
    }
}
