//! The GPU memory controller (Fig. 1 / Fig. 6 of the paper).
//!
//! Pipeline per cycle:
//!
//! 1. completed DRAM bursts are retired into the response outbox;
//! 2. arrivals are admitted from the entry buffer into the bounded
//!    read-queue (owned by the [`Policy`]) or write queue;
//! 3. the write-drain state machine engages between the high/low
//!    watermarks (Section II-C);
//! 4. one transaction (a request) is expanded into per-bank DRAM commands —
//!    chosen by the policy for reads, or FR-among-writes during a drain;
//! 5. one DRAM command legal under the GDDR5 protocol is issued, scanning
//!    banks in bank-group-interleaved round-robin order.
//!
//! The controller also implements the *Zero Latency Divergence* ideal model
//! (Fig. 4): fast-tracked groups bypass bank timing and pay only data-bus
//! occupancy, which keeps bus bandwidth and contention faithful.

use crate::group::GroupTracker;
use crate::policy::{BankSnapshot, CoordMsg, Policy, PolicyView, SCORE_HIT, SCORE_MISS};
use ldsim_gddr5::{Channel, Command, MerbTable};
use ldsim_types::clock::Cycle;
use ldsim_types::config::MemConfig;
use ldsim_types::ids::{ChannelId, WarpGroupId};
use ldsim_types::req::{MemRequest, MemResponse, ReqKind};
use ldsim_types::stats::Histogram;
use ldsim_util::FnvHashSet;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Command-queue capacity per bank.
pub const CMD_Q_CAP: usize = 8;

/// One entry in a per-bank command queue.
#[derive(Debug, Clone)]
struct CmdEntry {
    cmd: Command,
    /// Bank-Table score contribution (column commands only).
    score: u32,
    /// The request serviced by this column command.
    req: Option<MemRequest>,
}

/// A pending completion (end of a data burst).
#[derive(Debug, Clone)]
struct Completion {
    done: Cycle,
    seq: u64,
    resp: MemResponse,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.done == other.done && self.seq == other.seq
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.done, self.seq).cmp(&(other.done, other.seq))
    }
}

/// Controller statistics.
#[derive(Debug, Clone, Default)]
pub struct CtrlStats {
    pub reads_done: u64,
    pub writes_done: u64,
    /// Reads serviced through the zero-divergence fast path.
    pub fast_reads: u64,
    /// Sum / count of read latency (arrival at controller -> data done).
    pub read_latency_sum: u64,
    pub read_latency_cnt: u64,
    /// Write drains started.
    pub drains: u64,
    /// All-bank refreshes performed.
    pub refreshes: u64,
    /// Cycles spent with the drain state machine engaged.
    pub drain_cycles: u64,
    /// Warp-groups with outstanding reads when a drain started (Fig. 12).
    pub drain_stalled_groups: u64,
    /// ... of which unit-sized (one request on this channel).
    pub drain_stalled_unit: u64,
    /// ... of which partially served (orphaned requests).
    pub drain_stalled_orphan: u64,
}

impl CtrlStats {
    pub fn avg_read_latency(&self) -> f64 {
        if self.read_latency_cnt == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.read_latency_cnt as f64
        }
    }
}

/// One memory channel's controller.
pub struct Controller {
    pub id: ChannelId,
    pub channel: Channel,
    policy: Box<dyn Policy>,
    num_banks: usize,
    read_q_cap: usize,
    write_q_cap: usize,
    write_hi: usize,
    write_lo: usize,
    wgw_margin: usize,
    merb: MerbTable,

    entry_q: VecDeque<MemRequest>,
    /// FR-among-writes removes from the middle; tombstones (`None`) keep
    /// removal O(1) while preserving FIFO order for the survivors. Leading
    /// tombstones are popped eagerly; interior ones are compacted once they
    /// outnumber the live entries.
    write_q: VecDeque<Option<MemRequest>>,
    /// Live (non-tombstone) entries in `write_q`.
    write_q_live: usize,
    cmd_q: Vec<VecDeque<CmdEntry>>,
    last_sched_row: Vec<Option<u32>>,
    sched_hits_since_row: Vec<u8>,
    queue_score: Vec<u32>,

    draining: bool,
    zero_div: bool,
    bursts_per_access: u8,
    page_policy: ldsim_types::config::PagePolicy,
    refresh_enabled: bool,
    /// A refresh is due: the transaction scheduler is held off while the
    /// command queues drain and open banks are precharged.
    refresh_pending: bool,
    /// Read column commands currently sitting in command queues; while any
    /// are pending, write column commands yield the command bus to them
    /// (writes are always bus-legal; reads after write data wait tWTR, so
    /// unordered issue would starve reads).
    read_cmds_pending: usize,
    fast_groups: FnvHashSet<WarpGroupId>,
    fast_q: VecDeque<MemRequest>,

    completions: BinaryHeap<Reverse<Completion>>,
    seq: u64,
    outbox: Vec<MemResponse>,
    coord_out: Vec<CoordMsg>,

    pub groups: GroupTracker,
    pub stats: CtrlStats,
    bank_rotate: usize,
    /// Bank scan order interleaving bank groups (g0b0, g1b0, g2b0, ...).
    bank_order: Vec<usize>,
    snapshot: Vec<BankSnapshot>,
    /// Per-bank command-queue depth sampled at every transaction enqueue
    /// (None = zero cost). Observation-only.
    depth_hist: Option<Box<Histogram>>,
    /// Busy-bank count (the MERB view's notion of in-service banks) sampled
    /// at every successful read pick (None = zero cost). Observation-only.
    merb_occ_hist: Option<Box<Histogram>>,
    /// Cached [`Channel::ready_cycle`] of each bank's front command, valid
    /// while `ready_epoch[b] == chan_epoch`. Because `ready_cycle` is the
    /// exact inverse of `can_issue` and command legality is monotone in time
    /// for a fixed channel state, `now >= cached` (with the cache valid)
    /// decides issuability without re-deriving timing (DESIGN.md §13).
    ready_cache: Vec<Cycle>,
    ready_epoch: Vec<u64>,
    /// Bumped on every channel mutation; per-bank epochs of 0 never match
    /// (the counter starts at 1), which is how queue-front changes are
    /// invalidated individually.
    chan_epoch: u64,
}

impl Controller {
    /// Build a controller. `zero_div` enables the Fig. 4 ideal fast-track
    /// path (the caller must still invoke [`Self::fast_track_group`] when a
    /// group's first response is observed anywhere).
    pub fn new(
        id: ChannelId,
        mem: &MemConfig,
        channel: Channel,
        policy: Box<dyn Policy>,
        merb: MerbTable,
        zero_div: bool,
    ) -> Self {
        let nb = mem.banks_per_channel;
        let groups_per_channel = nb / mem.banks_per_group;
        let mut bank_order = Vec::with_capacity(nb);
        for within in 0..mem.banks_per_group {
            for g in 0..groups_per_channel {
                bank_order.push(g * mem.banks_per_group + within);
            }
        }
        Self {
            id,
            channel,
            policy,
            num_banks: nb,
            read_q_cap: mem.read_queue,
            write_q_cap: mem.write_queue,
            write_hi: mem.write_hi,
            write_lo: mem.write_lo,
            wgw_margin: mem.wgw_margin,
            merb,
            entry_q: VecDeque::new(),
            write_q: VecDeque::new(),
            write_q_live: 0,
            cmd_q: (0..nb).map(|_| VecDeque::new()).collect(),
            last_sched_row: vec![None; nb],
            sched_hits_since_row: vec![0; nb],
            queue_score: vec![0; nb],
            draining: false,
            zero_div,
            bursts_per_access: mem.bursts_per_access.max(1) as u8,
            page_policy: mem.page_policy,
            refresh_enabled: mem.refresh_enabled,
            refresh_pending: false,
            read_cmds_pending: 0,
            fast_groups: FnvHashSet::default(),
            fast_q: VecDeque::new(),
            completions: BinaryHeap::new(),
            seq: 0,
            outbox: Vec::new(),
            coord_out: Vec::new(),
            groups: GroupTracker::default(),
            stats: CtrlStats::default(),
            bank_rotate: 0,
            bank_order,
            snapshot: vec![BankSnapshot::default(); nb],
            depth_hist: None,
            merb_occ_hist: None,
            ready_cache: vec![0; nb],
            ready_epoch: vec![0; nb],
            chan_epoch: 1,
        }
    }

    /// The channel's timing state changed: every cached front-command
    /// ready-cycle is stale.
    #[inline]
    fn touch_channel(&mut self) {
        self.chan_epoch += 1;
    }

    /// Requests waiting anywhere in the controller.
    pub fn pending(&self) -> usize {
        self.entry_q.len()
            + self.write_q_live
            + self.policy.pending()
            + self.fast_q.len()
            + self.cmd_q.iter().map(|q| q.len()).sum::<usize>()
            + self.completions.len()
    }

    /// Fully idle (nothing queued, scheduled, or in flight)?
    pub fn idle(&self) -> bool {
        self.pending() == 0
    }

    /// Earliest cycle at which [`Self::tick`] could change observable state,
    /// for idle-cycle fast-forwarding. May be conservative (earlier than the
    /// true next change — the caller just steps and asks again) but must
    /// never be later. `None` means nothing will ever happen without new
    /// input.
    ///
    /// Stages that run unconditionally every cycle (admission, transaction
    /// scheduling, drain bookkeeping, coordination output) pin the horizon
    /// at `now`; purely time-gated work (in-flight bursts, command-bus
    /// legality windows, refresh cadence) contributes its exact ready cycle.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.outbox.is_empty()
            || !self.coord_out.is_empty()
            || !self.entry_q.is_empty()
            || self.write_q_live > 0
            || self.policy.pending() > 0
        {
            return Some(now);
        }
        let mut ev: Option<Cycle> = None;
        let mut upd = |c: Cycle| ev = Some(ev.map_or(c, |e| e.min(c)));
        if let Some(Reverse(c)) = self.completions.peek() {
            upd(c.done.max(now));
        }
        if !self.fast_q.is_empty() {
            upd(self.channel.fast_read_ready().max(now));
        }
        for q in &self.cmd_q {
            if let Some(e) = q.front() {
                let r = self.channel.ready_cycle(&e.cmd);
                if r != Cycle::MAX {
                    upd(r.max(now));
                }
            }
        }
        if self.refresh_enabled && !self.refresh_pending {
            upd(self.channel.next_refresh().max(now));
        }
        if self.refresh_pending && self.cmd_q.iter().all(|q| q.is_empty()) {
            // step_refresh examines the first open bank in plain index
            // order; once none remain, REFab waits on every bank's
            // activate-ready point.
            if let Some(b) = self.channel.banks.iter().find(|b| b.is_open()) {
                upd(b.pre_ready.max(now));
            } else {
                let settle = self
                    .channel
                    .banks
                    .iter()
                    .map(|b| b.act_ready)
                    .max()
                    .unwrap_or(0);
                upd(settle.max(now));
            }
        }
        ev
    }

    /// Reads waiting for a transaction-scheduling decision (entry buffer +
    /// policy queue) — the upstream gate keeps this near `read_capacity`.
    pub fn read_backlog(&self) -> usize {
        self.entry_q
            .iter()
            .filter(|r| r.kind == ReqKind::Read)
            .count()
            + self.policy.pending()
            + self.fast_q.len()
    }

    pub fn read_capacity(&self) -> usize {
        self.read_q_cap
    }

    pub fn write_backlog(&self) -> usize {
        self.entry_q
            .iter()
            .filter(|r| r.kind == ReqKind::Write)
            .count()
            + self.write_q_live
    }

    pub fn write_capacity(&self) -> usize {
        self.write_q_cap
    }

    /// Accept a request from the memory partition (unbounded entry buffer;
    /// the bounded read/write queues are filled during `tick`).
    pub fn push_request(&mut self, req: MemRequest) {
        self.entry_q.push_back(req);
    }

    /// The partition absorbed a member of `wg` upstream (L2 hit or MSHR
    /// merge): it will never arrive here.
    pub fn note_absorbed(&mut self, wg: WarpGroupId, group_size_on_channel: u16) {
        self.groups.on_absorbed(wg, group_size_on_channel);
    }

    /// Deliver a WG-M coordination message from another controller.
    pub fn deliver_coord(&mut self, msg: CoordMsg, now: Cycle) {
        self.policy.on_coord(msg, now);
    }

    /// Another warp merged onto one of `wg`'s in-flight lines upstream:
    /// finishing this group now unblocks several warps (Section VIII).
    pub fn note_shared(&mut self, wg: WarpGroupId) {
        self.policy.on_shared(wg);
    }

    /// Drain coordination messages emitted by the local policy.
    pub fn drain_coord(&mut self, out: &mut Vec<CoordMsg>) {
        out.append(&mut self.coord_out);
    }

    /// Drain completed responses.
    pub fn drain_responses(&mut self, out: &mut Vec<MemResponse>) {
        out.append(&mut self.outbox);
    }

    /// Zero-divergence ideal: the first request of `wg` has been serviced
    /// somewhere; every other pending request of the group bypasses bank
    /// timing from now on.
    pub fn fast_track_group(&mut self, wg: WarpGroupId, _now: Cycle) {
        if !self.zero_div || !self.fast_groups.insert(wg) {
            return;
        }
        let mut moved = self.policy.remove_group(wg);
        // Also pull matching reads still sitting in the entry buffer.
        let mut rest = VecDeque::with_capacity(self.entry_q.len());
        while let Some(r) = self.entry_q.pop_front() {
            if r.kind == ReqKind::Read && r.wg == wg {
                moved.push(r);
            } else {
                rest.push_back(r);
            }
        }
        self.entry_q = rest;
        self.fast_q.extend(moved);
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.retire_completions(now);
        self.admit(now);
        if self.refresh_enabled && self.channel.refresh_due(now) {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            // Hold the transaction scheduler; drain queues, precharge, REF.
            if self.step_refresh(now) {
                self.refresh_pending = false;
            }
            self.policy.emit_coord(&mut self.coord_out);
            return;
        }
        self.update_drain_state();
        if self.draining {
            self.stats.drain_cycles += 1;
            self.schedule_write_transaction();
        } else {
            self.schedule_read_transaction(now);
        }
        self.issue_command(now);
        self.policy.emit_coord(&mut self.coord_out);
    }

    /// One refresh-mode cycle. Returns true once the refresh has issued.
    fn step_refresh(&mut self, now: Cycle) -> bool {
        // 1. Finish whatever is already in the command queues.
        if self.cmd_q.iter().any(|q| !q.is_empty()) {
            self.issue_command(now);
            return false;
        }
        // 2. Close any open bank (one PRE per cycle on the command bus).
        for b in 0..self.num_banks {
            let bank = ldsim_types::ids::BankId(b as u8);
            if self.channel.bank(bank).is_open() {
                if self.channel.can_pre(bank, now) {
                    self.channel.issue_pre(bank, now);
                    self.touch_channel();
                    self.last_sched_row[b] = None;
                    self.sched_hits_since_row[b] = 0;
                }
                return false;
            }
        }
        // 3. Issue REFab once every bank has settled.
        if self.channel.can_refresh(now) {
            self.channel.issue_refresh(now);
            self.touch_channel();
            self.stats.refreshes += 1;
            return true;
        }
        false
    }

    fn retire_completions(&mut self, now: Cycle) {
        while let Some(Reverse(c)) = self.completions.peek() {
            if c.done > now {
                break;
            }
            let Reverse(c) = self.completions.pop().unwrap();
            if c.resp.kind == ReqKind::Read {
                self.groups.on_served(c.resp.wg);
                self.outbox.push(c.resp);
            }
        }
    }

    fn admit(&mut self, now: Cycle) {
        while let Some(head) = self.entry_q.front() {
            match head.kind {
                ReqKind::Read => {
                    let mut r = self.entry_q.pop_front().unwrap();
                    r.arrival_cycle = now;
                    if self.zero_div && self.fast_groups.contains(&r.wg) {
                        self.groups.on_arrival(&r);
                        self.fast_q.push_back(r);
                        continue;
                    }
                    if self.policy.pending() >= self.read_q_cap {
                        self.entry_q.push_front(r);
                        break;
                    }
                    self.groups.on_arrival(&r);
                    self.policy.on_arrival(r, now);
                }
                ReqKind::Write => {
                    if self.policy.wants_writes() {
                        if self.policy.pending() >= self.read_q_cap + self.write_q_cap {
                            break;
                        }
                        let mut r = self.entry_q.pop_front().unwrap();
                        r.arrival_cycle = now;
                        self.policy.on_arrival(r, now);
                    } else {
                        if self.write_q_live >= self.write_q_cap {
                            break;
                        }
                        let mut r = self.entry_q.pop_front().unwrap();
                        r.arrival_cycle = now;
                        self.write_q.push_back(Some(r));
                        self.write_q_live += 1;
                    }
                }
            }
        }
    }

    fn update_drain_state(&mut self) {
        if self.policy.wants_writes() {
            // SBWAS interleaves writes with reads; no batch draining.
            self.draining = false;
            return;
        }
        if !self.draining {
            let forced = self.write_q_live >= self.write_hi;
            let opportunistic = self.write_q_live > 0
                && self.policy.pending() == 0
                && self.entry_q.is_empty()
                && self.fast_q.is_empty();
            if forced || opportunistic {
                self.draining = true;
                self.stats.drains += 1;
                if forced {
                    self.classify_drain_stalls();
                }
            }
        } else if self.write_q_live <= self.write_lo {
            self.draining = false;
        }
    }

    /// Fig. 12 bookkeeping: which warp-groups does this (forced) drain stall?
    fn classify_drain_stalls(&mut self) {
        for (_, g) in self.groups.iter() {
            if g.outstanding() > 0 {
                self.stats.drain_stalled_groups += 1;
                if g.expected == 1 {
                    self.stats.drain_stalled_unit += 1;
                } else if g.partially_served() {
                    self.stats.drain_stalled_orphan += 1;
                }
            }
        }
    }

    fn schedule_read_transaction(&mut self, now: Cycle) {
        if self.policy.pending() == 0 {
            return;
        }
        self.refresh_snapshot();
        let view = PolicyView {
            now,
            banks: &self.snapshot,
            groups: &self.groups,
            write_q_len: self.write_q_live,
            write_hi: self.write_hi,
            wgw_margin: self.wgw_margin,
            merb: &self.merb,
        };
        if let Some(req) = self.policy.pick(&view) {
            if let Some(h) = self.merb_occ_hist.as_deref_mut() {
                // Banks with queued work — the occupancy the MERB gate
                // reasons about (cf. WG-Bw's banks_with_work predicate).
                h.add(self.snapshot.iter().filter(|s| s.busy).count() as u64);
            }
            self.enqueue_transaction(req);
        }
    }

    fn schedule_write_transaction(&mut self) {
        // FR among writes: prefer the oldest row-hit, else the oldest write,
        // subject to command-queue headroom.
        let mut choice: Option<usize> = None;
        for (i, w) in self.write_q.iter().enumerate() {
            let Some(w) = w else { continue };
            let b = w.decoded.bank.0 as usize;
            let hit = self.last_sched_row[b] == Some(w.decoded.row);
            let need = if hit { 1 } else { 3 };
            if CMD_Q_CAP - self.cmd_q[b].len() < need {
                continue;
            }
            if hit {
                choice = Some(i);
                break;
            }
            if choice.is_none() {
                choice = Some(i);
            }
        }
        if let Some(i) = choice {
            let req = self.write_q[i].take().unwrap();
            self.write_q_live -= 1;
            while matches!(self.write_q.front(), Some(None)) {
                self.write_q.pop_front();
            }
            // Interior tombstones can pile up only if the front entry is
            // persistently headroom-blocked; compact before they dominate
            // the scan.
            if self.write_q.len() > 2 * self.write_q_live {
                self.write_q.retain(Option::is_some);
            }
            self.enqueue_transaction(req);
        }
    }

    /// Expand one request into commands in its bank's queue.
    fn enqueue_transaction(&mut self, req: MemRequest) {
        let b = req.decoded.bank.0 as usize;
        // If the bank's queue was empty, the pushes below install a new
        // front command; drop its cached ready-cycle (0 never matches
        // `chan_epoch`, which starts at 1).
        self.ready_epoch[b] = 0;
        if let Some(h) = self.depth_hist.as_deref_mut() {
            h.add(self.cmd_q[b].len() as u64);
        }
        let hit = self.last_sched_row[b] == Some(req.decoded.row);
        let need = if hit { 1 } else { 3 };
        debug_assert!(
            CMD_Q_CAP - self.cmd_q[b].len() >= need,
            "policy violated command-queue headroom"
        );
        let bank = req.decoded.bank;
        let score = if hit { SCORE_HIT } else { SCORE_MISS };
        if !hit {
            if self.last_sched_row[b].is_some() {
                self.cmd_q[b].push_back(CmdEntry {
                    cmd: Command::Pre { bank },
                    score: 0,
                    req: None,
                });
            }
            self.cmd_q[b].push_back(CmdEntry {
                cmd: Command::Act {
                    bank,
                    row: req.decoded.row,
                },
                score: 0,
                req: None,
            });
            self.last_sched_row[b] = Some(req.decoded.row);
            self.sched_hits_since_row[b] = 0;
        } else {
            self.sched_hits_since_row[b] = self.sched_hits_since_row[b]
                .saturating_add(self.bursts_per_access)
                .min(31);
        }
        let cmd = match req.kind {
            ReqKind::Read => {
                self.read_cmds_pending += 1;
                Command::Read {
                    bank,
                    req: req.id.0,
                }
            }
            ReqKind::Write => Command::Write {
                bank,
                req: req.id.0,
            },
        };
        self.queue_score[b] += score;
        self.cmd_q[b].push_back(CmdEntry {
            cmd,
            score,
            req: Some(req),
        });
        if self.page_policy == ldsim_types::config::PagePolicy::Closed {
            // Auto-precharge: close the row right behind the column access.
            self.cmd_q[b].push_back(CmdEntry {
                cmd: Command::Pre { bank },
                score: 0,
                req: None,
            });
            self.last_sched_row[b] = None;
            self.sched_hits_since_row[b] = 0;
        }
    }

    fn refresh_snapshot(&mut self) {
        for b in 0..self.num_banks {
            self.snapshot[b] = BankSnapshot {
                last_scheduled_row: self.last_sched_row[b],
                queue_score: self.queue_score[b],
                queue_len: self.cmd_q[b].len(),
                headroom: CMD_Q_CAP - self.cmd_q[b].len(),
                hits_since_row_open: self.sched_hits_since_row[b],
                busy: !self.cmd_q[b].is_empty(),
            };
        }
    }

    fn issue_command(&mut self, now: Cycle) {
        // Zero-divergence fast path: one bus-only read per cycle.
        if !self.fast_q.is_empty() {
            if let Some(done) = self.channel.try_fast_read(now) {
                self.touch_channel();
                let r = self.fast_q.pop_front().unwrap();
                self.stats.fast_reads += 1;
                self.finish_request(&r, done);
                return;
            }
        }
        // Regular path: scan banks group-interleaved, rotating start. Two
        // passes when not draining: writes at a bank head would otherwise
        // starve reads through the tWTR turnaround (a write is always
        // bus-legal, a read after write-data is not), so read-mode issues a
        // write column command only when no other command can go.
        let n = self.num_banks;
        for pass in 0..2 {
            for i in 0..n {
                let b = self.bank_order[(i + self.bank_rotate) % n];
                let Some(entry) = self.cmd_q[b].front() else {
                    continue;
                };
                if pass == 0
                    && self.read_cmds_pending > 0
                    && matches!(entry.cmd, Command::Write { .. })
                {
                    continue;
                }
                // Cached legality: `ready_cycle` is the exact inverse of
                // `can_issue`, and legality is monotone in time while the
                // channel state is unchanged (every mutation bumps
                // `chan_epoch`), so the comparison below is bit-exact with
                // re-deriving the timing each cycle.
                let ready = if self.ready_epoch[b] == self.chan_epoch {
                    self.ready_cache[b]
                } else {
                    let r = self.channel.ready_cycle(&entry.cmd);
                    self.ready_cache[b] = r;
                    self.ready_epoch[b] = self.chan_epoch;
                    r
                };
                if now < ready || ready == Cycle::MAX {
                    debug_assert!(!self.channel.can_issue(&entry.cmd, now));
                    continue;
                }
                debug_assert!(self.channel.can_issue(&entry.cmd, now));
                let entry = self.cmd_q[b].pop_front().unwrap();
                let done = self.channel.issue(&entry.cmd, now);
                self.touch_channel();
                if matches!(entry.cmd, Command::Read { .. }) {
                    self.read_cmds_pending -= 1;
                }
                if let Some(req) = entry.req {
                    self.queue_score[b] -= entry.score;
                    self.finish_request(&req, done.expect("column command returns data end"));
                }
                self.bank_rotate = (self.bank_rotate + i + 1) % n;
                return;
            }
        }
    }

    /// Book a completed (or scheduled-to-complete) request.
    fn finish_request(&mut self, req: &MemRequest, done: Cycle) {
        match req.kind {
            ReqKind::Read => {
                self.stats.reads_done += 1;
                self.stats.read_latency_sum += done.saturating_sub(req.arrival_cycle);
                self.stats.read_latency_cnt += 1;
            }
            ReqKind::Write => {
                self.stats.writes_done += 1;
            }
        }
        self.seq += 1;
        self.completions.push(Reverse(Completion {
            done,
            seq: self.seq,
            resp: MemResponse {
                id: req.id,
                wg: req.wg,
                line_addr: req.line_addr,
                kind: req.kind,
                done_cycle: done,
            },
        }));
    }

    /// Attach the independent protocol auditor to this channel.
    pub fn enable_audit(&mut self) {
        self.channel.enable_audit();
    }

    /// Start structured command logging on this channel.
    pub fn enable_cmd_log(&mut self) {
        self.channel.enable_cmd_log();
    }

    /// Arm the controller-level distribution histograms (per-bank queue
    /// depth at enqueue, MERB busy-bank occupancy at pick) and the
    /// channel's row-hit streak recorder. Observation-only.
    pub fn enable_hist(&mut self) {
        self.depth_hist = Some(Box::new(Histogram::latency()));
        self.merb_occ_hist = Some(Box::new(Histogram::latency()));
        self.channel.enable_streak_hist();
    }

    /// Recorded per-bank queue-depth distribution (None if unarmed).
    pub fn depth_hist(&self) -> Option<&Histogram> {
        self.depth_hist.as_deref()
    }

    /// Recorded MERB busy-bank occupancy distribution (None if unarmed).
    pub fn merb_occ_hist(&self) -> Option<&Histogram> {
        self.merb_occ_hist.as_deref()
    }

    /// Protocol violations the auditor has counted (0 when auditing is off).
    pub fn audit_violation_count(&self) -> u64 {
        self.channel.audit_violation_count()
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Diagnostic counters from the policy (see [`Policy::counters`]).
    pub fn policy_counters(&self) -> [u64; 4] {
        self.policy.counters()
    }

    /// Is a write drain currently in progress?
    pub fn is_draining(&self) -> bool {
        self.draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::FrFcfs;
    use ldsim_types::addr::AddressMapper;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;
    use ldsim_types::ids::{GlobalWarpId, RequestId};

    fn mk_ctrl(zero_div: bool) -> (Controller, AddressMapper) {
        let mem = MemConfig::default();
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        let ch = Channel::new(&mem, t);
        let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, mem.banks_per_channel);
        let ctrl = Controller::new(
            ChannelId(0),
            &mem,
            ch,
            Box::new(FrFcfs::new()),
            merb,
            zero_div,
        );
        (ctrl, AddressMapper::new(&mem, 128))
    }

    fn mk_req(m: &AddressMapper, id: u64, addr: u64, kind: ReqKind, size: u16) -> MemRequest {
        MemRequest {
            id: RequestId(id),
            kind,
            line_addr: m.line_addr(addr),
            decoded: m.decode(addr),
            wg: WarpGroupId::new(GlobalWarpId::new(0, 0), id as u32 / 100),
            last_of_group: false,
            group_size_on_channel: size,
            issue_cycle: 0,
            arrival_cycle: 0,
        }
    }

    /// Run the controller until idle, returning responses and final cycle.
    fn run_to_idle(ctrl: &mut Controller, max: Cycle) -> (Vec<MemResponse>, Cycle) {
        let mut out = Vec::new();
        let mut now = 0;
        while !ctrl.idle() && now < max {
            ctrl.tick(now);
            ctrl.drain_responses(&mut out);
            now += 1;
        }
        (out, now)
    }

    #[test]
    fn single_read_end_to_end() {
        let (mut ctrl, m) = mk_ctrl(false);
        ctrl.push_request(mk_req(&m, 1, 0x8000, ReqKind::Read, 1));
        let (resps, _) = run_to_idle(&mut ctrl, 10_000);
        assert_eq!(resps.len(), 1);
        // Closed-page first access: ACT at ~2, RD at ~2+tRCD, data at +tCAS+tBURST.
        let t = *ctrl.channel.timing();
        assert!(resps[0].done_cycle >= t.t_rcd + t.t_cas + t.t_burst);
        assert!(resps[0].done_cycle < 200, "single read too slow");
        assert_eq!(ctrl.stats.reads_done, 1);
    }

    #[test]
    fn row_hits_stream_back_to_back() {
        let (mut ctrl, m) = mk_ctrl(false);
        // 8 lines of the same row (same 256B block pairs share row/bank).
        let base = 0x10_0000u64;
        let d0 = m.decode(base);
        let mut n = 0;
        for addr in (0..0x40_0000u64).step_by(128) {
            let d = m.decode(base + addr);
            if d.channel == d0.channel && d.bank == d0.bank && d.row == d0.row {
                ctrl.push_request(mk_req(&m, n + 1, base + addr, ReqKind::Read, 1));
                n += 1;
                if n == 8 {
                    break;
                }
            }
        }
        assert_eq!(n, 8, "need 8 same-row lines for this test");
        let (resps, _) = run_to_idle(&mut ctrl, 100_000);
        assert_eq!(resps.len(), 8);
        // One ACT only; all subsequent are row hits.
        assert_eq!(ctrl.channel.stats.acts, 1);
        assert_eq!(ctrl.channel.stats.reads, 8);
    }

    #[test]
    fn writes_drain_in_batches() {
        let (mut ctrl, m) = mk_ctrl(false);
        // Fill the write queue past the high watermark; no reads at all, so
        // the opportunistic drain path fires even earlier.
        for i in 0..40u64 {
            ctrl.push_request(mk_req(&m, i + 1, i * 128, ReqKind::Write, 1));
        }
        let (resps, _) = run_to_idle(&mut ctrl, 200_000);
        // Writes produce no SM-visible responses.
        assert!(resps.is_empty());
        assert_eq!(ctrl.stats.writes_done, 40);
        assert!(ctrl.stats.drains >= 1);
    }

    #[test]
    fn forced_drain_classifies_stalled_groups() {
        let (mut ctrl, m) = mk_ctrl(false);
        // One unit-sized read group waiting...
        let mut unit = mk_req(&m, 1, 0x9000, ReqKind::Read, 1);
        unit.wg = WarpGroupId::new(GlobalWarpId::new(1, 1), 0);
        ctrl.push_request(unit);
        // ...plus enough writes to hit the high watermark (32).
        for i in 0..33u64 {
            ctrl.push_request(mk_req(&m, 100 + i, i * 128, ReqKind::Write, 1));
        }
        // Tick a few cycles so admission + forced drain trigger while the
        // read is still pending.
        for now in 0..6 {
            ctrl.tick(now);
        }
        assert!(ctrl.stats.drains >= 1);
        assert!(ctrl.stats.drain_stalled_groups >= 1);
        assert!(ctrl.stats.drain_stalled_unit >= 1);
    }

    #[test]
    fn zero_div_fast_tracks_rest_of_group() {
        let (mut ctrl, m) = mk_ctrl(true);
        let wg = WarpGroupId::new(GlobalWarpId::new(2, 3), 5);
        // Group of 4 requests; the last two arrive only after the first
        // response (as straggling interconnect traffic would).
        let addrs = [0x0u64, 0x1100, 0x2200, 0x3300];
        for (i, &a) in addrs.iter().take(2).enumerate() {
            let mut r = mk_req(&m, i as u64 + 1, a, ReqKind::Read, 4);
            r.wg = wg;
            ctrl.push_request(r);
        }
        // Let the first one get serviced normally.
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() && now < 10_000 {
            ctrl.tick(now);
            ctrl.drain_responses(&mut out);
            now += 1;
        }
        assert_eq!(out.len(), 1);
        ctrl.fast_track_group(wg, now);
        for (i, &a) in addrs.iter().enumerate().skip(2) {
            let mut r = mk_req(&m, i as u64 + 1, a, ReqKind::Read, 4);
            r.wg = wg;
            ctrl.push_request(r);
        }
        while !ctrl.idle() && now < 50_000 {
            ctrl.tick(now);
            ctrl.drain_responses(&mut out);
            now += 1;
        }
        assert_eq!(out.len(), 4);
        assert!(
            ctrl.stats.fast_reads >= 2,
            "late arrivals of a fast-tracked group must use the fast path, got {}",
            ctrl.stats.fast_reads
        );
        // Fast reads are bus-only: no extra ACTs beyond the normally
        // serviced members.
        assert!(ctrl.channel.stats.acts <= 2);
    }

    #[test]
    fn no_request_lost_under_load() {
        let (mut ctrl, m) = mk_ctrl(false);
        let n = 300u64;
        for i in 0..n {
            let kind = if i % 5 == 0 {
                ReqKind::Write
            } else {
                ReqKind::Read
            };
            ctrl.push_request(mk_req(&m, i + 1, (i * 7919) % (1 << 26) * 128, kind, 1));
        }
        let (resps, end) = run_to_idle(&mut ctrl, 2_000_000);
        assert!(end < 2_000_000, "controller did not go idle");
        let reads = (0..n).filter(|i| i % 5 != 0).count();
        assert_eq!(resps.len(), reads);
        assert_eq!(ctrl.stats.reads_done as usize, reads);
        assert_eq!(ctrl.stats.writes_done as usize, n as usize - reads);
        // Every response id unique.
        let mut ids: Vec<u64> = resps.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reads);
    }

    #[test]
    fn opportunistic_drain_when_no_reads() {
        let (mut ctrl, m) = mk_ctrl(false);
        // A handful of writes, below the high watermark, and no reads: the
        // controller drains opportunistically instead of sitting on them.
        for i in 0..5u64 {
            ctrl.push_request(mk_req(&m, i + 1, i * 512, ReqKind::Write, 1));
        }
        let (_, end) = run_to_idle(&mut ctrl, 100_000);
        assert!(end < 100_000);
        assert_eq!(ctrl.stats.writes_done, 5);
    }

    #[test]
    fn drain_exits_at_low_watermark_when_reads_wait() {
        let (mut ctrl, m) = mk_ctrl(false);
        // Force a drain with 32 writes while reads are waiting; the state
        // machine must hand scheduling back to reads once the write queue
        // reaches the low watermark — i.e., at some point the controller is
        // in read mode with a partially drained (non-empty) write queue.
        for i in 0..32u64 {
            ctrl.push_request(mk_req(&m, 1000 + i, i * 640, ReqKind::Write, 1));
        }
        for i in 0..8u64 {
            ctrl.push_request(mk_req(&m, i + 1, 0x9000 + i * 256, ReqKind::Read, 1));
        }
        let mut out = Vec::new();
        let mut now = 0;
        let mut saw_forced_drain = false;
        let mut saw_read_mode_with_writes_left = false;
        while !ctrl.idle() && now < 200_000 {
            ctrl.tick(now);
            ctrl.drain_responses(&mut out);
            if ctrl.is_draining() && ctrl.write_backlog() >= 30 {
                saw_forced_drain = true;
            }
            if saw_forced_drain && !ctrl.is_draining() && ctrl.write_backlog() > 0 {
                saw_read_mode_with_writes_left = true;
            }
            now += 1;
        }
        assert!(saw_forced_drain, "high watermark must trigger a drain");
        assert!(
            saw_read_mode_with_writes_left,
            "drain must release at the low watermark, not empty the queue"
        );
        assert_eq!(ctrl.stats.writes_done, 32);
        assert_eq!(ctrl.stats.reads_done, 8);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn per_bank_command_order_is_fifo() {
        // Two same-bank, different-row reads: the second must not be
        // serviced before the first (within-bank queue order is preserved
        // by the command scheduler).
        let (mut ctrl, m) = mk_ctrl(false);
        let d0 = m.decode(0x4000);
        // find same-bank different-row address
        let mut other = None;
        for i in 1..100_000u64 {
            let a = 0x4000 + i * 128;
            let d = m.decode(a);
            if d.channel == d0.channel && d.bank == d0.bank && d.row != d0.row {
                other = Some(a);
                break;
            }
        }
        let other = other.unwrap();
        ctrl.push_request(mk_req(&m, 1, 0x4000, ReqKind::Read, 1));
        ctrl.push_request(mk_req(&m, 2, other, ReqKind::Read, 1));
        let (resps, _) = run_to_idle(&mut ctrl, 100_000);
        assert_eq!(resps.len(), 2);
        assert!(resps[0].id.0 == 1 && resps[1].id.0 == 2);
        assert!(resps[0].done_cycle < resps[1].done_cycle);
    }

    #[test]
    fn fig12_orphan_classification() {
        let (mut ctrl, m) = mk_ctrl(false);
        // A two-request group, one already served -> partially served when
        // the forced drain hits.
        let wg2 = WarpGroupId::new(GlobalWarpId::new(3, 3), 1);
        let mut r1 = mk_req(&m, 1, 0x8000, ReqKind::Read, 2);
        r1.wg = wg2;
        ctrl.push_request(r1);
        // Run until it is served.
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() && now < 20_000 {
            ctrl.tick(now);
            ctrl.drain_responses(&mut out);
            now += 1;
        }
        // Second member arrives, then the write flood triggers a drain.
        let mut r2 = mk_req(&m, 2, 0x10_8000, ReqKind::Read, 2);
        r2.wg = wg2;
        ctrl.push_request(r2);
        for i in 0..33u64 {
            ctrl.push_request(mk_req(&m, 100 + i, i * 768, ReqKind::Write, 1));
        }
        for _ in 0..6 {
            ctrl.tick(now);
            now += 1;
        }
        assert!(ctrl.stats.drain_stalled_orphan >= 1, "orphan not counted");
    }

    #[test]
    fn refresh_interleaves_with_service() {
        let (mut ctrl, m) = mk_ctrl(false);
        // Enough traffic to span several tREFI windows (tREFI is ~2850
        // cycles; 500 scattered reads run for >4000).
        for i in 0..500u64 {
            ctrl.push_request(mk_req(
                &m,
                i + 1,
                (i * 8191) % (1 << 25) * 128,
                ReqKind::Read,
                1,
            ));
        }
        let (resps, end) = run_to_idle(&mut ctrl, 2_000_000);
        assert_eq!(resps.len(), 500);
        assert!(
            ctrl.stats.refreshes >= 1,
            "a multi-tREFI run must refresh (end={end})"
        );
        // Refresh cadence: roughly one per tREFI of elapsed time.
        let t = *ctrl.channel.timing();
        let expect = end / t.t_refi;
        assert!(
            ctrl.stats.refreshes <= expect + 1,
            "refreshed {} times in {} cycles",
            ctrl.stats.refreshes,
            end
        );
    }

    #[test]
    fn refresh_can_be_disabled() {
        let mem = MemConfig {
            refresh_enabled: false,
            ..MemConfig::default()
        };
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        let ch = Channel::new(&mem, t);
        let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, mem.banks_per_channel);
        let mut ctrl =
            Controller::new(ChannelId(0), &mem, ch, Box::new(FrFcfs::new()), merb, false);
        let m = AddressMapper::new(&mem, 128);
        for i in 0..60u64 {
            ctrl.push_request(mk_req(&m, i + 1, i * 4096 * 128, ReqKind::Read, 1));
        }
        let (_, _end) = run_to_idle(&mut ctrl, 2_000_000);
        assert_eq!(ctrl.stats.refreshes, 0);
    }

    #[test]
    fn closed_page_policy_never_leaves_rows_open() {
        let mem = MemConfig {
            page_policy: ldsim_types::config::PagePolicy::Closed,
            ..MemConfig::default()
        };
        let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
        let ch = Channel::new(&mem, t);
        let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, mem.banks_per_channel);
        let mut ctrl =
            Controller::new(ChannelId(0), &mem, ch, Box::new(FrFcfs::new()), merb, false);
        let m = AddressMapper::new(&mem, 128);
        // Same-row requests, which open-page would stream as hits.
        let base = 0x10_0000u64;
        let mut n = 0u64;
        for addr in (0..0x40_0000u64).step_by(128) {
            let d = m.decode(base + addr);
            let d0 = m.decode(base);
            if d.channel == d0.channel && d.bank == d0.bank && d.row == d0.row {
                n += 1;
                ctrl.push_request(mk_req(&m, n, base + addr, ReqKind::Read, 1));
                if n == 6 {
                    break;
                }
            }
        }
        let (resps, _) = run_to_idle(&mut ctrl, 200_000);
        assert_eq!(resps.len(), 6);
        // Closed page: one ACT per access (no residual open rows either).
        assert_eq!(ctrl.channel.stats.acts, 6);
        assert_eq!(ctrl.channel.open_banks(), 0);
        assert!((ctrl.channel.stats.row_hit_rate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn next_event_skipping_is_bit_exact() {
        // Service a mixed workload twice: once ticking every cycle, once
        // ticking only at the horizons next_event reports. Responses and
        // channel statistics must match exactly.
        let drive = |skip: bool| {
            let (mut ctrl, m) = mk_ctrl(false);
            for i in 0..360u64 {
                let kind = if i % 4 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                ctrl.push_request(mk_req(&m, i + 1, (i * 6151) % (1 << 25) * 128, kind, 1));
            }
            let mut out = Vec::new();
            let mut now = 0;
            while !ctrl.idle() && now < 2_000_000 {
                ctrl.tick(now);
                ctrl.drain_responses(&mut out);
                now += 1;
                if skip {
                    if let Some(ev) = ctrl.next_event(now) {
                        assert!(ev >= now, "horizon moved backwards");
                        now = ev;
                    }
                }
            }
            assert!(ctrl.idle(), "controller did not drain (skip={skip})");
            let done: Vec<(u64, Cycle)> = out.iter().map(|r| (r.id.0, r.done_cycle)).collect();
            (done, ctrl.channel.stats, ctrl.stats.refreshes)
        };
        let (resp_a, stats_a, ref_a) = drive(false);
        let (resp_b, stats_b, ref_b) = drive(true);
        assert_eq!(resp_a, resp_b, "responses diverged under skipping");
        assert_eq!(stats_a, stats_b, "channel stats diverged under skipping");
        assert_eq!(ref_a, ref_b);
        assert!(ref_a >= 1, "workload long enough to cross a refresh window");
    }

    #[test]
    fn next_event_none_when_idle_now_when_loaded() {
        let (mut ctrl, m) = mk_ctrl(false);
        // A fresh controller's only event is the refresh cadence.
        let t = *ctrl.channel.timing();
        assert_eq!(ctrl.next_event(0), Some(t.t_refi));
        ctrl.push_request(mk_req(&m, 1, 0x8000, ReqKind::Read, 1));
        assert_eq!(ctrl.next_event(5), Some(5), "queued work pins the horizon");
    }

    #[test]
    fn read_queue_admission_is_bounded() {
        let (mut ctrl, m) = mk_ctrl(false);
        for i in 0..200u64 {
            ctrl.push_request(mk_req(&m, i + 1, i * 128 * 977, ReqKind::Read, 1));
        }
        ctrl.tick(0);
        assert!(ctrl.policy.pending() <= 64);
        assert!(!ctrl.entry_q.is_empty(), "excess stays in the entry buffer");
    }
}
