//! The transaction-scheduler policy interface.
//!
//! A [`Policy`] owns the *read* requests waiting at one controller and is
//! asked, once per cycle while there is command-queue headroom, to pick the
//! next request to expand into DRAM commands. The [`PolicyView`] gives it
//! the controller-side state the paper's schedulers consult: per-bank
//! last-scheduled rows, command-queue scores (the Bank Table of
//! Section IV-B.2), the MERB counters (Section IV-D), the write-queue
//! occupancy (Section IV-E) and the warp-group arrival tracker.

use crate::group::GroupTracker;
use ldsim_gddr5::MerbTable;
use ldsim_types::addr::DecodedAddr;
use ldsim_types::clock::Cycle;
use ldsim_types::ids::WarpGroupId;
use ldsim_types::req::MemRequest;

/// DRAM-array-latency score of a row-hit request (Section IV-B.1: tCAS-only,
/// 12 ns).
pub const SCORE_HIT: u32 = 1;
/// Score of a row-miss request (tRP + tRCD + tCAS, 36 ns — 3x a hit).
pub const SCORE_MISS: u32 = 3;

/// Per-bank controller state exposed to policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankSnapshot {
    /// Row that will be open once the already-queued commands drain — the
    /// row a newly scheduled request will find (Section IV-B.1: "whether the
    /// last request scheduled in that bank has a matching row-address").
    pub last_scheduled_row: Option<u32>,
    /// Sum of the scores of requests already sitting in this bank's command
    /// queue — the queuing-latency component of the Bank Table score.
    pub queue_score: u32,
    /// Number of command-queue entries in use.
    pub queue_len: usize,
    /// Command-queue slots still free.
    pub headroom: usize,
    /// Row-hit column commands scheduled since this bank's row last changed
    /// (the 5-bit MERB counter).
    pub hits_since_row_open: u8,
    /// Does the bank have any pending work (queued commands)?
    pub busy: bool,
}

/// Everything a policy may look at when picking a transaction.
pub struct PolicyView<'a> {
    pub now: Cycle,
    pub banks: &'a [BankSnapshot],
    /// Warp-group arrival bookkeeping (complete / partially served groups).
    pub groups: &'a GroupTracker,
    /// Current write-queue occupancy and the drain high watermark, for the
    /// WG-W policy (Section IV-E).
    pub write_q_len: usize,
    pub write_hi: usize,
    /// Entries of slack before the high watermark at which WG-W engages.
    pub wgw_margin: usize,
    /// The boot-time MERB table (Section IV-D).
    pub merb: &'a MerbTable,
}

impl<'a> PolicyView<'a> {
    /// Would `d` be a row-buffer hit if scheduled now (against the
    /// last-scheduled row of its bank)?
    #[inline]
    pub fn is_hit(&self, d: &DecodedAddr) -> bool {
        self.banks[d.bank.0 as usize].last_scheduled_row == Some(d.row)
    }

    /// DRAM-array score of a request (hit = 1, miss = 3).
    #[inline]
    pub fn array_score(&self, d: &DecodedAddr) -> u32 {
        if self.is_hit(d) {
            SCORE_HIT
        } else {
            SCORE_MISS
        }
    }

    /// Bank-Table score of one request: array score plus the queuing score
    /// of everything already in its bank's command queue.
    #[inline]
    pub fn request_score(&self, d: &DecodedAddr) -> u32 {
        self.array_score(d) + self.banks[d.bank.0 as usize].queue_score
    }

    /// Is there command-queue headroom to schedule `d` (3 slots for a miss —
    /// PRE + ACT + column — or 1 for a hit)?
    #[inline]
    pub fn headroom_ok(&self, d: &DecodedAddr) -> bool {
        let need = if self.is_hit(d) { 1 } else { 3 };
        self.banks[d.bank.0 as usize].headroom >= need
    }

    /// Number of banks with pending work, counting both queued commands and
    /// the policy's own waiting requests (the caller supplies a per-bank
    /// pending mask). This indexes the MERB table.
    pub fn banks_with_work(&self, policy_pending: impl Fn(usize) -> bool) -> usize {
        self.banks
            .iter()
            .enumerate()
            .filter(|(i, b)| b.busy || policy_pending(*i))
            .count()
    }

    /// Is the write queue close enough to its high watermark that a drain is
    /// imminent (the WG-W trigger)?
    #[inline]
    pub fn drain_imminent(&self) -> bool {
        self.write_q_len + self.wgw_margin >= self.write_hi
    }
}

/// A score-coordination message exchanged between controllers on the
/// dedicated all-to-all network (Section IV-C): the selected warp-group and
/// its expected local completion score at the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordMsg {
    pub wg: WarpGroupId,
    pub score: u32,
}

/// A transaction-scheduling policy. One instance lives in each controller
/// and owns the read requests waiting there.
pub trait Policy: Send {
    /// Display name, matching the paper's scheme labels.
    fn name(&self) -> &'static str;

    /// A read request entered the read queue.
    fn on_arrival(&mut self, req: MemRequest, now: Cycle);

    /// Number of requests waiting.
    fn pending(&self) -> usize;

    /// Pick (and remove) the next request to expand into commands. Must
    /// only return a request whose bank has command-queue headroom
    /// ([`PolicyView::headroom_ok`]); returning `None` leaves the command
    /// slot idle this cycle.
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest>;

    /// Remove and return every pending request of `wg` (used by the
    /// zero-divergence fast-track path).
    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest>;

    /// Deliver a coordination message from another controller (WG-M).
    fn on_coord(&mut self, _msg: CoordMsg, _now: Cycle) {}

    /// Notification that another warp now waits on one of `wg`'s in-flight
    /// lines (an L2 MSHR merge across warps) — the sharing signal of the
    /// paper's future-work extension (Section VIII). Default: ignored.
    fn on_shared(&mut self, _wg: WarpGroupId) {}

    /// Drain coordination messages this policy wants broadcast (WG-M).
    fn emit_coord(&mut self, _out: &mut Vec<CoordMsg>) {}

    /// If true, the controller routes *write* requests into the policy too
    /// and disables batch write draining (SBWAS interleaves writes with
    /// reads; Section VI-C.1).
    fn wants_writes(&self) -> bool {
        false
    }

    /// Does this bank index have requests pending in the policy? Used for
    /// the MERB bank-occupancy count.
    fn has_pending_for_bank(&self, bank: usize) -> bool;

    /// Diagnostic counters: (groups selected, MERB substitutions, WG-W
    /// priority grants, coordination caps applied). Zero for policies
    /// without these mechanisms.
    fn counters(&self) -> [u64; 4] {
        [0; 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;
    use ldsim_types::ids::{BankId, ChannelId};

    fn view_fixture(banks: &[BankSnapshot], groups: &GroupTracker, merb: &MerbTable) {
        let v = PolicyView {
            now: 0,
            banks,
            groups,
            write_q_len: 25,
            write_hi: 32,
            wgw_margin: 8,
            merb,
        };
        assert!(v.drain_imminent());
        let d = DecodedAddr {
            channel: ChannelId(0),
            bank: BankId(0),
            bank_group: 0,
            row: 7,
            col: 0,
        };
        assert!(v.is_hit(&d));
        assert_eq!(v.array_score(&d), SCORE_HIT);
        assert_eq!(v.request_score(&d), SCORE_HIT + 5);
        assert!(v.headroom_ok(&d));
        let miss = DecodedAddr { row: 9, ..d };
        assert_eq!(v.array_score(&miss), SCORE_MISS);
        assert!(!v.headroom_ok(&miss), "miss needs 3 slots, only 2 free");
        assert_eq!(v.banks_with_work(|i| i == 3), 2);
    }

    #[test]
    fn view_helpers() {
        let mut banks = vec![BankSnapshot::default(); 16];
        banks[0] = BankSnapshot {
            last_scheduled_row: Some(7),
            queue_score: 5,
            queue_len: 6,
            headroom: 2,
            hits_since_row_open: 3,
            busy: true,
        };
        let groups = GroupTracker::default();
        let merb = MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16);
        view_fixture(&banks, &groups, &merb);
    }
}
