//! Baseline transaction-scheduling policies.
//!
//! * [`Fcfs`] — strict arrival order; the paper's motivation notes it is
//!   both divergence-blind (queues interleave warps anyway) and terrible
//!   for bandwidth (Section III-A).
//! * [`FrFcfs`] — row hits first, then oldest \[Rixner+ ISCA'00\].
//! * [`Gmc`] — the throughput-optimised baseline of Section II-C: row-hit
//!   streams with a maximum streak length, bank interleaving, and an
//!   age-based starvation threshold.
//! * [`Wafcfs`] — warp-groups serviced strictly in completion order
//!   \[Yuan+ MICRO'08\], Section VI-C.2.
//! * [`Sbwas`] — per-bank potential-function choice between the oldest
//!   row-hit and the row-miss of the warp with fewest requests remaining
//!   \[Lakshminarayana+ CAL'11\], Section VI-C.1. Writes are interleaved
//!   with reads (no batch draining), as the paper describes.

use crate::policy::{CoordMsg, Policy, PolicyView};
use ldsim_types::clock::Cycle;
use ldsim_types::config::{MemConfig, SchedulerKind};
use ldsim_types::ids::{GlobalWarpId, WarpGroupId};
use ldsim_types::req::MemRequest;
use ldsim_util::FnvHashMap;
use std::collections::{HashMap, VecDeque};

/// Arrival-ordered request storage with per-bank occupancy counts, shared by
/// the baseline policies. Backed by a `VecDeque` so the common oldest-first
/// removal shifts nothing (and a mid-queue removal shifts only the shorter
/// side) while iteration stays in strict arrival order.
#[derive(Debug, Default)]
pub struct ReqStore {
    reqs: VecDeque<MemRequest>,
    bank_count: Vec<usize>,
}

impl ReqStore {
    pub fn with_banks(n: usize) -> Self {
        Self {
            reqs: VecDeque::new(),
            bank_count: vec![0; n],
        }
    }

    pub fn push(&mut self, req: MemRequest) {
        self.ensure_banks(req.decoded.bank.0 as usize + 1);
        self.bank_count[req.decoded.bank.0 as usize] += 1;
        self.reqs.push_back(req);
    }

    fn ensure_banks(&mut self, n: usize) {
        if self.bank_count.len() < n {
            self.bank_count.resize(n, 0);
        }
    }

    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, MemRequest> {
        self.reqs.iter()
    }

    pub fn get(&self, idx: usize) -> Option<&MemRequest> {
        self.reqs.get(idx)
    }

    /// Remove by position (arrival order preserved for the rest).
    pub fn remove(&mut self, idx: usize) -> MemRequest {
        let r = self.reqs.remove(idx).expect("ReqStore index in bounds");
        self.bank_count[r.decoded.bank.0 as usize] -= 1;
        r
    }

    pub fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.reqs.len() {
            if self.reqs[i].wg == wg {
                out.push(self.remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    pub fn bank_pending(&self, bank: usize) -> bool {
        self.bank_count.get(bank).copied().unwrap_or(0) > 0
    }
}

// ---------------------------------------------------------------------------
// FCFS
// ---------------------------------------------------------------------------

/// Strict first-come first-served over individual requests.
#[derive(Debug, Default)]
pub struct Fcfs {
    store: ReqStore,
}

impl Fcfs {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        // Strictly in order: the head must be schedulable or nothing is.
        let head = self.store.iter().next()?;
        if view.headroom_ok(&head.decoded) {
            Some(self.store.remove(0))
        } else {
            None
        }
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// FR-FCFS
// ---------------------------------------------------------------------------

/// First-ready FCFS: oldest row-hit first, else oldest request.
#[derive(Debug, Default)]
pub struct FrFcfs {
    store: ReqStore,
}

impl FrFcfs {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let mut fallback = None;
        for (i, r) in self.store.iter().enumerate() {
            if !view.headroom_ok(&r.decoded) {
                continue;
            }
            if view.is_hit(&r.decoded) {
                return Some(self.store.remove(i));
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
        }
        fallback.map(|i| self.store.remove(i))
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// GMC baseline
// ---------------------------------------------------------------------------

/// The throughput-optimised GPU memory controller baseline (Section II-C):
/// FR row-hit streams per bank, a maximum row-hit streak, and an age-based
/// starvation threshold.
#[derive(Debug)]
pub struct Gmc {
    store: ReqStore,
    max_streak: usize,
    age_threshold: Cycle,
}

impl Gmc {
    pub fn new(max_streak: usize, age_threshold: Cycle) -> Self {
        Self {
            store: ReqStore::default(),
            max_streak,
            age_threshold,
        }
    }

    pub fn from_config(mem: &MemConfig) -> Self {
        Self::new(mem.gmc_max_streak, mem.gmc_age_threshold)
    }
}

impl Policy for Gmc {
    fn name(&self) -> &'static str {
        "GMC"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        // 1. Starvation guard: the oldest request past the age threshold is
        //    force-scheduled regardless of row state.
        if let Some(r) = self.store.iter().next() {
            if view.now.saturating_sub(r.arrival_cycle) > self.age_threshold
                && view.headroom_ok(&r.decoded)
            {
                return Some(self.store.remove(0));
            }
        }
        // 2. Continue row-hit streams, but only while the bank's streak is
        //    under the limit. Oldest hit first (the per-bank stream heads
        //    are implicitly ordered by arrival).
        let mut fallback_other = None;
        let mut fallback_any = None;
        for (i, r) in self.store.iter().enumerate() {
            if !view.headroom_ok(&r.decoded) {
                continue;
            }
            let b = &view.banks[r.decoded.bank.0 as usize];
            let hit = view.is_hit(&r.decoded);
            if hit && (b.hits_since_row_open as usize) < self.max_streak {
                return Some(self.store.remove(i));
            }
            // A streak-exhausted hit must yield to other work first; it only
            // goes if nothing else can.
            if !hit && fallback_other.is_none() {
                fallback_other = Some(i);
            }
            if fallback_any.is_none() {
                fallback_any = Some(i);
            }
        }
        // 3. No stream to continue: start the oldest pending stream (or, as
        //    a last resort, keep streaming past the streak limit).
        fallback_other
            .or(fallback_any)
            .map(|i| self.store.remove(i))
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// WAFCFS
// ---------------------------------------------------------------------------

/// Warp-aware FCFS \[Yuan+\]: warp-groups are serviced whole, strictly in
/// the order their last request arrived (completion order); requests within
/// a group go in arrival order. The paper measures an 11.2% *slowdown* for
/// this scheme on irregular workloads (Section VI-C.2).
#[derive(Debug, Default)]
pub struct Wafcfs {
    store: ReqStore,
    active: Option<WarpGroupId>,
}

impl Wafcfs {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for Wafcfs {
    fn name(&self) -> &'static str {
        "WAFCFS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        // Finish the active group first, strictly in order.
        if let Some(wg) = self.active {
            if let Some((i, r)) = self.store.iter().enumerate().find(|(_, r)| r.wg == wg) {
                if view.headroom_ok(&r.decoded) {
                    return Some(self.store.remove(i));
                }
                return None;
            }
            self.active = None;
        }
        // Next: the oldest request whose group has fully arrived.
        for (i, r) in self.store.iter().enumerate() {
            if view.groups.is_complete(r.wg) {
                if view.headroom_ok(&r.decoded) {
                    self.active = Some(r.wg);
                    return Some(self.store.remove(i));
                }
                return None;
            }
        }
        // Deadlock avoidance: every queued group is partial (the read queue
        // filled with fragments) — fall back to the oldest request.
        let head = self.store.iter().next()?;
        if view.headroom_ok(&head.decoded) {
            Some(self.store.remove(0))
        } else {
            None
        }
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        if self.active == Some(wg) {
            self.active = None;
        }
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// SBWAS
// ---------------------------------------------------------------------------

/// Single-bank warp-aware scheduling \[Lakshminarayana+ CAL'11\]
/// (Section VI-C.1): per bank, a potential function arbitrates between the
/// oldest row-hit and the row-miss belonging to the warp with the fewest
/// requests remaining; `alpha` biases toward the latter. Writes interleave
/// with reads. We model the potential function as a remaining-request
/// threshold derived from alpha — the paper profiles alpha per application
/// from {0.25, 0.5, 0.75}.
#[derive(Debug)]
pub struct Sbwas {
    store: ReqStore,
    /// Shortest-warp preference threshold derived from alpha.
    threshold: usize,
    rotate: usize,
}

impl Sbwas {
    /// `alpha_q` in quarters: 1 => 0.25, 2 => 0.5, 3 => 0.75.
    pub fn new(alpha_q: u8) -> Self {
        let threshold = match alpha_q {
            0 | 1 => 1,
            2 => 3,
            _ => 6,
        };
        Self {
            store: ReqStore::default(),
            threshold,
            rotate: 0,
        }
    }

    /// Pending requests of the warp owning `wg`, across banks at this
    /// controller ("requests remaining").
    fn warp_remaining(&self, w: GlobalWarpId) -> usize {
        self.store.iter().filter(|r| r.wg.warp == w).count()
    }
}

impl Policy for Sbwas {
    fn name(&self) -> &'static str {
        "SBWAS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn wants_writes(&self) -> bool {
        true
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let nb = view.banks.len();
        for off in 0..nb {
            let bank = (self.rotate + off) % nb;
            if !self.store.bank_pending(bank) {
                continue;
            }
            // Oldest row-hit on this bank.
            let hit = self
                .store
                .iter()
                .enumerate()
                .find(|(_, r)| r.decoded.bank.0 as usize == bank && view.is_hit(&r.decoded));
            // Row-miss of the warp with fewest remaining requests.
            let miss = self
                .store
                .iter()
                .enumerate()
                .filter(|(_, r)| r.decoded.bank.0 as usize == bank && !view.is_hit(&r.decoded))
                .min_by_key(|(_, r)| self.warp_remaining(r.wg.warp));

            let choice = match (hit, miss) {
                (Some((hi, h)), Some((mi, m))) => {
                    // Potential function: favour the short warp's miss when
                    // it is short enough under the alpha-derived threshold.
                    if self.warp_remaining(m.wg.warp) <= self.threshold {
                        if view.headroom_ok(&m.decoded) {
                            Some(mi)
                        } else if view.headroom_ok(&h.decoded) {
                            Some(hi)
                        } else {
                            None
                        }
                    } else if view.headroom_ok(&h.decoded) {
                        Some(hi)
                    } else {
                        None
                    }
                }
                (Some((hi, h)), None) => view.headroom_ok(&h.decoded).then_some(hi),
                (None, Some((mi, m))) => view.headroom_ok(&m.decoded).then_some(mi),
                (None, None) => None,
            };
            if let Some(i) = choice {
                self.rotate = (bank + 1) % nb;
                return Some(self.store.remove(i));
            }
        }
        None
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// PAR-BS
// ---------------------------------------------------------------------------

/// Parallelism-aware batch scheduling \[Mutlu & Moscibroda ISCA'08\]
/// (discussed in Section VI-C.3). When no marked requests remain, up to
/// `marking_cap` oldest requests per (warp, bank) are marked as the new
/// batch; warps are ranked by the MAX rule (a warp's rank is its maximum
/// marked-request count over banks — fewer is better, preserving bank-level
/// parallelism); service order is marked-first, then row-hit, then rank,
/// then age. The paper's point: batches here group *across* warps per bank
/// for fairness, the opposite of warp-group batching — so it does not
/// address latency divergence.
#[derive(Debug)]
pub struct ParBs {
    store: ReqStore,
    marked: Vec<bool>,
    /// Warp rank at batch formation (lower = higher priority).
    rank: FnvHashMap<GlobalWarpId, u32>,
    marking_cap: usize,
    pub batches_formed: u64,
}

impl ParBs {
    pub fn new(marking_cap: usize) -> Self {
        Self {
            store: ReqStore::default(),
            marked: Vec::new(),
            rank: FnvHashMap::default(),
            marking_cap,
            batches_formed: 0,
        }
    }

    fn form_batch(&mut self) {
        self.batches_formed += 1;
        self.rank.clear();
        // Mark up to cap oldest requests per (warp, bank). (The map is
        // sorted before ranks are assigned, so its iteration order never
        // reaches an observable decision.)
        let mut per: FnvHashMap<(GlobalWarpId, u8), usize> = FnvHashMap::default();
        for (i, r) in self.store.iter().enumerate() {
            let key = (r.wg.warp, r.decoded.bank.0);
            let c = per.entry(key).or_insert(0);
            if *c < self.marking_cap {
                *c += 1;
                self.marked[i] = true;
            }
        }
        // MAX rule: rank by the warp's maximum marked count over banks.
        let mut max_per_warp: FnvHashMap<GlobalWarpId, usize> = FnvHashMap::default();
        for ((w, _), c) in per {
            let e = max_per_warp.entry(w).or_insert(0);
            *e = (*e).max(c);
        }
        let mut order: Vec<(usize, GlobalWarpId)> =
            max_per_warp.into_iter().map(|(w, c)| (c, w)).collect();
        order.sort_by_key(|&(c, w)| (c, w));
        for (rank, (_, w)) in order.into_iter().enumerate() {
            self.rank.insert(w, rank as u32);
        }
    }
}

impl Policy for ParBs {
    fn name(&self) -> &'static str {
        "PAR-BS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.store.push(req);
        self.marked.push(false);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        if self.store.is_empty() {
            return None;
        }
        if !self.marked.iter().any(|&m| m) {
            self.form_batch();
        }
        // (marked desc, hit desc, rank asc, age asc) over schedulable reqs.
        let mut best: Option<(usize, (u8, u8, u32, usize))> = None;
        for (i, r) in self.store.iter().enumerate() {
            if !view.headroom_ok(&r.decoded) {
                continue;
            }
            let key = (
                if self.marked[i] { 0u8 } else { 1 },
                if view.is_hit(&r.decoded) { 0u8 } else { 1 },
                *self.rank.get(&r.wg.warp).unwrap_or(&u32::MAX),
                i,
            );
            if best.map(|(_, bk)| key < bk).unwrap_or(true) {
                best = Some((i, key));
            }
        }
        let (i, _) = best?;
        self.marked.remove(i);
        Some(self.store.remove(i))
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.store.len() {
            if self.store.get(i).is_some_and(|r| r.wg == wg) {
                self.marked.remove(i);
                out.push(self.store.remove(i));
            } else {
                i += 1;
            }
        }
        out
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// ATLAS-lite
// ---------------------------------------------------------------------------

/// Least-attained-service scheduling in the spirit of ATLAS
/// \[Kim+ HPCA'10\] (Section VI-C.3). Attained service (serviced requests)
/// is accumulated per warp over an epoch; at each epoch boundary warps are
/// re-ranked ascending by attained service, and the rank orders request
/// selection (row hits break ties within a rank, then age). The paper's
/// criticism — epochs are far too coarse to help individual warp-groups —
/// is directly observable by comparing this scheme with WG-M.
#[derive(Debug)]
pub struct AtlasLite {
    store: ReqStore,
    /// Service accumulated in the current epoch. Sorted by (service, warp)
    /// at each epoch roll, so map iteration order is unobservable.
    attained: FnvHashMap<GlobalWarpId, u64>,
    /// Rank assigned at the last epoch boundary (lower = served first).
    rank: FnvHashMap<GlobalWarpId, u32>,
    epoch: Cycle,
    next_epoch: Cycle,
    pub epochs: u64,
}

impl AtlasLite {
    pub fn new(epoch: Cycle) -> Self {
        Self {
            store: ReqStore::default(),
            attained: FnvHashMap::default(),
            rank: FnvHashMap::default(),
            epoch,
            next_epoch: 0,
            epochs: 0,
        }
    }

    fn roll_epoch(&mut self, now: Cycle) {
        if now < self.next_epoch {
            return;
        }
        self.next_epoch = now + self.epoch;
        self.epochs += 1;
        let mut order: Vec<(u64, GlobalWarpId)> =
            self.attained.iter().map(|(w, &s)| (s, *w)).collect();
        order.sort_by_key(|&(s, w)| (s, w));
        self.rank.clear();
        for (r, (_, w)) in order.into_iter().enumerate() {
            self.rank.insert(w, r as u32);
        }
        self.attained.clear();
    }
}

impl Policy for AtlasLite {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn on_arrival(&mut self, req: MemRequest, _now: Cycle) {
        self.attained.entry(req.wg.warp).or_insert(0);
        self.store.push(req);
    }

    fn pending(&self) -> usize {
        self.store.len()
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        self.roll_epoch(view.now);
        let mut best: Option<(usize, (u32, u8, usize))> = None;
        for (i, r) in self.store.iter().enumerate() {
            if !view.headroom_ok(&r.decoded) {
                continue;
            }
            let key = (
                *self.rank.get(&r.wg.warp).unwrap_or(&0),
                if view.is_hit(&r.decoded) { 0u8 } else { 1 },
                i,
            );
            if best.map(|(_, bk)| key < bk).unwrap_or(true) {
                best = Some((i, key));
            }
        }
        let (i, _) = best?;
        let r = self.store.remove(i);
        *self.attained.entry(r.wg.warp).or_insert(0) += 1;
        Some(r)
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        self.store.remove_group(wg)
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.store.bank_pending(bank)
    }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

/// Build a baseline policy for `kind`, or `None` if the kind belongs to the
/// warp-aware family implemented in `ldsim-warpsched`.
pub fn make_baseline_policy(kind: SchedulerKind, mem: &MemConfig) -> Option<Box<dyn Policy>> {
    match kind {
        SchedulerKind::Fcfs => Some(Box::new(Fcfs::new())),
        SchedulerKind::FrFcfs => Some(Box::new(FrFcfs::new())),
        SchedulerKind::Gmc => Some(Box::new(Gmc::from_config(mem))),
        SchedulerKind::Wafcfs => Some(Box::new(Wafcfs::new())),
        SchedulerKind::Sbwas { alpha_q } => Some(Box::new(Sbwas::new(alpha_q))),
        // The zero-divergence ideal rides on the GMC ordering; the fast
        // track happens in the controller.
        SchedulerKind::ZeroDivergence => Some(Box::new(Gmc::from_config(mem))),
        SchedulerKind::ParBs => Some(Box::new(ParBs::new(5))),
        SchedulerKind::AtlasLite => Some(Box::new(AtlasLite::new(10_000))),
        SchedulerKind::WgShared => None,
        SchedulerKind::Wg | SchedulerKind::WgM | SchedulerKind::WgBw | SchedulerKind::WgW => None,
    }
}

/// Unused-import shim so `CoordMsg`/`HashMap` stay available to doctests and
/// future policies without warnings.
#[doc(hidden)]
pub fn _coord_msg_type_holder(_: Option<(CoordMsg, HashMap<u8, u8>)>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupTracker;
    use crate::policy::BankSnapshot;
    use ldsim_gddr5::MerbTable;
    use ldsim_types::addr::AddressMapper;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;
    use ldsim_types::ids::RequestId;
    use ldsim_types::req::ReqKind;

    struct Fixture {
        banks: Vec<BankSnapshot>,
        groups: GroupTracker,
        merb: MerbTable,
        mapper: AddressMapper,
        next_id: u64,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                banks: vec![
                    BankSnapshot {
                        headroom: 8,
                        ..Default::default()
                    };
                    16
                ],
                groups: GroupTracker::default(),
                merb: MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16),
                mapper: AddressMapper::new(&MemConfig::default(), 128),
                next_id: 0,
            }
        }

        fn view(&self, now: Cycle) -> PolicyView<'_> {
            PolicyView {
                now,
                banks: &self.banks,
                groups: &self.groups,
                write_q_len: 0,
                write_hi: 32,
                wgw_margin: 8,
                merb: &self.merb,
            }
        }

        fn req(&mut self, addr: u64, wg: WarpGroupId, size: u16, arrival: Cycle) -> MemRequest {
            self.next_id += 1;
            MemRequest {
                id: RequestId(self.next_id),
                kind: ReqKind::Read,
                line_addr: self.mapper.line_addr(addr),
                decoded: self.mapper.decode(addr),
                wg,
                last_of_group: false,
                group_size_on_channel: size,
                issue_cycle: 0,
                arrival_cycle: arrival,
            }
        }

        /// Mark the bank of `addr` as having `row` scheduled last.
        fn open_row_for(&mut self, addr: u64) {
            let d = self.mapper.decode(addr);
            self.banks[d.bank.0 as usize].last_scheduled_row = Some(d.row);
        }
    }

    fn wg(sm: u16, warp: u16, serial: u32) -> WarpGroupId {
        WarpGroupId::new(GlobalWarpId::new(sm, warp), serial)
    }

    #[test]
    fn fcfs_is_strictly_ordered() {
        let mut f = Fixture::new();
        let mut p = Fcfs::new();
        let a = f.req(0x1000, wg(0, 0, 0), 1, 0);
        let b = f.req(0x2000, wg(0, 1, 0), 1, 1);
        let (ida, idb) = (a.id, b.id);
        p.on_arrival(a, 0);
        p.on_arrival(b, 1);
        let v = f.view(10);
        assert_eq!(p.pick(&v).unwrap().id, ida);
        assert_eq!(p.pick(&v).unwrap().id, idb);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let mut f = Fixture::new();
        let mut p = FrFcfs::new();
        // First request is a miss (row not open); second hits an open row.
        let miss = f.req(0x1000, wg(0, 0, 0), 1, 0);
        let hit = f.req(0x40_0000, wg(0, 1, 0), 1, 1);
        f.open_row_for(0x40_0000);
        // Make sure the fixture is meaningful: different banks or rows.
        let (idm, idh) = (miss.id, hit.id);
        p.on_arrival(miss, 0);
        p.on_arrival(hit, 1);
        let v = f.view(10);
        let first = p.pick(&v).unwrap();
        if f.mapper.decode(0x1000).bank != f.mapper.decode(0x40_0000).bank {
            assert_eq!(first.id, idh, "hit must be preferred over older miss");
            assert_eq!(p.pick(&v).unwrap().id, idm);
        }
    }

    #[test]
    fn gmc_respects_streak_limit() {
        let mut f = Fixture::new();
        let mut p = Gmc::new(4, 100_000);
        f.open_row_for(0x40_0000);
        let d = f.mapper.decode(0x40_0000);
        // A hit available, but the bank's streak is exhausted.
        f.banks[d.bank.0 as usize].hits_since_row_open = 4;
        let hit = f.req(0x40_0000, wg(0, 0, 0), 1, 0);
        let idh = hit.id;
        p.on_arrival(hit, 0);
        let other = f.req(0x123_4000, wg(0, 1, 0), 1, 1);
        let ido = other.id;
        let same_bank = f.mapper.decode(0x123_4000).bank == d.bank;
        p.on_arrival(other, 1);
        let v = f.view(10);
        let first = p.pick(&v).unwrap();
        if !same_bank {
            // Streak exhausted: the scheduler must start a new stream (the
            // oldest non-hit), not continue the hit.
            assert_eq!(first.id, ido);
        } else {
            let _ = idh;
        }
    }

    #[test]
    fn gmc_age_threshold_breaks_streams() {
        let mut f = Fixture::new();
        let mut p = Gmc::new(16, 100);
        f.open_row_for(0x40_0000);
        let old_miss = f.req(0x1000, wg(0, 0, 0), 1, 0);
        let fresh_hit = f.req(0x40_0000, wg(0, 1, 0), 1, 190);
        let (ido, _idf) = (old_miss.id, fresh_hit.id);
        p.on_arrival(old_miss, 0);
        p.on_arrival(fresh_hit, 190);
        // Old request is 200 cycles old: force-prioritised over the hit.
        let v = f.view(200);
        assert_eq!(p.pick(&v).unwrap().id, ido);
    }

    #[test]
    fn wafcfs_services_complete_groups_in_order() {
        let mut f = Fixture::new();
        let mut p = Wafcfs::new();
        let g1 = wg(0, 0, 0);
        let g2 = wg(0, 1, 0);
        // g1 arrives first but is incomplete (1/2 arrived); g2 is complete.
        let r1 = f.req(0x1000, g1, 2, 0);
        let r2 = f.req(0x5000, g2, 1, 1);
        f.groups.on_arrival(&r1);
        f.groups.on_arrival(&r2);
        let (id1, id2) = (r1.id, r2.id);
        p.on_arrival(r1, 0);
        p.on_arrival(r2, 1);
        let v = f.view(10);
        assert_eq!(
            p.pick(&v).unwrap().id,
            id2,
            "complete group must be serviced before incomplete older group"
        );
        // Now complete g1 and it becomes eligible.
        let r3 = f.req(0x2000, g1, 2, 5);
        f.groups.on_arrival(&r3);
        let id3 = r3.id;
        p.on_arrival(r3, 5);
        let v = f.view(20);
        let a = p.pick(&v).unwrap().id;
        let b = p.pick(&v).unwrap().id;
        assert_eq!(
            [a, b],
            [id1, id3],
            "group requests must be serviced in arrival order"
        );
    }

    #[test]
    fn sbwas_prefers_short_warp_miss_at_high_alpha() {
        let mut f = Fixture::new();
        let mut p = Sbwas::new(3); // alpha = 0.75 => threshold 6
        f.open_row_for(0x40_0000);
        let d = f.mapper.decode(0x40_0000);
        // A long warp with a row hit, a short warp with a miss on same bank.
        let long_warp = GlobalWarpId::new(0, 0);
        for s in 0..8 {
            let r = f.req(0x40_0000, WarpGroupId::new(long_warp, s), 8, 0);
            p.on_arrival(r, 0);
        }
        // Find a miss address on the same bank, different row.
        let mut miss_addr = 0;
        for cand in (0..200u64).map(|i| 0x40_0000 + (i + 1) * 0x40_000) {
            let dd = f.mapper.decode(cand);
            if dd.bank == d.bank && dd.channel == d.channel && dd.row != d.row {
                miss_addr = cand;
                break;
            }
        }
        assert_ne!(
            miss_addr, 0,
            "fixture needs a same-bank different-row address"
        );
        let short = f.req(miss_addr, wg(1, 1, 0), 1, 1);
        let ids = short.id;
        p.on_arrival(short, 1);
        let v = f.view(10);
        // Keep picking until the short warp's miss shows up; with alpha=0.75
        // it must come before the 8 hits are exhausted.
        let mut found_at = None;
        for i in 0..9 {
            let r = p.pick(&v).unwrap();
            if r.id == ids {
                found_at = Some(i);
                break;
            }
        }
        assert!(
            matches!(found_at, Some(i) if i < 8),
            "short warp starved: {found_at:?}"
        );
    }

    #[test]
    fn factory_covers_baselines_only() {
        let mem = MemConfig::default();
        for k in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::Gmc,
            SchedulerKind::Wafcfs,
            SchedulerKind::Sbwas { alpha_q: 2 },
            SchedulerKind::ZeroDivergence,
            SchedulerKind::ParBs,
        ] {
            assert!(make_baseline_policy(k, &mem).is_some(), "{k:?}");
        }
        for k in [
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
            SchedulerKind::WgShared,
        ] {
            assert!(make_baseline_policy(k, &mem).is_none(), "{k:?}");
        }
    }

    #[test]
    fn parbs_marks_batches_and_respects_max_rule() {
        let mut f = Fixture::new();
        let mut p = ParBs::new(2);
        // Warp A: 4 requests on one bank (max marked = 2 after cap).
        // Warp B: 1 request on another bank (max marked = 1 -> higher rank).
        let wa = wg(0, 0, 0);
        let wb = wg(0, 1, 0);
        let mut a_reqs = Vec::new();
        for i in 0..4 {
            let r = f.req(0x1000 + i * 0x40_000, wa, 4, i);
            a_reqs.push(r.id);
            p.on_arrival(r, i);
        }
        let rb = f.req(0x9_0000, wb, 1, 10);
        let idb = rb.id;
        let same_bank = f.mapper.decode(0x9_0000).bank == f.mapper.decode(0x1000).bank;
        p.on_arrival(rb, 10);
        let v = f.view(20);
        let first = p.pick(&v).unwrap();
        assert_eq!(p.batches_formed, 1);
        if !same_bank {
            // B has the lower MAX-rule rank: serviced first within the batch.
            assert_eq!(first.id, idb, "MAX rule must favour the light warp");
        }
        // Batch is eventually exhausted and a new one forms.
        let mut picks = 1;
        while p.pick(&v).is_some() {
            picks += 1;
        }
        assert_eq!(picks, 5);
    }

    #[test]
    fn parbs_marked_requests_precede_unmarked() {
        let mut f = Fixture::new();
        let mut p = ParBs::new(1);
        let wa = wg(2, 0, 0);
        let r1 = f.req(0x1000, wa, 2, 0);
        let r2 = f.req(0x2000, wa, 2, 1);
        let (id1, _id2) = (r1.id, r2.id);
        let same_bank = r1.decoded.bank == r2.decoded.bank;
        p.on_arrival(r1, 0);
        p.on_arrival(r2, 1);
        let v = f.view(5);
        let first = p.pick(&v).unwrap();
        if same_bank {
            // cap 1: only the older request is marked.
            assert_eq!(first.id, id1);
        }
        assert!(p.pick(&v).is_some());
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn atlas_prioritises_least_attained_warp_after_epoch() {
        let mut f = Fixture::new();
        let mut p = AtlasLite::new(100);
        let hungry = wg(0, 0, 0); // will be serviced a lot in epoch 1
        let starved = wg(0, 1, 0);
        for i in 0..6 {
            let r = f.req(0x1000 * (i + 1), hungry, 6, i);
            p.on_arrival(r, i);
        }
        let rs = f.req(0x90_0000, starved, 1, 3);
        let ids = rs.id;
        p.on_arrival(rs, 3);
        // Epoch 1 (rank map empty): pure hit/age order. Service 4 requests.
        let v = f.view(10);
        for _ in 0..4 {
            p.pick(&v).unwrap();
        }
        // Epoch rolls at t >= 100: the starved warp has lower attained
        // service and must now be ranked first.
        let v = f.view(150);
        let first = p.pick(&v).unwrap();
        assert!(p.epochs >= 2);
        // `starved` has attained <= hungry; if it was serviced in epoch 1
        // the ordering may tie — accept either but require that once ranks
        // exist, the lowest-rank warp goes first.
        if first.id != ids {
            // starved must then already have been serviced in epoch 1
            assert!(p.pending() < 3);
        }
    }

    #[test]
    fn atlas_epoch_counter_advances() {
        let mut f = Fixture::new();
        let mut p = AtlasLite::new(50);
        let g = wg(1, 1, 0);
        for i in 0..3 {
            let r = f.req(0x2000 * (i + 1), g, 3, i);
            p.on_arrival(r, i);
        }
        for (t, _) in (0..3).zip(0..) {
            let v = f.view(t * 60);
            p.pick(&v).unwrap();
        }
        assert!(p.epochs >= 3);
    }

    #[test]
    fn remove_group_extracts_all_members() {
        let mut f = Fixture::new();
        let mut p = FrFcfs::new();
        let g = wg(3, 3, 1);
        for i in 0..4 {
            let r = f.req(0x1000 * (i + 1), g, 4, i);
            p.on_arrival(r, i);
        }
        let other = f.req(0x9_0000, wg(4, 4, 0), 1, 10);
        p.on_arrival(other, 10);
        let removed = p.remove_group(g);
        assert_eq!(removed.len(), 4);
        assert_eq!(p.pending(), 1);
    }
}
