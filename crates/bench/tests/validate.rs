//! Tier-1 wrapper around the model-validation suite: the Tiny-scale
//! checks must pass under `cargo test`, not only in the standalone
//! `validate` binary, so a timing-model drift fails the ordinary test run.

use ldsim_bench::validate::{run_scale, to_jsonl};
use ldsim_workloads::Scale;

#[test]
fn tiny_validation_suite_passes() {
    let rows = run_scale(Scale::Tiny);
    let failed: Vec<&str> = rows.iter().filter(|r| !r.pass).map(|r| r.check).collect();
    assert!(failed.is_empty(), "failed validation checks: {failed:?}");
    // The suite covers every regime of the latency ladder.
    for expected in [
        "serial_closed_bank",
        "rowhit_open_row",
        "rowmiss_precharge",
        "conflict_gap",
        "l2_hit",
        "bypass_row_hit",
        "loaded_random_p50",
    ] {
        assert!(
            rows.iter().any(|r| r.check == expected),
            "missing check {expected}"
        );
    }
}

#[test]
fn tiny_rows_match_the_committed_golden_bands() {
    // The golden file is the validate bin's byte-exact output at
    // tiny+small; the tiny prefix must match what this build produces, so
    // a band or measurement drift fails here before CI diffs the file.
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../golden/validate_bands.jsonl"),
    )
    .expect("golden/validate_bands.jsonl must be committed");
    let tiny_golden: String = golden
        .lines()
        .filter(|l| l.contains("\"scale\":\"tiny\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let produced = to_jsonl(&run_scale(Scale::Tiny));
    assert_eq!(
        produced, tiny_golden,
        "tiny validation rows drifted from golden/validate_bands.jsonl \
         (regenerate with `validate tiny small --out golden` after verifying \
         the change is intentional, and rename the file)"
    );
}
