//! End-to-end tests of the one-command reproduction pipeline: cold-vs-warm
//! bit-exactness (including trace hashes round-tripping through the cell
//! cache), and crash-resume against the real `repro` binary.

use ldsim_bench::figures::registry;
use ldsim_system::sweep::{run_sweep, FigureSpec, SweepConfig, ENGINE_SALT};
use ldsim_system::RunOpts;
use ldsim_workloads::Scale;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The in-process tests flip the process-wide [`RunOpts`]; the harness
/// runs tests concurrently, so they serialise on this.
static OPTS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldsim-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn specs_named(scale: Scale, seed: u64, names: &[&str]) -> Vec<FigureSpec> {
    registry(scale, seed)
        .into_iter()
        .filter(|s| names.contains(&s.name))
        .collect()
}

fn render_all(specs: &[FigureSpec], store: &ldsim_system::CellStore, dir: &Path) {
    for s in specs {
        (s.render)(store, dir);
    }
}

fn read(dir: &Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("missing {}: {e}", dir.join(file).display()))
}

/// Cold sweep, then a fully-warm sweep from the cache, must render
/// byte-identical figure JSONL — with event tracing armed, so the warm
/// rows' `trace_hash` values (u64s too big for f64) prove the cache
/// round-trip is exact, and that cached runs carry the same trace hashes
/// as fresh ones.
#[test]
fn cold_and_warm_renders_are_byte_identical_with_trace_hashes() {
    let _guard = OPTS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp("repro-coldwarm");
    let cache = dir.join("cellcache.jsonl");
    let (scale, seed) = (Scale::Tiny, 11);
    // fig04 includes a tweaked cell (perfect coalescing) and the
    // ZeroDivergence scheduler; fig10 is a full PAPER_SCHEDULERS grid.
    let specs = specs_named(scale, seed, &["fig02", "fig04", "fig10"]);
    assert_eq!(specs.len(), 3);
    let cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();

    ldsim_system::set_run_opts(RunOpts {
        trace: true,
        ..RunOpts::default()
    });
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        ..SweepConfig::default()
    };
    let (store, stats) = run_sweep(&cells, &cfg);
    assert_eq!(stats.from_cache, 0);
    assert_eq!(stats.simulated, stats.unique);
    let cold_dir = dir.join("cold");
    render_all(&specs, &store, &cold_dir);

    let (store2, stats2) = run_sweep(&cells, &cfg);
    assert_eq!(stats2.simulated, 0, "warm run must not simulate");
    assert_eq!(stats2.from_cache, stats.unique);
    let warm_dir = dir.join("warm");
    render_all(&specs, &store2, &warm_dir);
    ldsim_system::set_run_opts(RunOpts::default());

    for f in ["fig02.jsonl", "fig04.jsonl", "fig10.jsonl"] {
        let cold = read(&cold_dir, f);
        let warm = read(&warm_dir, f);
        assert_eq!(cold, warm, "{f}: warm render differs from cold");
        assert!(
            cold.lines().all(|l| l.contains("\"trace_hash\":")),
            "{f}: rows must carry trace hashes"
        );
        assert!(
            !cold.contains("\"trace_hash\":null"),
            "{f}: tracing was armed — no null hashes"
        );
    }
}

/// The run options are part of the cell key: an unarmed sweep over the
/// same figures must not reuse trace-armed cache rows (their results
/// differ — `trace_hash` present vs absent).
#[test]
fn run_options_partition_the_cache() {
    let _guard = OPTS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp("repro-opts");
    let cache = dir.join("cellcache.jsonl");
    let specs = specs_named(Scale::Tiny, 13, &["fig02"]);
    let cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        ..SweepConfig::default()
    };
    ldsim_system::set_run_opts(RunOpts {
        trace: true,
        ..RunOpts::default()
    });
    let (_, armed) = run_sweep(&cells, &cfg);
    assert_eq!(armed.simulated, armed.unique);
    ldsim_system::set_run_opts(RunOpts::default());
    let (_, unarmed) = run_sweep(&cells, &cfg);
    assert_eq!(
        unarmed.from_cache, 0,
        "trace-armed rows must not satisfy an unarmed sweep"
    );
    assert_eq!(unarmed.simulated, unarmed.unique);
}

fn repro(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("failed to spawn repro")
}

/// Kill the sweep mid-run (via the LDSIM_REPRO_MAX_SIM hook), then
/// `--resume`: the second invocation must pick up the cached cells, finish
/// the rest, and write figure files byte-identical to an uninterrupted
/// cold run in a separate directory.
#[test]
fn crashed_repro_resumes_to_identical_bytes() {
    let crashed = tmp("repro-crash");
    let clean = tmp("repro-clean");
    let (c, n) = (crashed.to_str().unwrap(), clean.to_str().unwrap());
    let common = ["tiny", "--seed", "5", "--only", "fig02,fig12"];

    let out = repro(
        &[&common[..], &["--out", c]].concat(),
        &[("LDSIM_REPRO_MAX_SIM", "3")],
    );
    assert!(out.status.success(), "crashed run failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 simulated"), "hook ignored: {stdout}");
    assert!(
        !crashed.join("fig02.jsonl").exists(),
        "interrupted run must not render partial figures"
    );
    assert!(
        crashed.join("cellcache").join("shards.meta").exists(),
        "the binary writes the sharded store"
    );

    let out = repro(&[&common[..], &["--out", c, "--resume"]].concat(), &[]);
    assert!(out.status.success(), "resume failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 from cache"), "no warm start: {stdout}");

    let out = repro(&[&common[..], &["--out", n, "--cold"]].concat(), &[]);
    assert!(out.status.success(), "clean run failed: {out:?}");

    for f in ["fig02.jsonl", "fig12.jsonl"] {
        assert_eq!(
            read(&crashed, f),
            read(&clean, f),
            "{f}: resumed bytes differ from a clean cold run"
        );
    }
}

/// `--cold` must invalidate previous results (by deleting the cache) and
/// `--hist` must be rejected outright.
#[test]
fn repro_cold_deletes_cache_and_hist_is_rejected() {
    let dir = tmp("repro-flags");
    let d = dir.to_str().unwrap();
    let out = repro(&["tiny", "--only", "fig12", "--out", d], &[]);
    assert!(out.status.success(), "{out:?}");
    assert!(dir.join("cellcache").join("shards.meta").exists());
    let out = repro(&["tiny", "--only", "fig12", "--out", d, "--cold"], &[]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("cold start: removed") && stdout.contains("0 from cache"),
        "--cold did not invalidate: {stdout}"
    );
    let out = repro(&["tiny", "--hist", "--out", d], &[]);
    assert!(!out.status.success(), "--hist must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("histreport"), "unhelpful error: {stderr}");
}

/// The engine salt in the binary is the one this test suite was built
/// against — a cache produced under a different salt is dead weight, never
/// wrong answers. (Full invalidation semantics are unit-tested in
/// `ldsim_system::sweep`; this pins the constant's shape so the CI cache
/// key extraction — grep over sweep.rs — cannot silently diverge.)
#[test]
fn engine_salt_is_nonempty_and_stable_format() {
    assert!(!ENGINE_SALT.is_empty());
    assert!(
        ENGINE_SALT
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-'),
        "salt must stay shell- and cache-key-safe: {ENGINE_SALT:?}"
    );
}
