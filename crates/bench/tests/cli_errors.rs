//! CLI error-path contract for the hand-rolled argument parsers.
//!
//! Bad input — a flag missing its value, a non-numeric number, an unknown
//! flag — must produce a *named* one-line error on stderr plus the usage
//! text and a nonzero exit, in both the `repro` orchestrator and the
//! shared-harness binaries (exercised through `perfreport`, which parses
//! argv before doing any work). A raw `expect` backtrace, or a silently
//! accepted typo, fails this suite.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

/// The error contract: nonzero exit, a named `error:` line mentioning the
/// offending flag, a usage line, and no panic backtrace.
fn assert_cli_error(bin: &str, args: &[&str], names: &str) {
    let out = run(bin, args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "{bin} {args:?}: must exit nonzero, got {:?}\nstderr: {stderr}",
        out.status
    );
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?}: must exit via the usage path (code 2), not a panic \
         (101)\nstderr: {stderr}"
    );
    let first = stderr.lines().next().unwrap_or("");
    assert!(
        first.starts_with("error: ") && first.contains(names),
        "{bin} {args:?}: first stderr line must be a named error mentioning \
         '{names}', got: {first}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: stderr must include the usage line\nstderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked at"),
        "{bin} {args:?}: raw panic leaked to the user\nstderr: {stderr}"
    );
}

#[test]
fn repro_rejects_bad_arguments_with_named_errors() {
    let bin = env!("CARGO_BIN_EXE_repro");
    // Value-less flag at the end of argv (the classic `--out` crash).
    assert_cli_error(bin, &["tiny", "--out"], "--out");
    assert_cli_error(bin, &["--seed"], "--seed");
    // Non-numeric values.
    assert_cli_error(bin, &["--seed", "eleven"], "--seed");
    assert_cli_error(bin, &["--jobs", "all"], "--jobs");
    assert_cli_error(bin, &["--jobs", "0"], "--jobs");
    assert_cli_error(bin, &["--threads", "fast"], "--threads");
    // Unknown flags must not be silently accepted.
    assert_cli_error(bin, &["--colde"], "--colde");
    // Contradictory and unsupported flags route through the same path.
    assert_cli_error(bin, &["--cold", "--resume"], "--cold");
    assert_cli_error(bin, &["--hist"], "--hist");
}

#[test]
fn shared_harness_rejects_bad_arguments_with_named_errors() {
    let bin = env!("CARGO_BIN_EXE_perfreport");
    assert_cli_error(bin, &["--seed"], "--seed");
    assert_cli_error(bin, &["--seed", "eleven"], "--seed");
    assert_cli_error(bin, &["--jobs", "-2"], "--jobs");
    assert_cli_error(bin, &["--threads", "0"], "--threads");
    assert_cli_error(bin, &["--threads"], "--threads");
    assert_cli_error(bin, &["smol"], "smol");
}

#[test]
fn trace_rejects_bad_arguments_with_named_errors() {
    let bin = env!("CARGO_BIN_EXE_trace");
    assert_cli_error(bin, &["--seed"], "--seed");
    assert_cli_error(bin, &["--seed", "eleven"], "--seed");
    assert_cli_error(bin, &["--scheduler", "wgx"], "--scheduler");
    assert_cli_error(bin, &["--threads", "nope"], "--threads");
    assert_cli_error(bin, &["--colde"], "--colde");
}

/// Asking for more partition threads than the machine has memory
/// partitions is not an error — the run proceeds at the capped width — but
/// it must say so, once, in the same voice as the invalid
/// `LDSIM_SIM_THREADS` warning. Silently dropping 93 of 99 requested
/// threads would read as a performance bug.
#[test]
fn oversubscribed_threads_warn_once_and_still_run() {
    let bin = env!("CARGO_BIN_EXE_trace");
    // `trace` writes results/ relative to the cwd: keep the repo clean.
    let dir = std::env::temp_dir().join(format!(
        "ldsim-cli-threads-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create temp cwd");
    let out = Command::new(bin)
        .args(["bfs", "tiny", "--threads", "99"])
        .current_dir(&dir)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        out.status.success(),
        "oversubscription is a warning, not an error\nstderr: {stderr}"
    );
    assert!(
        stderr.contains("99 simulation threads requested") && stderr.contains("capping at"),
        "stderr must carry the capping warning\nstderr: {stderr}"
    );
    assert_eq!(
        stderr.matches("capping at").count(),
        1,
        "the warning must fire once per process, not per run\nstderr: {stderr}"
    );
}
