//! Component microbenchmarks: the hot paths of the simulator.

use ldsim_bench::microbench::bench;
use ldsim_gddr5::{Channel, MerbTable};
use ldsim_gpu::cache::{Cache, Mshr};
use ldsim_gpu::coalescer::coalesce_into;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{GpuConfig, MemConfig, TimingParams};
use ldsim_types::ids::{BankId, LaneMask};
use std::hint::black_box;

fn bench_addr_decode() {
    let m = AddressMapper::new(&MemConfig::default(), 128);
    let mut x = 0x9E37_79B9u64;
    bench("addr/decode", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        m.decode(x & 0x3FFF_FFFF)
    });
    bench("addr/same_row_lines", || {
        m.same_row_lines(black_box(0x1234_5600))
    });
}

fn bench_coalescer() {
    let mut divergent = [0u64; 32];
    for (l, a) in divergent.iter_mut().enumerate() {
        *a = (l as u64) * 4096;
    }
    let mut unit = [0u64; 32];
    for (l, a) in unit.iter_mut().enumerate() {
        *a = 0x1000 + 4 * l as u64;
    }
    let mut scratch = Vec::with_capacity(32);
    bench("coalescer/divergent_32", || {
        coalesce_into(black_box(&divergent), LaneMask::ALL, 7, &mut scratch)
    });
    let mut scratch = Vec::with_capacity(32);
    bench("coalescer/unit_stride", || {
        coalesce_into(black_box(&unit), LaneMask::ALL, 7, &mut scratch)
    });
}

fn bench_cache() {
    let cfg = GpuConfig::default();
    let mut cache = Cache::new(&cfg.l2_slice);
    for l in 0..2048u64 {
        cache.fill(l, l % 3 == 0);
    }
    let mut x = 1u64;
    bench("cache/probe_l2", || {
        x = x.wrapping_mul(48271) % 4096;
        cache.probe(x, false)
    });
    let mut mshr: Mshr<u32> = Mshr::new(96);
    bench("cache/mshr_register_fill", || {
        mshr.register(black_box(7), 1);
        mshr.fill(7)
    });
}

fn bench_channel() {
    let mem = MemConfig::default();
    let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
    bench("channel/row_hit_stream", || {
        let mut ch = Channel::new(&mem, t);
        let mut now = 0;
        ch.issue_act(BankId(0), 1, now);
        now += t.t_rcd;
        for _ in 0..16 {
            while !ch.can_read(BankId(0), now) {
                now += 1;
            }
            ch.issue_read(BankId(0), now);
        }
        ch.stats.reads
    });
    bench("channel/row_hit_stream_audited", || {
        let mut ch = Channel::new(&mem, t);
        ch.enable_audit();
        let mut now = 0;
        ch.issue_act(BankId(0), 1, now);
        now += t.t_rcd;
        for _ in 0..16 {
            while !ch.can_read(BankId(0), now) {
                now += 1;
            }
            ch.issue_read(BankId(0), now);
        }
        ch.stats.reads
    });
    bench("channel/bank_interleaved_misses", || {
        let mut ch = Channel::new(&mem, t);
        let mut now = 0;
        for bank in 0..16u8 {
            while !ch.can_act(BankId(bank), now) {
                now += 1;
            }
            ch.issue_act(BankId(bank), 3, now);
        }
        for bank in 0..16u8 {
            while !ch.can_read(BankId(bank), now) {
                now += 1;
            }
            ch.issue_read(BankId(bank), now);
        }
        now
    });
}

fn bench_merb() {
    let t = TimingParams::default();
    bench("merb/from_timing", || {
        MerbTable::from_timing(&t, ClockDomain::GDDR5, 16)
    });
}

fn main() {
    bench_addr_decode();
    bench_coalescer();
    bench_cache();
    bench_channel();
    bench_merb();
}
