//! Component microbenchmarks: the hot paths of the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldsim_gddr5::{Channel, MerbTable};
use ldsim_gpu::cache::{Cache, Mshr};
use ldsim_gpu::coalescer::coalesce_into;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{GpuConfig, MemConfig, TimingParams};
use ldsim_types::ids::{BankId, LaneMask};

fn bench_addr_decode(c: &mut Criterion) {
    let m = AddressMapper::new(&MemConfig::default(), 128);
    let mut x = 0x9E37_79B9u64;
    c.bench_function("addr/decode", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(m.decode(x & 0x3FFF_FFFF))
        })
    });
    c.bench_function("addr/same_row_lines", |b| {
        b.iter(|| black_box(m.same_row_lines(black_box(0x1234_5600))))
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let mut divergent = [0u64; 32];
    for (l, a) in divergent.iter_mut().enumerate() {
        *a = (l as u64) * 4096;
    }
    let mut unit = [0u64; 32];
    for (l, a) in unit.iter_mut().enumerate() {
        *a = 0x1000 + 4 * l as u64;
    }
    let mut scratch = Vec::with_capacity(32);
    c.bench_function("coalescer/divergent_32", |b| {
        b.iter(|| coalesce_into(black_box(&divergent), LaneMask::ALL, 7, &mut scratch))
    });
    c.bench_function("coalescer/unit_stride", |b| {
        b.iter(|| coalesce_into(black_box(&unit), LaneMask::ALL, 7, &mut scratch))
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = GpuConfig::default();
    let mut cache = Cache::new(&cfg.l2_slice);
    for l in 0..2048u64 {
        cache.fill(l, l % 3 == 0);
    }
    let mut x = 1u64;
    c.bench_function("cache/probe_l2", |b| {
        b.iter(|| {
            x = x.wrapping_mul(48271) % 4096;
            black_box(cache.probe(x, false))
        })
    });
    let mut mshr: Mshr<u32> = Mshr::new(96);
    c.bench_function("cache/mshr_register_fill", |b| {
        b.iter(|| {
            mshr.register(black_box(7), 1);
            black_box(mshr.fill(7))
        })
    });
}

fn bench_channel(c: &mut Criterion) {
    let mem = MemConfig::default();
    let t = TimingParams::default().in_cycles(ClockDomain::GDDR5);
    c.bench_function("channel/row_hit_stream", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&mem, t);
            let mut now = 0;
            ch.issue_act(BankId(0), 1, now);
            now += t.t_rcd;
            for _ in 0..16 {
                while !ch.can_read(BankId(0), now) {
                    now += 1;
                }
                ch.issue_read(BankId(0), now);
            }
            black_box(ch.stats.reads)
        })
    });
    c.bench_function("channel/bank_interleaved_misses", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&mem, t);
            let mut now = 0;
            for bank in 0..16u8 {
                while !ch.can_act(BankId(bank), now) {
                    now += 1;
                }
                ch.issue_act(BankId(bank), 3, now);
            }
            for bank in 0..16u8 {
                while !ch.can_read(BankId(bank), now) {
                    now += 1;
                }
                ch.issue_read(BankId(bank), now);
            }
            black_box(now)
        })
    });
}

fn bench_merb(c: &mut Criterion) {
    let t = TimingParams::default();
    c.bench_function("merb/from_timing", |b| {
        b.iter(|| black_box(MerbTable::from_timing(&t, ClockDomain::GDDR5, 16)))
    });
}

criterion_group!(
    benches,
    bench_addr_decode,
    bench_coalescer,
    bench_cache,
    bench_channel,
    bench_merb
);
criterion_main!(benches);
