//! Scheduler benchmarks: per-decision cost of each transaction-scheduling
//! policy on a loaded queue, and end-to-end simulator throughput per
//! scheme (one short irregular kernel per iteration).
//!
//! The `full_system/*` section doubles as the conformance-layer overhead
//! measurement: it times the same kernel with the auditor/tracer disabled
//! (the default), with auditing on, and with audit + trace on, and prints
//! the relative overhead of each against the disabled baseline.

use ldsim_bench::microbench::bench;
use ldsim_gddr5::MerbTable;
use ldsim_memctrl::{GroupTracker, Policy, PolicyView};
use ldsim_system::Simulator;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{MemConfig, SchedulerKind, SimConfig};
use ldsim_types::ids::{GlobalWarpId, RequestId, WarpGroupId};
use ldsim_types::req::{MemRequest, ReqKind};
use ldsim_warpsched::make_policy;
use ldsim_workloads::{benchmark, Scale};

/// Fill a policy with a realistic 64-entry backlog (mixed warp-groups).
fn loaded_policy(kind: SchedulerKind) -> (Box<dyn Policy>, GroupTracker) {
    let mem = MemConfig::default();
    let mapper = AddressMapper::new(&mem, 128);
    let mut policy = make_policy(kind, &mem);
    let mut groups = GroupTracker::default();
    let mut id = 0u64;
    for w in 0..16u16 {
        let size = 1 + (w % 6);
        for r in 0..size {
            id += 1;
            let addr = ((w as u64 * 977 + r as u64 * 131) % (1 << 22)) * 256;
            let req = MemRequest {
                id: RequestId(id),
                kind: ReqKind::Read,
                line_addr: mapper.line_addr(addr),
                decoded: mapper.decode(addr),
                wg: WarpGroupId::new(GlobalWarpId::new(w, 0), 0),
                last_of_group: r + 1 == size,
                group_size_on_channel: size,
                issue_cycle: 0,
                arrival_cycle: id,
            };
            groups.on_arrival(&req);
            policy.on_arrival(req, id);
        }
    }
    (policy, groups)
}

fn bench_policy_decisions() {
    let mem = MemConfig::default();
    let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, 16);
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::Gmc,
        SchedulerKind::Wafcfs,
        SchedulerKind::Sbwas { alpha_q: 2 },
        SchedulerKind::Wg,
        SchedulerKind::WgM,
        SchedulerKind::WgBw,
        SchedulerKind::WgW,
    ] {
        bench(&format!("policy_pick/{}", kind.name()), || {
            let (mut policy, groups) = loaded_policy(kind);
            let banks = vec![
                ldsim_memctrl::BankSnapshot {
                    headroom: 8,
                    ..Default::default()
                };
                16
            ];
            let view = PolicyView {
                now: 1000,
                banks: &banks,
                groups: &groups,
                write_q_len: 0,
                write_hi: 32,
                wgw_margin: 8,
                merb: &merb,
            };
            // Drain the whole backlog: 64 scheduling decisions.
            let mut drained = 0u32;
            while let Some(r) = policy.pick(&view) {
                std::hint::black_box(r);
                drained += 1;
            }
            drained
        });
    }
}

fn bench_full_system() {
    let kernel = benchmark("bfs", Scale::Tiny, 5).generate();
    for kind in [SchedulerKind::Gmc, SchedulerKind::WgW] {
        let base = bench(&format!("full_system_tiny_bfs/{}/off", kind.name()), || {
            let cfg = SimConfig::default().with_scheduler(kind);
            Simulator::new(cfg, &kernel).run().cycles
        });
        let audited = bench(
            &format!("full_system_tiny_bfs/{}/audit", kind.name()),
            || {
                let cfg = SimConfig::default().with_scheduler(kind).with_audit();
                Simulator::new(cfg, &kernel).run().cycles
            },
        );
        let traced = bench(
            &format!("full_system_tiny_bfs/{}/audit+trace", kind.name()),
            || {
                let cfg = SimConfig::default()
                    .with_scheduler(kind)
                    .with_audit()
                    .with_trace();
                Simulator::new(cfg, &kernel).run().cycles
            },
        );
        println!(
            "  conformance overhead vs disabled: audit {:+.1}%, audit+trace {:+.1}%",
            (audited / base - 1.0) * 100.0,
            (traced / base - 1.0) * 100.0
        );
    }
}

/// Wall-clock win of event-horizon fast-forwarding on low-occupancy
/// irregular workloads: the identical simulation with the skipping loop
/// (the default) vs the cycle-by-cycle reference loop. Results are
/// bit-exact; only time-to-answer differs.
fn bench_fast_forward() {
    for (bench_name, scale) in [
        ("nw", Scale::Tiny),
        ("sad", Scale::Tiny),
        ("bfs", Scale::Tiny),
    ] {
        let kernel = benchmark(bench_name, scale, 5).generate();
        let on = bench(&format!("fast_forward/{bench_name}/on"), || {
            let cfg = SimConfig::default().with_scheduler(SchedulerKind::Gmc);
            Simulator::new(cfg, &kernel).run().cycles
        });
        let off = bench(&format!("fast_forward/{bench_name}/off"), || {
            let cfg = SimConfig::default()
                .with_scheduler(SchedulerKind::Gmc)
                .with_fast_forward(false);
            Simulator::new(cfg, &kernel).run().cycles
        });
        println!("  fast-forward speedup on {bench_name}: {:.2}x", off / on);
    }
}

fn main() {
    bench_policy_decisions();
    bench_full_system();
    bench_fast_forward();
}
