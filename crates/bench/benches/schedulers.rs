//! Scheduler benchmarks: per-decision cost of each transaction-scheduling
//! policy on a loaded queue, and end-to-end simulator throughput per
//! scheme (one short irregular kernel per iteration).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ldsim_gddr5::MerbTable;
use ldsim_memctrl::{GroupTracker, Policy, PolicyView};
use ldsim_system::Simulator;
use ldsim_types::addr::AddressMapper;
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::{MemConfig, SchedulerKind, SimConfig};
use ldsim_types::ids::{GlobalWarpId, RequestId, WarpGroupId};
use ldsim_types::req::{MemRequest, ReqKind};
use ldsim_warpsched::make_policy;
use ldsim_workloads::{benchmark, Scale};

/// Fill a policy with a realistic 64-entry backlog (mixed warp-groups).
fn loaded_policy(kind: SchedulerKind) -> (Box<dyn Policy>, GroupTracker) {
    let mem = MemConfig::default();
    let mapper = AddressMapper::new(&mem, 128);
    let mut policy = make_policy(kind, &mem);
    let mut groups = GroupTracker::default();
    let mut id = 0u64;
    for w in 0..16u16 {
        let size = 1 + (w % 6);
        for r in 0..size {
            id += 1;
            let addr = ((w as u64 * 977 + r as u64 * 131) % (1 << 22)) * 256;
            let req = MemRequest {
                id: RequestId(id),
                kind: ReqKind::Read,
                line_addr: mapper.line_addr(addr),
                decoded: mapper.decode(addr),
                wg: WarpGroupId::new(GlobalWarpId::new(w, 0), 0),
                last_of_group: r + 1 == size,
                group_size_on_channel: size,
                issue_cycle: 0,
                arrival_cycle: id,
            };
            groups.on_arrival(&req);
            policy.on_arrival(req, id);
        }
    }
    (policy, groups)
}

fn bench_policy_decisions(c: &mut Criterion) {
    let mem = MemConfig::default();
    let merb = MerbTable::from_timing(&mem.timing, ClockDomain::GDDR5, 16);
    let mut group = c.benchmark_group("policy_pick");
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::Gmc,
        SchedulerKind::Wafcfs,
        SchedulerKind::Sbwas { alpha_q: 2 },
        SchedulerKind::Wg,
        SchedulerKind::WgM,
        SchedulerKind::WgBw,
        SchedulerKind::WgW,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || loaded_policy(kind),
                |(mut policy, groups)| {
                    let banks = vec![
                        ldsim_memctrl::BankSnapshot {
                            headroom: 8,
                            ..Default::default()
                        };
                        16
                    ];
                    let view = PolicyView {
                        now: 1000,
                        banks: &banks,
                        groups: &groups,
                        write_q_len: 0,
                        write_hi: 32,
                        wgw_margin: 8,
                        merb: &merb,
                    };
                    // Drain the whole backlog: 64 scheduling decisions.
                    while let Some(r) = policy.pick(&view) {
                        black_box(r);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let kernel = benchmark("bfs", Scale::Tiny, 5).generate();
    let mut group = c.benchmark_group("full_system_tiny_bfs");
    group.sample_size(10);
    for kind in [SchedulerKind::Gmc, SchedulerKind::WgW] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let cfg = SimConfig::default().with_scheduler(kind);
                black_box(Simulator::new(cfg, &kernel).run().cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_decisions, bench_full_system);
criterion_main!(benches);
