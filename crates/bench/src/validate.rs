//! Model validation: microbenchmark latencies vs. closed-form arithmetic.
//!
//! Runs the `mb_*` pointer-chase kernels (see `ldsim_workloads::microbench`)
//! and checks the simulator's modeled latencies against
//! [`AnalyticLatency`] — expectations derived *only* from `SimConfig`
//! knobs, never from simulator state. The idle-machine checks demand exact
//! equality, cycle for cycle: a one-cycle drift anywhere on the
//! SM→crossbar→L2→DRAM path fails the suite and the failing check names
//! the timing parameter it pins.
//!
//! Three check families:
//!
//! * **exact** — every `LoadRecord` of an idle chase equals the analytic
//!   value (`lo == hi == expected`);
//! * **hist** — the same samples pushed through [`Histogram::latency`]
//!   must report the analytic value at p50, pinning the log-bucket
//!   quantile semantics the results pipeline relies on;
//! * **loaded** — `mb_broadcast`/`mb_random` run the full grid; their
//!   p50/p99 have no closed form but must land in bands derived from the
//!   same arithmetic (and divergent chases must be slower than coalesced
//!   ones).
//!
//! Everything here is deterministic, so `results/validate.jsonl` is
//! byte-reproducible and CI diffs it against the committed
//! `golden/validate_bands.jsonl`. The same property holds per DRAM backend:
//! [`run_preset_ladder`] re-runs the idle exact checks on every
//! [`Preset`] (kernels rebuilt against that preset's address mapper) and
//! `results/validate_presets.jsonl` diffs against
//! `golden/validate_presets.jsonl`.
//!
//! Runs use refresh disabled: a dependent chase spans several tREFI
//! periods, and a refresh landing mid-chase would perturb the exact
//! checks. Everything else is the Table II default machine (GMC
//! scheduler), with the `TimingAuditor` armed.

use ldsim_gpu::LoadRecord;
use ldsim_system::{RunResult, Simulator};
use ldsim_types::analytic::AnalyticLatency;
use ldsim_types::config::{Preset, SimConfig};
use ldsim_types::stats::Histogram;
use ldsim_workloads::{benchmark, benchmark_with_mem, Scale};
use std::path::{Path, PathBuf};

/// One validation check's outcome.
#[derive(Debug, Clone)]
pub struct CheckRow {
    /// Stable check name (golden-file key).
    pub check: &'static str,
    /// DRAM backend preset the check ran on.
    pub preset: &'static str,
    /// The timing parameter (or path) this check pins.
    pub pins: &'static str,
    pub scale: &'static str,
    /// Accepted band; exact checks have `lo == hi`.
    pub lo: u64,
    pub hi: u64,
    pub measured: u64,
    pub pass: bool,
}

fn scale_name(s: Scale) -> &'static str {
    match s {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// The validation configuration: Table II defaults + GMC, refresh off,
/// auditor armed.
pub fn validate_config(bypass: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.mem.refresh_enabled = false;
    cfg.gpu.l2_bypass = bypass;
    cfg.audit = true;
    cfg
}

fn run(name: &str, scale: Scale, bypass: bool) -> (RunResult, Vec<LoadRecord>) {
    let kernel = benchmark(name, scale, 1).generate();
    let (res, recs) = Simulator::new(validate_config(bypass), &kernel).run_with_records();
    assert_eq!(
        res.audit_violations, 0,
        "{name}: DRAM protocol violations under the timing auditor"
    );
    assert!(!recs.is_empty(), "{name}: no load records");
    (res, recs)
}

/// Exact check: every sample must equal `expect`. On failure `measured`
/// carries the first deviating sample.
fn exact(
    check: &'static str,
    pins: &'static str,
    scale: Scale,
    expect: u64,
    samples: impl IntoIterator<Item = u64>,
) -> CheckRow {
    let mut measured = expect;
    let mut pass = true;
    let mut n = 0usize;
    for s in samples {
        n += 1;
        if s != expect && pass {
            pass = false;
            measured = s;
        }
    }
    if n == 0 {
        pass = false;
    }
    CheckRow {
        check,
        preset: "gddr5",
        pins,
        scale: scale_name(scale),
        lo: expect,
        hi: expect,
        measured,
        pass,
    }
}

/// Band check: `lo <= measured <= hi`.
fn band(
    check: &'static str,
    pins: &'static str,
    scale: Scale,
    lo: u64,
    hi: u64,
    measured: u64,
) -> CheckRow {
    CheckRow {
        check,
        preset: "gddr5",
        pins,
        scale: scale_name(scale),
        lo,
        hi,
        measured,
        pass: (lo..=hi).contains(&measured),
    }
}

/// p50 of `samples` through the results pipeline's log-bucketed histogram.
fn hist_p50(samples: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Histogram::latency();
    for s in samples {
        h.add(s);
    }
    h.quantile(0.5)
}

fn eff(r: &LoadRecord) -> u64 {
    r.effective_latency()
}

/// Run the full check suite at one scale.
pub fn run_scale(scale: Scale) -> Vec<CheckRow> {
    let a = AnalyticLatency::from_config(&validate_config(false));
    let mut rows = Vec::new();

    // Idle serial chase: every load opens a fresh closed bank.
    let (_, recs) = run("mb_serial", scale, false);
    rows.push(exact(
        "serial_closed_bank",
        "tRCD",
        scale,
        a.dram_closed(),
        recs.iter().map(eff),
    ));

    // Open/hit pairs: opener pays activate, second read is a pure row hit.
    let (_, recs) = run("mb_rowhit", scale, false);
    rows.push(exact(
        "rowhit_opener",
        "tRCD",
        scale,
        a.dram_closed(),
        recs.iter().step_by(2).map(eff),
    ));
    rows.push(exact(
        "rowhit_open_row",
        "tCAS",
        scale,
        a.dram_row_hit(),
        recs.iter().skip(1).step_by(2).map(eff),
    ));
    rows.push(band(
        "hist_rowhit_p50",
        "tCAS",
        scale,
        a.dram_row_hit(),
        a.dram_row_hit(),
        hist_p50(recs.iter().skip(1).step_by(2).map(eff)),
    ));

    // Open/conflict pairs: second read precharges the row the first opened.
    let (_, recs) = run("mb_rowmiss", scale, false);
    rows.push(exact(
        "rowmiss_precharge",
        "tRP",
        scale,
        a.dram_row_miss(),
        recs.iter().skip(1).step_by(2).map(eff),
    ));
    rows.push(band(
        "hist_rowmiss_p50",
        "tRP",
        scale,
        a.dram_row_miss(),
        a.dram_row_miss(),
        hist_p50(recs.iter().skip(1).step_by(2).map(eff)),
    ));

    // Intra-warp bank conflict: 8 rows of one bank serialise at tRC.
    let (_, recs) = run("mb_conflict", scale, false);
    rows.push(exact(
        "conflict_gap",
        "tRC",
        scale,
        a.conflict_gap(8),
        recs.iter().map(|r| r.dram_gap()),
    ));
    rows.push(exact(
        "conflict_total",
        "tRC",
        scale,
        a.dram_closed() + a.conflict_gap(8),
        recs.iter().map(eff),
    ));
    rows.push(band(
        "hist_conflict_gap_p50",
        "tRC",
        scale,
        a.conflict_gap(8),
        a.conflict_gap(8),
        hist_p50(recs.iter().map(|r| r.dram_gap())),
    ));

    // Prime/probe with the L2 on: probes are pure crossbar round trips.
    let (_, recs) = run("mb_l2hit", scale, false);
    let probes: Vec<&LoadRecord> = recs.iter().filter(|r| r.warp.sm.0 == 1).collect();
    rows.push(exact(
        "l2_hit",
        "xbar_latency",
        scale,
        a.l2_hit(),
        probes.iter().map(|r| eff(r)),
    ));
    rows.push(exact(
        "l2_hit_served_by_l2",
        "L2 path",
        scale,
        0,
        probes.iter().map(|r| r.dram_responses as u64),
    ));

    // Same shape with l2_bypass: probes must reach DRAM and find the
    // primed rows still open. (81 here would mean the bypass knob is
    // silently ignored.)
    let (_, recs) = run("mb_bypass", scale, true);
    let probes: Vec<&LoadRecord> = recs.iter().filter(|r| r.warp.sm.0 == 1).collect();
    rows.push(exact(
        "bypass_row_hit",
        "l2_bypass",
        scale,
        a.dram_row_hit(),
        probes.iter().map(|r| eff(r)),
    ));
    rows.push(exact(
        "bypass_served_by_dram",
        "l2_bypass",
        scale,
        1,
        probes.iter().map(|r| r.dram_responses as u64),
    ));

    // Loaded regimes: no closed form, but the distributions must land in
    // bands derived from the same arithmetic.
    let trc = a.bank_conflict_spacing();
    let (bres, _) = run("mb_broadcast", scale, false);
    rows.push(band(
        "loaded_broadcast_p50",
        "queueing < 2 tRC",
        scale,
        a.l2_hit(),
        a.dram_closed() + 2 * trc,
        bres.eff_p50,
    ));
    rows.push(band(
        "loaded_broadcast_p99",
        "tail < 4 tRC",
        scale,
        a.l2_hit(),
        a.dram_row_miss() + 4 * trc,
        bres.eff_p99,
    ));
    let (rres, _) = run("mb_random", scale, false);
    rows.push(band(
        "loaded_random_p50",
        "divergence",
        scale,
        a.dram_closed(),
        a.dram_row_miss() + 8 * trc,
        rres.eff_p50,
    ));
    rows.push(band(
        "loaded_random_gap_p50",
        "latency divergence",
        scale,
        1,
        8 * trc,
        rres.gap_p50,
    ));
    rows.push(band(
        "loaded_random_exceeds_broadcast",
        "divergence costs",
        scale,
        bres.eff_p50 + 1,
        a.dram_row_miss() + 8 * trc,
        rres.eff_p50,
    ));

    rows
}

/// The per-preset validation configuration: the preset's device description
/// over the default controller, refresh off, auditor armed — the exact
/// analogue of [`validate_config`] for a non-default backend.
pub fn preset_config(p: Preset) -> SimConfig {
    let mut cfg = SimConfig::default().with_preset(p);
    cfg.mem.refresh_enabled = false;
    cfg.audit = true;
    cfg
}

/// The idle latency ladder on one DRAM backend preset, checked exactly
/// (lo == hi) against [`AnalyticLatency`] closed forms under the armed
/// protocol auditor. The microbench kernels are rebuilt against the
/// preset's *own* address mapper ([`benchmark_with_mem`]), so a constructed
/// row hit or 8-way bank conflict lands where that backend says it does.
/// Always Tiny scale: idle-machine checks are scale-invariant.
pub fn run_preset_ladder(p: Preset) -> Vec<CheckRow> {
    let scale = Scale::Tiny;
    let cfg = preset_config(p);
    let a = AnalyticLatency::from_config(&cfg);
    let run = |name: &str| -> Vec<LoadRecord> {
        let kernel = benchmark_with_mem(name, scale, 1, &cfg.mem).generate();
        let (res, recs) = Simulator::new(cfg.clone(), &kernel).run_with_records();
        assert_eq!(
            res.audit_violations,
            0,
            "{name}@{}: DRAM protocol violations under the timing auditor",
            p.name()
        );
        assert!(!recs.is_empty(), "{name}@{}: no load records", p.name());
        recs
    };
    let mut rows = Vec::new();

    let recs = run("mb_serial");
    rows.push(exact(
        "serial_closed_bank",
        "tRCD",
        scale,
        a.dram_closed(),
        recs.iter().map(eff),
    ));

    let recs = run("mb_rowhit");
    rows.push(exact(
        "rowhit_open_row",
        "tCAS",
        scale,
        a.dram_row_hit(),
        recs.iter().skip(1).step_by(2).map(eff),
    ));

    let recs = run("mb_rowmiss");
    rows.push(exact(
        "rowmiss_precharge",
        "tRP",
        scale,
        a.dram_row_miss(),
        recs.iter().skip(1).step_by(2).map(eff),
    ));

    let recs = run("mb_conflict");
    rows.push(exact(
        "conflict_gap",
        "tRC",
        scale,
        a.conflict_gap(8),
        recs.iter().map(|r| r.dram_gap()),
    ));
    rows.push(exact(
        "conflict_total",
        "tRC",
        scale,
        a.dram_closed() + a.conflict_gap(8),
        recs.iter().map(eff),
    ));

    for r in &mut rows {
        r.preset = p.name();
    }
    rows
}

/// Render rows as JSONL (deterministic field order; no timestamps, so the
/// output is byte-comparable against the committed golden file).
pub fn to_jsonl(rows: &[CheckRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"check\":\"{}\",\"preset\":\"{}\",\"scale\":\"{}\",\"pins\":\"{}\",\"lo\":{},\"hi\":{},\"measured\":{},\"pass\":{}}}\n",
            r.check, r.preset, r.scale, r.pins, r.lo, r.hi, r.measured, r.pass
        ));
    }
    out
}

/// CLI entry point for the `validate` binary: `validate [tiny|small|full]...
/// [--out DIR]`. Runs every requested scale (default: tiny), writes
/// `DIR/validate.jsonl`, and exits non-zero if any check failed.
pub fn standalone_main() {
    let mut scales: Vec<Scale> = Vec::new();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "tiny" => scales.push(Scale::Tiny),
            "small" => scales.push(Scale::Small),
            "full" => scales.push(Scale::Full),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown argument '{other}' (expected tiny|small|full|--out)"),
        }
    }
    if scales.is_empty() {
        scales.push(Scale::Tiny);
    }

    let mut rows = Vec::new();
    for s in scales {
        rows.extend(run_scale(s));
    }
    // The per-preset idle ladders always run (Tiny-only, cheap): one exact
    // lo==hi block per DRAM backend, written to its own golden-diffed file.
    let mut preset_rows = Vec::new();
    for p in Preset::ALL {
        preset_rows.extend(run_preset_ladder(p));
    }

    println!(
        "{:<32} {:<6} {:<6} {:<20} {:>14} {:>9}  status",
        "check", "preset", "scale", "pins", "band", "measured"
    );
    let mut failed = 0usize;
    for r in rows.iter().chain(&preset_rows) {
        let band = if r.lo == r.hi {
            format!("={}", r.lo)
        } else {
            format!("[{}, {}]", r.lo, r.hi)
        };
        println!(
            "{:<32} {:<6} {:<6} {:<20} {:>14} {:>9}  {}",
            r.check,
            r.preset,
            r.scale,
            r.pins,
            band,
            r.measured,
            if r.pass { "ok" } else { "FAIL" }
        );
        if !r.pass {
            failed += 1;
        }
    }
    write_jsonl(&rows, &preset_rows, &out);
    println!(
        "{} checks, {} failed -> {} + {}",
        rows.len() + preset_rows.len(),
        failed,
        out.join("validate.jsonl").display(),
        out.join("validate_presets.jsonl").display()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

fn write_jsonl(rows: &[CheckRow], preset_rows: &[CheckRow], dir: &Path) {
    std::fs::create_dir_all(dir).expect("create output directory");
    std::fs::write(dir.join("validate.jsonl"), to_jsonl(rows)).expect("write validate.jsonl");
    std::fs::write(dir.join("validate_presets.jsonl"), to_jsonl(preset_rows))
        .expect("write validate_presets.jsonl");
}
