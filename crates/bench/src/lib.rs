//! Shared harness code for the experiment binaries (one per paper table /
//! figure) and the microbenches.
//!
//! Every binary accepts an optional scale argument (`tiny` / `small` /
//! `full`, default `small`), an optional `--seed N`, and the `--audit` /
//! `--trace` switches (which arm the DRAM protocol conformance auditor and
//! the event-trace recorder for every run the binary performs); results
//! print as text tables (the same rows/series the paper plots) and are also
//! appended as JSON lines to `results/<figure>.jsonl` for EXPERIMENTS.md
//! provenance.

use ldsim_system::{RunOpts, RunResult};
use ldsim_workloads::Scale;
use std::io::Write;

/// Parse `[tiny|small|full]`, `--seed N`, `--audit`, and `--trace` from
/// argv. The audit/trace switches are applied process-wide via
/// [`ldsim_system::set_run_opts`] before returning.
pub fn cli() -> (Scale, u64) {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut opts = RunOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "full" => scale = Scale::Full,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--audit" => opts.audit = true,
            "--trace" => opts.trace = true,
            other => panic!(
                "unknown argument '{other}' (expected tiny|small|full|--seed N|--audit|--trace)"
            ),
        }
        i += 1;
    }
    ldsim_system::set_run_opts(opts);
    (scale, seed)
}

/// Append run results as JSON lines under `results/`.
pub fn dump_json(figure: &str, results: &[&RunResult]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{figure}.jsonl"));
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for r in results {
        let _ = writeln!(f, "{}", r.to_json());
    }
}

/// A dependency-free micro-benchmark harness for the `benches/` targets
/// (run with `cargo bench`): warm up, calibrate the iteration count to a
/// fixed wall-clock budget, then report ns/iter.
pub mod microbench {
    use std::hint::black_box;
    use std::time::Instant;

    /// Seconds of measured work per benchmark.
    const BUDGET: f64 = 0.25;

    /// Time `f`, print a `name  iters  ns/iter` line, and return ns/iter.
    pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
        for _ in 0..3 {
            black_box(f());
        }
        let t0 = Instant::now();
        black_box(f());
        let per = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((BUDGET / per).ceil() as u64).clamp(5, 5_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_secs_f64() / iters as f64 * 1e9;
        println!("{name:<44} {iters:>9} iters {ns:>14.1} ns/iter");
        ns
    }
}

/// Geometric-mean speedup of `xs` over `base` (paired by index).
pub fn gmean_speedup(xs: &[f64], base: &[f64]) -> f64 {
    assert_eq!(xs.len(), base.len());
    let ratios: Vec<f64> = xs.iter().zip(base).map(|(x, b)| x / b).collect();
    ldsim_types::stats::geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_speedup_pairs() {
        let s = gmean_speedup(&[2.0, 2.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
        let s = gmean_speedup(&[4.0, 1.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
