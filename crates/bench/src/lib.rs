//! Shared harness code for the experiment binaries (one per paper table /
//! figure) and the microbenches.
//!
//! Every binary accepts an optional scale argument (`tiny` / `small` /
//! `full`, default `small`), an optional `--seed N`, the `--jobs N` /
//! `--threads N` parallelism knobs (workers across cells; partition
//! threads inside each run), and the `--audit` / `--trace` / `--hist`
//! switches (which arm the DRAM protocol conformance auditor, the
//! event-trace recorder, and the distribution histograms for
//! every run the binary performs); results print as text tables (the same
//! rows/series the paper plots) and are also written as JSON lines to
//! `results/<figure>.jsonl` — one file per figure, rewritten on every
//! invocation and stamped with the scale and seed — for EXPERIMENTS.md
//! provenance. When histograms are armed, the full bucket arrays go to a
//! companion `results/<figure>.hist.jsonl`.

pub mod figures;
pub mod validate;

use ldsim_system::{RunOpts, RunResult};
use ldsim_util::json::JsonObject;
use ldsim_workloads::Scale;
use std::io::Write;

/// One-line CLI failure: a named error to stderr, the usage line, and a
/// nonzero exit. Every hand-rolled parser in the workspace binaries routes
/// bad input here — a typo'd flag must produce a readable diagnostic, not a
/// raw `expect` backtrace.
pub fn cli_fail(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2)
}

/// The value following flag `args[i]`, or a named failure when the flag is
/// the last argument.
pub fn cli_value<'a>(args: &'a [String], i: usize, flag: &str, usage: &str) -> &'a str {
    match args.get(i + 1) {
        Some(v) => v.as_str(),
        None => cli_fail(usage, &format!("{flag} needs a value but none followed")),
    }
}

/// Parse a flag's value with [`FromStr`](std::str::FromStr), naming the
/// flag and the offending text on failure.
pub fn cli_parse<T: std::str::FromStr>(raw: &str, flag: &str, what: &str, usage: &str) -> T {
    raw.trim()
        .parse()
        .unwrap_or_else(|_| cli_fail(usage, &format!("{flag} needs {what}, got '{raw}'")))
}

/// Parse a flag's value as a positive integer (worker/thread counts).
pub fn cli_pos(raw: &str, flag: &str, usage: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => cli_fail(
            usage,
            &format!("{flag} needs a positive integer, got '{raw}'"),
        ),
    }
}

/// The shared harness usage line (see [`cli`]).
pub const CLI_USAGE: &str =
    "<binary> [tiny|small|full] [--seed N] [--jobs N] [--threads N] [--audit] [--trace] [--hist]";

/// Parse `[tiny|small|full]`, `--seed N`, `--jobs N`, `--threads N`,
/// `--audit`, `--trace`, and `--hist` from argv. The switches are applied
/// process-wide (run options via [`ldsim_system::set_run_opts`], cell
/// worker count via [`ldsim_util::set_jobs`], intra-run partition threads
/// via [`ldsim_util::set_sim_threads`]) before returning. Bad input —
/// missing or malformed values, unknown flags — prints a named error plus
/// the usage line and exits nonzero.
pub fn cli() -> (Scale, u64) {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut opts = RunOpts::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "full" => scale = Scale::Full,
            "--seed" => {
                let v = cli_value(&args, i, "--seed", CLI_USAGE);
                seed = cli_parse(v, "--seed", "a number", CLI_USAGE);
                i += 1;
            }
            "--jobs" => {
                let v = cli_value(&args, i, "--jobs", CLI_USAGE);
                ldsim_util::set_jobs(Some(cli_pos(v, "--jobs", CLI_USAGE)));
                i += 1;
            }
            "--threads" => {
                let v = cli_value(&args, i, "--threads", CLI_USAGE);
                ldsim_util::set_sim_threads(Some(cli_pos(v, "--threads", CLI_USAGE)));
                i += 1;
            }
            "--audit" => opts.audit = true,
            "--trace" => opts.trace = true,
            "--hist" => opts.hist = true,
            other => cli_fail(CLI_USAGE, &format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    ldsim_system::set_run_opts(opts);
    (scale, seed)
}

/// Write run results as JSON lines to `results/<figure>.jsonl`.
///
/// The file is rewritten (not appended) on every invocation, so the rows
/// always describe exactly one run of the binary, and every row is stamped
/// with the figure name, scale, and seed that produced it — without the
/// stamp, mixed-scale rows from successive invocations are
/// indistinguishable. I/O failures panic with the offending path: silently
/// dropping provenance is worse than aborting a finished experiment.
pub fn dump_json(figure: &str, scale: Scale, seed: u64, results: &[&RunResult]) {
    dump_json_to(
        std::path::Path::new("results"),
        figure,
        scale,
        seed,
        results,
    );
}

/// Splice the figure/scale/seed provenance stamp into a serialized JSON
/// object. The row must be a non-empty flat object — splicing into anything
/// else (or into `{}`, which would leave a trailing comma) produces a file
/// every downstream consumer mis-parses, so the check is a hard `assert!`:
/// the release binaries are exactly the ones producing the real experiment
/// data, and a `debug_assert!` compiles away there.
pub fn stamp_row(figure: &str, scale: Scale, seed: u64, row: &str) -> String {
    assert!(
        row.starts_with('{') && row.len() > 2 && row.ends_with('}'),
        "stamp_row: malformed JSON row for '{figure}': {row:?}"
    );
    format!(
        "{{\"figure\":\"{figure}\",\"scale\":\"{scale:?}\",\"seed\":{seed},{}",
        &row[1..]
    )
}

/// [`dump_json`] with an explicit output directory (separated for tests).
///
/// If any result carries armed histograms (`RunResult::hists`), their full
/// bucket arrays are written alongside as `<figure>.hist.jsonl` — one row
/// per (run, histogram) with parallel `bucket_lo` / `bucket_hi` / `count`
/// arrays. Otherwise any stale `.hist.jsonl` from a previous armed
/// invocation is deleted, for the same reason the main file is rewritten:
/// leftovers would masquerade as this run's output.
pub fn dump_json_to(
    dir: &std::path::Path,
    figure: &str,
    scale: Scale,
    seed: u64,
    results: &[&RunResult],
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        panic!("cannot create {}: {e}", dir.display());
    }
    let path = dir.join(format!("{figure}.jsonl"));
    let mut f = std::fs::File::create(&path)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
    for r in results {
        let stamped = stamp_row(figure, scale, seed, &r.to_json());
        writeln!(f, "{stamped}").unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    }
    let hist_path = dir.join(format!("{figure}.hist.jsonl"));
    if results.iter().any(|r| r.hists.is_some()) {
        let mut hf = std::fs::File::create(&hist_path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", hist_path.display()));
        for r in results {
            let Some(hists) = r.hists.as_deref() else {
                continue;
            };
            for (name, h) in hists.iter_named() {
                let (mut lo, mut hi, mut count) = (Vec::new(), Vec::new(), Vec::new());
                for (l, u, c) in h.nonzero_buckets() {
                    lo.push(l);
                    hi.push(u);
                    count.push(c);
                }
                let row = JsonObject::new()
                    .str("benchmark", &r.benchmark)
                    .str("scheduler", &r.scheduler)
                    .str("hist", name)
                    .u64("total", h.total())
                    .u64("min", h.min())
                    .u64("max", h.max())
                    .u64("p50", h.quantile(0.5))
                    .u64("p90", h.quantile(0.9))
                    .u64("p99", h.quantile(0.99))
                    .f64("mean", h.mean())
                    .u64_array("bucket_lo", &lo)
                    .u64_array("bucket_hi", &hi)
                    .u64_array("count", &count)
                    .build();
                writeln!(hf, "{}", stamp_row(figure, scale, seed, &row))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", hist_path.display()));
            }
        }
    } else if let Err(e) = std::fs::remove_file(&hist_path) {
        if e.kind() != std::io::ErrorKind::NotFound {
            panic!("cannot remove stale {}: {e}", hist_path.display());
        }
    }
}

/// A dependency-free micro-benchmark harness for the `benches/` targets
/// (run with `cargo bench`): warm up, calibrate the iteration count to a
/// fixed wall-clock budget, then report ns/iter.
pub mod microbench {
    use std::hint::black_box;
    use std::time::Instant;

    /// Seconds of measured work per benchmark.
    const BUDGET: f64 = 0.25;

    /// Time `f`, print a `name  iters  ns/iter` line, and return ns/iter.
    /// Calibration uses the median of three timed calls, so one
    /// scheduling-noise outlier cannot blow the iteration count (and the
    /// measurement budget) up or down by orders of magnitude.
    pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
        for _ in 0..3 {
            black_box(f());
        }
        let mut samples = [0.0f64; 3];
        for s in &mut samples {
            let t0 = Instant::now();
            black_box(f());
            *s = t0.elapsed().as_secs_f64().max(1e-9);
        }
        samples.sort_by(f64::total_cmp);
        let per = samples[1];
        let iters = ((BUDGET / per).ceil() as u64).clamp(5, 5_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ns = start.elapsed().as_secs_f64() / iters as f64 * 1e9;
        println!("{name:<44} {iters:>9} iters {ns:>14.1} ns/iter");
        ns
    }
}

/// The validated speedup ratio `x / base`, attributed to `name`: panics
/// naming the offending benchmark if either side is non-positive or
/// non-finite. A zero-IPC baseline (e.g. a run cut off before retiring
/// anything) would otherwise produce an infinite ratio that poisons every
/// geometric mean downstream with no hint of which benchmark broke.
pub fn speedup(name: &str, x: f64, base: f64) -> f64 {
    assert!(
        base.is_finite() && base > 0.0,
        "speedup: benchmark '{name}' has invalid baseline {base}"
    );
    assert!(
        x.is_finite() && x > 0.0,
        "speedup: benchmark '{name}' has invalid value {x}"
    );
    x / base
}

/// Geometric-mean speedup of `xs` over `base` (paired by index), each pair
/// validated via [`speedup`] under the matching name.
pub fn gmean_speedup(names: &[&str], xs: &[f64], base: &[f64]) -> f64 {
    assert_eq!(names.len(), xs.len());
    assert_eq!(xs.len(), base.len());
    let ratios: Vec<f64> = names
        .iter()
        .zip(xs.iter().zip(base))
        .map(|(n, (&x, &b))| speedup(n, x, b))
        .collect();
    ldsim_types::stats::geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_speedup_pairs() {
        let s = gmean_speedup(&["a", "b"], &[2.0, 2.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
        let s = gmean_speedup(&["a", "b"], &[4.0, 1.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cfd")]
    fn zero_baseline_names_the_benchmark() {
        gmean_speedup(&["bfs", "cfd"], &[2.0, 2.0], &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "spmv")]
    fn non_finite_value_names_the_benchmark() {
        speedup("spmv", f64::NAN, 1.0);
    }

    #[test]
    fn dump_json_rewrites_and_stamps() {
        let dir = std::env::temp_dir().join(format!("ldsim-dump-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r1 = RunResult {
            benchmark: "bfs".into(),
            cycles: 10,
            ..Default::default()
        };
        let r2 = RunResult {
            benchmark: "spmv".into(),
            cycles: 20,
            ..Default::default()
        };
        dump_json_to(&dir, "figX", Scale::Tiny, 3, &[&r1, &r2]);
        // A second invocation must replace the file, not append to it.
        dump_json_to(&dir, "figX", Scale::Small, 9, &[&r2]);
        let text = std::fs::read_to_string(dir.join("figX.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "stale rows survived: {text}");
        assert!(lines[0].starts_with("{\"figure\":\"figX\",\"scale\":\"Small\",\"seed\":9,"));
        assert!(lines[0].contains("\"benchmark\":\"spmv\""));
        assert!(lines[0].ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "malformed JSON row")]
    fn stamping_a_non_object_row_panics_in_release_builds_too() {
        // Hard assert, not debug_assert: the release figure binaries are the
        // ones whose output actually gets consumed.
        stamp_row("figX", Scale::Tiny, 1, "not an object");
    }

    #[test]
    #[should_panic(expected = "malformed JSON row")]
    fn stamping_an_empty_object_panics() {
        // Splicing into `{}` would emit `{...,}` — a trailing comma.
        stamp_row("figX", Scale::Tiny, 1, "{}");
    }

    #[test]
    fn hist_dump_writes_and_removes_companion_file() {
        let dir = std::env::temp_dir().join(format!("ldsim-hist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut hists = ldsim_system::metrics::RunHists::new();
        hists.dram_gap.add(100);
        hists.dram_gap.add(300);
        let armed = RunResult {
            benchmark: "bfs".into(),
            scheduler: "Gmc".into(),
            hists: Some(Box::new(hists)),
            ..Default::default()
        };
        dump_json_to(&dir, "figH", Scale::Tiny, 3, &[&armed]);
        let text = std::fs::read_to_string(dir.join("figH.hist.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "one row per named histogram: {text}");
        let gap = lines
            .iter()
            .find(|l| l.contains("\"hist\":\"dram_gap\""))
            .unwrap();
        assert!(gap.starts_with("{\"figure\":\"figH\",\"scale\":\"Tiny\",\"seed\":3,"));
        assert!(gap.contains("\"total\":2"));
        assert!(gap.contains("\"min\":100"));
        assert!(gap.contains("\"bucket_lo\":["));
        // An unarmed re-dump must clear the stale companion file.
        let plain = RunResult::default();
        dump_json_to(&dir, "figH", Scale::Tiny, 3, &[&plain]);
        assert!(
            !dir.join("figH.hist.jsonl").exists(),
            "stale hist file survived an unarmed dump"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
