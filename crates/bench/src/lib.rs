//! Shared harness code for the experiment binaries (one per paper table /
//! figure) and the criterion microbenches.
//!
//! Every binary accepts an optional scale argument (`tiny` / `small` /
//! `full`, default `small`) and an optional `--seed N`; results print as
//! text tables (the same rows/series the paper plots) and are also appended
//! as JSON lines to `results/<figure>.jsonl` for EXPERIMENTS.md provenance.

use ldsim_system::RunResult;
use ldsim_workloads::Scale;
use std::io::Write;

/// Parse `[tiny|small|full]` and `--seed N` from argv.
pub fn cli() -> (Scale, u64) {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "full" => scale = Scale::Full,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            other => panic!("unknown argument '{other}' (expected tiny|small|full|--seed N)"),
        }
        i += 1;
    }
    (scale, seed)
}

/// Append run results as JSON lines under `results/`.
pub fn dump_json(figure: &str, results: &[&RunResult]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{figure}.jsonl"));
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    for r in results {
        if let Ok(line) = serde_json::to_string(r) {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Geometric-mean speedup of `xs` over `base` (paired by index).
pub fn gmean_speedup(xs: &[f64], base: &[f64]) -> f64 {
    assert_eq!(xs.len(), base.len());
    let ratios: Vec<f64> = xs.iter().zip(base).map(|(x, b)| x / b).collect();
    ldsim_types::stats::geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_speedup_pairs() {
        let s = gmean_speedup(&[2.0, 2.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
        let s = gmean_speedup(&[4.0, 1.0], &[1.0, 1.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
