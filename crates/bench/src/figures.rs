//! Every paper figure/table as a data-declared [`FigureSpec`]: the
//! simulation grid as a list of [`Cell`]s plus a render closure that turns
//! shared-store results into the exact stdout and `results/*.jsonl` bytes
//! the standalone binary produced.
//!
//! The figure binaries are thin wrappers over [`standalone_main`]; the
//! `repro` binary feeds the whole [`registry`] to
//! [`ldsim_system::run_sweep`] so shared cells (the irregular suite under
//! GMC appears in six figures) simulate exactly once, then renders every
//! figure from the one store. Byte-identity between the two paths is held
//! by construction — the render closure *is* the binary's body — and
//! enforced by the `repro` integration tests.

use crate::{dump_json_to, speedup};
use ldsim_system::runner::{irregular_names, regular_names, PAPER_SCHEDULERS};
use ldsim_system::sweep::{Cell, CellStore, CfgTweak, FigureSpec};
use ldsim_system::table::{f2, f3, pct, Table};
use ldsim_system::RunResult;
use ldsim_types::config::{Preset, SchedulerKind};
use ldsim_types::stats::{geomean, mean};
use ldsim_workloads::Scale;
use std::path::Path;

/// Every figure/table spec, in presentation order. `repro` runs them all;
/// a standalone binary picks its own out of the list.
pub fn registry(scale: Scale, seed: u64) -> Vec<FigureSpec> {
    vec![
        fig02(scale, seed),
        fig03(scale, seed),
        fig04(scale, seed),
        fig05(),
        fig07(scale, seed),
        fig08(scale, seed),
        fig09(scale, seed),
        fig10(scale, seed),
        fig11(scale, seed),
        fig12(scale, seed),
        table1(),
        table2(),
        table3(),
        wafcfs(scale, seed),
        sbwas(scale, seed),
        parbs(scale, seed),
        extensions(scale, seed),
        regular(scale, seed),
        power(scale, seed),
        ablation(scale, seed),
        calibration(scale, seed),
        microbench(scale, seed),
        backends(scale, seed),
    ]
}

/// Run one named figure end-to-end exactly as its standalone binary did
/// before the orchestrator existed: simulate its cells (no cache, shared
/// kernels, parallel) and render into `results/`.
pub fn run_standalone(name: &str, scale: Scale, seed: u64) {
    let spec = registry(scale, seed)
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no figure spec named '{name}'"));
    let (store, _) = ldsim_system::run_sweep(&spec.cells, &ldsim_system::SweepConfig::default());
    (spec.render)(&store, Path::new("results"));
}

/// The whole body of a figure binary: parse the shared CLI, then
/// [`run_standalone`].
pub fn standalone_main(name: &str) {
    let (scale, seed) = crate::cli();
    run_standalone(name, scale, seed);
}

/// Bench-major × scheduler-minor cell grid — `run_grid`'s (and therefore
/// every grid figure's dump) order.
fn grid(benches: &[&'static str], kinds: &[SchedulerKind], scale: Scale, seed: u64) -> Vec<Cell> {
    benches
        .iter()
        .flat_map(|&b| kinds.iter().map(move |&k| Cell::new(b, scale, seed, k)))
        .collect()
}

/// Fetch a grid's results in declaration order, for dumping.
fn fetch<'s>(store: &'s CellStore, cells: &[Cell]) -> Vec<&'s RunResult> {
    cells.iter().map(|c| store.get(c)).collect()
}

fn fig02(scale: Scale, seed: u64) -> FigureSpec {
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .map(|&b| Cell::new(b, scale, seed, SchedulerKind::Gmc))
        .collect();
    FigureSpec {
        name: "fig02",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "divergent loads", "reqs/load"]);
            let mut dfs = Vec::new();
            let mut rpls = Vec::new();
            for c in &cells {
                let r = store.get(c);
                dfs.push(r.divergent_frac());
                rpls.push(r.avg_reqs_per_load);
                t.row(vec![
                    c.bench.to_string(),
                    pct(r.divergent_frac()),
                    f2(r.avg_reqs_per_load),
                ]);
            }
            t.row(vec![
                "MEAN (paper: 56% / 5.9)".into(),
                pct(mean(&dfs)),
                f2(mean(&rpls)),
            ]);
            println!("Fig. 2 — coalescing efficiency (irregular suite, GMC baseline)\n");
            t.print();
            dump_json_to(dir, "fig02", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig03(scale: Scale, seed: u64) -> FigureSpec {
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .map(|&b| Cell::new(b, scale, seed, SchedulerKind::Gmc))
        .collect();
    FigureSpec {
        name: "fig03",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "last/first",
                "controllers",
                "banks",
                "same-row",
            ]);
            let (mut ratios, mut chans, mut rows) = (Vec::new(), Vec::new(), Vec::new());
            for c in &cells {
                let r = store.get(c);
                ratios.push(r.last_first_ratio);
                chans.push(r.avg_channels_touched);
                rows.push(r.same_row_frac);
                t.row(vec![
                    c.bench.to_string(),
                    f2(r.last_first_ratio),
                    f2(r.avg_channels_touched),
                    f2(r.avg_banks_touched),
                    f2(r.same_row_frac),
                ]);
            }
            t.row(vec![
                "MEAN (paper: 1.6 / 2.5 / ~2 banks / 0.30)".into(),
                f2(mean(&ratios)),
                f2(mean(&chans)),
                "-".into(),
                f2(mean(&rows)),
            ]);
            println!("Fig. 3 — DRAM latency divergence under the GMC baseline\n");
            t.print();
            dump_json_to(dir, "fig03", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig04(scale: Scale, seed: u64) -> FigureSpec {
    // Dump order is per-bench [base, perfect-coalescing, zero-divergence],
    // exactly the original `results.extend([base, pc, zd])`.
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .flat_map(|&b| {
            [
                Cell::new(b, scale, seed, SchedulerKind::Gmc),
                Cell::new(b, scale, seed, SchedulerKind::Gmc)
                    .with_tweak(CfgTweak::PerfectCoalescing),
                Cell::new(b, scale, seed, SchedulerKind::ZeroDivergence),
            ]
        })
        .collect();
    FigureSpec {
        name: "fig04",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "PerfectCoalescing", "ZeroDivergence"]);
            let (mut pcs, mut zds) = (Vec::new(), Vec::new());
            for trio in cells.chunks(3) {
                let b = trio[0].bench;
                let base = store.get(&trio[0]);
                let pc = store.get(&trio[1]);
                let zd = store.get(&trio[2]);
                let pcx = speedup(b, pc.ipc(), base.ipc());
                let zdx = speedup(b, zd.ipc(), base.ipc());
                pcs.push(pcx);
                zds.push(zdx);
                t.row(vec![b.to_string(), f2(pcx), f2(zdx)]);
            }
            t.row(vec![
                "GMEAN (paper: ~5x / 1.43x)".into(),
                f2(geomean(&pcs)),
                f2(geomean(&zds)),
            ]);
            println!("Fig. 4 — upper bounds: speedup over GMC\n");
            t.print();
            dump_json_to(dir, "fig04", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig05() -> FigureSpec {
    FigureSpec {
        name: "fig05",
        cells: Vec::new(),
        render: Box::new(|_, _| {
            println!("Fig. 5 — average memory stall of two N-request warps\n");
            let mut t = Table::new(&["N", "interleaved (x NT)", "consecutive (x NT)", "saving"]);
            for n in [2u32, 4, 8, 16, 32] {
                let interleaved = 2.0 - 0.5 / n as f64; // ((2N-1) + 2N) / 2 / N
                let consecutive = 1.5;
                t.row(vec![
                    n.to_string(),
                    f2(interleaved),
                    f2(consecutive),
                    format!("{:.1}%", (1.0 - consecutive / interleaved) * 100.0),
                ]);
            }
            t.print();
            println!("\nWarp-aware scheduling approaches the consecutive bound by servicing");
            println!("one warp-group at a time (Section IV-A).");
        }),
    }
}

fn fig07(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let mut kinds = PAPER_SCHEDULERS.to_vec();
    kinds.push(SchedulerKind::Wafcfs);
    kinds.push(SchedulerKind::FrFcfs);
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "fig07",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["scheduler", "avg divergence gap (cyc)", "bus utilisation"]);
            for k in &kinds {
                let gaps: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.kind == *k)
                    .map(|c| store.get(c).avg_dram_gap)
                    .collect();
                let bws: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.kind == *k)
                    .map(|c| store.get(c).bw_utilization)
                    .collect();
                t.row(vec![k.name().into(), f2(mean(&gaps)), pct(mean(&bws))]);
            }
            println!("Fig. 7 — latency divergence vs bandwidth (irregular suite means)\n");
            t.print();
            dump_json_to(dir, "fig07", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig08(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let cells = grid(&benches, PAPER_SCHEDULERS, scale, seed);
    FigureSpec {
        name: "fig08",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "WG", "WG-M", "WG-Bw", "WG-W"]);
            let mut per_sched: Vec<Vec<f64>> = vec![Vec::new(); 4];
            for &b in &benches {
                let base = store
                    .get(&Cell::new(b, scale, seed, SchedulerKind::Gmc))
                    .ipc();
                let mut row = vec![b.to_string()];
                for (i, k) in [
                    SchedulerKind::Wg,
                    SchedulerKind::WgM,
                    SchedulerKind::WgBw,
                    SchedulerKind::WgW,
                ]
                .iter()
                .enumerate()
                {
                    let x = speedup(b, store.get(&Cell::new(b, scale, seed, *k)).ipc(), base);
                    per_sched[i].push(x);
                    row.push(f3(x));
                }
                t.row(row);
            }
            t.row(vec![
                "GMEAN (paper: 1.034/1.062/1.084/1.101)".into(),
                f3(geomean(&per_sched[0])),
                f3(geomean(&per_sched[1])),
                f3(geomean(&per_sched[2])),
                f3(geomean(&per_sched[3])),
            ]);
            println!("Fig. 8 — IPC normalised to GMC (irregular suite)\n");
            t.print();
            dump_json_to(dir, "fig08", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig09(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let cells = grid(&benches, PAPER_SCHEDULERS, scale, seed);
    FigureSpec {
        name: "fig09",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W"]);
            let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
            for &b in &benches {
                let mut row = vec![b.to_string()];
                for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
                    let v = store
                        .get(&Cell::new(b, scale, seed, *k))
                        .avg_effective_latency;
                    sums[i].push(v);
                    row.push(f2(v));
                }
                t.row(row);
            }
            t.row(vec![
                "MEAN (cycles)".into(),
                f2(mean(&sums[0])),
                f2(mean(&sums[1])),
                f2(mean(&sums[2])),
                f2(mean(&sums[3])),
                f2(mean(&sums[4])),
            ]);
            let base = mean(&sums[0]);
            println!("Fig. 9 — effective memory latency (cycles; paper: WG -9.1%, WG-M -16.9%)\n");
            t.print();
            println!();
            for (i, k) in PAPER_SCHEDULERS.iter().enumerate().skip(1) {
                println!(
                    "  {} vs GMC: {:+.1}%",
                    k.name(),
                    (mean(&sums[i]) / base - 1.0) * 100.0
                );
            }
            dump_json_to(dir, "fig09", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig10(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let cells = grid(&benches, PAPER_SCHEDULERS, scale, seed);
    FigureSpec {
        name: "fig10",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W", "ch/warp"]);
            let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
            for &b in &benches {
                let mut row = vec![b.to_string()];
                for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
                    let v = store.get(&Cell::new(b, scale, seed, *k)).avg_dram_gap;
                    sums[i].push(v);
                    row.push(f2(v));
                }
                row.push(f2(store
                    .get(&Cell::new(b, scale, seed, PAPER_SCHEDULERS[0]))
                    .avg_channels_touched));
                t.row(row);
            }
            t.row(vec![
                "MEAN".into(),
                f2(mean(&sums[0])),
                f2(mean(&sums[1])),
                f2(mean(&sums[2])),
                f2(mean(&sums[3])),
                f2(mean(&sums[4])),
                "-".into(),
            ]);
            println!("Fig. 10 — first-to-last DRAM service gap (cycles)\n");
            t.print();
            dump_json_to(dir, "fig10", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig11(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let cells = grid(&benches, PAPER_SCHEDULERS, scale, seed);
    FigureSpec {
        name: "fig11",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W"]);
            let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
            for &b in &benches {
                let mut row = vec![b.to_string()];
                for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
                    let v = store.get(&Cell::new(b, scale, seed, *k)).bw_utilization;
                    sums[i].push(v);
                    row.push(pct(v));
                }
                t.row(row);
            }
            t.row(vec![
                "MEAN".into(),
                pct(mean(&sums[0])),
                pct(mean(&sums[1])),
                pct(mean(&sums[2])),
                pct(mean(&sums[3])),
                pct(mean(&sums[4])),
            ]);
            println!("Fig. 11 — DRAM data-bus utilisation\n");
            t.print();
            dump_json_to(dir, "fig11", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn fig12(scale: Scale, seed: u64) -> FigureSpec {
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .map(|&b| Cell::new(b, scale, seed, SchedulerKind::WgBw))
        .collect();
    FigureSpec {
        name: "fig12",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "write intensity",
                "stalled groups",
                "unit+orphan frac",
            ]);
            for c in &cells {
                let r = store.get(c);
                t.row(vec![
                    c.bench.to_string(),
                    pct(r.write_intensity),
                    r.drain_stalled_groups.to_string(),
                    pct(r.drain_unit_orphan_frac()),
                ]);
            }
            println!("Fig. 12 — write intensity and drain-stall composition (WG-Bw)\n");
            t.print();
            dump_json_to(dir, "fig12", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn table1() -> FigureSpec {
    FigureSpec {
        name: "table1",
        cells: Vec::new(),
        render: Box::new(|_, _| {
            use ldsim_gddr5::merb::single_bank_utilization;
            use ldsim_gddr5::MerbTable;
            use ldsim_types::clock::ClockDomain;
            use ldsim_types::config::TimingParams;
            let timing = TimingParams::default();
            let merb = MerbTable::from_timing(&timing, ClockDomain::GDDR5, 16);
            let paper = [31u8, 20, 10, 7, 5, 5];
            let mut t = Table::new(&["banks with work", "MERB (ours)", "MERB (paper)"]);
            for b in 1..=16usize {
                let p = paper[(b - 1).min(5)];
                t.row(vec![
                    if b <= 5 {
                        b.to_string()
                    } else {
                        format!("{b} (6-16)")
                    },
                    merb.get(b).to_string(),
                    p.to_string(),
                ]);
                assert_eq!(merb.get(b), p, "Table I mismatch at b={b}");
            }
            println!("Table I — Minimum Efficient Row Burst for GDDR5\n");
            t.print();
            println!(
                "\nsingle-bank utilisation at the 31-burst cap: {} (paper: ~62%)",
                pct(single_bank_utilization(&timing, ClockDomain::GDDR5, 31))
            );
            println!("all 16 entries match the paper exactly.");
        }),
    }
}

fn table2() -> FigureSpec {
    FigureSpec {
        name: "table2",
        cells: Vec::new(),
        render: Box::new(|_, _| {
            use ldsim_types::config::SimConfig;
            let c = SimConfig::default();
            let t_cyc = c.mem.timing.in_cycles(c.clock);
            let mut t = Table::new(&["parameter", "value"]);
            let rows: Vec<(&str, String)> = vec![
                ("compute units (SMs)", c.gpu.num_sms.to_string()),
                ("warp size", c.gpu.warp_size.to_string()),
                (
                    "L1 / SM",
                    format!(
                        "{} KB, {}-way, {} B lines",
                        c.gpu.l1.size_bytes / 1024,
                        c.gpu.l1.ways,
                        c.gpu.l1.line_bytes
                    ),
                ),
                (
                    "L2 / partition",
                    format!(
                        "{} KB, {}-way, {} B lines",
                        c.gpu.l2_slice.size_bytes / 1024,
                        c.gpu.l2_slice.ways,
                        c.gpu.l2_slice.line_bytes
                    ),
                ),
                ("DRAM channels", c.mem.num_channels.to_string()),
                (
                    "banks/channel (groups)",
                    format!(
                        "{} ({} per group)",
                        c.mem.banks_per_channel, c.mem.banks_per_group
                    ),
                ),
                ("read queue / controller", c.mem.read_queue.to_string()),
                (
                    "write queue (hi/lo)",
                    format!(
                        "{} ({}/{})",
                        c.mem.write_queue, c.mem.write_hi, c.mem.write_lo
                    ),
                ),
                ("tCK", format!("{} ns", c.clock.tck_ns)),
                (
                    "tRC",
                    format!("{} ns ({} cyc)", c.mem.timing.t_rc_ns, t_cyc.t_rc),
                ),
                (
                    "tRCD",
                    format!("{} ns ({} cyc)", c.mem.timing.t_rcd_ns, t_cyc.t_rcd),
                ),
                (
                    "tRP",
                    format!("{} ns ({} cyc)", c.mem.timing.t_rp_ns, t_cyc.t_rp),
                ),
                (
                    "tCAS",
                    format!("{} ns ({} cyc)", c.mem.timing.t_cas_ns, t_cyc.t_cas),
                ),
                (
                    "tRAS",
                    format!("{} ns ({} cyc)", c.mem.timing.t_ras_ns, t_cyc.t_ras),
                ),
                (
                    "tRRD",
                    format!("{} ns ({} cyc)", c.mem.timing.t_rrd_ns, t_cyc.t_rrd),
                ),
                (
                    "tWTR",
                    format!("{} ns ({} cyc)", c.mem.timing.t_wtr_ns, t_cyc.t_wtr),
                ),
                (
                    "tFAW",
                    format!("{} ns ({} cyc)", c.mem.timing.t_faw_ns, t_cyc.t_faw),
                ),
                (
                    "tRTP",
                    format!("{} ns ({} cyc)", c.mem.timing.t_rtp_ns, t_cyc.t_rtp),
                ),
                (
                    "tWL / tBURST / tRTRS",
                    format!("{} / {} / {} tCK", t_cyc.t_wl, t_cyc.t_burst, t_cyc.t_rtrs),
                ),
                (
                    "tCCDL / tCCDS",
                    format!("{} / {} tCK", t_cyc.t_ccdl, t_cyc.t_ccds),
                ),
                (
                    "bursts per 128B access",
                    c.mem.bursts_per_access.to_string(),
                ),
            ];
            for (k, v) in rows {
                t.row(vec![k.into(), v]);
            }
            println!("Table II — simulation parameters (defaults)\n");
            t.print();
        }),
    }
}

fn table3() -> FigureSpec {
    FigureSpec {
        name: "table3",
        cells: Vec::new(),
        render: Box::new(|_, _| {
            use ldsim_workloads::{IRREGULAR, REGULAR};
            let mut t = Table::new(&[
                "benchmark",
                "suite",
                "class",
                "div frac",
                "clusters",
                "writes",
            ]);
            for p in IRREGULAR.iter().chain(REGULAR.iter()) {
                t.row(vec![
                    p.name.into(),
                    p.suite.into(),
                    if p.irregular {
                        "irregular".into()
                    } else {
                        "regular".into()
                    },
                    format!("{:.2}", p.divergent_frac),
                    format!("{:.1}", p.clusters_mean),
                    format!("{:.2}", p.write_frac),
                ]);
            }
            println!("Table III — modelled workloads (see DESIGN.md substitution #2)\n");
            t.print();
        }),
    }
}

fn wafcfs(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::Wafcfs];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "wafcfs",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "WAFCFS / GMC",
                "hit rate GMC",
                "hit rate WAFCFS",
            ]);
            let mut xs = Vec::new();
            for &b in &benches {
                let base = store.get(&Cell::new(b, scale, seed, SchedulerKind::Gmc));
                let w = store.get(&Cell::new(b, scale, seed, SchedulerKind::Wafcfs));
                xs.push(speedup(b, w.ipc(), base.ipc()));
                t.row(vec![
                    b.to_string(),
                    f3(w.ipc() / base.ipc()),
                    pct(base.row_hit_rate),
                    pct(w.row_hit_rate),
                ]);
            }
            t.row(vec![
                "GMEAN (paper: 0.888)".into(),
                f3(geomean(&xs)),
                "-".into(),
                "-".into(),
            ]);
            println!("Section VI-C.2 — WAFCFS vs GMC\n");
            t.print();
            dump_json_to(dir, "wafcfs", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn sbwas(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let kinds = [
        SchedulerKind::Gmc,
        SchedulerKind::Sbwas { alpha_q: 1 },
        SchedulerKind::Sbwas { alpha_q: 2 },
        SchedulerKind::Sbwas { alpha_q: 3 },
        SchedulerKind::WgW,
    ];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "sbwas",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "best alpha", "SBWAS/GMC", "WG-W/SBWAS"]);
            let (mut sb, mut wg) = (vec![], vec![]);
            for &b in &benches {
                let base = store
                    .get(&Cell::new(b, scale, seed, SchedulerKind::Gmc))
                    .ipc();
                let (mut best, mut best_a) = (0.0f64, 0u8);
                for a in 1..=3u8 {
                    let ipc = store
                        .get(&Cell::new(
                            b,
                            scale,
                            seed,
                            SchedulerKind::Sbwas { alpha_q: a },
                        ))
                        .ipc();
                    if ipc > best {
                        best = ipc;
                        best_a = a;
                    }
                }
                let wgw = store
                    .get(&Cell::new(b, scale, seed, SchedulerKind::WgW))
                    .ipc();
                sb.push(speedup(b, best, base));
                wg.push(speedup(b, wgw, best));
                t.row(vec![
                    b.to_string(),
                    format!("0.{}", best_a as u32 * 25),
                    f3(best / base),
                    f3(wgw / best),
                ]);
            }
            t.row(vec![
                "GMEAN (paper: - / 1.025 / 1.073)".into(),
                "-".into(),
                f3(geomean(&sb)),
                f3(geomean(&wg)),
            ]);
            println!("Section VI-C.1 — SBWAS with profiled alpha vs GMC and WG-W\n");
            t.print();
            dump_json_to(dir, "sbwas", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn parbs(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::ParBs, SchedulerKind::WgW];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "parbs",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "PAR-BS / GMC",
                "WG-W / PAR-BS",
                "gap PAR-BS",
                "gap WG-W",
            ]);
            let (mut pb, mut wg) = (vec![], vec![]);
            for &b in &benches {
                let base = store
                    .get(&Cell::new(b, scale, seed, SchedulerKind::Gmc))
                    .ipc();
                let p = store.get(&Cell::new(b, scale, seed, SchedulerKind::ParBs));
                let w = store.get(&Cell::new(b, scale, seed, SchedulerKind::WgW));
                pb.push(speedup(b, p.ipc(), base));
                wg.push(speedup(b, w.ipc(), p.ipc()));
                t.row(vec![
                    b.to_string(),
                    f3(p.ipc() / base),
                    f3(w.ipc() / p.ipc()),
                    f2(p.avg_dram_gap),
                    f2(w.avg_dram_gap),
                ]);
            }
            t.row(vec![
                "GMEAN".into(),
                f3(geomean(&pb)),
                f3(geomean(&wg)),
                "-".into(),
                "-".into(),
            ]);
            println!("Section VI-C.3 (extension) — PAR-BS vs GMC and WG-W\n");
            t.print();
            dump_json_to(dir, "parbs", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn extensions(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let kinds = [
        SchedulerKind::Gmc,
        SchedulerKind::AtlasLite,
        SchedulerKind::WgW,
        SchedulerKind::WgShared,
    ];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "extensions",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "ATLAS/GMC", "WG-W/GMC", "WG-S/GMC"]);
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
            for &b in &benches {
                let base = store
                    .get(&Cell::new(b, scale, seed, SchedulerKind::Gmc))
                    .ipc();
                let mut row = vec![b.to_string()];
                for (i, k) in [
                    SchedulerKind::AtlasLite,
                    SchedulerKind::WgW,
                    SchedulerKind::WgShared,
                ]
                .iter()
                .enumerate()
                {
                    let x = speedup(b, store.get(&Cell::new(b, scale, seed, *k)).ipc(), base);
                    cols[i].push(x);
                    row.push(f3(x));
                }
                t.row(row);
            }
            t.row(vec![
                "GMEAN".into(),
                f3(geomean(&cols[0])),
                f3(geomean(&cols[1])),
                f3(geomean(&cols[2])),
            ]);
            println!("Extensions — ATLAS-lite (VI-C.3) and WG-S (Section VIII future work)\n");
            t.print();
            dump_json_to(dir, "extensions", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn regular(scale: Scale, seed: u64) -> FigureSpec {
    let benches = regular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::WgW];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "regular",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["benchmark", "WG-W / GMC", "GMC bus util"]);
            let mut xs = Vec::new();
            for &b in &benches {
                let base = store.get(&Cell::new(b, scale, seed, SchedulerKind::Gmc));
                let x = speedup(
                    b,
                    store
                        .get(&Cell::new(b, scale, seed, SchedulerKind::WgW))
                        .ipc(),
                    base.ipc(),
                );
                xs.push(x);
                t.row(vec![b.to_string(), f3(x), pct(base.bw_utilization)]);
            }
            t.row(vec![
                "GMEAN (paper: 1.018)".into(),
                f3(geomean(&xs)),
                "-".into(),
            ]);
            println!("Section VI-A — regular benchmarks: WG-W vs GMC\n");
            t.print();
            dump_json_to(dir, "regular", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn power(scale: Scale, seed: u64) -> FigureSpec {
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::WgW];
    let cells = grid(&benches, &kinds, scale, seed);
    FigureSpec {
        name: "power",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "hit rate GMC",
                "hit rate WG-W",
                "power GMC (W)",
                "power WG-W (W)",
            ]);
            let (mut h0, mut h1, mut p0, mut p1) = (vec![], vec![], vec![], vec![]);
            for &b in &benches {
                let a = store.get(&Cell::new(b, scale, seed, SchedulerKind::Gmc));
                let w = store.get(&Cell::new(b, scale, seed, SchedulerKind::WgW));
                h0.push(a.row_hit_rate);
                h1.push(w.row_hit_rate);
                p0.push(a.dram_power_w);
                p1.push(w.dram_power_w);
                t.row(vec![
                    b.to_string(),
                    pct(a.row_hit_rate),
                    pct(w.row_hit_rate),
                    f2(a.dram_power_w),
                    f2(w.dram_power_w),
                ]);
            }
            println!("Section VI-B — row-hit rate and DRAM power, GMC vs WG-W\n");
            t.print();
            println!(
                "\nmean hit-rate change: {:+.1}% relative (paper: -16%)",
                (mean(&h1) / mean(&h0) - 1.0) * 100.0
            );
            println!(
                "mean power change:    {:+.1}% (paper: +1.8%)",
                (mean(&p1) / mean(&p0) - 1.0) * 100.0
            );
            dump_json_to(dir, "power", scale, seed, &fetch(store, &cells));
        }),
    }
}

fn ablation(scale: Scale, seed: u64) -> FigureSpec {
    // No JSONL dump (matching the original binary) — five printed tables.
    let bench = "sssp"; // multi-controller benchmark: most coordination-sensitive
    let mut cells = Vec::new();
    for lat in [1u64, 4, 16, 64, 256] {
        cells.push(
            Cell::new(bench, scale, seed, SchedulerKind::WgM)
                .with_tweak(CfgTweak::CoordLatency(lat)),
        );
    }
    for (hi, lo) in [(8usize, 4usize), (16, 8), (32, 16), (48, 24)] {
        cells.push(
            Cell::new("nw", scale, seed, SchedulerKind::WgW)
                .with_tweak(CfgTweak::WriteWatermarks { hi, lo }),
        );
    }
    cells.push(Cell::new(bench, scale, seed, SchedulerKind::Gmc));
    cells.push(Cell::new(bench, scale, seed, SchedulerKind::Gmc).with_tweak(CfgTweak::FlatCcd));
    cells.push(Cell::new("spmv", scale, seed, SchedulerKind::Gmc));
    cells.push(Cell::new("spmv", scale, seed, SchedulerKind::Gmc).with_tweak(CfgTweak::RefreshOff));
    cells.push(Cell::new("spmv", scale, seed, SchedulerKind::Gmc).with_tweak(CfgTweak::ClosedPage));
    for streak in [2usize, 8, 16, 64] {
        cells.push(
            Cell::new("spmv", scale, seed, SchedulerKind::Gmc)
                .with_tweak(CfgTweak::GmcMaxStreak(streak)),
        );
    }
    FigureSpec {
        name: "ablation",
        cells,
        render: Box::new(move |store, _| {
            println!("Ablation 1 — WG-M coordination latency ({bench})\n");
            let mut t = Table::new(&["coord latency (cyc)", "IPC", "divergence gap"]);
            for lat in [1u64, 4, 16, 64, 256] {
                let r = store.get(
                    &Cell::new(bench, scale, seed, SchedulerKind::WgM)
                        .with_tweak(CfgTweak::CoordLatency(lat)),
                );
                t.row(vec![lat.to_string(), f2(r.ipc()), f2(r.avg_dram_gap)]);
            }
            t.print();

            println!("\nAblation 2 — write-drain watermarks (nw, WG-W)\n");
            let mut t = Table::new(&["hi/lo", "IPC", "drains", "stalled groups"]);
            for (hi, lo) in [(8usize, 4usize), (16, 8), (32, 16), (48, 24)] {
                let r = store.get(
                    &Cell::new("nw", scale, seed, SchedulerKind::WgW)
                        .with_tweak(CfgTweak::WriteWatermarks { hi, lo }),
                );
                t.row(vec![
                    format!("{hi}/{lo}"),
                    f2(r.ipc()),
                    r.drains.to_string(),
                    r.drain_stalled_groups.to_string(),
                ]);
            }
            t.print();

            println!("\nAblation 3 — bank groups: GDDR5 tCCDS vs flat tCCDL ({bench}, GMC)\n");
            let mut t = Table::new(&["column spacing", "IPC", "bus util"]);
            let base = store.get(&Cell::new(bench, scale, seed, SchedulerKind::Gmc));
            t.row(vec![
                "tCCDL=3 / tCCDS=2 (bank groups)".into(),
                f2(base.ipc()),
                pct(base.bw_utilization),
            ]);
            let flat = store.get(
                &Cell::new(bench, scale, seed, SchedulerKind::Gmc).with_tweak(CfgTweak::FlatCcd),
            );
            t.row(vec![
                "flat tCCD=3 (no groups)".into(),
                f2(flat.ipc()),
                pct(flat.bw_utilization),
            ]);
            t.print();

            println!("\nAblation 4 — refresh and page policy (spmv, GMC)\n");
            let mut t = Table::new(&["configuration", "IPC", "row-hit rate", "bus util"]);
            let base = store.get(&Cell::new("spmv", scale, seed, SchedulerKind::Gmc));
            t.row(vec![
                "open page, refresh on (default)".into(),
                f2(base.ipc()),
                pct(base.row_hit_rate),
                pct(base.bw_utilization),
            ]);
            let norefresh = store.get(
                &Cell::new("spmv", scale, seed, SchedulerKind::Gmc)
                    .with_tweak(CfgTweak::RefreshOff),
            );
            t.row(vec![
                "open page, refresh off".into(),
                f2(norefresh.ipc()),
                pct(norefresh.row_hit_rate),
                pct(norefresh.bw_utilization),
            ]);
            let closed = store.get(
                &Cell::new("spmv", scale, seed, SchedulerKind::Gmc)
                    .with_tweak(CfgTweak::ClosedPage),
            );
            t.row(vec![
                "closed page (auto-precharge)".into(),
                f2(closed.ipc()),
                pct(closed.row_hit_rate),
                pct(closed.bw_utilization),
            ]);
            t.print();

            println!("\nAblation 5 — GMC row-hit streak cap (spmv)\n");
            let mut t = Table::new(&["max streak", "IPC", "row-hit rate", "divergence gap"]);
            for streak in [2usize, 8, 16, 64] {
                let r = store.get(
                    &Cell::new("spmv", scale, seed, SchedulerKind::Gmc)
                        .with_tweak(CfgTweak::GmcMaxStreak(streak)),
                );
                t.row(vec![
                    streak.to_string(),
                    f2(r.ipc()),
                    pct(r.row_hit_rate),
                    f2(r.avg_dram_gap),
                ]);
            }
            t.print();
        }),
    }
}

fn calibration(scale: Scale, seed: u64) -> FigureSpec {
    let cells: Vec<Cell> = irregular_names()
        .iter()
        .map(|&b| Cell::new(b, scale, seed, SchedulerKind::Gmc))
        .collect();
    FigureSpec {
        name: "calibration",
        cells: cells.clone(),
        render: Box::new(move |store, _| {
            let mut t = Table::new(&["metric", "measured", "paper", "band", "ok"]);
            let (mut df, mut rpl, mut ch, mut sr, mut bk) =
                (vec![], vec![], vec![], vec![], vec![]);
            for c in &cells {
                let r = store.get(c);
                df.push(r.divergent_frac());
                rpl.push(r.avg_reqs_per_load);
                ch.push(r.avg_channels_touched);
                sr.push(r.same_row_frac);
                bk.push(r.avg_banks_touched);
            }
            let checks: Vec<(&str, f64, f64, (f64, f64))> = vec![
                ("divergent load fraction", mean(&df), 0.56, (0.40, 0.72)),
                ("requests per load", mean(&rpl), 5.9, (3.0, 8.0)),
                ("controllers per warp", mean(&ch), 2.5, (1.8, 3.3)),
                ("same-row fraction", mean(&sr), 0.30, (0.15, 0.45)),
                ("(ch,bank) pairs per warp", mean(&bk), 4.0, (2.0, 7.0)),
            ];
            let mut all_ok = true;
            for (name, got, paper, (lo, hi)) in checks {
                let ok = got >= lo && got <= hi;
                all_ok &= ok;
                t.row(vec![
                    name.into(),
                    if name.contains("fraction") {
                        pct(got)
                    } else {
                        f2(got)
                    },
                    f2(paper),
                    format!("[{}, {}]", f2(lo), f2(hi)),
                    if ok { "yes".into() } else { "NO".into() },
                ]);
            }
            println!("Workload calibration vs the paper's reported characteristics\n");
            t.print();
            assert!(all_ok, "calibration drifted outside the paper's bands");
            println!("\nall checks passed.");
        }),
    }
}

/// The `mb_*` pointer-chase calibration grid (latency-regime
/// microbenchmarks; see `ldsim_workloads::microbench`). Observational
/// here — the latency percentiles per regime, cached and dumped like any
/// figure — while the `validate` bin holds the exact closed-form
/// assertions against `golden/validate_bands.jsonl`.
fn microbench(scale: Scale, seed: u64) -> FigureSpec {
    let mut cells: Vec<Cell> = [
        "mb_serial",
        "mb_rowhit",
        "mb_rowmiss",
        "mb_conflict",
        "mb_broadcast",
        "mb_random",
        "mb_l2hit",
        "mb_bypass",
    ]
    .iter()
    .map(|&b| Cell::new(b, scale, seed, SchedulerKind::Gmc))
    .collect();
    // The bypass kernel once more with the L2 actually bypassed — the
    // pairing that shows cache-off traffic reaching DRAM.
    cells.push(
        Cell::new("mb_bypass", scale, seed, SchedulerKind::Gmc).with_tweak(CfgTweak::L2Bypass),
    );
    FigureSpec {
        name: "microbench",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&["microbench", "eff p50", "eff p99", "gap p50", "reqs/load"]);
            for c in &cells {
                let r = store.get(c);
                let label = if c.tweak == CfgTweak::L2Bypass {
                    format!("{} (bypass)", c.bench)
                } else {
                    c.bench.to_string()
                };
                t.row(vec![
                    label,
                    r.eff_p50.to_string(),
                    r.eff_p99.to_string(),
                    r.gap_p50.to_string(),
                    f2(r.avg_reqs_per_load),
                ]);
            }
            println!("Microbenchmark latency regimes (GMC, default machine)\n");
            t.print();
            dump_json_to(dir, "microbench", scale, seed, &fetch(store, &cells));
        }),
    }
}

/// Does WG-W still win off the Table II machine? Two representative
/// irregular benchmarks under GMC and WG-W on every DRAM backend preset.
/// The preset rides in as an ordinary [`CfgTweak::Backend`] cell dimension
/// — the `gddr5` cells dedupe against the fig08 grid in a full sweep.
fn backends(scale: Scale, seed: u64) -> FigureSpec {
    let benches = ["bfs", "spmv"];
    let kinds = [SchedulerKind::Gmc, SchedulerKind::WgW];
    let mut cells = Vec::with_capacity(benches.len() * Preset::ALL.len() * kinds.len());
    for &b in &benches {
        for &p in &Preset::ALL {
            for &k in &kinds {
                cells.push(Cell::new(b, scale, seed, k).with_tweak(CfgTweak::Backend(p)));
            }
        }
    }
    FigureSpec {
        name: "backends",
        cells: cells.clone(),
        render: Box::new(move |store, dir| {
            let mut t = Table::new(&[
                "benchmark",
                "backend",
                "WG-W/GMC",
                "GMC row-hit",
                "GMC bus util",
            ]);
            for &b in &benches {
                for &p in &Preset::ALL {
                    let gmc = store.get(
                        &Cell::new(b, scale, seed, SchedulerKind::Gmc)
                            .with_tweak(CfgTweak::Backend(p)),
                    );
                    let wgw = store.get(
                        &Cell::new(b, scale, seed, SchedulerKind::WgW)
                            .with_tweak(CfgTweak::Backend(p)),
                    );
                    t.row(vec![
                        b.to_string(),
                        p.name().to_string(),
                        f3(speedup(b, wgw.ipc(), gmc.ipc())),
                        pct(gmc.row_hit_rate),
                        pct(gmc.bw_utilization),
                    ]);
                }
            }
            println!("Backends — WG-W vs GMC across DRAM presets\n");
            t.print();
            // Hand-rolled dump: each row carries its preset, which
            // `RunResult::to_json` knows nothing about.
            if let Err(e) = std::fs::create_dir_all(dir) {
                panic!("cannot create {}: {e}", dir.display());
            }
            let path = dir.join("backends.jsonl");
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            use std::io::Write as _;
            for c in &cells {
                let CfgTweak::Backend(p) = c.tweak else {
                    unreachable!("every backends cell carries a Backend tweak");
                };
                let json = store.get(c).to_json();
                let row = format!("{{\"preset\":\"{}\",{}", p.name(), &json[1..]);
                writeln!(f, "{}", crate::stamp_row("backends", scale, seed, &row))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every figure/table binary's grid must be registered with the
    /// orchestrator — a new `fig*.rs` / `table*.rs` bin without a
    /// [`FigureSpec`] silently escapes `repro` and the CI gate.
    #[test]
    fn every_figure_and_table_bin_is_registered() {
        let names: Vec<&'static str> = registry(Scale::Tiny, 1).iter().map(|s| s.name).collect();
        let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
        let mut missing = Vec::new();
        for entry in std::fs::read_dir(&bin_dir).unwrap() {
            let path = entry.unwrap().path();
            let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            if !(stem.starts_with("fig") || stem.starts_with("table")) {
                continue;
            }
            if !names.contains(&stem.as_str()) {
                missing.push(stem);
            }
        }
        assert!(
            missing.is_empty(),
            "figure/table bins without a FigureSpec in the registry: {missing:?}"
        );
    }

    #[test]
    fn registry_names_are_unique_and_fig06_is_known_absent() {
        let specs = registry(Scale::Tiny, 1);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate figure names");
        // Fig. 6 is the paper's block diagram — no data, no binary, no spec.
        assert!(!names.contains(&"fig06"));
    }

    #[test]
    fn grids_share_cells_across_figures() {
        // The whole point of the global sweep: fig08-fig11 declare the
        // identical PAPER_SCHEDULERS grid, so the registry's unique cell
        // count must be far below the declared total.
        let specs = registry(Scale::Tiny, 1);
        let declared: usize = specs.iter().map(|s| s.cells.len()).sum();
        let mut keys: Vec<u64> = specs
            .iter()
            .flat_map(|s| s.cells.iter())
            .map(|c| c.key(ldsim_system::RunOpts::default()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(
            keys.len() * 2 < declared,
            "expected heavy cross-figure sharing: {} unique of {} declared",
            keys.len(),
            declared
        );
    }
}
