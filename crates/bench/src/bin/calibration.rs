//! Workload calibration check (DESIGN.md §8.4).
//!
//! Asserts the synthetic irregular suite's aggregate characteristics land
//! inside the paper's reported ranges: ~56% divergent loads, ~5.9 requests
//! per load, ~2.5 controllers per warp, ~30% same-row requests, ~2 banks.

use ldsim_bench::cli;
use ldsim_system::runner::{irregular_names, run_one};
use ldsim_system::table::{f2, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let mut t = Table::new(&["metric", "measured", "paper", "band", "ok"]);
    let (mut df, mut rpl, mut ch, mut sr, mut bk) = (vec![], vec![], vec![], vec![], vec![]);
    for b in irregular_names() {
        let r = run_one(b, scale, seed, SchedulerKind::Gmc);
        df.push(r.divergent_frac());
        rpl.push(r.avg_reqs_per_load);
        ch.push(r.avg_channels_touched);
        sr.push(r.same_row_frac);
        bk.push(r.avg_banks_touched);
    }
    let checks: Vec<(&str, f64, f64, (f64, f64))> = vec![
        ("divergent load fraction", mean(&df), 0.56, (0.40, 0.72)),
        ("requests per load", mean(&rpl), 5.9, (3.0, 8.0)),
        ("controllers per warp", mean(&ch), 2.5, (1.8, 3.3)),
        ("same-row fraction", mean(&sr), 0.30, (0.15, 0.45)),
        ("(ch,bank) pairs per warp", mean(&bk), 4.0, (2.0, 7.0)),
    ];
    let mut all_ok = true;
    for (name, got, paper, (lo, hi)) in checks {
        let ok = got >= lo && got <= hi;
        all_ok &= ok;
        t.row(vec![
            name.into(),
            if name.contains("fraction") {
                pct(got)
            } else {
                f2(got)
            },
            f2(paper),
            format!("[{}, {}]", f2(lo), f2(hi)),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("Workload calibration vs the paper's reported characteristics\n");
    t.print();
    assert!(all_ok, "calibration drifted outside the paper's bands");
    println!("\nall checks passed.");
}
