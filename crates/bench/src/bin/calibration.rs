//! Workload calibration check (DESIGN.md §8.4).
//!
//! Asserts the synthetic irregular suite's aggregate characteristics land
//! inside the paper's reported ranges: ~56% divergent loads, ~5.9 requests
//! per load, ~2.5 controllers per warp, ~30% same-row requests, ~2 banks.

fn main() {
    ldsim_bench::figures::standalone_main("calibration");
}
