//! Table I — the MERB table for GDDR5.
//!
//! Computed at "boot" from the Table II timing parameters via the
//! Section IV-D formula; the paper's values are {1:31, 2:20, 3:10, 4:7,
//! 5:5, 6-16:5}.

use ldsim_gddr5::merb::single_bank_utilization;
use ldsim_gddr5::MerbTable;
use ldsim_system::table::{pct, Table};
use ldsim_types::clock::ClockDomain;
use ldsim_types::config::TimingParams;

fn main() {
    let timing = TimingParams::default();
    let merb = MerbTable::from_timing(&timing, ClockDomain::GDDR5, 16);
    let paper = [31u8, 20, 10, 7, 5, 5];
    let mut t = Table::new(&["banks with work", "MERB (ours)", "MERB (paper)"]);
    for b in 1..=16usize {
        let p = paper[(b - 1).min(5)];
        t.row(vec![
            if b <= 5 {
                b.to_string()
            } else {
                format!("{b} (6-16)")
            },
            merb.get(b).to_string(),
            p.to_string(),
        ]);
        assert_eq!(merb.get(b), p, "Table I mismatch at b={b}");
    }
    println!("Table I — Minimum Efficient Row Burst for GDDR5\n");
    t.print();
    println!(
        "\nsingle-bank utilisation at the 31-burst cap: {} (paper: ~62%)",
        pct(single_bank_utilization(&timing, ClockDomain::GDDR5, 31))
    );
    println!("all 16 entries match the paper exactly.");
}
