//! Table I — the MERB table for GDDR5.
//!
//! Computed at "boot" from the Table II timing parameters via the
//! Section IV-D formula; the paper's values are {1:31, 2:20, 3:10, 4:7,
//! 5:5, 6-16:5}.

fn main() {
    ldsim_bench::figures::standalone_main("table1");
}
