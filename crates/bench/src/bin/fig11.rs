//! Fig. 11 — Bandwidth utilisation of different schedulers.
//!
//! Data-bus busy fraction per scheduler and benchmark. Paper: warp-group
//! prioritisation (WG-M) costs bandwidth; the MERB policy (WG-Bw) recovers
//! >14% of it by overlapping row-misses with row-hits in other banks.

fn main() {
    ldsim_bench::figures::standalone_main("fig11");
}
