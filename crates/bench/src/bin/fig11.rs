//! Fig. 11 — Bandwidth utilisation of different schedulers.
//!
//! Data-bus busy fraction per scheduler and benchmark. Paper: warp-group
//! prioritisation (WG-M) costs bandwidth; the MERB policy (WG-Bw) recovers
//! >14% of it by overlapping row-misses with row-hits in other banks.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{cell, irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::{pct, Table};
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let grid = run_grid(&benches, PAPER_SCHEDULERS, scale, seed);
    let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W"]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for b in &benches {
        let mut row = vec![b.to_string()];
        for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
            let v = cell(&grid, b, *k).bw_utilization;
            sums[i].push(v);
            row.push(pct(v));
        }
        t.row(row);
    }
    t.row(vec![
        "MEAN".into(),
        pct(mean(&sums[0])),
        pct(mean(&sums[1])),
        pct(mean(&sums[2])),
        pct(mean(&sums[3])),
        pct(mean(&sums[4])),
    ]);
    println!("Fig. 11 — DRAM data-bus utilisation\n");
    t.print();
    dump_json(
        "fig11",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
