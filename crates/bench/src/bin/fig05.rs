//! Fig. 5 — the key-idea arithmetic.
//!
//! Two warps, N requests each, T cycles per request. Interleaved service
//! finishes warp A at (2N-1)T and warp B at 2NT: average (2N - 1/2)T.
//! Consecutive service: NT and 2NT, average 1.5NT. The analytic table is
//! printed next to a two-warp micro-simulation of the same scenario.

fn main() {
    ldsim_bench::figures::standalone_main("fig05");
}
