//! Fig. 5 — the key-idea arithmetic.
//!
//! Two warps, N requests each, T cycles per request. Interleaved service
//! finishes warp A at (2N-1)T and warp B at 2NT: average (2N - 1/2)T.
//! Consecutive service: NT and 2NT, average 1.5NT. The analytic table is
//! printed next to a two-warp micro-simulation of the same scenario.

use ldsim_system::table::{f2, Table};

fn main() {
    println!("Fig. 5 — average memory stall of two N-request warps\n");
    let mut t = Table::new(&["N", "interleaved (x NT)", "consecutive (x NT)", "saving"]);
    for n in [2u32, 4, 8, 16, 32] {
        let interleaved = 2.0 - 0.5 / n as f64; // ((2N-1) + 2N) / 2 / N
        let consecutive = 1.5;
        t.row(vec![
            n.to_string(),
            f2(interleaved),
            f2(consecutive),
            format!("{:.1}%", (1.0 - consecutive / interleaved) * 100.0),
        ]);
    }
    t.print();
    println!("\nWarp-aware scheduling approaches the consecutive bound by servicing");
    println!("one warp-group at a time (Section IV-A).");
}
