//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. coordination-network latency (WG-M's sensitivity to message delay),
//! 2. command-queue depth (how much scheduling flexibility the transaction
//!    scheduler actually needs),
//! 3. the write-drain watermarks (the batch-vs-latency trade the WG-W
//!    policy navigates),
//! 4. bank groups (GDDR5's tCCDL/tCCDS split vs a flat tCCDL-only device).

use ldsim_bench::cli;
use ldsim_system::runner::run_one_with;
use ldsim_system::table::{f2, pct, Table};
use ldsim_types::config::SchedulerKind;

fn main() {
    let (scale, seed) = cli();
    let bench = "sssp"; // multi-controller benchmark: most coordination-sensitive

    println!("Ablation 1 — WG-M coordination latency ({bench})\n");
    let mut t = Table::new(&["coord latency (cyc)", "IPC", "divergence gap"]);
    for lat in [1u64, 4, 16, 64, 256] {
        let r = run_one_with(bench, scale, seed, SchedulerKind::WgM, |c| {
            c.mem.coord_latency = lat;
        });
        t.row(vec![lat.to_string(), f2(r.ipc()), f2(r.avg_dram_gap)]);
    }
    t.print();

    println!("\nAblation 2 — write-drain watermarks (nw, WG-W)\n");
    let mut t = Table::new(&["hi/lo", "IPC", "drains", "stalled groups"]);
    for (hi, lo) in [(8usize, 4usize), (16, 8), (32, 16), (48, 24)] {
        let r = run_one_with("nw", scale, seed, SchedulerKind::WgW, |c| {
            c.mem.write_hi = hi;
            c.mem.write_lo = lo;
        });
        t.row(vec![
            format!("{hi}/{lo}"),
            f2(r.ipc()),
            r.drains.to_string(),
            r.drain_stalled_groups.to_string(),
        ]);
    }
    t.print();

    println!("\nAblation 3 — bank groups: GDDR5 tCCDS vs flat tCCDL ({bench}, GMC)\n");
    let mut t = Table::new(&["column spacing", "IPC", "bus util"]);
    let base = run_one_with(bench, scale, seed, SchedulerKind::Gmc, |_| {});
    t.row(vec![
        "tCCDL=3 / tCCDS=2 (bank groups)".into(),
        f2(base.ipc()),
        pct(base.bw_utilization),
    ]);
    let flat = run_one_with(bench, scale, seed, SchedulerKind::Gmc, |c| {
        c.mem.timing.t_ccds_ck = c.mem.timing.t_ccdl_ck;
    });
    t.row(vec![
        "flat tCCD=3 (no groups)".into(),
        f2(flat.ipc()),
        pct(flat.bw_utilization),
    ]);
    t.print();

    println!("\nAblation 4 — refresh and page policy (spmv, GMC)\n");
    let mut t = Table::new(&["configuration", "IPC", "row-hit rate", "bus util"]);
    let base = run_one_with("spmv", scale, seed, SchedulerKind::Gmc, |_| {});
    t.row(vec![
        "open page, refresh on (default)".into(),
        f2(base.ipc()),
        pct(base.row_hit_rate),
        pct(base.bw_utilization),
    ]);
    let norefresh = run_one_with("spmv", scale, seed, SchedulerKind::Gmc, |c| {
        c.mem.refresh_enabled = false;
    });
    t.row(vec![
        "open page, refresh off".into(),
        f2(norefresh.ipc()),
        pct(norefresh.row_hit_rate),
        pct(norefresh.bw_utilization),
    ]);
    let closed = run_one_with("spmv", scale, seed, SchedulerKind::Gmc, |c| {
        c.mem.page_policy = ldsim_types::config::PagePolicy::Closed;
    });
    t.row(vec![
        "closed page (auto-precharge)".into(),
        f2(closed.ipc()),
        pct(closed.row_hit_rate),
        pct(closed.bw_utilization),
    ]);
    t.print();

    println!("\nAblation 5 — GMC row-hit streak cap (spmv)\n");
    let mut t = Table::new(&["max streak", "IPC", "row-hit rate", "divergence gap"]);
    for streak in [2usize, 8, 16, 64] {
        let r = run_one_with("spmv", scale, seed, SchedulerKind::Gmc, |c| {
            c.mem.gmc_max_streak = streak;
        });
        t.row(vec![
            streak.to_string(),
            f2(r.ipc()),
            pct(r.row_hit_rate),
            f2(r.avg_dram_gap),
        ]);
    }
    t.print();
}
