//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. coordination-network latency (WG-M's sensitivity to message delay),
//! 2. command-queue depth (how much scheduling flexibility the transaction
//!    scheduler actually needs),
//! 3. the write-drain watermarks (the batch-vs-latency trade the WG-W
//!    policy navigates),
//! 4. bank groups (GDDR5's tCCDL/tCCDS split vs a flat tCCDL-only device).

fn main() {
    ldsim_bench::figures::standalone_main("ablation");
}
