//! Section VI-C.3 (extension) — PAR-BS on GPU workloads.
//!
//! The paper argues qualitatively that CPU-space batch scheduling
//! (PAR-BS) does not address warp latency divergence: its batches group
//! requests *across* threads per bank for fairness, the opposite of
//! warp-group batching. This binary makes that comparison quantitative.

fn main() {
    ldsim_bench::figures::standalone_main("parbs");
}
