//! Section VI-C.3 (extension) — PAR-BS on GPU workloads.
//!
//! The paper argues qualitatively that CPU-space batch scheduling
//! (PAR-BS) does not address warp latency divergence: its batches group
//! requests *across* threads per bank for fairness, the opposite of
//! warp-group batching. This binary makes that comparison quantitative.

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, irregular_names, run_grid};
use ldsim_system::table::{f2, f3, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::ParBs, SchedulerKind::WgW];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&[
        "benchmark",
        "PAR-BS / GMC",
        "WG-W / PAR-BS",
        "gap PAR-BS",
        "gap WG-W",
    ]);
    let (mut pb, mut wg) = (vec![], vec![]);
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc).ipc();
        let p = cell(&grid, b, SchedulerKind::ParBs);
        let w = cell(&grid, b, SchedulerKind::WgW);
        pb.push(speedup(b, p.ipc(), base));
        wg.push(speedup(b, w.ipc(), p.ipc()));
        t.row(vec![
            b.to_string(),
            f3(p.ipc() / base),
            f3(w.ipc() / p.ipc()),
            f2(p.avg_dram_gap),
            f2(w.avg_dram_gap),
        ]);
    }
    t.row(vec![
        "GMEAN".into(),
        f3(geomean(&pb)),
        f3(geomean(&wg)),
        "-".into(),
        "-".into(),
    ]);
    println!("Section VI-C.3 (extension) — PAR-BS vs GMC and WG-W\n");
    t.print();
    dump_json(
        "parbs",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
