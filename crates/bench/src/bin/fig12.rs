//! Fig. 12 — Write intensity and drain-stalled warp-groups.
//!
//! Per benchmark under WG-Bw (the scheme WG-W improves): the fraction of
//! DRAM traffic that is writes, and the fraction of warp-groups stalled by
//! a forced write drain that are unit-sized or orphaned — the targets of
//! the WG-W policy. Paper: nw and SS score high on both, which is where
//! WG-W gains most.

fn main() {
    ldsim_bench::figures::standalone_main("fig12");
}
