//! Fig. 12 — Write intensity and drain-stalled warp-groups.
//!
//! Per benchmark under WG-Bw (the scheme WG-W improves): the fraction of
//! DRAM traffic that is writes, and the fraction of warp-groups stalled by
//! a forced write drain that are unit-sized or orphaned — the targets of
//! the WG-W policy. Paper: nw and SS score high on both, which is where
//! WG-W gains most.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{irregular_names, run_one};
use ldsim_system::table::{pct, Table};
use ldsim_types::config::SchedulerKind;

fn main() {
    let (scale, seed) = cli();
    let mut t = Table::new(&[
        "benchmark",
        "write intensity",
        "stalled groups",
        "unit+orphan frac",
    ]);
    let mut results = Vec::new();
    for b in irregular_names() {
        let r = run_one(b, scale, seed, SchedulerKind::WgBw);
        t.row(vec![
            b.to_string(),
            pct(r.write_intensity),
            r.drain_stalled_groups.to_string(),
            pct(r.drain_unit_orphan_frac()),
        ]);
        results.push(r);
    }
    println!("Fig. 12 — write intensity and drain-stall composition (WG-Bw)\n");
    t.print();
    dump_json("fig12", scale, seed, &results.iter().collect::<Vec<_>>());
}
