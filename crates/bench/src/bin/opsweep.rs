//! Operating-point sweep — the analysis behind EXPERIMENTS.md's Fig. 8
//! discussion.
//!
//! Scales every phase-boundary `Delay` of one benchmark by a factor f
//! (lower f = higher DRAM demand) and reports, per scheduler, how IPC,
//! effective latency and the divergence gap respond. Shows the closed-loop
//! equilibrium: at high utilisation the system pins to DRAM goodput (WG ~=
//! GMC in IPC but lower latency), at low utilisation queues vanish and all
//! schedulers converge.

use ldsim_system::table::{f2, f3, pct, Table};
use ldsim_system::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_types::kernel::Instruction;
use ldsim_workloads::{benchmark, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(|s| s.as_str()).unwrap_or("spmv");
    println!("operating-point sweep for '{bench}' (Full scale)\n");
    let mut t = Table::new(&[
        "demand factor",
        "GMC bus util",
        "GMC eff",
        "WG ipc",
        "WG-M ipc",
        "WG-W ipc",
        "ZeroDiv ipc",
    ]);
    for f in [0.4f64, 0.7, 1.0, 1.5, 2.5] {
        let mut kernel = benchmark(bench, Scale::Full, 1).generate();
        for sm in &mut kernel.programs {
            for w in sm {
                for i in &mut w.insns {
                    if let Instruction::Delay(n) = i {
                        *n = (*n as f64 * f) as u32 + 1;
                    }
                }
            }
        }
        let budget = kernel.total_instructions() * 7 / 10;
        let run = |k: SchedulerKind| {
            let cfg = SimConfig {
                instruction_limit: Some(budget),
                ..SimConfig::default()
            }
            .with_scheduler(k);
            Simulator::new(cfg, &kernel).run()
        };
        let gmc = run(SchedulerKind::Gmc);
        let base = gmc.ipc();
        t.row(vec![
            format!("{f:.2} (1/f demand)"),
            pct(gmc.bw_utilization),
            f2(gmc.avg_effective_latency),
            f3(run(SchedulerKind::Wg).ipc() / base),
            f3(run(SchedulerKind::WgM).ipc() / base),
            f3(run(SchedulerKind::WgW).ipc() / base),
            f3(run(SchedulerKind::ZeroDivergence).ipc() / base),
        ]);
    }
    t.print();
}
