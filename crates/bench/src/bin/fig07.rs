//! Fig. 7 — navigating the latency-divergence vs bandwidth space.
//!
//! Positions every scheduler on the (divergence gap, bus utilisation)
//! plane, averaged over the irregular suite — the qualitative map the paper
//! sketches: WAFCFS low-divergence/low-bandwidth, GMC high/high, the WG
//! family moving toward low divergence while WG-Bw recovers bandwidth.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::{f2, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let mut kinds = PAPER_SCHEDULERS.to_vec();
    kinds.push(SchedulerKind::Wafcfs);
    kinds.push(SchedulerKind::FrFcfs);
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&["scheduler", "avg divergence gap (cyc)", "bus utilisation"]);
    for k in &kinds {
        let gaps: Vec<f64> = grid
            .iter()
            .filter(|c| c.scheduler == *k)
            .map(|c| c.result.avg_dram_gap)
            .collect();
        let bws: Vec<f64> = grid
            .iter()
            .filter(|c| c.scheduler == *k)
            .map(|c| c.result.bw_utilization)
            .collect();
        t.row(vec![k.name().into(), f2(mean(&gaps)), pct(mean(&bws))]);
    }
    println!("Fig. 7 — latency divergence vs bandwidth (irregular suite means)\n");
    t.print();
    dump_json(
        "fig07",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
