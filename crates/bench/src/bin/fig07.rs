//! Fig. 7 — navigating the latency-divergence vs bandwidth space.
//!
//! Positions every scheduler on the (divergence gap, bus utilisation)
//! plane, averaged over the irregular suite — the qualitative map the paper
//! sketches: WAFCFS low-divergence/low-bandwidth, GMC high/high, the WG
//! family moving toward low divergence while WG-Bw recovers bandwidth.

fn main() {
    ldsim_bench::figures::standalone_main("fig07");
}
