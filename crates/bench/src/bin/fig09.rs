//! Fig. 9 — Effective main memory latency experienced by warps.
//!
//! Mean issue-to-last-response latency per scheduler, per benchmark.
//! Paper: WG reduces it 9.1%, WG-M 16.9% (vs GMC).

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{cell, irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::{f2, Table};
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let grid = run_grid(&benches, PAPER_SCHEDULERS, scale, seed);
    let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W"]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for b in &benches {
        let mut row = vec![b.to_string()];
        for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
            let v = cell(&grid, b, *k).avg_effective_latency;
            sums[i].push(v);
            row.push(f2(v));
        }
        t.row(row);
    }
    t.row(vec![
        "MEAN (cycles)".into(),
        f2(mean(&sums[0])),
        f2(mean(&sums[1])),
        f2(mean(&sums[2])),
        f2(mean(&sums[3])),
        f2(mean(&sums[4])),
    ]);
    let base = mean(&sums[0]);
    println!("Fig. 9 — effective memory latency (cycles; paper: WG -9.1%, WG-M -16.9%)\n");
    t.print();
    println!();
    for (i, k) in PAPER_SCHEDULERS.iter().enumerate().skip(1) {
        println!(
            "  {} vs GMC: {:+.1}%",
            k.name(),
            (mean(&sums[i]) / base - 1.0) * 100.0
        );
    }
    dump_json(
        "fig09",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
