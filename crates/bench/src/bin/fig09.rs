//! Fig. 9 — Effective main memory latency experienced by warps.
//!
//! Mean issue-to-last-response latency per scheduler, per benchmark.
//! Paper: WG reduces it 9.1%, WG-M 16.9% (vs GMC).

fn main() {
    ldsim_bench::figures::standalone_main("fig09");
}
