//! Fig. 3 — Extent of memory latency divergence.
//!
//! Per irregular benchmark under the GMC baseline: the ratio of the last
//! request's latency to the first request's latency (paper: 1.6x average)
//! and the number of memory controllers a warp's load touches (paper: 2.5
//! average; cfd/spmv/sssp/sp ~3.2, sad/nw/SS/bfs < 2).

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{irregular_names, run_one};
use ldsim_system::table::{f2, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let mut t = Table::new(&[
        "benchmark",
        "last/first",
        "controllers",
        "banks",
        "same-row",
    ]);
    let (mut ratios, mut chans, mut rows) = (Vec::new(), Vec::new(), Vec::new());
    let mut results = Vec::new();
    for b in irregular_names() {
        let r = run_one(b, scale, seed, SchedulerKind::Gmc);
        ratios.push(r.last_first_ratio);
        chans.push(r.avg_channels_touched);
        rows.push(r.same_row_frac);
        t.row(vec![
            b.to_string(),
            f2(r.last_first_ratio),
            f2(r.avg_channels_touched),
            f2(r.avg_banks_touched),
            f2(r.same_row_frac),
        ]);
        results.push(r);
    }
    t.row(vec![
        "MEAN (paper: 1.6 / 2.5 / ~2 banks / 0.30)".into(),
        f2(mean(&ratios)),
        f2(mean(&chans)),
        "-".into(),
        f2(mean(&rows)),
    ]);
    println!("Fig. 3 — DRAM latency divergence under the GMC baseline\n");
    t.print();
    dump_json("fig03", scale, seed, &results.iter().collect::<Vec<_>>());
}
