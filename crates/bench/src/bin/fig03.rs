//! Fig. 3 — Extent of memory latency divergence.
//!
//! Per irregular benchmark under the GMC baseline: the ratio of the last
//! request's latency to the first request's latency (paper: 1.6x average)
//! and the number of memory controllers a warp's load touches (paper: 2.5
//! average; cfd/spmv/sssp/sp ~3.2, sad/nw/SS/bfs < 2).

fn main() {
    ldsim_bench::figures::standalone_main("fig03");
}
