//! Section VI-A — impact on non-divergent applications.
//!
//! The six regular, bandwidth-sensitive benchmarks under WG-W vs GMC.
//! Paper: +1.8% on average, no application slowed down.

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, regular_names, run_grid};
use ldsim_system::table::{f3, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = regular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::WgW];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&["benchmark", "WG-W / GMC", "GMC bus util"]);
    let mut xs = Vec::new();
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc);
        let x = speedup(b, cell(&grid, b, SchedulerKind::WgW).ipc(), base.ipc());
        xs.push(x);
        t.row(vec![b.to_string(), f3(x), pct(base.bw_utilization)]);
    }
    t.row(vec![
        "GMEAN (paper: 1.018)".into(),
        f3(geomean(&xs)),
        "-".into(),
    ]);
    println!("Section VI-A — regular benchmarks: WG-W vs GMC\n");
    t.print();
    dump_json(
        "regular",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
