//! Section VI-A — impact on non-divergent applications.
//!
//! The six regular, bandwidth-sensitive benchmarks under WG-W vs GMC.
//! Paper: +1.8% on average, no application slowed down.

fn main() {
    ldsim_bench::figures::standalone_main("regular");
}
