//! Table III — the workload registry.

fn main() {
    ldsim_bench::figures::standalone_main("table3");
}
