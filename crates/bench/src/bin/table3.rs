//! Table III — the workload registry.

use ldsim_system::table::Table;
use ldsim_workloads::{IRREGULAR, REGULAR};

fn main() {
    let mut t = Table::new(&[
        "benchmark",
        "suite",
        "class",
        "div frac",
        "clusters",
        "writes",
    ]);
    for p in IRREGULAR.iter().chain(REGULAR.iter()) {
        t.row(vec![
            p.name.into(),
            p.suite.into(),
            if p.irregular {
                "irregular".into()
            } else {
                "regular".into()
            },
            format!("{:.2}", p.divergent_frac),
            format!("{:.1}", p.clusters_mean),
            format!("{:.2}", p.write_frac),
        ]);
    }
    println!("Table III — modelled workloads (see DESIGN.md substitution #2)\n");
    t.print();
}
