//! Table II — the simulated system configuration.

use ldsim_system::table::Table;
use ldsim_types::config::SimConfig;

fn main() {
    let c = SimConfig::default();
    let t_cyc = c.mem.timing.in_cycles(c.clock);
    let mut t = Table::new(&["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("compute units (SMs)", c.gpu.num_sms.to_string()),
        ("warp size", c.gpu.warp_size.to_string()),
        (
            "L1 / SM",
            format!(
                "{} KB, {}-way, {} B lines",
                c.gpu.l1.size_bytes / 1024,
                c.gpu.l1.ways,
                c.gpu.l1.line_bytes
            ),
        ),
        (
            "L2 / partition",
            format!(
                "{} KB, {}-way, {} B lines",
                c.gpu.l2_slice.size_bytes / 1024,
                c.gpu.l2_slice.ways,
                c.gpu.l2_slice.line_bytes
            ),
        ),
        ("DRAM channels", c.mem.num_channels.to_string()),
        (
            "banks/channel (groups)",
            format!(
                "{} ({} per group)",
                c.mem.banks_per_channel, c.mem.banks_per_group
            ),
        ),
        ("read queue / controller", c.mem.read_queue.to_string()),
        (
            "write queue (hi/lo)",
            format!(
                "{} ({}/{})",
                c.mem.write_queue, c.mem.write_hi, c.mem.write_lo
            ),
        ),
        ("tCK", format!("{} ns", c.clock.tck_ns)),
        (
            "tRC",
            format!("{} ns ({} cyc)", c.mem.timing.t_rc_ns, t_cyc.t_rc),
        ),
        (
            "tRCD",
            format!("{} ns ({} cyc)", c.mem.timing.t_rcd_ns, t_cyc.t_rcd),
        ),
        (
            "tRP",
            format!("{} ns ({} cyc)", c.mem.timing.t_rp_ns, t_cyc.t_rp),
        ),
        (
            "tCAS",
            format!("{} ns ({} cyc)", c.mem.timing.t_cas_ns, t_cyc.t_cas),
        ),
        (
            "tRAS",
            format!("{} ns ({} cyc)", c.mem.timing.t_ras_ns, t_cyc.t_ras),
        ),
        (
            "tRRD",
            format!("{} ns ({} cyc)", c.mem.timing.t_rrd_ns, t_cyc.t_rrd),
        ),
        (
            "tWTR",
            format!("{} ns ({} cyc)", c.mem.timing.t_wtr_ns, t_cyc.t_wtr),
        ),
        (
            "tFAW",
            format!("{} ns ({} cyc)", c.mem.timing.t_faw_ns, t_cyc.t_faw),
        ),
        (
            "tRTP",
            format!("{} ns ({} cyc)", c.mem.timing.t_rtp_ns, t_cyc.t_rtp),
        ),
        (
            "tWL / tBURST / tRTRS",
            format!("{} / {} / {} tCK", t_cyc.t_wl, t_cyc.t_burst, t_cyc.t_rtrs),
        ),
        (
            "tCCDL / tCCDS",
            format!("{} / {} tCK", t_cyc.t_ccdl, t_cyc.t_ccds),
        ),
        (
            "bursts per 128B access",
            c.mem.bursts_per_access.to_string(),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.into(), v]);
    }
    println!("Table II — simulation parameters (defaults)\n");
    t.print();
}
