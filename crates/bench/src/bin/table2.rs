//! Table II — the simulated system configuration.

fn main() {
    ldsim_bench::figures::standalone_main("table2");
}
