//! Model-validation CLI: microbenchmark latencies vs. closed-form
//! arithmetic, with golden-banded JSONL output. See `validate.rs`.

fn main() {
    ldsim_bench::validate::standalone_main();
}
