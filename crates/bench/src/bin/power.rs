//! Section VI-B — power and energy impact.
//!
//! Row-buffer hit rate and estimated GDDR5 power, GMC vs WG-W over the
//! irregular suite. Paper: WG-W's hit rate is 16% lower, but because the
//! I/O drivers dominate GDDR5 power, total DRAM power rises only ~1.8%.

fn main() {
    ldsim_bench::figures::standalone_main("power");
}
