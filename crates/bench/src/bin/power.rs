//! Section VI-B — power and energy impact.
//!
//! Row-buffer hit rate and estimated GDDR5 power, GMC vs WG-W over the
//! irregular suite. Paper: WG-W's hit rate is 16% lower, but because the
//! I/O drivers dominate GDDR5 power, total DRAM power rises only ~1.8%.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{cell, irregular_names, run_grid};
use ldsim_system::table::{f2, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::WgW];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&[
        "benchmark",
        "hit rate GMC",
        "hit rate WG-W",
        "power GMC (W)",
        "power WG-W (W)",
    ]);
    let (mut h0, mut h1, mut p0, mut p1) = (vec![], vec![], vec![], vec![]);
    for b in &benches {
        let a = cell(&grid, b, SchedulerKind::Gmc);
        let w = cell(&grid, b, SchedulerKind::WgW);
        h0.push(a.row_hit_rate);
        h1.push(w.row_hit_rate);
        p0.push(a.dram_power_w);
        p1.push(w.dram_power_w);
        t.row(vec![
            b.to_string(),
            pct(a.row_hit_rate),
            pct(w.row_hit_rate),
            f2(a.dram_power_w),
            f2(w.dram_power_w),
        ]);
    }
    println!("Section VI-B — row-hit rate and DRAM power, GMC vs WG-W\n");
    t.print();
    println!(
        "\nmean hit-rate change: {:+.1}% relative (paper: -16%)",
        (mean(&h1) / mean(&h0) - 1.0) * 100.0
    );
    println!(
        "mean power change:    {:+.1}% (paper: +1.8%)",
        (mean(&p1) / mean(&p0) - 1.0) * 100.0
    );
    dump_json(
        "power",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
