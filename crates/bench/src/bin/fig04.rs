//! Fig. 4 — Room for improvement.
//!
//! Two hypothetical systems vs the GMC baseline: *Perfect Coalescing*
//! (every load collapses to one request; paper: ~5x) and *Zero Latency
//! Divergence* (all of a warp's requests return right after the first;
//! paper: +43%).

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{irregular_names, run_one, run_one_with};
use ldsim_system::table::{f2, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let mut t = Table::new(&["benchmark", "PerfectCoalescing", "ZeroDivergence"]);
    let (mut pcs, mut zds) = (Vec::new(), Vec::new());
    let mut results = Vec::new();
    for b in irregular_names() {
        let base = run_one(b, scale, seed, SchedulerKind::Gmc);
        let pc = run_one_with(b, scale, seed, SchedulerKind::Gmc, |c| {
            c.perfect_coalescing = true;
        });
        let zd = run_one(b, scale, seed, SchedulerKind::ZeroDivergence);
        let pcx = speedup(b, pc.ipc(), base.ipc());
        let zdx = speedup(b, zd.ipc(), base.ipc());
        pcs.push(pcx);
        zds.push(zdx);
        t.row(vec![b.to_string(), f2(pcx), f2(zdx)]);
        results.extend([base, pc, zd]);
    }
    t.row(vec![
        "GMEAN (paper: ~5x / 1.43x)".into(),
        f2(geomean(&pcs)),
        f2(geomean(&zds)),
    ]);
    println!("Fig. 4 — upper bounds: speedup over GMC\n");
    t.print();
    dump_json("fig04", scale, seed, &results.iter().collect::<Vec<_>>());
}
