//! Fig. 4 — Room for improvement.
//!
//! Two hypothetical systems vs the GMC baseline: *Perfect Coalescing*
//! (every load collapses to one request; paper: ~5x) and *Zero Latency
//! Divergence* (all of a warp's requests return right after the first;
//! paper: +43%).

fn main() {
    ldsim_bench::figures::standalone_main("fig04");
}
