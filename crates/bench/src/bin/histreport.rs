//! `histreport` — distribution-grade latency observability.
//!
//! Runs the irregular suite across the paper's scheduler ladder with the
//! in-simulator histograms armed and prints percentile tables: per-load
//! DRAM service gap and effective load latency (p50/p90/p99 per cell), plus
//! every hardware distribution (bank queue depth at enqueue, row-hit streak
//! length, MERB occupancy, sampled read-queue depth) merged across the
//! suite per scheduler. Full bucket arrays land in
//! `results/histreport.hist.jsonl` via the shared dump path.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{cell, irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::Table;
use ldsim_system::{run_opts, set_run_opts, RunHists, RunResult};

fn main() {
    let (scale, seed) = cli();
    // Histograms are this binary's entire point: force-arm them on top of
    // whatever switches cli() already applied (the swappable run-opts store
    // makes this late write take effect).
    let mut opts = run_opts();
    opts.hist = true;
    set_run_opts(opts);

    let benches = irregular_names();
    let grid = run_grid(&benches, PAPER_SCHEDULERS, scale, seed);

    let mut header = vec!["benchmark".to_string()];
    header.extend(PAPER_SCHEDULERS.iter().map(|k| format!("{k:?}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    for (title, pick) in [
        (
            "DRAM service gap (cycles, p50/p90/p99)",
            (|r| (r.gap_p50, r.gap_p90, r.gap_p99)) as fn(&RunResult) -> (u64, u64, u64),
        ),
        ("effective load latency (cycles, p50/p90/p99)", |r| {
            (r.eff_p50, r.eff_p90, r.eff_p99)
        }),
    ] {
        let mut t = Table::new(&header_refs);
        for &b in &benches {
            let mut row = vec![b.to_string()];
            for &k in PAPER_SCHEDULERS {
                let (p50, p90, p99) = pick(cell(&grid, b, k));
                row.push(format!("{p50}/{p90}/{p99}"));
            }
            t.row(row);
        }
        println!("histreport — {title}\n");
        t.print();
        println!();
    }

    // Hardware distributions, merged across the suite per scheduler.
    let mut merged: Vec<RunHists> = PAPER_SCHEDULERS.iter().map(|_| RunHists::new()).collect();
    for (i, &k) in PAPER_SCHEDULERS.iter().enumerate() {
        for &b in &benches {
            let hists = cell(&grid, b, k)
                .hists
                .as_deref()
                .expect("histreport arms histograms for every run");
            for ((_, dst), (_, src)) in merged[i]
                .iter_named_mut()
                .into_iter()
                .zip(hists.iter_named())
            {
                dst.merge(src);
            }
        }
    }
    let mut hw_header = vec!["distribution"];
    let sched_names: Vec<String> = PAPER_SCHEDULERS.iter().map(|k| format!("{k:?}")).collect();
    hw_header.extend(sched_names.iter().map(|s| s.as_str()));
    let mut t = Table::new(&hw_header);
    let names: Vec<&str> = merged[0].iter_named().iter().map(|(n, _)| *n).collect();
    for (hi, name) in names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for m in &merged {
            let h = m.iter_named()[hi].1;
            row.push(format!("{}/{}", h.quantile(0.5), h.quantile(0.99)));
        }
        t.row(row);
    }
    println!("histreport — hardware distributions, suite-merged (p50/p99)\n");
    t.print();

    dump_json(
        "histreport",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
