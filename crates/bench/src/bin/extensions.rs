//! Extensions beyond the paper's evaluation:
//!
//! * **ATLAS-lite** (Section VI-C.3's other CPU scheduler): epoch-based
//!   least-attained-service — the paper argues its coordination is too
//!   coarse for warp-groups;
//! * **WG-S** (Section VIII, the paper's future work): WG-W that also
//!   prioritises warp-groups whose lines are shared by multiple warps.

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, irregular_names, run_grid};
use ldsim_system::table::{f3, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let kinds = [
        SchedulerKind::Gmc,
        SchedulerKind::AtlasLite,
        SchedulerKind::WgW,
        SchedulerKind::WgShared,
    ];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&["benchmark", "ATLAS/GMC", "WG-W/GMC", "WG-S/GMC"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc).ipc();
        let mut row = vec![b.to_string()];
        for (i, k) in [
            SchedulerKind::AtlasLite,
            SchedulerKind::WgW,
            SchedulerKind::WgShared,
        ]
        .iter()
        .enumerate()
        {
            let x = speedup(b, cell(&grid, b, *k).ipc(), base);
            cols[i].push(x);
            row.push(f3(x));
        }
        t.row(row);
    }
    t.row(vec![
        "GMEAN".into(),
        f3(geomean(&cols[0])),
        f3(geomean(&cols[1])),
        f3(geomean(&cols[2])),
    ]);
    println!("Extensions — ATLAS-lite (VI-C.3) and WG-S (Section VIII future work)\n");
    t.print();
    dump_json(
        "extensions",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
