//! Extensions beyond the paper's evaluation:
//!
//! * **ATLAS-lite** (Section VI-C.3's other CPU scheduler): epoch-based
//!   least-attained-service — the paper argues its coordination is too
//!   coarse for warp-groups;
//! * **WG-S** (Section VIII, the paper's future work): WG-W that also
//!   prioritises warp-groups whose lines are shared by multiple warps.

fn main() {
    ldsim_bench::figures::standalone_main("extensions");
}
