//! Wall-clock performance report for the busy-cycle hot paths.
//!
//! Times full simulator runs (kernel generation excluded) of the busy —
//! i.e. not idle-dominated — irregular benchmarks under WG-W, the scheme
//! that exercises every pick path (bank-aware SJF scoring, the MERB gate,
//! the unit-group write pre-drain and the drain bypass), in two modes:
//!
//! * **indexed** — the default incremental-index pick paths plus the
//!   controller's ready-cycle cache (DESIGN.md §13);
//! * **reference** — the original scan-based picks, kept behind
//!   `SimConfig::with_reference_picks(true)` for differential testing.
//!
//! Each row also times the intra-run partition pool (`sim_threads = 2`,
//! DESIGN.md §17) against the serial epoch loop on the indexed build —
//! `thread_speedup` > 1 means the pool wins on this host. The pool is
//! bit-exact with serial, so the rep-determinism assertion doubles as a
//! cross-thread-count determinism check. On single-core hosts (CI
//! containers often are) the threaded rows measure pure barrier overhead;
//! the row records `host_threads` so a reader can tell which regime
//! produced it.
//!
//! Both modes run on the *current* build, so their ratio isolates the
//! pick-path indexing alone. The overall PR-4 trajectory additionally
//! includes the queue/hashing overhaul and the release-profile LTO tuning,
//! which speed up both modes equally; to keep that visible, the report also
//! embeds the per-rep seconds measured at the pre-overhaul seed commit
//! (`eabfeb8`, same machine class, Small scale, WG-W, seed 11) and the
//! resulting end-to-end speedup. Those baseline constants are a recorded
//! measurement, not something this binary can reproduce — they are only
//! emitted at Small scale, where they were taken.
//!
//! Each benchmark runs one untimed warm-up per mode, then `reps` timed
//! runs; the reported figure is the median, so one scheduling-noise
//! outlier cannot skew a row. Results go to `BENCH_perf.json` in the
//! working directory (single JSON document, not JSON lines — this file is
//! the perf trajectory artifact CI archives, not figure provenance).

use ldsim_bench::cli;
use ldsim_system::table::Table;
use ldsim_system::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_types::kernel::KernelProgram;
use ldsim_util::json::JsonObject;
use ldsim_workloads::{benchmark, Scale};
use std::io::Write;
use std::time::Instant;

/// Busy benchmarks: every irregular workload whose run is dominated by
/// in-flight memory traffic rather than idle-cycle fast-forwarding (nw is
/// excluded — it finishes in milliseconds and times pure noise).
const BUSY: &[&str] = &["sp", "kmeans", "spmv", "sssp", "bfs"];

/// Per-rep seconds at the seed commit (`eabfeb8`): Small scale, WG-W,
/// seed 11, 70% instruction budget, release build, 20-rep average.
fn seed_baseline_small_s(bench: &str) -> Option<f64> {
    match bench {
        "sp" => Some(0.2359),
        "kmeans" => Some(0.1282),
        "spmv" => Some(0.0929),
        "sssp" => Some(0.0739),
        "bfs" => Some(0.0234),
        _ => None,
    }
}

/// Thread count for the timed threaded rows: 2 keeps the pool meaningful
/// on small CI hosts without oversubscribing them (the simulator caps at
/// the partition count anyway).
const TIMED_SIM_THREADS: usize = 2;

/// Deterministic epoch-barrier accounting for one (kernel, scheduler) at
/// the timed thread count — cycle and barrier *counts*, not wall clock, so
/// the figures are identical on any host (1-core CI included) and CI can
/// gate on them.
struct SyncProfile {
    /// Barriers per thousand simulated cycles, auto epoch window.
    epoch_per_kcycle: f64,
    /// Same, with the window forced to the per-cycle cadence
    /// (`epoch_max = 1` — the pre-epoch pool behaviour).
    percycle_per_kcycle: f64,
    /// `percycle / epoch` barrier-count ratio: the amortization factor.
    barrier_cut: f64,
    /// Mean epoch window length in cycles.
    mean_window: f64,
}

fn sync_profile(kernel: &KernelProgram, kind: SchedulerKind) -> SyncProfile {
    // Full runs, no instruction budget: barrier amortization is a property
    // of the epoch engine, and a budget legitimately clamps windows near
    // its edge (the budget lookahead must be conservative), which would
    // measure the budget, not the engine. The timed rows above keep their
    // budget — these two knobs answer different questions.
    let make_cfg = |cap| {
        SimConfig::default()
            .with_scheduler(kind)
            .with_sim_threads(TIMED_SIM_THREADS)
            .with_epoch_max(cap)
    };
    let (r_epoch, epoch) = Simulator::new(make_cfg(0), kernel).run_with_sync_stats();
    let (r_cycle, cycle) = Simulator::new(make_cfg(1), kernel).run_with_sync_stats();
    assert_eq!(
        r_epoch, r_cycle,
        "{kind:?}: epoch cadence changed the simulated work — must be bit-exact"
    );
    assert!(epoch.windows > 0, "{kind:?}: epoch windows never engaged");
    SyncProfile {
        epoch_per_kcycle: 1000.0 * epoch.barriers as f64 / r_epoch.cycles as f64,
        percycle_per_kcycle: 1000.0 * cycle.barriers as f64 / r_cycle.cycles as f64,
        barrier_cut: cycle.barriers as f64 / epoch.barriers as f64,
        mean_window: epoch.epoch_cycles as f64 / epoch.windows as f64,
    }
}

/// Median of `reps` timed runs of one (kernel, mode, thread count), after
/// one warm-up. `cycles_pin`, when given, asserts every rep simulates the
/// exact same work — across reps *and* across thread counts.
fn time_runs(
    kernel: &KernelProgram,
    kind: SchedulerKind,
    reference: bool,
    sim_threads: usize,
    reps: usize,
    cycles_pin: Option<u64>,
) -> (f64, u64) {
    let make_cfg = || {
        let mut cfg = SimConfig::default()
            .with_scheduler(kind)
            .with_reference_picks(reference)
            .with_sim_threads(sim_threads);
        cfg.instruction_limit = Some(kernel.total_instructions() * 7 / 10);
        cfg
    };
    let warm = Simulator::new(make_cfg(), kernel).run();
    assert!(warm.finished, "warm-up run did not finish");
    if let Some(pin) = cycles_pin {
        assert_eq!(
            warm.cycles, pin,
            "sim_threads={sim_threads} changed the simulated work — the pool must be bit-exact"
        );
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = Simulator::new(make_cfg(), kernel).run();
        samples.push(t0.elapsed().as_secs_f64());
        assert_eq!(
            r.cycles, warm.cycles,
            "nondeterministic rep — timing would compare different work"
        );
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], warm.cycles)
}

fn main() {
    let (scale, seed) = cli();
    let kind = SchedulerKind::WgW;
    // Tiny runs are short enough that more reps cost nothing and steady the
    // median; Small reps are ~0.1 s each, so keep CI wall-clock bounded.
    let reps = if scale == Scale::Tiny { 9 } else { 5 };

    let mut t = Table::new(&[
        "benchmark",
        "indexed s/rep",
        "reference s/rep",
        "pick speedup",
        "threaded s/rep",
        "thread speedup",
        "seed baseline s",
        "total speedup",
    ]);
    let mut sync_t = Table::new(&[
        "benchmark",
        "mean epoch (cyc)",
        "barriers/kcyc epoch",
        "barriers/kcyc per-cycle",
        "WG-W cut",
        "GMC cut",
    ]);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows = Vec::new();
    for &bench in BUSY {
        let kernel = benchmark(bench, scale, seed).generate();
        let (indexed_s, cycles) = time_runs(&kernel, kind, false, 1, reps, None);
        let (reference_s, _) = time_runs(&kernel, kind, true, 1, reps, None);
        let (threaded_s, _) =
            time_runs(&kernel, kind, false, TIMED_SIM_THREADS, reps, Some(cycles));
        let pick_speedup = reference_s / indexed_s;
        let thread_speedup = indexed_s / threaded_s;
        let baseline = if scale == Scale::Small {
            seed_baseline_small_s(bench)
        } else {
            None
        };
        let total_speedup = baseline.map(|b| b / indexed_s);
        t.row(vec![
            bench.to_string(),
            format!("{indexed_s:.4}"),
            format!("{reference_s:.4}"),
            format!("{pick_speedup:.2}x"),
            format!("{threaded_s:.4}"),
            format!("{thread_speedup:.2}x"),
            baseline.map_or("-".into(), |b| format!("{b:.4}")),
            total_speedup.map_or("-".into(), |s| format!("{s:.2}x")),
        ]);
        // Barrier amortization (DESIGN.md §18), reported for both step
        // topologies: the coordinating WG-W (window clamped to the
        // coordination latency, per-cycle cost of two barriers per cycle)
        // and the non-coordinating GMC (full crossbar lookahead — the
        // headline ≥10x figure CI gates on).
        let wgw_sync = sync_profile(&kernel, kind);
        let gmc_sync = sync_profile(&kernel, SchedulerKind::Gmc);
        sync_t.row(vec![
            bench.to_string(),
            format!("{:.1}", wgw_sync.mean_window),
            format!("{:.1}", wgw_sync.epoch_per_kcycle),
            format!("{:.1}", wgw_sync.percycle_per_kcycle),
            format!("{:.2}x", wgw_sync.barrier_cut),
            format!("{:.2}x", gmc_sync.barrier_cut),
        ]);
        let mut row = JsonObject::new();
        row.str("benchmark", bench)
            .f64("indexed_s", indexed_s)
            .f64("reference_s", reference_s)
            .f64("pick_speedup", pick_speedup)
            .u64("sim_threads", TIMED_SIM_THREADS as u64)
            .f64("threaded_s", threaded_s)
            .f64("thread_speedup", thread_speedup)
            .f64("mean_epoch_cycles", wgw_sync.mean_window)
            .f64("barriers_per_kcycle_epoch", wgw_sync.epoch_per_kcycle)
            .f64("barriers_per_kcycle_percycle", wgw_sync.percycle_per_kcycle)
            .f64("barrier_cut", wgw_sync.barrier_cut)
            .f64("gmc_barrier_cut", gmc_sync.barrier_cut);
        match (baseline, total_speedup) {
            (Some(b), Some(s)) => row.f64("seed_baseline_s", b).f64("total_speedup", s),
            _ => row.null("seed_baseline_s").null("total_speedup"),
        };
        rows.push(row.build());
    }

    println!("perfreport — busy-benchmark wall clock, indexed vs reference picks ({kind:?})\n");
    t.print();
    println!(
        "\npick speedup = reference/indexed on this build; thread speedup = \
         serial / {TIMED_SIM_THREADS}-thread partition pool (host has {host_threads} \
         core(s)); total speedup = seed-commit baseline / indexed (Small only, \
         where the baseline was measured)."
    );

    println!("\nepoch barrier amortization — {TIMED_SIM_THREADS}-thread pool, auto window vs per-cycle cadence\n");
    sync_t.print();
    println!(
        "\ncut = per-cycle barriers / epoch barriers (deterministic counts, \
         host-independent); WG-W columns use the WG-W run above, GMC cut is \
         the non-coordinating headline CI gates on (DESIGN.md §18)."
    );

    let doc = format!(
        "{{\"report\":\"perfreport\",\"scale\":\"{scale:?}\",\"seed\":{seed},\
         \"scheduler\":\"{kind:?}\",\"reps\":{reps},\"host_threads\":{host_threads},\
         \"baseline_commit\":\"eabfeb8\",\"rows\":[{}]}}",
        rows.join(",")
    );
    let path = "BENCH_perf.json";
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    writeln!(f, "{doc}").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
