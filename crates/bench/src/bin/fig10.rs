//! Fig. 10 — DRAM latency divergence with different schedulers.
//!
//! The mean first-to-last DRAM service gap of a warp's requests, per
//! scheduler and benchmark. The paper's observation: WG-M helps most on
//! benchmarks that spread warps over many controllers (cfd, spmv, sssp,
//! sp); WG suffices for sad, nw, SS, bfs.

fn main() {
    ldsim_bench::figures::standalone_main("fig10");
}
