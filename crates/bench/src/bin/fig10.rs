//! Fig. 10 — DRAM latency divergence with different schedulers.
//!
//! The mean first-to-last DRAM service gap of a warp's requests, per
//! scheduler and benchmark. The paper's observation: WG-M helps most on
//! benchmarks that spread warps over many controllers (cfd, spmv, sssp,
//! sp); WG suffices for sad, nw, SS, bfs.

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{cell, irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::{f2, Table};
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let grid = run_grid(&benches, PAPER_SCHEDULERS, scale, seed);
    let mut t = Table::new(&["benchmark", "GMC", "WG", "WG-M", "WG-Bw", "WG-W", "ch/warp"]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for b in &benches {
        let mut row = vec![b.to_string()];
        for (i, k) in PAPER_SCHEDULERS.iter().enumerate() {
            let v = cell(&grid, b, *k).avg_dram_gap;
            sums[i].push(v);
            row.push(f2(v));
        }
        row.push(f2(cell(&grid, b, PAPER_SCHEDULERS[0]).avg_channels_touched));
        t.row(row);
    }
    t.row(vec![
        "MEAN".into(),
        f2(mean(&sums[0])),
        f2(mean(&sums[1])),
        f2(mean(&sums[2])),
        f2(mean(&sums[3])),
        f2(mean(&sums[4])),
        "-".into(),
    ]);
    println!("Fig. 10 — first-to-last DRAM service gap (cycles)\n");
    t.print();
    dump_json(
        "fig10",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
