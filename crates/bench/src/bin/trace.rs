//! Capture a full audited event trace of one run as JSONL.
//!
//! ```text
//! cargo run --release --bin trace -- bfs tiny --seed 1 --scheduler wgw
//! ```
//!
//! writes `results/trace_<bench>_<scheduler>.jsonl`: one meta line (with
//! the stable trace hash), then one line per DRAM command, warp-group
//! lifecycle event, and per-load latency/divergence record. The run
//! executes with the protocol auditor armed and fails loudly on any
//! timing violation.

use ldsim_bench::{cli_fail, cli_parse, cli_pos, cli_value};
use ldsim_system::Simulator;
use ldsim_types::config::{SchedulerKind, SimConfig};
use ldsim_workloads::{benchmark, Scale};

const USAGE: &str = "trace [bench] [tiny|small|full] [--seed N] [--scheduler NAME] [--threads N]";

fn parse_scheduler(s: &str) -> SchedulerKind {
    match s.to_ascii_lowercase().as_str() {
        "fcfs" => SchedulerKind::Fcfs,
        "frfcfs" => SchedulerKind::FrFcfs,
        "gmc" => SchedulerKind::Gmc,
        "wafcfs" => SchedulerKind::Wafcfs,
        "sbwas" => SchedulerKind::Sbwas { alpha_q: 2 },
        "wg" => SchedulerKind::Wg,
        "wg-m" | "wgm" => SchedulerKind::WgM,
        "wg-bw" | "wgbw" => SchedulerKind::WgBw,
        "wg-w" | "wgw" => SchedulerKind::WgW,
        other => cli_fail(USAGE, &format!("--scheduler does not know '{other}'")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = "bfs".to_string();
    let mut scale = Scale::Tiny;
    let mut seed = 1u64;
    let mut kind = SchedulerKind::Gmc;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "full" => scale = Scale::Full,
            "--seed" => {
                let v = cli_value(&args, i, "--seed", USAGE);
                seed = cli_parse(v, "--seed", "a number", USAGE);
                i += 1;
            }
            "--scheduler" => {
                let v = cli_value(&args, i, "--scheduler", USAGE);
                kind = parse_scheduler(v);
                i += 1;
            }
            "--threads" => {
                let v = cli_value(&args, i, "--threads", USAGE);
                ldsim_util::set_sim_threads(Some(cli_pos(v, "--threads", USAGE)));
                i += 1;
            }
            name if !name.starts_with('-') => bench = name.to_string(),
            other => cli_fail(USAGE, &format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let kernel = benchmark(&bench, scale, seed).generate();
    let cfg = SimConfig::default()
        .with_scheduler(kind)
        .with_audit()
        .with_trace();
    let (result, trace) = Simulator::new(cfg, &kernel).run_traced();
    assert_eq!(
        result.audit_violations, 0,
        "protocol violations during traced run"
    );
    let trace = trace.expect("tracing was enabled");

    std::fs::create_dir_all("results").expect("cannot create results/");
    let path = format!(
        "results/trace_{bench}_{}.jsonl",
        result.scheduler.replace('/', "_")
    );
    let mut f = std::fs::File::create(&path).expect("cannot create trace file");
    trace.write_jsonl(&mut f).expect("trace write failed");

    println!(
        "{path}: {} events, trace hash {:016x}",
        trace.len(),
        trace.stable_hash()
    );
    println!(
        "audited {} commands, 0 violations; {} cycles, IPC {:.3}",
        result.audit_commands,
        result.cycles,
        result.ipc()
    );
}
