//! Section VI-C.1 — comparison with SBWAS.
//!
//! For each irregular benchmark, alpha is profiled from {0.25, 0.5, 0.75}
//! (best IPC wins, as in the paper) and the best-alpha IPC is compared with
//! GMC and WG-W. Paper: SBWAS +2.51% over GMC; WG-W +7.3% over SBWAS.

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, irregular_names, run_grid};
use ldsim_system::table::{f3, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let kinds = [
        SchedulerKind::Gmc,
        SchedulerKind::Sbwas { alpha_q: 1 },
        SchedulerKind::Sbwas { alpha_q: 2 },
        SchedulerKind::Sbwas { alpha_q: 3 },
        SchedulerKind::WgW,
    ];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&["benchmark", "best alpha", "SBWAS/GMC", "WG-W/SBWAS"]);
    let (mut sb, mut wg) = (vec![], vec![]);
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc).ipc();
        let (mut best, mut best_a) = (0.0f64, 0u8);
        for a in 1..=3u8 {
            let ipc = cell(&grid, b, SchedulerKind::Sbwas { alpha_q: a }).ipc();
            if ipc > best {
                best = ipc;
                best_a = a;
            }
        }
        let wgw = cell(&grid, b, SchedulerKind::WgW).ipc();
        sb.push(speedup(b, best, base));
        wg.push(speedup(b, wgw, best));
        t.row(vec![
            b.to_string(),
            format!("0.{}", best_a as u32 * 25),
            f3(best / base),
            f3(wgw / best),
        ]);
    }
    t.row(vec![
        "GMEAN (paper: - / 1.025 / 1.073)".into(),
        "-".into(),
        f3(geomean(&sb)),
        f3(geomean(&wg)),
    ]);
    println!("Section VI-C.1 — SBWAS with profiled alpha vs GMC and WG-W\n");
    t.print();
    dump_json(
        "sbwas",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
