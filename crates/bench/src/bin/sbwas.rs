//! Section VI-C.1 — comparison with SBWAS.
//!
//! For each irregular benchmark, alpha is profiled from {0.25, 0.5, 0.75}
//! (best IPC wins, as in the paper) and the best-alpha IPC is compared with
//! GMC and WG-W. Paper: SBWAS +2.51% over GMC; WG-W +7.3% over SBWAS.

fn main() {
    ldsim_bench::figures::standalone_main("sbwas");
}
