//! Fig. 8 — Performance normalised to the GMC baseline.
//!
//! IPC of WG / WG-M / WG-Bw / WG-W relative to GMC for every irregular
//! benchmark, with the geometric mean. Paper: +3.4% / +6.2% / +8.4% /
//! +10.1%. (See EXPERIMENTS.md for the calibration discussion: this
//! reproduction preserves the orderings with attenuated magnitudes.)

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, irregular_names, run_grid, PAPER_SCHEDULERS};
use ldsim_system::table::{f3, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let grid = run_grid(&benches, PAPER_SCHEDULERS, scale, seed);
    let mut t = Table::new(&["benchmark", "WG", "WG-M", "WG-Bw", "WG-W"]);
    let mut per_sched: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc).ipc();
        let mut row = vec![b.to_string()];
        for (i, k) in [
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
        ]
        .iter()
        .enumerate()
        {
            let x = speedup(b, cell(&grid, b, *k).ipc(), base);
            per_sched[i].push(x);
            row.push(f3(x));
        }
        t.row(row);
    }
    t.row(vec![
        "GMEAN (paper: 1.034/1.062/1.084/1.101)".into(),
        f3(geomean(&per_sched[0])),
        f3(geomean(&per_sched[1])),
        f3(geomean(&per_sched[2])),
        f3(geomean(&per_sched[3])),
    ]);
    println!("Fig. 8 — IPC normalised to GMC (irregular suite)\n");
    t.print();
    dump_json(
        "fig08",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
