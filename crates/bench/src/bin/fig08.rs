//! Fig. 8 — Performance normalised to the GMC baseline.
//!
//! IPC of WG / WG-M / WG-Bw / WG-W relative to GMC for every irregular
//! benchmark, with the geometric mean. Paper: +3.4% / +6.2% / +8.4% /
//! +10.1%. (See EXPERIMENTS.md for the calibration discussion: this
//! reproduction preserves the orderings with attenuated magnitudes.)

fn main() {
    ldsim_bench::figures::standalone_main("fig08");
}
