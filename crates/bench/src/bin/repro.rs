//! One-command full reproduction: run every figure and table of the paper
//! through the global sweep orchestrator.
//!
//! All registered figure grids are deduped into one unique-cell work list,
//! simulated in a single work-stealing pass, and rendered from the shared
//! store — the same bytes every standalone figure binary writes, produced
//! once. Completed cells persist in a content-addressed sharded cache
//! (`<out>/cellcache/`), so an interrupted run resumes where it died and a
//! warm rerun re-renders everything without simulating at all. The same
//! store backs the long-running `ldsim-server` farm, so farm rows and
//! local rows are interchangeable.
//!
//! ```text
//! repro [tiny|small|full] [--seed N] [--jobs N] [--threads N]
//!       [--only fig08,fig11] [--out DIR] [--cold] [--resume]
//!       [--audit] [--trace]
//! ```
//!
//! `--cold` deletes the cell cache first; `--resume` is the default warm
//! behaviour, spelled out (kept as an explicit flag so crash-recovery
//! runbooks read naturally). The two contradict each other, so passing
//! both is an error. `--hist` is rejected: distribution histograms do not
//! round-trip through the cache — use the `histreport` binary.

use ldsim_bench::figures::registry;
use ldsim_bench::{cli_fail, cli_parse, cli_pos, cli_value};
use ldsim_system::sweep::{run_sweep, SweepConfig, ENGINE_SALT};
use ldsim_system::RunOpts;
use ldsim_workloads::Scale;
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "repro [tiny|small|full] [--seed N] [--jobs N] [--threads N] \
     [--only fig08,fig11] [--out DIR] [--cold] [--resume] [--audit] [--trace]";

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 1u64;
    let mut opts = RunOpts::default();
    let mut out = PathBuf::from("results");
    let mut cold = false;
    let mut resume = false;
    let mut only: Option<Vec<String>> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "tiny" => scale = Scale::Tiny,
            "small" => scale = Scale::Small,
            "full" => scale = Scale::Full,
            "--seed" => {
                let v = cli_value(&args, i, "--seed", USAGE);
                seed = cli_parse(v, "--seed", "a number", USAGE);
                i += 1;
            }
            "--jobs" => {
                let v = cli_value(&args, i, "--jobs", USAGE);
                ldsim_util::set_jobs(Some(cli_pos(v, "--jobs", USAGE)));
                i += 1;
            }
            "--threads" => {
                let v = cli_value(&args, i, "--threads", USAGE);
                ldsim_util::set_sim_threads(Some(cli_pos(v, "--threads", USAGE)));
                i += 1;
            }
            "--out" => {
                out = PathBuf::from(cli_value(&args, i, "--out", USAGE));
                i += 1;
            }
            "--only" => {
                only = Some(
                    cli_value(&args, i, "--only", USAGE)
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
                i += 1;
            }
            "--cold" => cold = true,
            // Warm start is the default; the flag documents intent.
            "--resume" => resume = true,
            "--audit" => opts.audit = true,
            "--trace" => opts.trace = true,
            "--hist" => cli_fail(
                USAGE,
                "--hist is not supported by repro: distribution histograms do not \
                 round-trip through the cell cache — run the standalone \
                 `histreport` binary instead",
            ),
            other => cli_fail(USAGE, &format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if cold && resume {
        cli_fail(
            USAGE,
            "--cold and --resume contradict each other: --cold deletes the cell \
             cache, --resume asks to warm-start from it — pass one or the other",
        );
    }
    ldsim_system::set_run_opts(opts);

    let mut specs = registry(scale, seed);
    if let Some(names) = &only {
        let known: Vec<&str> = specs.iter().map(|s| s.name).collect();
        for n in names {
            if !known.contains(&n.as_str()) {
                cli_fail(
                    USAGE,
                    &format!("--only: unknown figure '{n}' (known: {})", known.join(", ")),
                );
            }
        }
        specs.retain(|s| names.iter().any(|n| n == s.name));
    }

    let cache = out.join("cellcache");
    if cold {
        match std::fs::remove_dir_all(&cache) {
            Ok(()) => println!("cold start: removed {}", cache.display()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("cannot remove {}: {e}", cache.display()),
        }
    }

    // Hidden test hook: stop after N simulated cells to exercise
    // crash-resume against the real binary (cache rows for completed cells
    // are already on disk when we stop).
    let max_simulated = std::env::var("LDSIM_REPRO_MAX_SIM")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());

    let cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        salt: ENGINE_SALT,
        max_simulated,
        shards: ldsim_system::DEFAULT_SHARDS,
    };
    println!(
        "repro: {} figure(s) at {scale:?}, seed {seed}, {} worker(s) x {} sim thread(s), cache {}",
        specs.len(),
        ldsim_util::jobs(),
        ldsim_util::sim_threads(),
        cache.display()
    );
    let t0 = Instant::now();
    let (store, stats) = run_sweep(&cells, &cfg);
    let sweep_s = t0.elapsed().as_secs_f64();
    println!(
        "sweep: {} declared -> {} unique; {} from cache, {} simulated \
         ({} stale/foreign cache line(s) skipped) in {sweep_s:.2}s",
        stats.declared, stats.unique, stats.from_cache, stats.simulated, stats.skipped_lines
    );
    if max_simulated.is_some() && stats.from_cache + stats.simulated < stats.unique {
        println!(
            "LDSIM_REPRO_MAX_SIM: stopping after {} simulated cell(s); \
             rerun to resume from the cache",
            stats.simulated
        );
        return;
    }

    let t1 = Instant::now();
    for spec in &specs {
        println!("\n----- {} -----\n", spec.name);
        (spec.render)(&store, &out);
    }
    let render_s = t1.elapsed().as_secs_f64();
    println!(
        "\nrepro complete: sweep {sweep_s:.2}s + render {render_s:.2}s = {:.2}s total \
         ({} simulated, {} cached)",
        sweep_s + render_s,
        stats.simulated,
        stats.from_cache
    );
}
