//! Section VI-C.2 — comparison with WAFCFS.
//!
//! Warp-aware FCFS [Yuan+] vs GMC over the irregular suite. The paper
//! measures an 11.2% slowdown: in-order warp-group service achieves almost
//! no row hits on irregular access patterns.

use ldsim_bench::{cli, dump_json, speedup};
use ldsim_system::runner::{cell, irregular_names, run_grid};
use ldsim_system::table::{f3, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::geomean;

fn main() {
    let (scale, seed) = cli();
    let benches = irregular_names();
    let kinds = [SchedulerKind::Gmc, SchedulerKind::Wafcfs];
    let grid = run_grid(&benches, &kinds, scale, seed);
    let mut t = Table::new(&[
        "benchmark",
        "WAFCFS / GMC",
        "hit rate GMC",
        "hit rate WAFCFS",
    ]);
    let mut xs = Vec::new();
    for b in &benches {
        let base = cell(&grid, b, SchedulerKind::Gmc);
        let w = cell(&grid, b, SchedulerKind::Wafcfs);
        xs.push(speedup(b, w.ipc(), base.ipc()));
        t.row(vec![
            b.to_string(),
            f3(w.ipc() / base.ipc()),
            pct(base.row_hit_rate),
            pct(w.row_hit_rate),
        ]);
    }
    t.row(vec![
        "GMEAN (paper: 0.888)".into(),
        f3(geomean(&xs)),
        "-".into(),
        "-".into(),
    ]);
    println!("Section VI-C.2 — WAFCFS vs GMC\n");
    t.print();
    dump_json(
        "wafcfs",
        scale,
        seed,
        &grid.iter().map(|c| &c.result).collect::<Vec<_>>(),
    );
}
