//! Section VI-C.2 — comparison with WAFCFS.
//!
//! Warp-aware FCFS [Yuan+] vs GMC over the irregular suite. The paper
//! measures an 11.2% slowdown: in-order warp-group service achieves almost
//! no row hits on irregular access patterns.

fn main() {
    ldsim_bench::figures::standalone_main("wafcfs");
}
