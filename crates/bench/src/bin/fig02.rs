//! Fig. 2 — Coalescing efficiency.
//!
//! For each irregular benchmark: the fraction of loads that remain
//! divergent after coalescing (paper: 56% on average) and the mean number
//! of memory requests per load (paper: 5.9).

fn main() {
    ldsim_bench::figures::standalone_main("fig02");
}
