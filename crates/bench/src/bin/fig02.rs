//! Fig. 2 — Coalescing efficiency.
//!
//! For each irregular benchmark: the fraction of loads that remain
//! divergent after coalescing (paper: 56% on average) and the mean number
//! of memory requests per load (paper: 5.9).

use ldsim_bench::{cli, dump_json};
use ldsim_system::runner::{irregular_names, run_one};
use ldsim_system::table::{f2, pct, Table};
use ldsim_types::config::SchedulerKind;
use ldsim_types::stats::mean;

fn main() {
    let (scale, seed) = cli();
    let mut t = Table::new(&["benchmark", "divergent loads", "reqs/load"]);
    let mut dfs = Vec::new();
    let mut rpls = Vec::new();
    let mut results = Vec::new();
    for b in irregular_names() {
        let r = run_one(b, scale, seed, SchedulerKind::Gmc);
        dfs.push(r.divergent_frac());
        rpls.push(r.avg_reqs_per_load);
        t.row(vec![
            b.to_string(),
            pct(r.divergent_frac()),
            f2(r.avg_reqs_per_load),
        ]);
        results.push(r);
    }
    t.row(vec![
        "MEAN (paper: 56% / 5.9)".into(),
        pct(mean(&dfs)),
        f2(mean(&rpls)),
    ]);
    println!("Fig. 2 — coalescing efficiency (irregular suite, GMC baseline)\n");
    t.print();
    dump_json("fig02", scale, seed, &results.iter().collect::<Vec<_>>());
}
