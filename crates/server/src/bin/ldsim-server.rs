//! The sweep farm daemon: bind a port, open the sharded cell store, serve
//! jobs until killed. See DESIGN.md §19 and `ldsim-client` for the other
//! side of the wire.

use ldsim_bench::{cli_fail, cli_parse, cli_pos, cli_value};
use ldsim_server::{spawn_server, Exec, ExecConfig};
use std::io::Write as _;
use std::path::PathBuf;

const USAGE: &str = "ldsim-server [--port N] [--cache DIR] [--shards N] [--jobs N] \
     [--threads N] [--max-inflight N] [--queue N]";

fn main() {
    let mut port: u16 = 7717;
    let mut cfg = ExecConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--port" => {
                let v = cli_value(&args, i, "--port", USAGE);
                // 0 is legal here: bind ephemeral and print the real port.
                port = cli_parse(v, "--port", "a port number (0-65535)", USAGE);
                i += 1;
            }
            "--cache" => {
                cfg.cache_dir = PathBuf::from(cli_value(&args, i, "--cache", USAGE));
                i += 1;
            }
            "--shards" => {
                let v = cli_value(&args, i, "--shards", USAGE);
                let n = cli_pos(v, "--shards", USAGE);
                if n > ldsim_system::shard::MAX_SHARDS {
                    cli_fail(
                        USAGE,
                        &format!(
                            "--shards must be at most {}, got '{v}'",
                            ldsim_system::shard::MAX_SHARDS
                        ),
                    );
                }
                cfg.shards = n;
                i += 1;
            }
            "--jobs" => {
                let v = cli_value(&args, i, "--jobs", USAGE);
                cfg.workers = cli_pos(v, "--jobs", USAGE);
                i += 1;
            }
            "--threads" => {
                let v = cli_value(&args, i, "--threads", USAGE);
                ldsim_util::set_sim_threads(Some(cli_pos(v, "--threads", USAGE)));
                i += 1;
            }
            "--max-inflight" => {
                let v = cli_value(&args, i, "--max-inflight", USAGE);
                cfg.max_inflight = cli_pos(v, "--max-inflight", USAGE);
                i += 1;
            }
            "--queue" => {
                let v = cli_value(&args, i, "--queue", USAGE);
                cfg.queue_cap = cli_pos(v, "--queue", USAGE);
                i += 1;
            }
            other => cli_fail(USAGE, &format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    let exec = Exec::start(cfg);
    let handle = match spawn_server(exec, port) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    let cfg = handle.exec.config();
    println!(
        "ldsim-server listening on 127.0.0.1:{} (cache {}, {} shards, {} workers, \
         max-inflight {}, queue {}, {} cached row(s), salt {})",
        handle.port,
        cfg.cache_dir.display(),
        cfg.shards,
        cfg.workers,
        cfg.max_inflight,
        cfg.queue_cap,
        handle.exec.indexed_rows(),
        ldsim_system::ENGINE_SALT
    );
    // Scripts (and the CI e2e job) wait for the line above on a pipe.
    std::io::stdout().flush().expect("stdout");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
