//! Scripting client for `ldsim-server`: submit sweep jobs, poll them,
//! stream rendered figure rows into local files, and run compaction —
//! everything the CI `service-e2e` job does, as one small binary.
//!
//! Usage errors (bad flags, missing values) exit 2 with a named `error:`
//! line plus usage, like every other binary in the workspace; *runtime*
//! failures (server unreachable, HTTP error reply, truncated stream) exit
//! 1 with a named `error:` line only.

use ldsim_bench::{cli_fail, cli_parse, cli_pos, cli_value};
use ldsim_server::wire;
use ldsim_system::shard::{compact_file, ShardMap};
use ldsim_system::ENGINE_SALT_HISTORY;
use std::io::{BufRead, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const USAGE: &str = "ldsim-client <ping|submit|status|stream|run|compact> [--host H] [--port N] \
     [--scale tiny|small|full] [--seed N] [--figures a,b|all] [--client NAME] [--job N] \
     [--out DIR] [--cache PATH] [--shards N] [--timeout SECS]";

struct Opts {
    host: String,
    port: u16,
    scale: String,
    seed: u64,
    figures: String,
    client: String,
    job: Option<u64>,
    out: PathBuf,
    cache: Option<PathBuf>,
    shards: usize,
    timeout: Duration,
}

fn runtime_fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        cli_fail(USAGE, "a subcommand is required");
    };
    if !matches!(
        cmd,
        "ping" | "submit" | "status" | "stream" | "run" | "compact"
    ) {
        cli_fail(USAGE, &format!("unknown subcommand '{cmd}'"));
    }
    let mut o = Opts {
        host: "127.0.0.1".into(),
        port: 7717,
        scale: "tiny".into(),
        seed: 1,
        figures: "all".into(),
        client: "cli".into(),
        job: None,
        out: PathBuf::from("results"),
        cache: None,
        shards: ldsim_system::DEFAULT_SHARDS,
        timeout: Duration::from_secs(600),
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--host" => {
                o.host = cli_value(&args, i, "--host", USAGE).to_string();
                i += 1;
            }
            "--port" => {
                let v = cli_value(&args, i, "--port", USAGE);
                o.port = cli_parse(v, "--port", "a port number (1-65535)", USAGE);
                if o.port == 0 {
                    cli_fail(USAGE, "--port needs a nonzero port number, got '0'");
                }
                i += 1;
            }
            "--scale" => {
                let v = cli_value(&args, i, "--scale", USAGE);
                if ldsim_server::parse_scale(v).is_none() {
                    cli_fail(
                        USAGE,
                        &format!("--scale needs tiny, small, or full, got '{v}'"),
                    );
                }
                o.scale = v.to_string();
                i += 1;
            }
            "--seed" => {
                let v = cli_value(&args, i, "--seed", USAGE);
                o.seed = cli_parse(v, "--seed", "a number", USAGE);
                i += 1;
            }
            "--figures" => {
                o.figures = cli_value(&args, i, "--figures", USAGE).to_string();
                i += 1;
            }
            "--client" => {
                o.client = cli_value(&args, i, "--client", USAGE).to_string();
                i += 1;
            }
            "--job" => {
                let v = cli_value(&args, i, "--job", USAGE);
                o.job = Some(cli_parse(v, "--job", "a job id", USAGE));
                i += 1;
            }
            "--out" => {
                o.out = PathBuf::from(cli_value(&args, i, "--out", USAGE));
                i += 1;
            }
            "--cache" => {
                o.cache = Some(PathBuf::from(cli_value(&args, i, "--cache", USAGE)));
                i += 1;
            }
            "--shards" => {
                let v = cli_value(&args, i, "--shards", USAGE);
                o.shards = cli_pos(v, "--shards", USAGE);
                if o.shards > ldsim_system::shard::MAX_SHARDS {
                    cli_fail(
                        USAGE,
                        &format!(
                            "--shards must be at most {}, got '{v}'",
                            ldsim_system::shard::MAX_SHARDS
                        ),
                    );
                }
                i += 1;
            }
            "--timeout" => {
                let v = cli_value(&args, i, "--timeout", USAGE);
                o.timeout = Duration::from_secs(cli_parse(v, "--timeout", "seconds", USAGE));
                i += 1;
            }
            other => cli_fail(USAGE, &format!("unknown argument '{other}'")),
        }
        i += 1;
    }

    match cmd {
        "ping" => {
            let (status, body) = get(&o, "/v1/health");
            expect_ok(status, &body);
            println!("{body}");
        }
        "submit" => {
            let (job, reply) = submit(&o);
            println!("job {job}");
            println!("{reply}");
        }
        "status" => {
            let job = require_job(&o);
            let (status, body) = get(&o, &format!("/v1/jobs/{job}"));
            expect_ok(status, &body);
            println!("{body}");
        }
        "stream" => {
            let job = require_job(&o);
            let (files, rows, _) = stream(&o, job);
            println!(
                "streamed {files} file(s), {rows} row(s) into {}",
                o.out.display()
            );
        }
        "run" => {
            // submit → stream (the stream blocks per figure as results
            // land, so first-row latency is the real farm turnaround) →
            // one status poll to confirm the job settled.
            let t0 = Instant::now();
            let (job, reply) = submit(&o);
            println!("job {job}");
            println!("{reply}");
            let (files, rows, first_row) = stream(&o, job);
            let total = t0.elapsed();
            let (status, body) = get(&o, &format!("/v1/jobs/{job}"));
            expect_ok(status, &body);
            if !body.contains("\"state\":\"done\"") {
                runtime_fail(&format!("job {job} did not settle: {body}"));
            }
            match first_row {
                Some(t) => println!(
                    "run: {files} file(s), {rows} row(s); submit-to-first-row {:.2}s, total {:.2}s",
                    t.duration_since(t0).as_secs_f64(),
                    total.as_secs_f64()
                ),
                None => println!(
                    "run: {files} file(s), {rows} row(s); total {:.2}s",
                    total.as_secs_f64()
                ),
            }
        }
        "compact" => match &o.cache {
            // Offline: compact a local store directly, no server needed.
            Some(path) => {
                let stats = if path.extension().is_some_and(|e| e == "jsonl") {
                    compact_file(path, ENGINE_SALT_HISTORY)
                } else {
                    ShardMap::open(path, o.shards).compact(ENGINE_SALT_HISTORY)
                };
                println!(
                    "compacted {}: kept {}, dropped {} (stale {}, torn {}, superseded {}, \
                     misplaced {}), {} -> {} bytes",
                    path.display(),
                    stats.rows_kept,
                    stats.rows_dropped(),
                    stats.rows_stale,
                    stats.rows_torn,
                    stats.rows_superseded,
                    stats.rows_misplaced,
                    stats.bytes_before,
                    stats.bytes_after
                );
            }
            None => {
                let (status, body) = post(&o, "/v1/compact", "");
                expect_ok(status, &body);
                println!("{body}");
            }
        },
        _ => unreachable!("subcommand validated above"),
    }
}

fn require_job(o: &Opts) -> u64 {
    match o.job {
        Some(j) => j,
        None => cli_fail(USAGE, "--job is required for this subcommand"),
    }
}

fn get(o: &Opts, path: &str) -> (u16, String) {
    wire::request(&o.host, o.port, "GET", path, "").unwrap_or_else(|e| runtime_fail(&e))
}

fn post(o: &Opts, path: &str, body: &str) -> (u16, String) {
    wire::request(&o.host, o.port, "POST", path, body).unwrap_or_else(|e| runtime_fail(&e))
}

fn expect_ok(status: u16, body: &str) {
    if status != 200 {
        runtime_fail(&format!("server replied {status}: {body}"));
    }
}

fn submit(o: &Opts) -> (u64, String) {
    let body = ldsim_util::JsonObject::new()
        .str("client", &o.client)
        .str("scale", &o.scale)
        .u64("seed", o.seed)
        .str("figures", &o.figures)
        .build();
    let (status, reply) = post(o, "/v1/jobs", &body);
    expect_ok(status, &reply);
    let job = ldsim_util::parse_object(&reply)
        .ok()
        .and_then(|p| p.req_u64("job").ok())
        .unwrap_or_else(|| runtime_fail(&format!("malformed submit reply: {reply}")));
    (job, reply)
}

/// Demux one job stream into `<out>/<file>` per file record. Returns
/// (files, rows, instant the first row landed).
fn stream(o: &Opts, job: u64) -> (u64, u64, Option<Instant>) {
    let (status, mut reader) =
        wire::open_stream(&o.host, o.port, &format!("/v1/jobs/{job}/stream"))
            .unwrap_or_else(|e| runtime_fail(&e));
    if status != 200 {
        let mut body = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut body);
        runtime_fail(&format!("server replied {status}: {body}"));
    }
    // A stream blocks per figure while its cells simulate; --timeout bounds
    // how long any single read may sit on a stuck farm.
    reader
        .get_ref()
        .set_read_timeout(Some(o.timeout))
        .unwrap_or_else(|e| runtime_fail(&format!("cannot arm --timeout: {e}")));
    std::fs::create_dir_all(&o.out)
        .unwrap_or_else(|e| runtime_fail(&format!("cannot create {}: {e}", o.out.display())));
    let mut line = String::new();
    let read_line = |reader: &mut dyn BufRead, line: &mut String| -> bool {
        line.clear();
        match reader.read_line(line) {
            Ok(0) => false,
            Ok(_) => true,
            Err(e) => runtime_fail(&format!("stream read failed: {e}")),
        }
    };
    if !read_line(&mut reader, &mut line) {
        runtime_fail("stream truncated: no header record");
    }
    let (mut files, mut rows) = (0u64, 0u64);
    let mut first_row: Option<Instant> = None;
    loop {
        if !read_line(&mut reader, &mut line) {
            runtime_fail("stream truncated: connection closed before the done trailer");
        }
        let Ok(rec) = ldsim_util::parse_object(line.trim_end()) else {
            runtime_fail(&format!("malformed stream record: {}", line.trim_end()));
        };
        if let Ok(err) = rec.req_str("error") {
            let detail = rec.req_str("detail").unwrap_or("");
            runtime_fail(&format!("{err}: {detail}"));
        }
        if rec.req_bool("done").ok() == Some(true) {
            let (f, r) = (
                rec.req_u64("files").unwrap_or(0),
                rec.req_u64("rows").unwrap_or(0),
            );
            if (f, r) != (files, rows) {
                runtime_fail(&format!(
                    "stream accounting mismatch: trailer says {f} file(s)/{r} row(s), \
                     received {files}/{rows}"
                ));
            }
            return (files, rows, first_row);
        }
        let Ok(file) = rec.req_str("file") else {
            continue; // per-figure note (no-file figures) — nothing to write
        };
        if file.contains('/') || file.contains("..") {
            runtime_fail(&format!("refusing suspicious stream filename: {file:?}"));
        }
        let n = rec
            .req_u64("rows")
            .unwrap_or_else(|_| runtime_fail(&format!("file record without rows: {line}")));
        let path = o.out.join(file);
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| runtime_fail(&format!("cannot create {}: {e}", path.display())));
        for _ in 0..n {
            if !read_line(&mut reader, &mut line) {
                runtime_fail(&format!("stream truncated inside {}", path.display()));
            }
            first_row.get_or_insert_with(Instant::now);
            f.write_all(line.as_bytes())
                .unwrap_or_else(|e| runtime_fail(&format!("cannot write {}: {e}", path.display())));
        }
        files += 1;
        rows += n;
    }
}
