//! The farm's execution core: job table, worker pool, cross-client dedupe,
//! and the sharded disk store — everything behind the wire layer.
//!
//! ## Dedupe order
//!
//! A submitted cell is resolved against, in order: results already in
//! memory (`cached`), cells another job is currently queueing or running
//! (`shared` — the submitter simply waits on the same completion), and the
//! sharded disk store (validated through the exact same
//! [`parse_cache_line`] check the sweep orchestrator trusts). Only cells
//! that survive all three go to the submitter's queue. Two clients asking
//! for overlapping grids therefore cost one simulation per unique cell,
//! which is the entire point of running a farm.
//!
//! ## Fairness & backpressure
//!
//! Each client name owns a bounded FIFO queue; workers drain the queues
//! round-robin, so a client submitting the Full grid cannot starve one
//! asking for a single figure. Two hard caps reject work *atomically* at
//! submit time (nothing is enqueued on rejection): a global in-flight cell
//! cap ([`Rejection::OverCapacity`]) and a per-client queue bound
//! ([`Rejection::ClientQueueFull`]) — the wire layer maps both to named
//! `429` replies.

use ldsim_bench::figures::registry;
use ldsim_system::sweep::{cache_row, parse_cache_line, FigureSpec};
use ldsim_system::{
    run_one_kernel, Cell, CellStore, CompactStats, RunOpts, RunResult, ShardMap, ENGINE_SALT,
    ENGINE_SALT_HISTORY,
};
use ldsim_types::kernel::KernelProgram;
use ldsim_util::{FnvHashMap, FnvHashSet};
use ldsim_workloads::Scale;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How an [`Exec`] runs: where the shard store lives and the pool bounds.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Shard-directory root of the cell store.
    pub cache_dir: PathBuf,
    /// Shard count for a fresh store (an existing `shards.meta` wins).
    pub shards: usize,
    /// Worker threads simulating cells.
    pub workers: usize,
    /// Hard cap on cells queued-or-running across all clients.
    pub max_inflight: usize,
    /// Bound on any one client's queue.
    pub queue_cap: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            cache_dir: PathBuf::from("results/cellcache"),
            shards: ldsim_system::DEFAULT_SHARDS,
            workers: ldsim_util::jobs(),
            max_inflight: 4096,
            queue_cap: 1024,
        }
    }
}

/// One job submission, already parsed off the wire.
#[derive(Debug, Clone)]
pub struct JobRequest {
    pub client: String,
    pub scale: Scale,
    pub seed: u64,
    /// `None` = the full registry (every figure).
    pub figures: Option<Vec<String>>,
}

/// What [`Exec::submit`] accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitReply {
    pub job: u64,
    /// Cells declared across the job's figures (with duplicates).
    pub declared: usize,
    /// Unique cells after dedupe within the job.
    pub unique: usize,
    /// Unique cells already resolved (memory or validated disk row).
    pub cached: usize,
    /// Unique cells another client already has in flight.
    pub shared: usize,
    /// Unique cells newly enqueued for this job.
    pub queued: usize,
}

/// Why a submission was refused. Nothing is enqueued on rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// A requested figure name is not in the registry → `400`.
    UnknownFigure(String),
    /// Accepting the job would exceed the global in-flight cap → `429`.
    OverCapacity {
        inflight: usize,
        adding: usize,
        cap: usize,
    },
    /// The client's own queue cannot hold the job → `429`.
    ClientQueueFull {
        client: String,
        queued: usize,
        adding: usize,
        cap: usize,
    },
}

impl Rejection {
    /// The wire-protocol error name (DESIGN.md §19).
    pub fn name(&self) -> &'static str {
        match self {
            Rejection::UnknownFigure(_) => "unknown_figure",
            Rejection::OverCapacity { .. } => "over_capacity",
            Rejection::ClientQueueFull { .. } => "client_queue_full",
        }
    }

    pub fn detail(&self) -> String {
        match self {
            Rejection::UnknownFigure(name) => format!("no figure named '{name}' in the registry"),
            Rejection::OverCapacity {
                inflight,
                adding,
                cap,
            } => format!(
                "{inflight} cell(s) in flight + {adding} new would exceed the \
                 max-inflight cap of {cap} — retry when the farm drains"
            ),
            Rejection::ClientQueueFull {
                client,
                queued,
                adding,
                cap,
            } => format!(
                "client '{client}' has {queued} cell(s) queued + {adding} new \
                 would exceed the per-client queue cap of {cap}"
            ),
        }
    }
}

/// A job's point-in-time progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// `"running"`, `"done"`, or `"failed"`.
    pub state: &'static str,
    /// Unique cells the job needs.
    pub total: usize,
    /// Of those, how many are resolved (succeeded or failed).
    pub done: usize,
    /// First failure message, if any cell failed.
    pub error: Option<String>,
}

/// One figure's rendered output, for streaming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FigureOutput {
    /// The figure wrote `<file>` — `content` is its exact bytes.
    File { file: String, content: String },
    /// The figure renders tables to stdout only (fig05, the tables…).
    NoFile,
    /// A cell the figure needs failed, or the render itself panicked.
    Failed { error: String },
}

struct ClientQueue {
    name: String,
    q: VecDeque<Cell>,
}

struct Job {
    specs: Arc<Vec<FigureSpec>>,
    /// Unique cell keys the job resolves against (status accounting).
    keys: Vec<u64>,
}

#[derive(Default)]
struct State {
    queues: Vec<ClientQueue>,
    /// Round-robin cursor over `queues`.
    rr: usize,
    /// Keys queued or running (dedupe + the in-flight cap).
    pending: FnvHashSet<u64>,
    results: FnvHashMap<u64, RunResult>,
    failed: FnvHashMap<u64, String>,
    jobs: FnvHashMap<u64, Job>,
    next_job: u64,
    shutdown: bool,
}

impl State {
    fn queue_index(&mut self, client: &str) -> usize {
        match self.queues.iter().position(|q| q.name == client) {
            Some(i) => i,
            None => {
                self.queues.push(ClientQueue {
                    name: client.to_string(),
                    q: VecDeque::new(),
                });
                self.queues.len() - 1
            }
        }
    }

    /// Pop the next cell, visiting client queues round-robin so no client
    /// starves another.
    fn next_cell(&mut self) -> Option<Cell> {
        let n = self.queues.len();
        for off in 0..n {
            let i = (self.rr + off) % n;
            if let Some(cell) = self.queues[i].q.pop_front() {
                self.rr = (i + 1) % n;
                return Some(cell);
            }
        }
        None
    }
}

/// The disk half: the shard map plus an in-memory index of every
/// current-salt raw row (key → line), consulted by the submit-time dedupe.
struct DiskStore {
    map: ShardMap,
    rows: FnvHashMap<u64, String>,
}

/// Kernel identity: (benchmark, scale ordinal, seed). Generation is
/// deterministic, so one shared program serves every cell that matches.
type KernelKey = (&'static str, u8, u64);

/// The farm core. Create with [`Exec::start`]; share via `Arc`.
pub struct Exec {
    cfg: ExecConfig,
    state: Mutex<State>,
    /// Signalled when cells are enqueued (workers wait here).
    work: Condvar,
    /// Signalled when a cell resolves (streamers wait here).
    done: Condvar,
    /// Lock order: `state` before `store`, never the reverse.
    store: Mutex<DiskStore>,
    /// Generated kernels, shared read-only across workers.
    kernels: Mutex<FnvHashMap<KernelKey, Arc<KernelProgram>>>,
    render_seq: AtomicU64,
}

fn scale_ord(s: Scale) -> u8 {
    match s {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

/// Index every current-salt row on disk (last append wins, matching the
/// compactor's newest-row policy). Rows are *not* trusted yet — full
/// validation happens per-cell at submit via [`parse_cache_line`].
fn load_rows(map: &ShardMap) -> FnvHashMap<u64, String> {
    let mut rows = FnvHashMap::default();
    for path in map.shard_paths() {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => panic!("cannot read shard {}: {e}", path.display()),
        };
        for line in text.lines() {
            let Ok(obj) = ldsim_util::parse_object(line) else {
                continue;
            };
            let (Ok(key_hex), Ok(salt)) = (obj.req_str("cellkey"), obj.req_str("engine")) else {
                continue;
            };
            if salt != ENGINE_SALT {
                continue;
            }
            if let Ok(key) = u64::from_str_radix(key_hex, 16) {
                rows.insert(key, line.to_string());
            }
        }
    }
    rows
}

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

impl Exec {
    /// Open the shard store, index its rows, and spawn the worker pool.
    pub fn start(cfg: ExecConfig) -> Arc<Exec> {
        assert!(cfg.workers > 0, "worker pool cannot be empty");
        assert!(cfg.max_inflight > 0 && cfg.queue_cap > 0);
        let map = ShardMap::open(&cfg.cache_dir, cfg.shards);
        let rows = load_rows(&map);
        let exec = Arc::new(Exec {
            cfg,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            store: Mutex::new(DiskStore { map, rows }),
            kernels: Mutex::new(FnvHashMap::default()),
            render_seq: AtomicU64::new(0),
        });
        for _ in 0..exec.cfg.workers {
            let e = exec.clone();
            std::thread::spawn(move || worker_loop(e));
        }
        exec
    }

    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Rows indexed from the current-salt disk store (startup + appends).
    pub fn indexed_rows(&self) -> usize {
        self.store.lock().unwrap().rows.len()
    }

    /// Accept or reject one job. On acceptance the job's new cells are
    /// enqueued and workers woken; on rejection *nothing* changes.
    pub fn submit(&self, req: &JobRequest) -> Result<SubmitReply, Rejection> {
        let all = registry(req.scale, req.seed);
        let specs: Vec<FigureSpec> = match &req.figures {
            None => all,
            Some(names) => {
                for n in names {
                    if !all.iter().any(|s| s.name == n.as_str()) {
                        return Err(Rejection::UnknownFigure(n.clone()));
                    }
                }
                all.into_iter()
                    .filter(|s| names.iter().any(|n| n == s.name))
                    .collect()
            }
        };
        let opts = RunOpts::default();
        let declared: usize = specs.iter().map(|s| s.cells.len()).sum();
        let mut unique: Vec<Cell> = Vec::new();
        let mut seen = FnvHashSet::default();
        for c in specs.iter().flat_map(|s| s.cells.iter()) {
            if seen.insert(c.key(opts)) {
                unique.push(*c);
            }
        }

        let mut state = self.state.lock().unwrap();
        // Classify every unique cell. Disk hits are *collected*, not
        // committed — rejection below must leave no trace.
        let (mut cached, mut shared) = (0usize, 0usize);
        let mut disk_hits: Vec<(u64, RunResult)> = Vec::new();
        let mut to_queue: Vec<Cell> = Vec::new();
        {
            let store = self.store.lock().unwrap();
            for &cell in &unique {
                let key = cell.key(opts);
                if state.results.contains_key(&key) || state.failed.contains_key(&key) {
                    cached += 1;
                } else if state.pending.contains(&key) {
                    shared += 1;
                } else if let Some((_, result)) = store.rows.get(&key).and_then(|line| {
                    let mut req_map = FnvHashMap::default();
                    req_map.insert(key, cell);
                    parse_cache_line(line, ENGINE_SALT, &req_map, opts)
                }) {
                    cached += 1;
                    disk_hits.push((key, result));
                } else {
                    to_queue.push(cell);
                }
            }
        }
        // Atomic backpressure: both caps checked before any mutation.
        if state.pending.len() + to_queue.len() > self.cfg.max_inflight {
            return Err(Rejection::OverCapacity {
                inflight: state.pending.len(),
                adding: to_queue.len(),
                cap: self.cfg.max_inflight,
            });
        }
        let qi = state.queue_index(&req.client);
        if state.queues[qi].q.len() + to_queue.len() > self.cfg.queue_cap {
            return Err(Rejection::ClientQueueFull {
                client: req.client.clone(),
                queued: state.queues[qi].q.len(),
                adding: to_queue.len(),
                cap: self.cfg.queue_cap,
            });
        }
        // Commit.
        for (key, result) in disk_hits {
            state.results.insert(key, result);
        }
        for cell in &to_queue {
            state.pending.insert(cell.key(opts));
            state.queues[qi].q.push_back(*cell);
        }
        let job = state.next_job;
        state.next_job += 1;
        let keys: Vec<u64> = unique.iter().map(|c| c.key(opts)).collect();
        state.jobs.insert(
            job,
            Job {
                specs: Arc::new(specs),
                keys,
            },
        );
        drop(state);
        self.work.notify_all();
        Ok(SubmitReply {
            job,
            declared,
            unique: unique.len(),
            cached,
            shared,
            queued: to_queue.len(),
        })
    }

    pub fn status(&self, job: u64) -> Option<JobStatus> {
        let state = self.state.lock().unwrap();
        let j = state.jobs.get(&job)?;
        let mut done = 0usize;
        let mut error = None;
        for k in &j.keys {
            if state.results.contains_key(k) {
                done += 1;
            } else if let Some(e) = state.failed.get(k) {
                done += 1;
                if error.is_none() {
                    error = Some(e.clone());
                }
            }
        }
        let s = if error.is_some() {
            "failed"
        } else if done == j.keys.len() {
            "done"
        } else {
            "running"
        };
        Some(JobStatus {
            state: s,
            total: j.keys.len(),
            done,
            error,
        })
    }

    /// How many figures a job declares (`None` = unknown job).
    pub fn figure_count(&self, job: u64) -> Option<usize> {
        let state = self.state.lock().unwrap();
        Some(state.jobs.get(&job)?.specs.len())
    }

    /// Block until figure `idx` of `job` can render, render it into a
    /// private scratch directory, and return its name plus output bytes.
    /// `None` = unknown job or figure index.
    pub fn wait_figure(&self, job: u64, idx: usize) -> Option<(&'static str, FigureOutput)> {
        let opts = RunOpts::default();
        let (specs, cells) = {
            let state = self.state.lock().unwrap();
            let j = state.jobs.get(&job)?;
            let spec = j.specs.get(idx)?;
            (j.specs.clone(), spec.cells.clone())
        };
        let name = specs[idx].name;
        let keys: Vec<u64> = cells.iter().map(|c| c.key(opts)).collect();

        let mut store = CellStore::new(opts);
        {
            let mut state = self.state.lock().unwrap();
            loop {
                let mut waiting = false;
                let mut err = None;
                for k in &keys {
                    if let Some(e) = state.failed.get(k) {
                        err = Some(e.clone());
                        break;
                    }
                    if !state.results.contains_key(k) {
                        waiting = true;
                    }
                }
                if let Some(error) = err {
                    return Some((name, FigureOutput::Failed { error }));
                }
                if !waiting {
                    break;
                }
                state = self.done.wait(state).unwrap();
            }
            for c in &cells {
                store.insert(c, state.results[&c.key(opts)].clone());
            }
        }

        // Render into a fresh scratch dir so concurrent streams of the
        // same figure never race on one file.
        let dir = std::env::temp_dir().join(format!(
            "ldsim-server-render-{}-{}",
            std::process::id(),
            self.render_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let rendered =
            std::panic::catch_unwind(AssertUnwindSafe(|| (specs[idx].render)(&store, &dir)));
        let output = match rendered {
            Err(p) => FigureOutput::Failed {
                error: format!("render of '{name}' panicked: {}", panic_msg(p)),
            },
            Ok(()) => {
                let file = format!("{name}.jsonl");
                match std::fs::read_to_string(dir.join(&file)) {
                    Ok(content) => FigureOutput::File { file, content },
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => FigureOutput::NoFile,
                    Err(e) => panic!("cannot read rendered {file}: {e}"),
                }
            }
        };
        let _ = std::fs::remove_dir_all(&dir);
        Some((name, output))
    }

    /// Compact the shard store (newest valid row per key, stale-salt
    /// eviction) and re-index the surviving rows.
    pub fn compact(&self) -> CompactStats {
        let mut store = self.store.lock().unwrap();
        let stats = store.map.compact(ENGINE_SALT_HISTORY);
        store.rows = load_rows(&store.map);
        stats
    }

    /// Point-in-time counters for `/v1/health`.
    pub fn health(&self) -> (usize, usize, usize, usize) {
        let state = self.state.lock().unwrap();
        (
            state.pending.len(),
            state.results.len(),
            state.failed.len(),
            state.jobs.len(),
        )
    }

    /// Stop the worker pool (used by tests; the server runs forever).
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.work.notify_all();
    }

    fn kernel(&self, cell: &Cell) -> Arc<KernelProgram> {
        let id = (cell.bench, scale_ord(cell.scale), cell.seed);
        if let Some(k) = self.kernels.lock().unwrap().get(&id) {
            return k.clone();
        }
        // Generated outside the lock: two workers may race to build the
        // same kernel (first insert wins), but neither blocks the pool.
        let built =
            Arc::new(ldsim_workloads::benchmark(cell.bench, cell.scale, cell.seed).generate());
        self.kernels
            .lock()
            .unwrap()
            .entry(id)
            .or_insert(built)
            .clone()
    }
}

fn worker_loop(exec: Arc<Exec>) {
    let opts = RunOpts::default();
    loop {
        let cell = {
            let mut state = exec.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(c) = state.next_cell() {
                    break c;
                }
                state = exec.work.wait(state).unwrap();
            }
        };
        let key = cell.key(opts);
        let kernel = exec.kernel(&cell);
        // A panicking cell (simulation integrity assert) must fail *that
        // cell*, not take the worker — the slot is reclaimed either way.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_one_kernel(
                &kernel,
                cell.bench,
                cell.scale,
                cell.seed,
                cell.kind,
                |cfg| cell.tweak.apply(cfg),
            )
        }));
        match outcome {
            Ok(result) => {
                assert!(result.hists.is_none(), "farm cells never arm histograms");
                let row = cache_row(&cell, opts, ENGINE_SALT, &result);
                {
                    let mut store = exec.store.lock().unwrap();
                    store.map.append(key, &row);
                    store.rows.insert(key, row.trim_end().to_string());
                }
                let mut state = exec.state.lock().unwrap();
                state.pending.remove(&key);
                state.results.insert(key, result);
                drop(state);
                exec.done.notify_all();
            }
            Err(p) => {
                let msg = format!(
                    "{}/{:?} at {:?} seed {} failed: {}",
                    cell.bench,
                    cell.kind,
                    cell.scale,
                    cell.seed,
                    panic_msg(p)
                );
                let mut state = exec.state.lock().unwrap();
                state.pending.remove(&key);
                state.failed.insert(key, msg);
                drop(state);
                exec.done.notify_all();
            }
        }
    }
}

/// Parse a wire scale name (`tiny|small|full`).
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::config::SchedulerKind;

    fn cell(bench: &'static str) -> Cell {
        Cell::new(bench, Scale::Tiny, 7, SchedulerKind::Gmc)
    }

    #[test]
    fn queues_drain_round_robin_across_clients() {
        // Fairness is a scheduling property of `State`, pinned directly:
        // with two clients holding queued work, draining must alternate —
        // a bulk submitter cannot starve a one-figure client.
        let mut state = State::default();
        let a = state.queue_index("alice");
        for _ in 0..3 {
            let c = cell("bfs");
            state.queues[a].q.push_back(c);
        }
        let b = state.queue_index("bob");
        for _ in 0..2 {
            let c = cell("spmv");
            state.queues[b].q.push_back(c);
        }
        let order: Vec<&str> = std::iter::from_fn(|| state.next_cell())
            .map(|c| c.bench)
            .collect();
        assert_eq!(order, ["bfs", "spmv", "bfs", "spmv", "bfs"]);
        assert!(state.next_cell().is_none());
    }

    #[test]
    fn rejections_carry_wire_names() {
        assert_eq!(
            Rejection::UnknownFigure("x".into()).name(),
            "unknown_figure"
        );
        let r = Rejection::OverCapacity {
            inflight: 9,
            adding: 5,
            cap: 10,
        };
        assert_eq!(r.name(), "over_capacity");
        assert!(r.detail().contains("cap of 10"));
        let r = Rejection::ClientQueueFull {
            client: "ci".into(),
            queued: 3,
            adding: 4,
            cap: 5,
        };
        assert_eq!(r.name(), "client_queue_full");
        assert!(r.detail().contains("'ci'"));
    }

    #[test]
    fn parse_scale_is_the_wire_grammar() {
        assert_eq!(parse_scale("tiny"), Some(Scale::Tiny));
        assert_eq!(parse_scale("small"), Some(Scale::Small));
        assert_eq!(parse_scale("full"), Some(Scale::Full));
        assert_eq!(parse_scale("Tiny"), None, "the wire is lowercase-only");
        assert_eq!(parse_scale(""), None);
    }
}
