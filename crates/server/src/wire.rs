//! Minimal client side of the wire protocol, shared by the `ldsim-client`
//! binary and the server's own integration tests — one implementation of
//! "speak the subset", exercised from both ends.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One request/response round trip (`Connection: close`). Returns the
/// status code and the response body.
pub fn request(
    host: &str,
    port: u16,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect((host, port))
        .map_err(|e| format!("cannot connect to {host}:{port}: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send failed: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("receive failed: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response (no header terminator): {raw:?}"))?;
    let status = parse_status(head)?;
    Ok((status, body.to_string()))
}

/// Open a streaming GET: returns the status code and a reader positioned
/// at the first body line.
pub fn open_stream(
    host: &str,
    port: u16,
    path: &str,
) -> Result<(u16, BufReader<TcpStream>), String> {
    let mut stream = TcpStream::connect((host, port))
        .map_err(|e| format!("cannot connect to {host}:{port}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("receive failed: {e}"))?;
    let status = parse_status(&status_line)?;
    // Drain headers up to the blank line; the stream body follows.
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("connection closed inside response headers".into());
        }
        if line == "\r\n" || line == "\n" {
            return Ok((status, reader));
        }
    }
}

fn parse_status(head: &str) -> Result<u16, String> {
    let status_line = head.lines().next().unwrap_or("");
    status_line
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lines_parse() {
        assert_eq!(parse_status("HTTP/1.1 200 OK\r\n"), Ok(200));
        assert_eq!(parse_status("HTTP/1.1 429 Too Many Requests"), Ok(429));
        assert!(parse_status("ICY 200 OK").is_err());
        assert!(parse_status("").is_err());
    }
}
